//! Escape-ring model equivalence and the multi-ring extension: physical
//! and embedded rings must both keep OFAR live (Fig. 8 shows them
//! performing identically), and any ring of the §VII edge-disjoint
//! family must be usable as the escape subnetwork.

use ofar::prelude::*;
use ofar_core::engine::Fabric;
use ofar_core::routing::OfarPolicy;

fn drain_burst_on(fabric: Fabric, seed: u64) -> u64 {
    let cfg = *fabric.cfg();
    let mut net = Network::with_fabric(fabric, OfarPolicy::new(&cfg, seed));
    let topo = Dragonfly::new(cfg.params);
    let mut gen = TrafficGen::new(&topo, TrafficSpec::adversarial(2), seed + 1);
    for n in 0..net.num_nodes() {
        for _ in 0..8 {
            let src = NodeId::from(n);
            let dst = gen.destination(src);
            net.generate(src, dst);
        }
    }
    while !net.drained() {
        net.step();
        assert!(net.now() < 300_000, "network failed to drain");
    }
    net.now()
}

#[test]
fn physical_and_embedded_rings_both_work() {
    let phys = drain_burst_on(
        Fabric::new(SimConfig::paper(2).with_ring(RingMode::Physical)),
        31,
    );
    let emb = drain_burst_on(
        Fabric::new(SimConfig::paper(2).with_ring(RingMode::Embedded)),
        31,
    );
    // Fig. 8: "no significant differences can be reported" — allow 25%.
    let ratio = phys as f64 / emb as f64;
    assert!(
        (0.75..1.33).contains(&ratio),
        "physical ({phys}) vs embedded ({emb}) differ by more than expected"
    );
}

#[test]
fn multiple_simultaneous_escape_rings_work() {
    // §VII ongoing work: several embedded Hamiltonian rings at once.
    for k in 1..=2usize {
        let mut cfg = SimConfig::paper(2).with_ring(RingMode::Embedded);
        cfg.escape_rings = k;
        let cycles = drain_burst_on(Fabric::new(cfg), 35);
        assert!(cycles > 0, "k={k} failed");
    }
    // and physically attached ring pairs
    let mut cfg = SimConfig::paper(2).with_ring(RingMode::Physical);
    cfg.escape_rings = 2;
    assert!(drain_burst_on(Fabric::new(cfg), 36) > 0);
}

#[test]
fn escape_ring_count_is_validated() {
    let mut cfg = SimConfig::paper(2).with_ring(RingMode::Embedded);
    cfg.escape_rings = 3; // h = 2 → at most 2
    assert!(cfg.validate().is_err());
    cfg.escape_rings = 0;
    assert!(cfg.validate().is_err());
}

#[test]
fn every_disjoint_ring_serves_as_escape_network() {
    let cfg = SimConfig::paper(2).with_ring(RingMode::Embedded);
    let topo = Dragonfly::new(cfg.params);
    for ring_idx in 0..cfg.params.h {
        let ring = HamiltonianRing::embedded(&topo, ring_idx);
        let cycles = drain_burst_on(Fabric::with_ring(cfg, Some(ring)), 32);
        assert!(cycles > 0);
    }
}

#[test]
fn embedded_ring_visits_every_router_once() {
    for h in 2..=4 {
        let topo = Dragonfly::balanced(h);
        let ring = HamiltonianRing::embedded(&topo, 0);
        ring.validate(&topo).unwrap();
        // positions are a permutation
        let mut seen = vec![false; topo.num_routers()];
        for &r in ring.order() {
            assert!(!seen[ring.position_of(r)]);
            seen[ring.position_of(r)] = true;
        }
    }
}

#[test]
fn disjoint_family_is_disjoint_at_every_supported_size() {
    for h in 2..=5 {
        let topo = Dragonfly::balanced(h);
        let rings = HamiltonianRing::embed_disjoint(&topo, h);
        assert!(HamiltonianRing::pairwise_edge_disjoint(&topo, &rings));
    }
}

#[test]
fn ring_stats_are_consistent() {
    // entries == exits + deliveries-from-ring + still-on-ring; after a
    // full drain, nothing is still on the ring.
    let cfg = SimConfig::reduced_vcs(2).with_seed(33);
    let mut net = Network::new(cfg, OfarPolicy::new(&cfg, 33));
    let topo = Dragonfly::new(cfg.params);
    let mut gen = TrafficGen::new(&topo, TrafficSpec::adversarial(2), 34);
    for n in 0..net.num_nodes() {
        for _ in 0..30 {
            let src = NodeId::from(n);
            let dst = gen.destination(src);
            net.generate(src, dst);
        }
    }
    while !net.drained() {
        net.step();
        assert!(net.now() < 400_000, "drain stalled");
    }
    let s = net.stats();
    assert_eq!(
        s.ring_entries,
        s.ring_exits + s.ring_deliveries,
        "ring bookkeeping leak: entries {} exits {} deliveries {}",
        s.ring_entries,
        s.ring_exits,
        s.ring_deliveries
    );
}
