//! Reproducibility: the simulator is fully deterministic for a given
//! seed, across every mechanism — a hard requirement for the resumable
//! experiment harness and for debugging routing changes.

use ofar::prelude::*;

fn signature(kind: MechanismKind, seed: u64) -> (u64, u64, u64, u64, u64) {
    let cfg = kind.adapt_config(SimConfig::paper(2).with_seed(seed));
    let mut net = Network::new(cfg, kind.build(&cfg, seed));
    let topo = Dragonfly::new(cfg.params);
    let mut gen = TrafficGen::new(&topo, TrafficSpec::mix2(2), seed + 1);
    let mut bern = Bernoulli::new(0.5, cfg.packet_size, seed + 2);
    let nodes = net.num_nodes();
    for _ in 0..2_000 {
        bern.cycle(nodes, |src| {
            let dst = gen.destination(src);
            net.generate(src, dst);
        });
        net.step();
    }
    let s = net.stats();
    (
        s.generated_packets,
        s.delivered_packets,
        s.latency_sum,
        s.hop_sum,
        s.local_misroutes + s.global_misroutes + s.ring_entries,
    )
}

#[test]
fn same_seed_same_history() {
    for kind in MechanismKind::paper_set() {
        let a = signature(kind, 99);
        let b = signature(kind, 99);
        assert_eq!(a, b, "{kind} is not deterministic");
    }
}

#[test]
fn different_seeds_different_histories() {
    // Not a strict requirement packet-for-packet, but identical full
    // signatures across seeds would indicate the seed is ignored.
    let mut distinct = 0;
    for kind in [
        MechanismKind::Valiant,
        MechanismKind::Ofar,
        MechanismKind::Pb,
    ] {
        if signature(kind, 1) != signature(kind, 2) {
            distinct += 1;
        }
    }
    assert!(distinct >= 2, "seeds appear to be ignored");
}

#[test]
fn faulted_runs_are_reproducible() {
    // Same seed + same fault plan ⇒ identical delivery statistics,
    // including the structured stall verdict. Covers the fault-injection
    // path end to end: plan application, drain/requeue of in-flight
    // phits, degraded routing and the watchdog diagnosis.
    let cfg = SimConfig::paper(2);
    let topo = Dragonfly::new(cfg.params);
    let run = |kind: MechanismKind| {
        let r0 = RouterId::new(0);
        let plan = FaultPlan::random_global_failures(&topo, 2, 120, 0xDE7).transient_link(
            300,
            900,
            r0,
            topo.global_neighbor(r0, 0).0,
        );
        ofar::burst_faulted(
            cfg,
            kind,
            &TrafficSpec::mix2(2),
            3,
            41,
            plan,
            ofar::RunConfig::default(),
        )
    };
    for kind in [MechanismKind::Min, MechanismKind::Ofar] {
        let a = run(kind);
        let b = run(kind);
        assert_eq!(a.cycles, b.cycles, "{kind}: drain time diverged");
        assert_eq!(a.delivered, b.delivered, "{kind}: deliveries diverged");
        assert_eq!(
            a.avg_latency.to_bits(),
            b.avg_latency.to_bits(),
            "{kind}: latency diverged"
        );
        assert_eq!(a.ring_entries, b.ring_entries, "{kind}: ring use diverged");
        assert_eq!(a.stall, b.stall, "{kind}: stall verdict diverged");
    }
}

#[test]
fn runner_points_are_reproducible() {
    let cfg = SimConfig::paper(2);
    let opts = SteadyOpts {
        warmup: 1_000,
        measure: 1_500,
    };
    let a = steady_state(
        cfg,
        MechanismKind::Ofar,
        &TrafficSpec::adversarial(2),
        0.3,
        opts,
        7,
    );
    let b = steady_state(
        cfg,
        MechanismKind::Ofar,
        &TrafficSpec::adversarial(2),
        0.3,
        opts,
        7,
    );
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.avg_latency.to_bits(), b.avg_latency.to_bits());
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
}

#[test]
fn snapshot_restore_is_invisible_to_signatures() {
    // A save/restore round-trip in the middle of a run must not perturb
    // the history: restoring into a fresh network and continuing yields
    // the same signature as never having snapshotted. The split lands
    // mid-retransmit-window (nonzero BER) and mid-fault-flap.
    let kind = MechanismKind::Ofar;
    let seed = 31;
    let mut cfg = SimConfig::paper(2).with_seed(seed);
    cfg.ber = 2e-5;
    let cfg = kind.adapt_config(cfg);
    let topo = Dragonfly::new(cfg.params);
    let r0 = RouterId::new(0);
    let plan = || {
        FaultPlan::random_global_failures(&topo, 2, 450, 0xFA2).transient_link(
            300,
            900,
            r0,
            topo.global_neighbor(r0, 0).0,
        )
    };
    let drive = |net: &mut Network<Mechanism>, gen: &mut TrafficGen, bern: &mut Bernoulli, n| {
        let nodes = net.num_nodes();
        for _ in 0..n {
            bern.cycle(nodes, |src| {
                let dst = gen.destination(src);
                net.generate(src, dst);
            });
            net.step();
        }
    };

    // Uninterrupted reference.
    let mut net = Network::new(cfg, kind.build(&cfg, seed));
    net.set_fault_plan(plan());
    let mut gen = TrafficGen::new(&topo, TrafficSpec::mix2(2), seed + 1);
    let mut bern = Bernoulli::new(0.4, cfg.packet_size, seed + 2);
    drive(&mut net, &mut gen, &mut bern, 2_000);
    let want = net.stats().counters();

    // Same run, interrupted at cycle 600 (inside the 300..900 flap).
    let mut net_a = Network::new(cfg, kind.build(&cfg, seed));
    net_a.set_fault_plan(plan());
    let mut gen_a = TrafficGen::new(&topo, TrafficSpec::mix2(2), seed + 1);
    let mut bern_a = Bernoulli::new(0.4, cfg.packet_size, seed + 2);
    drive(&mut net_a, &mut gen_a, &mut bern_a, 600);
    let snap = net_a.save_snapshot();

    let mut net_b = Network::new(cfg, kind.build(&cfg, seed));
    net_b.restore_snapshot(&snap).expect("restore");
    let mut gen_b = TrafficGen::new(&topo, TrafficSpec::mix2(2), 0);
    gen_b.set_rng_state(gen_a.rng_state());
    let mut bern_b = Bernoulli::new(0.4, cfg.packet_size, 0);
    bern_b.set_rng_state(bern_a.rng_state());
    drive(&mut net_b, &mut gen_b, &mut bern_b, 1_400);
    assert_eq!(
        want,
        net_b.stats().counters(),
        "restore changed the history"
    );
}

#[test]
fn checkpointed_steady_state_resumes_to_identical_results() {
    // Run once with periodic checkpoints, then again against the same
    // directory: the second run resumes from the newest checkpoint and
    // must produce the bit-identical SteadyPoint of an uncheckpointed
    // run. (This is the in-process version of the CI kill-and-resume
    // smoke job.)
    let dir = std::env::temp_dir().join(format!("ofar-ckpt-test-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cfg = SimConfig::paper(2);
    let kind = MechanismKind::Ofar;
    let spec = TrafficSpec::adversarial(2);
    let opts = SteadyOpts {
        warmup: 800,
        measure: 1_200,
    };
    let plain = steady_state(cfg, kind, &spec, 0.25, opts, 11);
    let ckpt = CheckpointPolicy::every(500, &dir);
    let first = steady_state_checkpointed(cfg, kind, &spec, 0.25, opts, 11, &ckpt);
    assert_eq!(plain, first, "checkpointing perturbed the run");
    let n_files = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    assert!(n_files > 0, "no checkpoint files were written");
    let resumed = steady_state_checkpointed(cfg, kind, &spec, 0.25, opts, 11, &ckpt);
    assert_eq!(
        plain, resumed,
        "resumed run diverged from uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}
