//! Reproducibility: the simulator is fully deterministic for a given
//! seed, across every mechanism — a hard requirement for the resumable
//! experiment harness and for debugging routing changes.

use ofar::prelude::*;

fn signature(kind: MechanismKind, seed: u64) -> (u64, u64, u64, u64, u64) {
    let cfg = kind.adapt_config(SimConfig::paper(2).with_seed(seed));
    let mut net = Network::new(cfg, kind.build(&cfg, seed));
    let topo = Dragonfly::new(cfg.params);
    let mut gen = TrafficGen::new(&topo, TrafficSpec::mix2(2), seed + 1);
    let mut bern = Bernoulli::new(0.5, cfg.packet_size, seed + 2);
    let nodes = net.num_nodes();
    for _ in 0..2_000 {
        bern.cycle(nodes, |src| {
            let dst = gen.destination(src);
            net.generate(src, dst);
        });
        net.step();
    }
    let s = net.stats();
    (
        s.generated_packets,
        s.delivered_packets,
        s.latency_sum,
        s.hop_sum,
        s.local_misroutes + s.global_misroutes + s.ring_entries,
    )
}

#[test]
fn same_seed_same_history() {
    for kind in MechanismKind::paper_set() {
        let a = signature(kind, 99);
        let b = signature(kind, 99);
        assert_eq!(a, b, "{kind} is not deterministic");
    }
}

#[test]
fn different_seeds_different_histories() {
    // Not a strict requirement packet-for-packet, but identical full
    // signatures across seeds would indicate the seed is ignored.
    let mut distinct = 0;
    for kind in [
        MechanismKind::Valiant,
        MechanismKind::Ofar,
        MechanismKind::Pb,
    ] {
        if signature(kind, 1) != signature(kind, 2) {
            distinct += 1;
        }
    }
    assert!(distinct >= 2, "seeds appear to be ignored");
}

#[test]
fn faulted_runs_are_reproducible() {
    // Same seed + same fault plan ⇒ identical delivery statistics,
    // including the structured stall verdict. Covers the fault-injection
    // path end to end: plan application, drain/requeue of in-flight
    // phits, degraded routing and the watchdog diagnosis.
    let cfg = SimConfig::paper(2);
    let topo = Dragonfly::new(cfg.params);
    let run = |kind: MechanismKind| {
        let r0 = RouterId::new(0);
        let plan = FaultPlan::random_global_failures(&topo, 2, 120, 0xDE7).transient_link(
            300,
            900,
            r0,
            topo.global_neighbor(r0, 0).0,
        );
        ofar::burst_faulted(
            cfg,
            kind,
            &TrafficSpec::mix2(2),
            3,
            41,
            plan,
            ofar::RunConfig::default(),
        )
    };
    for kind in [MechanismKind::Min, MechanismKind::Ofar] {
        let a = run(kind);
        let b = run(kind);
        assert_eq!(a.cycles, b.cycles, "{kind}: drain time diverged");
        assert_eq!(a.delivered, b.delivered, "{kind}: deliveries diverged");
        assert_eq!(
            a.avg_latency.to_bits(),
            b.avg_latency.to_bits(),
            "{kind}: latency diverged"
        );
        assert_eq!(a.ring_entries, b.ring_entries, "{kind}: ring use diverged");
        assert_eq!(a.stall, b.stall, "{kind}: stall verdict diverged");
    }
}

#[test]
fn runner_points_are_reproducible() {
    let cfg = SimConfig::paper(2);
    let opts = SteadyOpts {
        warmup: 1_000,
        measure: 1_500,
    };
    let a = steady_state(
        cfg,
        MechanismKind::Ofar,
        &TrafficSpec::adversarial(2),
        0.3,
        opts,
        7,
    );
    let b = steady_state(
        cfg,
        MechanismKind::Ofar,
        &TrafficSpec::adversarial(2),
        0.3,
        opts,
        7,
    );
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.avg_latency.to_bits(), b.avg_latency.to_bits());
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
}
