//! The §IV-C patience counter, pinned through [`ViewProbe`]: the
//! head-blocked `wait` counter is the *only* bit that moves a fully
//! blocked packet from waiting on its minimal VC to requesting the
//! escape ring. Probing the decision directly (no cycle engine) keeps
//! the toggle point exact — one cycle under patience waits, patience
//! itself enters the ring.

use ofar::engine::{InputCtx, Packet, PortKind, PortLoad, RequestKind, ViewProbe};
use ofar::prelude::*;
use ofar::routing::{MisrouteThreshold, OfarConfig};
use ofar::topology::{GroupId, NodeId};

const PATIENCE: u16 = 8;

/// OFAR with misrouting denied: a blocked head can only wait or enter
/// the ring, so the patience counter alone decides.
fn patient_ofar(cfg: &SimConfig) -> Mechanism {
    MechanismKind::Ofar.build_tuned(
        cfg,
        0,
        Some(OfarConfig {
            ring_patience: PATIENCE,
            threshold: MisrouteThreshold::Static {
                th_min: 0.0,
                th_nonmin: -1.0,
            },
            ..OfarConfig::base()
        }),
        None,
    )
}

/// A packet at router 0 headed for a remote group, with its head-blocked
/// counter preset to `wait`.
fn blocked_packet(probe: &ViewProbe, wait: u8) -> Packet {
    let topo = probe.fab().topo();
    let dst = (0..topo.num_nodes() as u32)
        .map(NodeId::new)
        .find(|&n| topo.group_of_node(n) == GroupId::new(1))
        .expect("group 1 has nodes");
    Packet {
        id: 1,
        injected_at: 0,
        src: NodeId::new(0),
        dst,
        intermediate: None,
        flags: 0,
        ring_exits_left: 1,
        local_hops: 0,
        global_hops: 0,
        ring_hops: 0,
        wait,
        cur_group: GroupId::new(0),
    }
}

#[test]
fn patience_counter_toggles_the_ring_request() {
    let cfg = MechanismKind::Ofar.adapt_config(SimConfig::paper(2));
    let mut policy = patient_ofar(&cfg);
    let mut probe = ViewProbe::new(cfg);
    probe.set_all(PortLoad::Congested);
    let input = InputCtx {
        port: 0,
        vc: 0,
        kind: PortKind::Node,
        is_escape_vc: false,
    };

    // Below patience (route() itself adds the current cycle's wait):
    // the blocked head keeps requesting its minimal VC.
    let mut pkt = blocked_packet(&probe, 0);
    let req = policy
        .route(&probe.view(), input, &mut pkt)
        .expect("a blocked head still posts its minimal request");
    assert_eq!(req.kind, RequestKind::Minimal);
    assert_eq!(pkt.wait, 1, "route() advances the head-blocked counter");

    // One cycle short of patience: still waiting on minimal.
    let mut pkt = blocked_packet(&probe, (PATIENCE - 2) as u8);
    let req = policy.route(&probe.view(), input, &mut pkt).unwrap();
    assert_eq!(
        req.kind,
        RequestKind::Minimal,
        "wait {} < patience",
        pkt.wait
    );

    // At patience, the same state flips to a ring-entry request.
    let mut pkt = blocked_packet(&probe, (PATIENCE - 1) as u8);
    let req = policy.route(&probe.view(), input, &mut pkt).unwrap();
    assert_eq!(
        req.kind,
        RequestKind::RingEnter,
        "wait {} >= patience must escape",
        pkt.wait
    );

    // The toggle is driven by the counter, not by accumulated calls:
    // resetting wait (as the engine does on every grant) goes back to
    // the minimal request.
    let mut pkt = blocked_packet(&probe, 0);
    let req = policy.route(&probe.view(), input, &mut pkt).unwrap();
    assert_eq!(req.kind, RequestKind::Minimal);
}
