//! The verification stack end to end: the static CDG verifier certifies
//! everything the experiments ship, the `core::run` gate refuses what it
//! rejects, and (under `--features audit`) a full burst runs audit-clean.

use ofar::prelude::*;

/// Every shipped (mechanism × ring mode × ring count) combination at
/// paper VCs certifies — the verify bin's table, as a regression test.
#[test]
fn shipped_configuration_space_certifies() {
    for h in [2, 3] {
        for kind in MechanismKind::paper_set() {
            let base = kind.adapt_config(SimConfig::paper(h));
            let mut variants = vec![base];
            if kind.needs_ring() {
                let mut phys = base;
                phys.ring = RingMode::Physical;
                variants.push(phys);
                for k in 2..=h {
                    let mut multi = base;
                    multi.escape_rings = k;
                    variants.push(multi);
                }
            }
            for cfg in variants {
                certify(&cfg, kind)
                    .unwrap_or_else(|e| panic!("{} at h={h}: {e}", kind.name()));
            }
        }
    }
}

/// Fig. 9's reduced-VC configuration folds the ladder into a cycle:
/// OFAR still certifies (the ring drains it), the pure ladder does not.
#[test]
fn reduced_vcs_split_the_mechanism_set() {
    let cfg = SimConfig::reduced_vcs(2);
    certify(&cfg, MechanismKind::Ofar).expect("OFAR survives reduced VCs");
    certify(&cfg, MechanismKind::OfarL).expect("OFAR-L survives reduced VCs");
    let mut no_ring = cfg;
    no_ring.ring = RingMode::None;
    let err = certify(&no_ring, MechanismKind::Valiant).unwrap_err();
    assert!(
        matches!(err, VerifyError::DependencyCycle { mechanism: "VAL", .. }),
        "expected a named VAL cycle, got {err}"
    );
}

/// The runner gate: `core::run` refuses to start a configuration the
/// verifier rejects, before any cycle is simulated.
#[test]
#[should_panic(expected = "refusing to start unverified configuration")]
fn runners_refuse_unverified_configurations() {
    let mut cfg = SimConfig::reduced_vcs(2);
    cfg.ring = RingMode::None; // VAL on a folded ladder with no escape
    let _ = burst(cfg, MechanismKind::Valiant, &TrafficSpec::uniform(), 1, 7);
}

/// The certificate's numbers are internally consistent with the
/// topology they describe.
#[test]
fn certificate_counts_match_topology()  {
    let cfg = MechanismKind::Ofar.adapt_config(SimConfig::paper(2));
    let cert = certify(&cfg, MechanismKind::Ofar).expect("certifies");
    let topo = Dragonfly::new(cfg.params);
    let nr = topo.num_routers();
    let (a, h) = (cfg.params.a, cfg.params.h);
    assert_eq!(cert.routers, nr);
    assert_eq!(
        cert.channels,
        nr * (a - 1) * cfg.vcs_local + nr * h * cfg.vcs_global
    );
    assert!(cert.dependencies > cert.channels, "OFAR is densely adaptive");
    assert_eq!(cert.rings, 1);
    assert_eq!(
        cert.bubble_slack,
        Some(cfg.buf_ring - 2 * cfg.packet_size)
    );
}

/// Under `--features audit`, a full burst on every mechanism completes
/// with zero invariant violations — the always-on auditor agrees with
/// the static proof.
#[cfg(feature = "audit")]
#[test]
fn audited_bursts_are_clean_for_every_mechanism() {
    for kind in MechanismKind::paper_set() {
        let r = burst(
            SimConfig::paper(2),
            kind,
            &TrafficSpec::adversarial(2),
            3,
            11,
        );
        assert!(r.cycles.is_some(), "{} burst must drain", kind.name());
        let audit = r.audit.unwrap_or_else(|| panic!("{}: audit missing", kind.name()));
        assert!(audit.is_clean(), "{}: {audit}", kind.name());
        assert!(audit.checks > 0);
    }
}

/// Without the feature, the audit slot is present but empty — callers
/// can rely on the field existing either way.
#[cfg(not(feature = "audit"))]
#[test]
fn unaudited_bursts_report_no_audit() {
    let r = burst(
        SimConfig::paper(2),
        MechanismKind::Min,
        &TrafficSpec::uniform(),
        1,
        3,
    );
    assert!(r.cycles.is_some());
    assert!(r.audit.is_none());
}
