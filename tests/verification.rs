//! The verification stack end to end: the static CDG verifier certifies
//! everything the experiments ship, the `core::run` gate refuses what it
//! rejects, the routing-conformance model checker proves the real
//! routing code stays inside its declaration with the paper's hop
//! bounds — and rejects seeded mutant policies with named witnesses —
//! and (under `--features audit`) a full burst runs audit-clean.

use ofar::prelude::*;

/// Every shipped (mechanism × ring mode × ring count) combination at
/// paper VCs certifies — the verify bin's table, as a regression test.
#[test]
fn shipped_configuration_space_certifies() {
    for h in [2, 3] {
        for kind in MechanismKind::paper_set() {
            let base = kind.adapt_config(SimConfig::paper(h));
            let mut variants = vec![base];
            if kind.needs_ring() {
                let mut phys = base;
                phys.ring = RingMode::Physical;
                variants.push(phys);
                for k in 2..=h {
                    let mut multi = base;
                    multi.escape_rings = k;
                    variants.push(multi);
                }
            }
            for cfg in variants {
                certify(&cfg, kind).unwrap_or_else(|e| panic!("{} at h={h}: {e}", kind.name()));
            }
        }
    }
}

/// Fig. 9's reduced-VC configuration folds the ladder into a cycle:
/// OFAR still certifies (the ring drains it), the pure ladder does not.
#[test]
fn reduced_vcs_split_the_mechanism_set() {
    let cfg = SimConfig::reduced_vcs(2);
    certify(&cfg, MechanismKind::Ofar).expect("OFAR survives reduced VCs");
    certify(&cfg, MechanismKind::OfarL).expect("OFAR-L survives reduced VCs");
    let mut no_ring = cfg;
    no_ring.ring = RingMode::None;
    let err = certify(&no_ring, MechanismKind::Valiant).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::DependencyCycle {
                mechanism: "VAL",
                ..
            }
        ),
        "expected a named VAL cycle, got {err}"
    );
}

/// The runner gate: `core::run` refuses to start a configuration the
/// verifier rejects, before any cycle is simulated.
#[test]
#[should_panic(expected = "refusing to start unverified configuration")]
fn runners_refuse_unverified_configurations() {
    let mut cfg = SimConfig::reduced_vcs(2);
    cfg.ring = RingMode::None; // VAL on a folded ladder with no escape
    let _ = burst(cfg, MechanismKind::Valiant, &TrafficSpec::uniform(), 1, 7);
}

/// The certificate's numbers are internally consistent with the
/// topology they describe.
#[test]
fn certificate_counts_match_topology() {
    let cfg = MechanismKind::Ofar.adapt_config(SimConfig::paper(2));
    let cert = certify(&cfg, MechanismKind::Ofar).expect("certifies");
    let topo = Dragonfly::new(cfg.params);
    let nr = topo.num_routers();
    let (a, h) = (cfg.params.a, cfg.params.h);
    assert_eq!(cert.routers, nr);
    assert_eq!(
        cert.channels,
        nr * (a - 1) * cfg.vcs_local + nr * h * cfg.vcs_global
    );
    assert!(
        cert.dependencies > cert.channels,
        "OFAR is densely adaptive"
    );
    assert_eq!(cert.rings, 1);
    assert_eq!(cert.bubble_slack, Some(cfg.buf_ring - 2 * cfg.packet_size));
}

/// Under `--features audit`, a full burst on every mechanism completes
/// with zero invariant violations — the always-on auditor agrees with
/// the static proof.
#[cfg(feature = "audit")]
#[test]
fn audited_bursts_are_clean_for_every_mechanism() {
    for kind in MechanismKind::paper_set() {
        let r = burst(
            SimConfig::paper(2),
            kind,
            &TrafficSpec::adversarial(2),
            3,
            11,
        );
        assert!(r.cycles.is_some(), "{} burst must drain", kind.name());
        let audit = r
            .audit
            .unwrap_or_else(|| panic!("{}: audit missing", kind.name()));
        assert!(audit.is_clean(), "{}: {audit}", kind.name());
        assert!(audit.checks > 0);
    }
}

/// Without the feature, the audit slot is present but empty — callers
/// can rely on the field existing either way.
#[cfg(not(feature = "audit"))]
#[test]
fn unaudited_bursts_report_no_audit() {
    let r = burst(
        SimConfig::paper(2),
        MechanismKind::Min,
        &TrafficSpec::uniform(),
        1,
        3,
    );
    assert!(r.cycles.is_some());
    assert!(r.audit.is_none());
}

// ---------------------------------------------------------------------
// Routing conformance: the model checker against the real mechanisms
// ---------------------------------------------------------------------

/// Paper path-length table (§III/§IV): the conformance checker must
/// *compute* these bounds from the exploration, not assume them.
const PAPER_BOUNDS: [(MechanismKind, u64); 6] = [
    (MechanismKind::Min, 3),
    (MechanismKind::Valiant, 5),
    (MechanismKind::Pb, 5),
    (MechanismKind::Par, 6),
    (MechanismKind::Ofar, 8),
    (MechanismKind::OfarL, 5),
];

/// Every mechanism (paper set plus the PAR extension, whose divert paths
/// exercise the AUX-flag ranking) conforms at h = 2 with exactly the
/// paper's hop bound, and its observed dependency graph re-certifies.
#[test]
fn mechanisms_conform_with_paper_hop_bounds_at_h2() {
    for (kind, bound) in PAPER_BOUNDS {
        let cfg = kind.adapt_config(SimConfig::paper(2));
        let rep =
            conformance(&cfg, kind).unwrap_or_else(|e| panic!("{} must conform: {e}", kind.name()));
        assert_eq!(
            rep.hop_bound,
            bound,
            "{}: computed hop bound {} ≠ paper {bound}",
            kind.name(),
            rep.hop_bound
        );
        assert_eq!(rep.paper_bound, bound, "{}", kind.name());
        assert!(
            rep.states > 0 && rep.decisions > rep.states,
            "{}",
            kind.name()
        );
        assert!(
            !rep.observed.is_empty() && rep.observed.len() <= rep.observed.len() + rep.dead.len(),
            "{}",
            kind.name()
        );
        if kind.needs_ring() {
            let rb = rep
                .ring_bound
                .expect("escape mechanisms get a ring-inclusive bound");
            assert!(rb > rep.hop_bound);
        } else {
            assert!(rep.ring_bound.is_none());
            assert!(
                rep.dead.is_empty(),
                "{}: ladder declarations are exact",
                kind.name()
            );
        }
    }
}

/// Same at h = 4 (the paper's 16k-node scale). Slower, so release CI
/// exercises it through the `verify` bench bin as well.
#[test]
fn mechanisms_conform_with_paper_hop_bounds_at_h4() {
    for (kind, bound) in PAPER_BOUNDS {
        let cfg = kind.adapt_config(SimConfig::paper(4));
        let rep = conformance(&cfg, kind)
            .unwrap_or_else(|e| panic!("{} must conform at h=4: {e}", kind.name()));
        assert_eq!(rep.hop_bound, bound, "{} at h=4", kind.name());
    }
}

/// The runner gate in conformance mode: `OFAR_CONFORMANCE=1` upgrades
/// the pre-run proof to the full model check (cached per configuration).
#[test]
fn conformance_results_are_cached() {
    let cfg = MechanismKind::Min.adapt_config(SimConfig::paper(2));
    let a = conformance_cached(&cfg, MechanismKind::Min).expect("conforms");
    let mut reseeded = cfg;
    reseeded.seed = 1234;
    let b = conformance_cached(&reseeded, MechanismKind::Min).expect("cached");
    assert_eq!(a.hop_bound, b.hop_bound);
    assert_eq!(a.observed.len(), b.observed.len());
}

// ---------------------------------------------------------------------
// Mutant mechanisms: the checker must reject each with a named witness
// ---------------------------------------------------------------------

mod mutants {
    use super::*;
    use ofar::routing::ClassId;
    use ofar::verify::{conformance_with, ConformanceError, RankingKind};
    use ofar_mutate::{MutantPolicy, MutationOp};

    /// These three started life as hand-rolled wrapper policies in this
    /// file; they are now drawn from the operator catalog in
    /// `crates/mutate` (which also runs them, and 70+ siblings, through
    /// the full kill matrix — see the `mutants` bench bin). The original
    /// witness assertions are preserved verbatim: each pins not just
    /// *that* the checker rejects the mutant but *where* it localizes
    /// the defect.
    fn mutant(op: MutationOp, kind: MechanismKind) -> Result<(), ConformanceError> {
        let cfg = kind.adapt_config(SimConfig::paper(2));
        conformance_with(
            &cfg,
            MutantPolicy::new(op, kind, &cfg, 0),
            kind.dependency_decl(&cfg),
            RankingKind::for_mechanism(kind),
        )
        .map(|_| ())
    }

    /// `ring-rider` — a livelock: OFAR that never leaves its escape
    /// ring. Ring exits (and ring ejections) become ring advances, so an
    /// on-ring packet rides past its destination forever. The ranking
    /// (ring distance to destination) must catch the wrap-around.
    #[test]
    fn ring_riding_ofar_is_rejected_by_the_ranking() {
        let err = mutant(MutationOp::RingRider, MechanismKind::Ofar)
            .expect_err("a packet that rides past its destination must be rejected");
        match err {
            ConformanceError::RankingViolation {
                witness,
                before,
                after,
                ..
            } => {
                assert_eq!(witness.from, ClassId::Escape, "violation is on the ring");
                assert_eq!(witness.to, ClassId::Escape);
                assert!(after >= before, "{before} -> {after}");
            }
            other => panic!("expected RankingViolation, got {other}"),
        }
    }

    /// `local-vc-flatten` on Valiant — a deadlock seed: every local
    /// request reuses VC 0 instead of climbing the ladder. The first
    /// post-global local hop lands outside the declared ladder.
    #[test]
    fn flat_ladder_valiant_is_rejected_as_undeclared() {
        let err = mutant(MutationOp::LocalVcFlatten, MechanismKind::Valiant)
            .expect_err("reusing local VC 0 after a global hop must be rejected");
        match err {
            ConformanceError::UndeclaredTransition { witness, .. } => {
                assert_eq!(witness.to, ClassId::Local { vc: 0 });
                assert!(
                    matches!(witness.from, ClassId::Global { .. } | ClassId::Local { .. }),
                    "flat ladder shows up on a post-source hop, got {}",
                    witness.from
                );
            }
            other => panic!("expected UndeclaredTransition, got {other}"),
        }
    }

    /// `local-vc-flatten` on MIN — destination-group traffic lands in
    /// local VC 0 instead of the top ladder VC: the declared
    /// `global → local(top)` dependency is replaced by an undeclared
    /// `global → local:v0` edge (a cycle seed under contention).
    #[test]
    fn flat_vc_minimal_is_rejected_as_undeclared() {
        let err = mutant(MutationOp::LocalVcFlatten, MechanismKind::Min)
            .expect_err("a flat-VC minimal router must be rejected");
        match err {
            ConformanceError::UndeclaredTransition { witness, .. } => {
                assert_eq!(witness.to, ClassId::Local { vc: 0 });
                assert!(matches!(witness.from, ClassId::Global { .. }));
            }
            other => panic!("expected UndeclaredTransition, got {other}"),
        }
    }
}
