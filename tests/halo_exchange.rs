//! End-to-end halo-exchange workload (the paper's §I motivation): every
//! mechanism must drain stencil rounds, and the adaptive network must
//! neutralize the sequential mapping's hot-spots.

use ofar::prelude::*;
use ofar_core::traffic::{StencilTraffic, TaskMapping};

fn drain(kind: MechanismKind, mapping: TaskMapping, rounds: usize) -> u64 {
    let cfg = kind.adapt_config(SimConfig::paper(2));
    let mut net = Network::new(cfg, kind.build(&cfg, 17));
    let topo = Dragonfly::new(cfg.params);
    let stencil = StencilTraffic::square_2d(&topo, mapping, 23);
    for _ in 0..rounds {
        stencil.exchange_round(|s, d| net.generate(s, d));
    }
    while !net.drained() {
        net.step();
        assert!(
            net.now() < 500_000,
            "{} stalled on halo exchange",
            kind.name()
        );
    }
    net.now()
}

#[test]
fn every_mechanism_completes_halo_exchanges() {
    for kind in MechanismKind::paper_set() {
        for mapping in [TaskMapping::Sequential, TaskMapping::RandomizedNodes] {
            assert!(drain(kind, mapping, 5) > 0);
        }
    }
}

#[test]
fn adaptive_routing_beats_min_on_sequential_mapping() {
    let min = drain(MechanismKind::Min, TaskMapping::Sequential, 20);
    let ofar = drain(MechanismKind::Ofar, TaskMapping::Sequential, 20);
    assert!(
        ofar < min,
        "OFAR ({ofar}) must finish the hot-spot exchange before MIN ({min})"
    );
}

#[test]
fn stencil_traffic_conserves_phits() {
    let cfg = MechanismKind::Ofar.adapt_config(SimConfig::paper(2));
    let mut net = Network::new(cfg, MechanismKind::Ofar.build(&cfg, 3));
    let topo = Dragonfly::new(cfg.params);
    let stencil = StencilTraffic::cube_3d(&topo, TaskMapping::RandomizedNodes, 5);
    for _ in 0..10 {
        stencil.exchange_round(|s, d| net.generate(s, d));
        net.run(50);
    }
    let size = cfg.packet_size as u64;
    assert_eq!(
        net.stats().generated_packets * size,
        net.stats().delivered_phits + net.phits_in_system()
    );
    net.check_credit_conservation();
}
