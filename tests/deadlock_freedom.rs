//! Liveness: no mechanism may wedge the network. VC-ordered mechanisms
//! (MIN, VAL, PB, PAR) are deadlock-free by the ascending ladder; the
//! OFAR models rely on the escape subnetwork (§IV-C). We drive each one
//! well past saturation and assert sustained global progress.

use ofar::prelude::*;

/// Drive `kind` at an overload and assert the network keeps delivering
/// through the whole run (progress watchdog windows of `window` cycles).
fn assert_liveness(cfg: SimConfig, kind: MechanismKind, spec: TrafficSpec, seed: u64) {
    let cfg = kind.adapt_config(cfg);
    let mut net = Network::new(cfg, kind.build(&cfg, seed));
    let topo = Dragonfly::new(cfg.params);
    let mut gen = TrafficGen::new(&topo, spec.clone(), seed + 1);
    let mut bern = Bernoulli::new(0.9, cfg.packet_size, seed + 2);
    let nodes = net.num_nodes();
    let window = 2_000u64;
    let mut last_delivered = 0u64;
    for epoch in 0..4 {
        for _ in 0..window {
            bern.cycle(nodes, |src| {
                let dst = gen.destination(src);
                net.generate(src, dst);
            });
            net.step();
        }
        let delivered = net.stats().delivered_packets;
        assert!(
            delivered > last_delivered,
            "{} stopped delivering in epoch {epoch} under {} (total {delivered})",
            kind.name(),
            spec.label(),
        );
        last_delivered = delivered;
    }
}

#[test]
fn overload_liveness_uniform() {
    for kind in MechanismKind::paper_set() {
        assert_liveness(SimConfig::paper(2), kind, TrafficSpec::uniform(), 21);
    }
}

#[test]
fn overload_liveness_adversarial() {
    for kind in MechanismKind::paper_set() {
        assert_liveness(SimConfig::paper(2), kind, TrafficSpec::adversarial(2), 22);
    }
}

#[test]
fn overload_liveness_worst_case_advh() {
    for kind in [
        MechanismKind::Ofar,
        MechanismKind::OfarL,
        MechanismKind::Valiant,
    ] {
        assert_liveness(SimConfig::paper(2), kind, TrafficSpec::adversarial(2), 23);
    }
}

#[test]
fn overload_liveness_with_physical_ring() {
    for kind in [MechanismKind::Ofar, MechanismKind::OfarL] {
        assert_liveness(
            SimConfig::paper(2).with_ring(RingMode::Physical),
            kind,
            TrafficSpec::adversarial(2),
            24,
        );
    }
}

#[test]
fn overload_liveness_with_reduced_vcs() {
    // The Fig. 9 configuration: 2 local / 1 global VCs. Throughput may
    // collapse (that is the figure's point) but packets must keep
    // moving — the escape ring guarantees forward progress.
    assert_liveness(
        SimConfig::reduced_vcs(2),
        MechanismKind::Ofar,
        TrafficSpec::adversarial(2),
        25,
    );
}

#[test]
fn burst_drains_for_every_mechanism() {
    for kind in MechanismKind::paper_set() {
        let cfg = kind.adapt_config(SimConfig::paper(2));
        let r = burst(cfg, kind, &TrafficSpec::mix2(2), 10, 26);
        assert!(
            r.cycles.is_some(),
            "{} stalled during burst consumption",
            kind.name()
        );
        assert_eq!(r.delivered, 10 * cfg.params.nodes() as u64);
    }
}
