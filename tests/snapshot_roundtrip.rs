//! Snapshot/restart correctness: restoring a snapshot is *bit-exact*
//! (run N+M cycles ≡ run N, snapshot, restore into a fresh process
//! image, run M — identical counters and delivery streams, for every
//! mechanism, under faults and link errors), and every corrupted file is
//! refused with a typed error, without panicking and without touching
//! the network it was offered to.

use ofar::engine::crc32;
use ofar::prelude::*;
use proptest::prelude::*;

const H: usize = 2;

/// A run harness with fault flaps and a lossy link, exercising every
/// stateful subsystem a snapshot must carry: VC buffers, credits, link
/// pipelines, LLR replay buffers, fault state, policy and traffic RNGs.
struct Harness {
    net: Network<Mechanism>,
    gen: TrafficGen,
    bern: Bernoulli,
}

impl Harness {
    fn new(kind: MechanismKind, seed: u64, ber: f64, faults: bool) -> Self {
        Self::build(kind, seed, ber, faults, false)
    }

    /// `cm: true` enables the congestion-management layer and swaps the
    /// traffic for an overload (ADV+1 at 0.8 phits/node/cycle), so the
    /// snapshot is taken with hot EWMA sensors, short token buckets and
    /// an engaged ring guard — the CM state a resume must carry exactly.
    fn build(kind: MechanismKind, seed: u64, ber: f64, faults: bool, cm: bool) -> Self {
        let mut cfg = SimConfig::paper(H).with_seed(seed);
        cfg.ber = ber;
        if cm {
            cfg = cfg.with_cm();
        }
        let cfg = kind.adapt_config(cfg);
        let mut net = Network::new(cfg, kind.build(&cfg, seed));
        net.enable_delivery_log();
        let topo = Dragonfly::new(cfg.params);
        if faults {
            let r0 = RouterId::new(0);
            let plan = FaultPlan::random_global_failures(&topo, 2, 450, 0xFA1).transient_link(
                300,
                900,
                r0,
                topo.global_neighbor(r0, 0).0,
            );
            net.set_fault_plan(plan);
        }
        let spec = if cm {
            TrafficSpec::adversarial(1)
        } else {
            TrafficSpec::mix2(H)
        };
        let load = if cm { 0.8 } else { 0.3 };
        let gen = TrafficGen::new(&topo, spec, seed + 1);
        let bern = Bernoulli::new(load, cfg.packet_size, seed + 2);
        Self { net, gen, bern }
    }

    fn drive(&mut self, cycles: u64) {
        let nodes = self.net.num_nodes();
        for _ in 0..cycles {
            let gen = &mut self.gen;
            let net = &mut self.net;
            self.bern.cycle(nodes, |src| {
                let dst = gen.destination(src);
                net.generate(src, dst);
            });
            net.step();
        }
    }

    /// Full observable history: every engine counter plus the exact
    /// delivery stream.
    fn signature(&mut self) -> (Vec<u64>, Vec<(u64, u32)>) {
        (
            self.net.stats().counters().to_vec(),
            self.net.take_delivery_log(),
        )
    }
}

/// run(n + m) ≡ run(n) → snapshot → restore into a fresh network → run(m).
fn assert_resume_bit_exact(kind: MechanismKind, seed: u64, n: u64, m: u64, ber: f64) {
    // The uninterrupted reference.
    let mut reference = Harness::new(kind, seed, ber, true);
    reference.drive(n + m);
    let want = reference.signature();

    // The interrupted run: snapshot at n...
    let mut first = Harness::new(kind, seed, ber, true);
    first.drive(n);
    let bytes = first.net.save_snapshot();

    // ...restored into a *fresh* network (no shared state with `first`),
    // with the traffic RNG streams carried over exactly as the
    // checkpoint layer does.
    let mut resumed = Harness::new(kind, seed, ber, false);
    resumed
        .net
        .restore_snapshot(&bytes)
        .unwrap_or_else(|e| panic!("{kind}: restore failed: {e}"));
    resumed.gen.set_rng_state(first.gen.rng_state());
    resumed.bern.set_rng_state(first.bern.rng_state());
    assert_eq!(resumed.net.now(), n, "{kind}: clock not restored");
    resumed.drive(m);
    let got = resumed.signature();

    assert_eq!(want.0, got.0, "{kind}: counters diverge after resume");
    assert_eq!(
        want.1, got.1,
        "{kind}: delivery stream diverges after resume"
    );
}

/// Same contract with the congestion-management layer on: the snapshot
/// is taken mid-overload, so the occupancy EWMAs, per-NIC token-bucket
/// levels, hysteresis latches and ring-guard wait counters must all
/// round-trip bit-exactly or the resumed throttle decisions diverge.
fn assert_cm_resume_bit_exact(kind: MechanismKind, seed: u64, n: u64, m: u64) {
    let mut reference = Harness::build(kind, seed, 0.0, false, true);
    reference.drive(n + m);
    let want = reference.signature();

    let mut first = Harness::build(kind, seed, 0.0, false, true);
    first.drive(n);
    assert!(
        first.net.stats().cm_throttle_deferrals > 0,
        "{kind}: split point must land mid-throttle or the test is vacuous"
    );
    let bytes = first.net.save_snapshot();

    let mut resumed = Harness::build(kind, seed, 0.0, false, true);
    resumed
        .net
        .restore_snapshot(&bytes)
        .unwrap_or_else(|e| panic!("{kind}: restore failed: {e}"));
    resumed.gen.set_rng_state(first.gen.rng_state());
    resumed.bern.set_rng_state(first.bern.rng_state());
    resumed.drive(m);
    let got = resumed.signature();

    assert_eq!(want.0, got.0, "{kind}: CM counters diverge after resume");
    assert_eq!(
        want.1, got.1,
        "{kind}: CM delivery stream diverges after resume"
    );
}

#[test]
fn resume_is_bit_exact_for_every_mechanism() {
    for kind in MechanismKind::paper_set() {
        // n = 600 lands mid-flap (transient link down 300..900) with a
        // nonzero BER, so the snapshot carries a degraded fault state
        // and in-flight LLR replay buffers.
        assert_resume_bit_exact(kind, 17, 600, 700, 2e-5);
    }
}

#[test]
fn resume_is_bit_exact_with_congestion_management() {
    // OFAR adds the ring-guard wait state on top of the shared
    // bucket/EWMA machinery but spreads occupancy well enough that its
    // sensors only cross the throttle target around cycle 2800 at this
    // load; VAL congests its randomized middle hops within 750 cycles.
    // Both split mid-overload (deferrals > 0 is asserted).
    assert_cm_resume_bit_exact(MechanismKind::Ofar, 29, 3_000, 600);
    assert_cm_resume_bit_exact(MechanismKind::Valiant, 31, 800, 600);
}

#[test]
fn resume_is_bit_exact_for_par() {
    // PAR is outside paper_set() but carries its own RNG.
    assert_resume_bit_exact(MechanismKind::Par, 23, 500, 500, 2e-5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The split point must not matter: any prefix length n, any
    /// continuation m, any seed.
    #[test]
    fn resume_is_bit_exact_at_any_split(
        seed in 1u64..1_000,
        n in 50u64..900,
        m in 50u64..400,
    ) {
        assert_resume_bit_exact(MechanismKind::Ofar, seed, n, m, 2e-5);
    }

    /// Any single corrupted byte is detected: restore returns a typed
    /// error (no panic) and leaves the target network untouched, proven
    /// by running it on and comparing against an undisturbed twin.
    #[test]
    fn corrupted_byte_is_rejected_and_leaves_network_intact(
        seed in 1u64..100,
        pos_sel in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let mut h = Harness::new(MechanismKind::Ofar, seed, 2e-5, true);
        h.drive(400);
        let mut bytes = h.net.save_snapshot();
        let pos = pos_sel % bytes.len();
        bytes[pos] ^= 1 << bit;

        let mut victim = Harness::new(MechanismKind::Ofar, seed, 2e-5, true);
        victim.drive(100);
        let mut twin = Harness::new(MechanismKind::Ofar, seed, 2e-5, true);
        twin.drive(100);

        let err = victim.net.restore_snapshot(&bytes);
        prop_assert!(err.is_err(), "flip of byte {pos} bit {bit} accepted");
        victim.drive(300);
        twin.drive(300);
        prop_assert_eq!(victim.signature(), twin.signature(),
            "failed restore perturbed the network");
    }
}

#[test]
fn truncation_is_rejected_at_every_length() {
    let mut h = Harness::new(MechanismKind::Ofar, 5, 0.0, false);
    h.drive(200);
    let bytes = h.net.save_snapshot();
    let mut victim = Harness::new(MechanismKind::Ofar, 5, 0.0, false);
    for cut in 0..bytes.len() {
        assert!(
            victim.net.restore_snapshot(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes accepted"
        );
    }
}

#[test]
fn future_format_version_is_refused() {
    let mut h = Harness::new(MechanismKind::Min, 5, 0.0, false);
    h.drive(100);
    let mut bytes = h.net.save_snapshot();
    // Bump the version field (bytes 8..12, after the magic) and patch the
    // whole-file checksum so only the version is wrong.
    let v = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    bytes[8..12].copy_from_slice(&(v + 1).to_le_bytes());
    let body = bytes.len() - 4;
    let fixed = crc32(&bytes[..body]);
    bytes[body..].copy_from_slice(&fixed.to_le_bytes());
    match h.net.restore_snapshot(&bytes) {
        Err(SnapshotError::UnsupportedVersion { found }) => assert_eq!(found, v + 1),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn config_mismatch_is_refused() {
    let mut h = Harness::new(MechanismKind::Ofar, 5, 0.0, false);
    h.drive(100);
    let bytes = h.net.save_snapshot();
    // Same mechanism, different seed — the config fingerprint differs.
    let mut other = Harness::new(MechanismKind::Ofar, 6, 0.0, false);
    match other.net.restore_snapshot(&bytes) {
        Err(SnapshotError::ConfigMismatch { .. }) => {}
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
}

#[test]
fn mechanism_mismatch_is_refused() {
    // VAL and PB adapt SimConfig identically (no ring, same VCs), so the
    // only difference is the mechanism itself.
    let mut h = Harness::new(MechanismKind::Valiant, 5, 0.0, false);
    h.drive(100);
    let bytes = h.net.save_snapshot();
    let mut other = Harness::new(MechanismKind::Pb, 5, 0.0, false);
    match other.net.restore_snapshot(&bytes) {
        Err(SnapshotError::MechanismMismatch { .. }) => {}
        other => panic!("expected MechanismMismatch, got {other:?}"),
    }
}

#[test]
fn garbage_and_empty_files_are_refused() {
    let mut h = Harness::new(MechanismKind::Min, 5, 0.0, false);
    assert!(h.net.restore_snapshot(&[]).is_err());
    assert!(h.net.restore_snapshot(b"not a snapshot at all").is_err());
    let zeros = vec![0u8; 4096];
    assert!(h.net.restore_snapshot(&zeros).is_err());
}

// ---------------------------------------------------------------------
// Snapshot diffing — the primitive the commutativity certifier
// (`ofar-race`) byte-compares epoch snapshots with.
// ---------------------------------------------------------------------

/// Flip one bit of byte 0 in the `idx`-th section's payload (0 =
/// config, 1 = policy, 2 = state) and re-seal the section and file
/// checksums, so the corrupted frame still *parses* — the divergence is
/// visible only to the diff, exactly like a schedule-dependent state
/// difference between two valid runs.
fn flip_bit_in_section(bytes: &[u8], idx: usize) -> Vec<u8> {
    let mut out = bytes.to_vec();
    let mut pos = 16;
    for i in 0..=idx {
        let len = u32::from_le_bytes(out[pos + 1..pos + 5].try_into().unwrap()) as usize;
        if i == idx {
            let payload = pos + 9;
            assert!(len > 0, "section {idx} is empty");
            out[payload] ^= 1;
            let crc = crc32(&out[payload..payload + len]);
            out[pos + 5..pos + 9].copy_from_slice(&crc.to_le_bytes());
            break;
        }
        pos += 9 + len;
    }
    let body = out.len() - 4;
    let fixed = crc32(&out[..body]);
    out[body..].copy_from_slice(&fixed.to_le_bytes());
    out
}

#[test]
fn equal_runs_and_roundtrips_diff_clean() {
    use ofar::engine::diff_snapshots;
    // Two independently-built identical runs must diff to None...
    let mut a = Harness::new(MechanismKind::Ofar, 9, 0.0, false);
    let mut b = Harness::new(MechanismKind::Ofar, 9, 0.0, false);
    a.drive(300);
    b.drive(300);
    let sa = a.net.save_snapshot();
    let sb = b.net.save_snapshot();
    assert_eq!(diff_snapshots(&sa, &sb).unwrap(), None);
    // ...and so must a snapshot taken again after restore (round trip).
    let mut fresh = Harness::new(MechanismKind::Ofar, 9, 0.0, false);
    fresh.net.restore_snapshot(&sa).unwrap();
    let again = fresh.net.save_snapshot();
    assert_eq!(diff_snapshots(&sa, &again).unwrap(), None);
}

#[test]
fn single_bit_flip_names_the_diverging_section() {
    use ofar::engine::diff_snapshots;
    let mut h = Harness::new(MechanismKind::Ofar, 9, 0.0, false);
    h.drive(300);
    let clean = h.net.save_snapshot();
    for (idx, want) in [(0, "config"), (1, "policy"), (2, "state")] {
        let dirty = flip_bit_in_section(&clean, idx);
        let d = diff_snapshots(&clean, &dirty)
            .unwrap()
            .unwrap_or_else(|| panic!("flip in {want} must surface"));
        assert_eq!(d.section, want, "flip in section {idx}");
        assert_eq!(d.offset, 0, "flip was at payload byte 0");
    }
}

#[test]
fn named_diff_resolves_a_state_flip_to_its_field() {
    // Byte 0 of the STATE payload is the cycle counter; the schema
    // walker must name it, and a policy flip must stay opaque-but-
    // attributed. This is the refinement `ofar-race` puts in witnesses.
    let mut h = Harness::new(MechanismKind::Ofar, 9, 0.0, false);
    h.drive(300);
    let clean = h.net.save_snapshot();
    let (d, field) = h
        .net
        .diff_snapshots_named(&clean, &flip_bit_in_section(&clean, 2))
        .unwrap()
        .expect("state flip must surface");
    assert_eq!(d.section, "state");
    assert_eq!(field, "now");
    let (d, field) = h
        .net
        .diff_snapshots_named(&clean, &flip_bit_in_section(&clean, 1))
        .unwrap()
        .expect("policy flip must surface");
    assert_eq!(d.section, "policy");
    assert!(field.contains("offset 0"), "field: {field}");
}
