//! Quantitative cross-checks between simulation and the closed-form
//! bounds of §III, at a scale small enough for debug-mode CI (h = 2:
//! 9 groups, 72 nodes).

use ofar::prelude::*;
use ofar::theory;

fn quick() -> SteadyOpts {
    SteadyOpts {
        warmup: 2_000,
        measure: 3_000,
    }
}

#[test]
fn min_under_adversarial_hits_the_single_channel_bound() {
    let cfg = SimConfig::paper(2);
    let p = steady_state(
        cfg,
        MechanismKind::Min,
        &TrafficSpec::adversarial(2),
        0.8,
        quick(),
        1,
    );
    let bound = theory::min_adversarial_bound(&cfg.params); // 1/8
    assert!(
        p.throughput <= bound * 1.1,
        "MIN ADV throughput {} must respect the 1/(2h²) = {bound} wall",
        p.throughput
    );
    assert!(
        p.throughput >= bound * 0.7,
        "MIN ADV throughput {} suspiciously below the wall {bound}",
        p.throughput
    );
}

#[test]
fn valiant_under_uniform_respects_the_half_bound() {
    let cfg = SimConfig::paper(2);
    let p = steady_state(
        cfg,
        MechanismKind::Valiant,
        &TrafficSpec::uniform(),
        0.9,
        quick(),
        2,
    );
    assert!(
        p.throughput <= theory::valiant_global_bound() + 0.02,
        "VAL UN throughput {} above the ½ global bound",
        p.throughput
    );
    assert!(
        p.throughput > 0.25,
        "VAL UN throughput {} too low",
        p.throughput
    );
}

#[test]
fn min_under_uniform_beats_valiant() {
    let cfg = SimConfig::paper(2);
    let m = steady_state(
        cfg,
        MechanismKind::Min,
        &TrafficSpec::uniform(),
        0.85,
        quick(),
        3,
    );
    let v = steady_state(
        cfg,
        MechanismKind::Valiant,
        &TrafficSpec::uniform(),
        0.85,
        quick(),
        3,
    );
    assert!(
        m.throughput > v.throughput,
        "MIN ({}) must beat VAL ({}) under uniform traffic",
        m.throughput,
        v.throughput
    );
}

#[test]
fn adaptive_mechanisms_beat_min_under_adversarial() {
    let cfg = SimConfig::paper(2);
    let spec = TrafficSpec::adversarial(2);
    let m = steady_state(cfg, MechanismKind::Min, &spec, 0.4, quick(), 4);
    for kind in [MechanismKind::Pb, MechanismKind::Ofar, MechanismKind::OfarL] {
        let a = steady_state(cfg, kind, &spec, 0.4, quick(), 4);
        assert!(
            a.throughput > 1.5 * m.throughput,
            "{kind} ({}) must clearly beat MIN ({}) under ADV",
            a.throughput,
            m.throughput
        );
    }
}

#[test]
fn ofar_matches_offered_load_below_saturation() {
    let cfg = SimConfig::paper(2);
    for load in [0.1, 0.2, 0.3] {
        let p = steady_state(
            cfg,
            MechanismKind::Ofar,
            &TrafficSpec::adversarial(2),
            load,
            quick(),
            5,
        );
        assert!(
            (p.throughput - load).abs() < 0.02,
            "OFAR below saturation must accept offered {load}, got {}",
            p.throughput
        );
    }
}

#[test]
fn analytic_estimate_tracks_simulated_fig2b_ordering() {
    // The simulated VAL saturation throughput ordering across offsets
    // must match the analytic l2-concentration estimate: ADV+1 easy,
    // ADV+h hard.
    let cfg = SimConfig::paper(2);
    let easy = steady_state(
        cfg,
        MechanismKind::Valiant,
        &TrafficSpec::adversarial(1),
        1.0,
        quick(),
        6,
    );
    let hard = steady_state(
        cfg,
        MechanismKind::Valiant,
        &TrafficSpec::adversarial(2),
        1.0,
        quick(),
        6,
    );
    let e_easy = theory::valiant_adv_estimate(&cfg.params, 1);
    let e_hard = theory::valiant_adv_estimate(&cfg.params, 2);
    assert!(e_hard <= e_easy);
    assert!(
        hard.throughput <= easy.throughput * 1.05,
        "ADV+h ({}) cannot beat ADV+1 ({}) under VAL",
        hard.throughput,
        easy.throughput
    );
}
