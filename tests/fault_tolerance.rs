//! §VII fault tolerance, end to end: with `k = h` embedded escape rings,
//! OFAR keeps delivering every packet while up to `h − 1` random global
//! links die under it; a deliberately partitioned network is *diagnosed*
//! (structured [`StallKind::Partition`]) instead of hanging or being
//! mislabelled a routing deadlock.

use ofar::prelude::*;
use ofar::{RunConfig, StallKind};

/// OFAR under ADV+h with `h − 1` random global links failing mid-burst:
/// every packet must still be delivered, with no watchdog verdict.
#[test]
fn ofar_delivers_fully_with_h_minus_one_failed_links() {
    for h in [2usize, 3] {
        let mut cfg = SimConfig::paper(h);
        cfg.escape_rings = h; // the full edge-disjoint ring family
        let topo = Dragonfly::new(cfg.params);
        let packets_per_node = 3;
        let plan = FaultPlan::random_global_failures(&topo, h - 1, 150, 0xF00D + h as u64);
        let r = burst_faulted(
            cfg,
            MechanismKind::Ofar,
            &TrafficSpec::adversarial(h),
            packets_per_node,
            17,
            plan,
            RunConfig::default(),
        );
        assert_eq!(r.stall, None, "h={h}: watchdog fired: {:?}", r.stall);
        assert!(r.cycles.is_some(), "h={h}: burst did not drain");
        assert_eq!(
            r.delivered,
            (topo.num_nodes() * packets_per_node) as u64,
            "h={h}: lost packets on a connected degraded network"
        );
    }
}

/// Killing every global link of group 0 isolates it. The run must end
/// with a `Partition` verdict naming undeliverable pairs — not hang, and
/// not be written off as a routing deadlock.
#[test]
fn isolated_group_is_reported_as_partition() {
    let h = 2;
    let mut cfg = SimConfig::paper(h);
    cfg.escape_rings = h;
    let topo = Dragonfly::new(cfg.params);
    let a = topo.routers_per_group();
    let mut plan = FaultPlan::default();
    for i in 0..a {
        let r = RouterId::from(i);
        for k in 0..h {
            let (peer, _) = topo.global_neighbor(r, k);
            plan = plan.fail_link_at(0, r, peer);
        }
    }
    let r = burst_faulted(
        cfg,
        MechanismKind::Ofar,
        &TrafficSpec::adversarial(h),
        2,
        23,
        plan,
        // small window: the verdict is the point, not the wait
        RunConfig {
            watchdog: Some(1_500),
        },
    );
    assert_eq!(r.cycles, None, "a partitioned burst cannot drain");
    match r.stall {
        Some(StallKind::Partition {
            ref unreachable_pairs,
        }) => {
            assert!(
                !unreachable_pairs.is_empty(),
                "partition verdict must name undeliverable pairs"
            );
            // every reported pair straddles the cut around group 0
            for &(src, dst) in unreachable_pairs {
                let gs = topo.group_of(topo.router_of_node(src)).idx();
                let gd = topo.group_of(topo.router_of_node(dst)).idx();
                assert!(
                    (gs == 0) != (gd == 0),
                    "pair {src:?}→{dst:?} does not cross the group-0 cut"
                );
            }
        }
        ref other => panic!("expected a partition verdict, got {other:?}"),
    }
}

/// A link whose error rate pins at 100% can never complete a transfer:
/// the link layer must exhaust its retry budget, escalate the link to
/// the §VII fail-stop machinery, and let degraded routing finish the
/// job — every packet still delivered exactly once, no watchdog verdict.
#[test]
fn hopeless_link_escalates_to_fail_stop_and_burst_drains() {
    let h = 2;
    let mut cfg = SimConfig::paper(h);
    cfg.escape_rings = h;
    // An impatient link layer: a short retry budget and a tight backoff
    // cap so the hopeless link is condemned long before the progress
    // watchdog would fire (at the defaults, the capped timeout alone is
    // ~6k cycles per late retry).
    cfg.llr_retry_budget = 8;
    cfg.llr_backoff_cap = 2;
    let topo = Dragonfly::new(cfg.params);
    let link = random_global_links(&topo, 1, 11)[0];
    // ppm = 1_000_000: every phit of every transfer on this link errors.
    let plan = FaultPlan::default().set_link_ber_at(0, link.0, link.1, 1_000_000);
    let r = burst_faulted(
        cfg,
        MechanismKind::Ofar,
        &TrafficSpec::adversarial(h),
        3,
        29,
        plan,
        RunConfig::default(),
    );
    assert_eq!(r.stall, None, "degraded routing must finish: {:?}", r.stall);
    assert_eq!(
        r.delivered,
        (topo.num_nodes() * 3) as u64,
        "lost packets after escalation"
    );
    assert!(
        r.stats.llr_escalations >= 1,
        "the hopeless link must be escalated: {:?}",
        r.stats
    );
    assert!(
        r.stats.link_failures >= 1,
        "escalation must reach the fail-stop machinery"
    );
    assert_eq!(r.stats.duplicate_deliveries, 0);
}

/// A network-wide error rate so high that goodput collapses is a
/// *retransmission storm*: links are alive and the wires are busy, so
/// the verdict must name the offending links and the retry count — not
/// call it a deadlock (nothing is cyclically blocked) or a partition.
#[test]
fn network_wide_noise_is_diagnosed_as_retransmission_storm() {
    let h = 2;
    let mut cfg = SimConfig::paper(h).with_ber(0.9);
    // A budget the storm cannot exhaust inside the watchdog window, so
    // no link escapes into fail-stop and the storm stays a storm.
    cfg.llr_retry_budget = 1_000_000;
    let topo = Dragonfly::new(cfg.params);
    let r = burst_faulted(
        cfg,
        MechanismKind::Min,
        &TrafficSpec::uniform(),
        2,
        37,
        FaultPlan::default(),
        // small window: the verdict is the point, not the wait
        RunConfig {
            watchdog: Some(2_000),
        },
    );
    assert_eq!(r.cycles, None, "a 90% BER burst cannot drain");
    assert!(
        r.delivered < (topo.num_nodes() * 2) as u64,
        "goodput should have collapsed"
    );
    match r.stall {
        Some(StallKind::RetransmissionStorm {
            ref links,
            retransmits,
        }) => {
            assert!(!links.is_empty(), "storm verdict must name links");
            assert!(retransmits >= 64, "storm verdict needs real retries");
            assert!(
                links.windows(2).all(|w| w[0].2 >= w[1].2),
                "links must be sorted worst-first: {links:?}"
            );
        }
        ref other => panic!("expected a retransmission storm, got {other:?}"),
    }
}

/// A transient failure (link dies, then is repaired) must heal: the
/// burst drains fully once the link returns, even for oblivious MIN
/// whose packets just wait out the outage.
#[test]
fn transient_failure_heals_and_drains() {
    let h = 2;
    let cfg = SimConfig::paper(h);
    let topo = Dragonfly::new(cfg.params);
    let link = random_global_links(&topo, 1, 7)[0];
    let plan = FaultPlan::default().transient_link(100, 2_000, link.0, link.1);
    let r = burst_faulted(
        cfg,
        MechanismKind::Min,
        &TrafficSpec::uniform(),
        2,
        31,
        plan,
        RunConfig::default(),
    );
    assert_eq!(r.stall, None, "repaired network must drain: {:?}", r.stall);
    assert_eq!(r.delivered, (topo.num_nodes() * 2) as u64);
}
