//! Post-saturation stability regressions: the overload-robustness bar.
//!
//! The paper's figures stop at the saturation knee; these tests drive
//! OFAR and Piggybacking **2× past** their own measured saturation
//! throughput with the congestion-management layer enabled and pin the
//! issue's stability guarantees: no watchdog stall, ≥90% throughput
//! retention, a finite delivered-latency tail, and — property-tested
//! over the whole valid CM parameter space — full drainage once the
//! offered load drops back below saturation.

use ofar::prelude::*;
use proptest::prelude::*;

/// Shortened windows (same shape as the library's own overload tests):
/// long enough past the knee for the token buckets and the ring guard
/// to engage, short enough for a debug-mode test run.
fn quick() -> OverloadOpts {
    OverloadOpts {
        sat: SteadyOpts {
            warmup: 800,
            measure: 1_500,
        },
        warmup: 800,
        measure: 2_500,
        ..OverloadOpts::default()
    }
}

fn assert_stable(p: &OverloadPoint) {
    assert!(p.cm, "the stability claim is the CM-enabled half");
    assert!(p.saturation > 0.0);
    assert!(
        p.offered > p.saturation,
        "overload segment must actually exceed saturation: {p:?}"
    );
    assert!(
        p.stable(0.9),
        "{} must retain ≥90% of saturation at 2× with CM on: {p:?}",
        p.mechanism.name()
    );
    assert!(p.stall.is_none(), "post-saturation stall: {:?}", p.stall);
    // The latency tail of packets generated past the knee is bounded:
    // finite, positive, and inside the overload segment itself (an
    // unbounded tail would show up as p99 pinned at the segment length).
    let segment = 800.0 + 2_500.0;
    assert!(
        p.p99_latency > 0.0 && p.p99_latency < segment,
        "p99 latency must stay inside the overload segment: {p:?}"
    );
    assert!(p.jain > 0.0 && p.jain <= 1.0 + 1e-12);
}

#[test]
fn ofar_is_stable_2x_past_saturation_under_adversarial_traffic() {
    let p = overload_point(
        SimConfig::paper(2).with_cm(),
        MechanismKind::Ofar,
        &TrafficSpec::adversarial(1),
        quick(),
        11,
    );
    assert_stable(&p);
    // ADV+1 pushes OFAR onto the escape ring; the guarded ring must
    // still be admitting (protection defers entry, never denies it).
    assert!(p.ring_entries > 0, "guarded ring must still admit: {p:?}");
}

#[test]
fn pb_is_stable_2x_past_saturation_under_adversarial_traffic() {
    let p = overload_point(
        SimConfig::paper(2).with_cm(),
        MechanismKind::Pb,
        &TrafficSpec::adversarial(1),
        quick(),
        13,
    );
    assert_stable(&p);
}

/// Drive an overload pulse through a CM-enabled OFAR network, then drop
/// the offered load below saturation and require the backlog to drain
/// completely: every generated packet delivered, no progress stall, and
/// a balanced credit ledger at the end.
fn pulse_then_drain(cfg: SimConfig, seed: u64) -> proptest::TestCaseResult {
    let kind = MechanismKind::Ofar;
    let cfg = kind.adapt_config(cfg);
    prop_assert!(cfg.validate().is_ok(), "sampled CM config must be valid");
    let mut net = Network::new(cfg, kind.build(&cfg, seed));
    let topo = Dragonfly::new(cfg.params);
    let mut gen = TrafficGen::new(&topo, TrafficSpec::adversarial(1), seed + 1);
    let nodes = net.num_nodes();
    let watchdog = derive_watchdog(&cfg);

    // Phase 1 — overload: 0.9 phits/(node·cycle) is ~2× OFAR's ADV+1
    // saturation at h=2, far past any sampled throttle target.
    let mut bern = Bernoulli::new(0.9, cfg.packet_size, seed + 2);
    for _ in 0..1_000 {
        bern.cycle(nodes, |src| {
            let dst = gen.destination(src);
            net.generate(src, dst);
        });
        net.step();
    }

    // Phase 2 — back below saturation: a trickle the network can absorb
    // while it works off the phase-1 backlog.
    let mut bern = Bernoulli::new(0.05, cfg.packet_size, seed + 3);
    for _ in 0..1_000 {
        bern.cycle(nodes, |src| {
            let dst = gen.destination(src);
            net.generate(src, dst);
        });
        net.step();
    }

    // Phase 3 — drain to empty. Progress is watchdog-bounded: even the
    // slowest sampled throttle floor (`cm_min_rate`) must keep packets
    // flowing, and the hysteresis release must eventually restore full
    // rate as occupancy decays.
    let deadline = net.now() + 100_000;
    let mut last_delivered = net.stats().delivered_packets;
    let mut last_at = net.now();
    while net.stats().delivered_packets < net.stats().generated_packets {
        net.step();
        let d = net.stats().delivered_packets;
        if d > last_delivered {
            last_delivered = d;
            last_at = net.now();
        }
        prop_assert!(
            net.now() - last_at <= 8 * watchdog,
            "delivery stalled during post-overload drain at cycle {} \
             ({} of {} delivered)",
            net.now(),
            last_delivered,
            net.stats().generated_packets
        );
        prop_assert!(
            net.now() < deadline,
            "backlog failed to drain within the deadline ({} of {})",
            last_delivered,
            net.stats().generated_packets
        );
    }
    prop_assert_eq!(net.stats().delivered_packets, net.stats().generated_packets);
    prop_assert_eq!(net.phits_in_system(), 0);
    net.check_credit_conservation();
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Any valid CM configuration — throttle target, hysteresis band and
    /// rate floor sampled across their whole legal ranges — never
    /// deadlocks and delivers every packet once the offered load drops
    /// back below saturation. (Sampled as integer percentages: the
    /// vendored proptest shim only carries integer range strategies.)
    #[test]
    fn any_valid_cm_config_drains_after_overload(
        target_pct in 5u32..95,
        hyst_pct in 0u32..95,
        min_rate_pct in 2u32..80,
        seed in 1u64..1_000,
    ) {
        let mut cfg = SimConfig::paper(2).with_seed(seed).with_cm();
        cfg.cm_target_occupancy = f64::from(target_pct) / 100.0;
        // `hysteresis < target` by construction, so every sampled point
        // is a *valid* configuration (the release threshold stays
        // positive and recovery is always reachable).
        cfg.cm_hysteresis = cfg.cm_target_occupancy * f64::from(hyst_pct) / 100.0;
        cfg.cm_min_rate = f64::from(min_rate_pct) / 100.0;
        pulse_then_drain(cfg, seed)?;
    }
}
