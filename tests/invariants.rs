//! Cross-crate conservation invariants: whatever the mechanism, traffic
//! pattern or escape-ring model, the simulator must neither create nor
//! destroy phits, and the credit ledger of every link must balance.

use ofar::prelude::*;

fn drive(
    kind: MechanismKind,
    spec: TrafficSpec,
    ring: RingMode,
    load: f64,
    cycles: u64,
    seed: u64,
) -> Network<Mechanism> {
    let mut cfg = SimConfig::paper(2).with_seed(seed);
    cfg.ring = ring;
    let cfg = kind.adapt_config(cfg);
    let mut net = Network::new(cfg, kind.build(&cfg, seed));
    let topo = Dragonfly::new(cfg.params);
    let mut gen = TrafficGen::new(&topo, spec, seed + 1);
    let mut bern = Bernoulli::new(load, cfg.packet_size, seed + 2);
    let nodes = net.num_nodes();
    for _ in 0..cycles {
        bern.cycle(nodes, |src| {
            let dst = gen.destination(src);
            net.generate(src, dst);
        });
        net.step();
    }
    net
}

fn assert_conservation(net: &Network<Mechanism>) {
    let size = net.cfg().packet_size as u64;
    let s = net.stats();
    assert_eq!(
        s.generated_packets * size,
        s.delivered_phits + net.phits_in_system(),
        "phit conservation violated for {}",
        net.policy().name()
    );
    net.check_credit_conservation();
}

#[test]
fn conservation_holds_for_every_mechanism_under_uniform_load() {
    for kind in MechanismKind::paper_set() {
        let net = drive(kind, TrafficSpec::uniform(), RingMode::None, 0.3, 2_000, 1);
        assert_conservation(&net);
        assert!(net.stats().delivered_packets > 0, "{kind} made no progress");
    }
}

#[test]
fn conservation_holds_under_adversarial_saturation() {
    for kind in MechanismKind::paper_set() {
        let net = drive(
            kind,
            TrafficSpec::adversarial(2),
            RingMode::None,
            0.8,
            2_500,
            2,
        );
        assert_conservation(&net);
    }
}

#[test]
fn conservation_holds_with_physical_ring() {
    for kind in [MechanismKind::Ofar, MechanismKind::OfarL] {
        let net = drive(
            kind,
            TrafficSpec::adversarial(2),
            RingMode::Physical,
            0.6,
            2_500,
            3,
        );
        assert_conservation(&net);
    }
}

#[test]
fn conservation_holds_with_reduced_vcs() {
    // The Fig. 9 configuration exercises the escape ring hard.
    let cfg = SimConfig::reduced_vcs(2).with_seed(9);
    let kind = MechanismKind::Ofar;
    let mut net = Network::new(cfg, kind.build(&cfg, 9));
    let topo = Dragonfly::new(cfg.params);
    let mut gen = TrafficGen::new(&topo, TrafficSpec::adversarial(2), 10);
    let mut bern = Bernoulli::new(0.7, cfg.packet_size, 11);
    let nodes = net.num_nodes();
    for _ in 0..3_000 {
        bern.cycle(nodes, |src| {
            let dst = gen.destination(src);
            net.generate(src, dst);
        });
        net.step();
    }
    let size = net.cfg().packet_size as u64;
    assert_eq!(
        net.stats().generated_packets * size,
        net.stats().delivered_phits + net.phits_in_system()
    );
    net.check_credit_conservation();
}

#[test]
fn conservation_holds_for_mixes_and_par() {
    let net = drive(
        MechanismKind::Par,
        TrafficSpec::mix3(2),
        RingMode::None,
        0.5,
        2_000,
        4,
    );
    assert_conservation(&net);
    let net = drive(
        MechanismKind::Ofar,
        TrafficSpec::mix1(2),
        RingMode::None,
        0.5,
        2_000,
        5,
    );
    assert_conservation(&net);
}

#[test]
fn draining_returns_every_packet() {
    for kind in MechanismKind::paper_set() {
        let mut net = drive(kind, TrafficSpec::uniform(), RingMode::None, 0.2, 800, 6);
        let generated = net.stats().generated_packets;
        let mut guard = 0;
        while !net.drained() {
            net.step();
            guard += 1;
            assert!(guard < 100_000, "{kind} failed to drain");
        }
        assert_eq!(net.stats().delivered_packets, generated);
        assert_eq!(net.phits_in_system(), 0);
        net.check_credit_conservation();
    }
}
