//! Routing correctness across mechanisms: packets reach their exact
//! destinations within the mechanism's hop budget, misroute header flags
//! bound non-minimal hops (§IV-A), and the escape ring is used only by
//! the mechanisms that own one.

use ofar::prelude::*;

/// Run `cycles` of Bernoulli traffic and return the network.
fn run(
    kind: MechanismKind,
    spec: TrafficSpec,
    load: f64,
    cycles: u64,
    seed: u64,
) -> Network<Mechanism> {
    let cfg = kind.adapt_config(SimConfig::paper(2).with_seed(seed));
    let mut net = Network::new(cfg, kind.build(&cfg, seed));
    let topo = Dragonfly::new(cfg.params);
    let mut gen = TrafficGen::new(&topo, spec, seed + 1);
    let mut bern = Bernoulli::new(load, cfg.packet_size, seed + 2);
    let nodes = net.num_nodes();
    for _ in 0..cycles {
        bern.cycle(nodes, |src| {
            let dst = gen.destination(src);
            net.generate(src, dst);
        });
        net.step();
    }
    net
}

#[test]
fn min_stays_within_three_hops() {
    let net = run(MechanismKind::Min, TrafficSpec::uniform(), 0.3, 3_000, 1);
    let s = net.stats();
    assert!(s.delivered_packets > 1_000);
    // Mean ≤ 3 and zero misroutes ⇒ every path was minimal (the engine's
    // ejection assertion already guarantees the right destination).
    assert!(s.avg_hops() <= 3.0 + 1e-9, "MIN avg hops {}", s.avg_hops());
    assert_eq!(s.local_misroutes + s.global_misroutes, 0);
    assert_eq!(s.ring_entries, 0);
}

#[test]
fn valiant_stays_within_five_hops_and_two_globals() {
    let net = run(
        MechanismKind::Valiant,
        TrafficSpec::adversarial(3),
        0.3,
        3_000,
        2,
    );
    let s = net.stats();
    assert!(s.delivered_packets > 1_000);
    assert!(s.avg_hops() <= 5.0 + 1e-9, "VAL avg hops {}", s.avg_hops());
    // inter-group ADV traffic under VAL averages > 3 hops (it always
    // detours)
    assert!(s.avg_hops() > 3.0, "VAL must detour, got {}", s.avg_hops());
}

#[test]
fn ofar_canonical_hops_bounded_by_eight() {
    // The engine debug-asserts local ≤ 6 and global ≤ 2 per packet at
    // ejection; here we double-check the aggregate under pressure.
    let net = run(
        MechanismKind::Ofar,
        TrafficSpec::adversarial(2),
        0.7,
        4_000,
        3,
    );
    let s = net.stats();
    assert!(s.delivered_packets > 1_000);
    assert!(s.avg_hops() <= 8.0, "OFAR avg hops {}", s.avg_hops());
    assert!(
        s.global_misroutes > 0,
        "OFAR must misroute globally under ADV"
    );
}

#[test]
fn ofar_l_takes_no_local_misroutes_ever() {
    for (spec, seed) in [
        (TrafficSpec::uniform(), 4u64),
        (TrafficSpec::adversarial(2), 5),
        (TrafficSpec::mix2(2), 6),
    ] {
        let net = run(MechanismKind::OfarL, spec, 0.6, 3_000, seed);
        assert_eq!(net.stats().local_misroutes, 0);
    }
}

#[test]
fn vc_ordered_mechanisms_never_touch_the_ring() {
    for kind in [
        MechanismKind::Min,
        MechanismKind::Valiant,
        MechanismKind::Pb,
    ] {
        let net = run(kind, TrafficSpec::adversarial(2), 0.7, 2_000, 7);
        let s = net.stats();
        assert_eq!(s.ring_entries, 0, "{kind} used a ring it does not have");
        assert_eq!(s.ring_advances, 0);
        assert_eq!(s.ring_exits, 0);
    }
}

#[test]
fn intra_group_traffic_never_leaves_the_group() {
    // ADV+0-like pattern: destinations within the source group. No
    // global hops should ever be taken by any mechanism (OFAR's global
    // misroute is barred for internal traffic, §IV-A).
    for kind in MechanismKind::paper_set() {
        let cfg = kind.adapt_config(SimConfig::paper(2).with_seed(8));
        let mut net = Network::new(cfg, kind.build(&cfg, 8));
        let _topo = Dragonfly::new(cfg.params);
        let per_group = cfg.params.a * cfg.params.p;
        for cycle in 0..1_500u64 {
            if cycle % 4 == 0 {
                for n in 0..net.num_nodes() {
                    let group_base = n / per_group * per_group;
                    let dst = group_base + (n - group_base + 7) % per_group;
                    if dst != n {
                        net.generate(NodeId::from(n), NodeId::from(dst));
                    }
                }
            }
            net.step();
        }
        let s = net.stats();
        assert!(s.delivered_packets > 500, "{kind} delivered too little");
        assert_eq!(
            s.global_misroutes, 0,
            "{kind} misrouted intra-group traffic globally"
        );
        // mean hops ≤ 2 (one local hop, or two with a local misroute)
        assert!(s.avg_hops() <= 2.0, "{kind} avg hops {}", s.avg_hops());
    }
}

#[test]
fn per_mechanism_names_survive_the_network() {
    for kind in MechanismKind::paper_set() {
        let cfg = kind.adapt_config(SimConfig::paper(2));
        let net = Network::new(cfg, kind.build(&cfg, 0));
        assert_eq!(net.policy().name(), kind.name());
    }
}
