//! `ofar-sim` — command-line front end to the simulator.
//!
//! ```text
//! ofar-sim [OPTIONS]
//!
//!   --mech <MIN|VAL|PB|PAR|OFAR|OFAR-L>   routing mechanism   [OFAR]
//!   --pattern <UN|ADV+<n>|MIX1|MIX2|MIX3> traffic pattern     [UN]
//!   --load <f>            offered load, phits/(node·cycle)    [0.3]
//!   --h <n>               Dragonfly h (balanced max-size)     [2]
//!   --warmup <cycles>                                         [3000]
//!   --measure <cycles>                                        [5000]
//!   --ring <none|physical|embedded>   escape model  [per mechanism]
//!   --rings <k>           number of escape rings              [1]
//!   --seed <n>                                                [42]
//!   --ber <f>             per-phit link bit-error rate        [0]
//!   --burst <pkts/node>   burst mode instead of steady state
//!   --conformance         run the routing-conformance checker and exit
//!   --replay <snapshot>   restore a snapshot (e.g. a post-mortem stall
//!                         dump) and trace its final cycles
//!   --cycles <n>          cycles to replay                     [2000]
//! ```
//!
//! A nonzero `--ber` enables the link-level retransmission layer
//! (DESIGN §9); burst mode then also reports the retry counters.

use ofar::prelude::*;
use std::process::exit;

struct Args(Vec<String>);

impl Args {
    fn get(&self, flag: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn parse<T: std::str::FromStr>(&self, flag: &str, default: T) -> T {
        match self.get(flag) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for {flag}: {v}");
                exit(2);
            }),
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "{}",
            include_str!("ofar-sim.rs")
                .lines()
                .skip(2)
                .take(19)
                .map(|l| l.trim_start_matches("//! "))
                .collect::<Vec<_>>()
                .join("\n")
        );
        return;
    }
    let args = Args(argv);

    if let Some(path) = args.get("--replay") {
        let cycles: u64 = args.parse("--cycles", 2_000);
        let rep = match replay_snapshot(std::path::Path::new(path), cycles) {
            Ok(rep) => rep,
            Err(e) => {
                eprintln!("cannot replay {path}: {e}");
                exit(1);
            }
        };
        eprintln!(
            "{} snapshot taken at cycle {}; replaying up to {cycles} cycles",
            rep.mechanism, rep.start_cycle
        );
        for t in &rep.trace {
            println!(
                "cycle {:>8}  delivered {:>3}  retx {:>3}  granted {}  in-flight {}",
                t.cycle,
                t.delivered,
                t.retransmits,
                if t.granted { "yes" } else { " no" },
                t.in_flight
            );
        }
        println!(
            "replay ended at cycle {} ({}; {} delivered total)",
            rep.end_cycle,
            if rep.drained {
                "drained"
            } else {
                "still stuck"
            },
            rep.stats.delivered_packets
        );
        if let Some(audit) = &rep.audit {
            println!("audit: {audit}");
        }
        return;
    }

    let kind = match args.get("--mech").unwrap_or("OFAR") {
        "MIN" => MechanismKind::Min,
        "VAL" => MechanismKind::Valiant,
        "PB" => MechanismKind::Pb,
        "PAR" => MechanismKind::Par,
        "OFAR" => MechanismKind::Ofar,
        "OFAR-L" => MechanismKind::OfarL,
        other => {
            eprintln!("unknown mechanism {other}");
            exit(2);
        }
    };
    let h: usize = args.parse("--h", 2);
    let seed: u64 = args.parse("--seed", 42);
    let mut cfg = SimConfig::paper(h).with_seed(seed);
    cfg.ber = args.parse("--ber", 0.0);
    cfg.escape_rings = args.parse("--rings", 1);
    match args.get("--ring") {
        Some("none") => cfg.ring = RingMode::None,
        Some("physical") => cfg.ring = RingMode::Physical,
        Some("embedded") => cfg.ring = RingMode::Embedded,
        Some(other) => {
            eprintln!("unknown ring model {other}");
            exit(2);
        }
        None => {}
    }
    let cfg = kind.adapt_config(cfg);

    if args.0.iter().any(|a| a == "--conformance") {
        match conformance(&cfg, kind) {
            Ok(rep) => {
                println!("{rep}");
                for d in &rep.dead {
                    println!(
                        "  dead declared transition: {} -> {} ({:?})",
                        d.from, d.to, d.why
                    );
                }
            }
            Err(e) => {
                println!("{}: NON-CONFORMANT — {e}", kind.name());
                exit(1);
            }
        }
        return;
    }

    let pattern = args.get("--pattern").unwrap_or("UN");
    let spec = match pattern {
        "UN" => TrafficSpec::uniform(),
        "MIX1" => TrafficSpec::mix1(h),
        "MIX2" => TrafficSpec::mix2(h),
        "MIX3" => TrafficSpec::mix3(h),
        s if s.starts_with("ADV+") => match s[4..].parse() {
            Ok(n) => TrafficSpec::adversarial(n),
            Err(_) => {
                eprintln!("bad ADV offset in {s}");
                exit(2);
            }
        },
        other => {
            eprintln!("unknown pattern {other}");
            exit(2);
        }
    };

    eprintln!(
        "{} on h={h} ({} nodes), {} traffic, ring {:?} ×{}",
        kind.name(),
        cfg.params.nodes(),
        spec.label(),
        cfg.ring,
        cfg.escape_rings,
    );

    if let Some(ppn) = args.get("--burst") {
        let ppn: usize = ppn.parse().unwrap_or_else(|_| {
            eprintln!("bad burst size");
            exit(2);
        });
        let r = burst(cfg, kind, &spec, ppn, seed);
        match r.cycles {
            Some(c) => {
                println!(
                    "burst of {ppn} pkts/node drained in {c} cycles (avg latency {:.1}, p99 {:.0}, {} ring entries)",
                    r.avg_latency, r.p99_latency, r.ring_entries
                );
                if cfg.ber > 0.0 {
                    println!(
                        "link layer: {} retransmits ({} crc drops, {} wire drops), {} escalations, {} duplicates",
                        r.stats.llr_retransmits,
                        r.stats.llr_crc_drops,
                        r.stats.llr_wire_drops,
                        r.stats.llr_escalations,
                        r.stats.duplicate_deliveries,
                    );
                }
            }
            None => {
                println!("STALLED after {} deliveries: {:?}", r.delivered, r.stall);
                exit(1);
            }
        }
        return;
    }

    let load: f64 = args.parse("--load", 0.3);
    let opts = SteadyOpts {
        warmup: args.parse("--warmup", 3_000),
        measure: args.parse("--measure", 5_000),
    };
    let p = steady_state(cfg, kind, &spec, load, opts, seed);
    println!(
        "offered {:.3}  accepted {:.4}  latency {:.1} cycles  hops {:.2}  misroutes/pkt {:.3}  ring entries {}",
        p.load, p.throughput, p.avg_latency, p.avg_hops, p.misroute_rate, p.ring_entries
    );
}
