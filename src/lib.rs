//! # ofar — On-the-Fly Adaptive Routing for Dragonfly networks
//!
//! A full, from-scratch reproduction of M. García et al., *"On-the-Fly
//! Adaptive Routing in High-Radix Hierarchical Networks"*, ICPP 2012:
//!
//! * the Dragonfly topology with the palmtree global arrangement and
//!   Hamiltonian escape rings ([`topology`]);
//! * a cycle-accurate input-buffered VCT router/network simulator with
//!   credit flow control and an iterative separable LRS allocator
//!   ([`engine`]);
//! * the routing mechanisms MIN, VAL, PB, PAR, **OFAR** and **OFAR-L**
//!   ([`routing`]);
//! * the synthetic traffic models UN, ADV+N and the paper's mixes
//!   ([`traffic`]);
//! * experiment runners and per-figure regeneration harnesses
//!   ([`experiments`]).
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for paper-vs-measured results. The `examples/`
//! directory contains runnable walkthroughs; `crates/bench` regenerates
//! every figure of the paper.
//!
//! ```
//! use ofar::prelude::*;
//!
//! let cfg = SimConfig::paper(2); // h = 2: 9 groups, 72 nodes
//! let opts = SteadyOpts { warmup: 1_000, measure: 2_000 };
//! let ofar = steady_state(
//!     cfg,
//!     MechanismKind::Ofar,
//!     &TrafficSpec::adversarial(2),
//!     0.25,
//!     opts,
//!     1,
//! );
//! assert!(ofar.throughput > 0.15);
//! ```

pub use ofar_core::*;

/// Convenience prelude (re-export of [`ofar_core::prelude`]).
pub mod prelude {
    pub use ofar_core::prelude::*;
}
