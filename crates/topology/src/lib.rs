//! # ofar-topology
//!
//! Dragonfly topology substrate for the OFAR reproduction (García et al.,
//! ICPP 2012, §I and Fig. 1).
//!
//! A Dragonfly is a two-level hierarchical direct network:
//!
//! * **Groups** of `a` routers, fully connected by *local* links (one link
//!   between every pair of routers of a group).
//! * Groups fully connected by *global* links (exactly one link between
//!   every pair of groups).
//! * Each router attaches `p` compute nodes and `h` global links.
//!
//! For the balanced, maximum-size network of the paper, `a = 2h`, `p = h`,
//! and the number of groups is `g = a·h + 1 = 2h² + 1`, giving `4h³ + 2h`
//! routers and `4h⁴ + 2h²` compute nodes with `4h − 1` ports per router.
//!
//! The global link *arrangement* follows the consecutive ("palmtree")
//! wiring of the paper's Fig. 1: router `r` of a group hosts the links to
//! the groups at offsets `r·h + 1 ..= r·h + h`. This arrangement is what
//! concentrates the misrouted traffic of the ADV+h pattern onto single
//! local links (§III), which is the phenomenon OFAR's local misrouting
//! addresses.
//!
//! The crate also builds the **Hamiltonian escape rings** used by OFAR's
//! deadlock-free escape subnetwork (§IV-C), including the edge-disjoint
//! multi-ring embedding sketched as future work in §VII.

#![warn(missing_docs)]

pub mod dragonfly;
pub mod ids;
pub mod params;
pub mod ring;
pub mod route;

pub use dragonfly::{Dragonfly, GlobalLink, LinkKind};
pub use ids::{GroupId, NodeId, RouterId};
pub use params::DragonflyParams;
pub use ring::{HamiltonianRing, RingEdge};
pub use route::{MinimalHop, RoutePhase};
