//! Hamiltonian escape rings (§IV-C, §VII).
//!
//! OFAR avoids deadlock with a deadlock-free *escape subnetwork*: a
//! Hamiltonian ring over all routers, managed with bubble flow control.
//! The ring can be **physical** (two extra ports per router) or
//! **embedded** (an extra virtual channel on the local/global links that
//! form a Hamiltonian cycle of the base topology).
//!
//! §VII sketches, as future work, that up to `h` *edge-disjoint*
//! Hamiltonian rings can be embedded for fault tolerance. This module
//! implements that embedding constructively:
//!
//! * Ring `i` steps between groups with a fixed offset taken from the
//!   block `i·h + 1 ..= i·h + h`, choosing one coprime with the number of
//!   groups so the group-level cycle is Hamiltonian. Distinct blocks use
//!   distinct global links, and since all offsets are `≤ a·h/2`, no two
//!   rings can pick the two directions of the same physical link.
//! * Inside each group, ring `i` follows the image of the classic Walecki
//!   decomposition of `K_a` (`a` even) into `a/2` edge-disjoint
//!   Hamiltonian paths, relabelled so that path `i` connects the group's
//!   ring-entry router (`a − 1 − i`) to its ring-exit router (`i`).
//!
//! Both properties (spanning cycle over real links; pairwise edge
//! disjointness) are re-checked by `validate`/tests rather than trusted.

use crate::dragonfly::Dragonfly;
use crate::ids::RouterId;

/// One directed step of an embedded ring: the physical output port of
/// `from` that the ring uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RingEdge {
    /// Local link: `from`'s local port `port`.
    Local {
        /// Router the edge departs from.
        from: RouterId,
        /// Local port index at `from`.
        port: usize,
    },
    /// Global link: `from`'s global port `port`.
    Global {
        /// Router the edge departs from.
        from: RouterId,
        /// Global port index at `from`.
        port: usize,
    },
}

impl RingEdge {
    /// The router this edge departs from.
    pub fn from(&self) -> RouterId {
        match *self {
            RingEdge::Local { from, .. } | RingEdge::Global { from, .. } => from,
        }
    }

    /// Resolve the router this edge arrives at.
    pub fn to(&self, topo: &Dragonfly) -> RouterId {
        match *self {
            RingEdge::Local { from, port } => topo.local_neighbor(from, port),
            RingEdge::Global { from, port } => topo.global_neighbor(from, port).0,
        }
    }

    /// A canonical undirected key for edge-disjointness checks: the two
    /// endpoint routers sorted (there is at most one local and one global
    /// link per router pair, and a local and a global link never join the
    /// same pair — local implies same group).
    fn undirected_key(&self, topo: &Dragonfly) -> (RouterId, RouterId) {
        let a = self.from();
        let b = self.to(topo);
        if a < b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

/// A Hamiltonian cycle over all routers of a Dragonfly.
#[derive(Clone, Debug)]
pub struct HamiltonianRing {
    /// Routers in ring order; `order[i]` connects to
    /// `order[(i + 1) % len]`.
    order: Vec<RouterId>,
    /// Inverse of `order`: `pos[r.idx()]` is the ring position of `r`.
    pos: Vec<u32>,
    /// `edges[i]` is the physical link from `order[i]` to the next router.
    edges: Vec<RingEdge>,
    /// Which of the `h` disjoint rings this is.
    index: usize,
}

impl HamiltonianRing {
    /// Build embedded ring `index ∈ 0 .. h` (ring 0 is the default escape
    /// ring; higher indices are the fault-tolerance extension of §VII).
    ///
    /// # Panics
    /// Panics if `index > 0` and `a` is odd (the Walecki decomposition
    /// needs an even complete graph), or if `index ≥ h`, or if no usable
    /// coprime group offset exists in the ring's offset block.
    pub fn embedded(topo: &Dragonfly, index: usize) -> Self {
        let p = *topo.params();
        let (a, h, groups) = (p.a, p.h, p.groups());
        assert!(index < h, "ring index {index} out of range (h = {h})");
        assert!(
            index == 0 || a % 2 == 0,
            "multi-ring embedding requires an even number of routers per group"
        );

        // Group-level offset: one coprime value from this ring's block.
        let offset = (index * h + 1..=index * h + h)
            .find(|&o| gcd(o, groups) == 1)
            .unwrap_or_else(|| panic!("no offset coprime with {groups} in block {index}"));
        let exit_local = (offset - 1) / h; // == index
        let exit_port = (offset - 1) % h;
        let entry_local = (groups - offset - 1) / h; // == a - 1 - index
        debug_assert_eq!(exit_local, index);
        debug_assert_eq!(entry_local, a - 1 - index);

        // In-group Hamiltonian path from `entry_local` to `exit_local`.
        let path = in_group_path(a, index);
        debug_assert_eq!(*path.first().unwrap(), entry_local);
        debug_assert_eq!(*path.last().unwrap(), exit_local);

        let n = topo.num_routers();
        let mut order = Vec::with_capacity(n);
        let mut edges = Vec::with_capacity(n);
        let mut group = 0usize;
        for _ in 0..groups {
            let g = crate::ids::GroupId::from(group);
            for (i, &local) in path.iter().enumerate() {
                let r = topo.router_at(g, local);
                order.push(r);
                if i + 1 < path.len() {
                    edges.push(RingEdge::Local {
                        from: r,
                        port: topo.local_port_to(r, topo.router_at(g, path[i + 1])),
                    });
                } else {
                    edges.push(RingEdge::Global {
                        from: r,
                        port: exit_port,
                    });
                }
            }
            group = (group + offset) % groups;
        }
        debug_assert_eq!(group, 0, "group cycle must close");

        let mut pos = vec![u32::MAX; n];
        for (i, r) in order.iter().enumerate() {
            pos[r.idx()] = i as u32;
        }
        let ring = Self {
            order,
            pos,
            edges,
            index,
        };
        debug_assert!(ring.validate(topo).is_ok());
        ring
    }

    /// Embed `k ≤ h` pairwise edge-disjoint rings.
    pub fn embed_disjoint(topo: &Dragonfly, k: usize) -> Vec<Self> {
        (0..k).map(|i| Self::embedded(topo, i)).collect()
    }

    /// Ring length (= number of routers).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the ring is empty (never true for a valid topology).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Which of the disjoint rings this is.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Routers in ring order.
    pub fn order(&self) -> &[RouterId] {
        &self.order
    }

    /// Ring position of a router.
    pub fn position_of(&self, r: RouterId) -> usize {
        self.pos[r.idx()] as usize
    }

    /// The router after `r` along the ring.
    pub fn next_router(&self, r: RouterId) -> RouterId {
        self.order[(self.position_of(r) + 1) % self.len()]
    }

    /// The physical link the ring uses to leave router `r` (embedded
    /// model only; the physical-ring model uses dedicated ports instead).
    pub fn edge_from(&self, r: RouterId) -> RingEdge {
        self.edges[self.position_of(r)]
    }

    /// All directed ring edges, in ring order.
    pub fn edges(&self) -> &[RingEdge] {
        &self.edges
    }

    /// Export the ring as directed `(from, to)` router pairs in
    /// traversal order — the raw form consumed by the CDG verifier
    /// (`ofar-verify`), which re-derives the cycle property from the
    /// pairs against the topology instead of trusting this builder.
    pub fn successor_pairs(&self, topo: &Dragonfly) -> Vec<(RouterId, RouterId)> {
        self.edges.iter().map(|e| (e.from(), e.to(topo))).collect()
    }

    /// Check that this is a spanning cycle over real links.
    pub fn validate(&self, topo: &Dragonfly) -> Result<(), String> {
        let n = topo.num_routers();
        if self.order.len() != n {
            return Err(format!("ring visits {} of {n} routers", self.order.len()));
        }
        let mut seen = vec![false; n];
        for (i, &r) in self.order.iter().enumerate() {
            if seen[r.idx()] {
                return Err(format!("router {r} visited twice"));
            }
            seen[r.idx()] = true;
            let e = self.edges[i];
            if e.from() != r {
                return Err(format!("edge {i} departs {:?}, expected {r}", e.from()));
            }
            let next = self.order[(i + 1) % n];
            if e.to(topo) != next {
                return Err(format!(
                    "edge {i} lands on {:?}, expected {next}",
                    e.to(topo)
                ));
            }
        }
        Ok(())
    }

    /// Check that a family of rings is pairwise edge-disjoint (undirected).
    pub fn pairwise_edge_disjoint(topo: &Dragonfly, rings: &[Self]) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        for ring in rings {
            for e in &ring.edges {
                if !seen.insert(e.undirected_key(topo)) {
                    return false;
                }
            }
        }
        true
    }

    /// How many of `rings` remain fully usable when the given undirected
    /// links have failed. A ring survives iff none of its edges is failed.
    /// (§VII: the escape subnetwork must stay connected, so a single
    /// failed ring edge disables that ring.)
    pub fn surviving_rings(
        topo: &Dragonfly,
        rings: &[Self],
        failed: &[(RouterId, RouterId)],
    ) -> usize {
        let failed: std::collections::BTreeSet<(RouterId, RouterId)> = failed
            .iter()
            .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        rings
            .iter()
            .filter(|ring| {
                ring.edges
                    .iter()
                    .all(|e| !failed.contains(&e.undirected_key(topo)))
            })
            .count()
    }
}

/// Greatest common divisor (Euclid).
fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Hamiltonian path of `K_a` (vertices `0 .. a`) from `a − 1 − i` to `i`.
///
/// For `i == 0` a simple explicit path is used (valid for odd `a` too).
/// For `i > 0` (even `a` only) this is the reversed, relabelled Walecki
/// path `π(P_i)`, with `π(v) = v` for `v < a/2` and `π(v) = 3a/2 − 1 − v`
/// otherwise, so distinct `i` yield pairwise edge-disjoint paths.
fn in_group_path(a: usize, i: usize) -> Vec<usize> {
    if i == 0 && a % 2 == 1 {
        // Odd-sized groups: only a single ring is supported; any
        // permutation from a − 1 to 0 works.
        let mut path: Vec<usize> = vec![a - 1];
        path.extend(1..a - 1);
        path.push(0);
        return path;
    }
    let n = a / 2;
    debug_assert!(i < n);
    // Walecki path P_i over Z_{2n}: i, i+1, i−1, i+2, i−2, …, i+n.
    let mut walecki = Vec::with_capacity(a);
    walecki.push(i);
    for t in 1..n {
        walecki.push((i + t) % a);
        walecki.push((i + a - t) % a);
    }
    walecki.push((i + n) % a);
    debug_assert_eq!(walecki.len(), a);
    // Relabel so endpoints become {i, a − 1 − i}, then reverse so the
    // path runs entry (a − 1 − i) → exit (i).
    let pi = |v: usize| if v < n { v } else { 3 * n - 1 - v };
    let mut path: Vec<usize> = walecki.into_iter().map(pi).collect();
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walecki_paths_are_hamiltonian_and_disjoint() {
        for a in [4usize, 6, 8, 12, 16] {
            let mut used = std::collections::BTreeSet::new();
            for i in 0..a / 2 {
                let path = in_group_path(a, i);
                assert_eq!(path.len(), a, "a={a} i={i}");
                assert_eq!(path[0], a - 1 - i);
                assert_eq!(path[a - 1], i);
                let mut seen = vec![false; a];
                for &v in &path {
                    assert!(!seen[v], "a={a} i={i}: vertex {v} repeated");
                    seen[v] = true;
                }
                for w in path.windows(2) {
                    let key = (w[0].min(w[1]), w[0].max(w[1]));
                    assert!(used.insert(key), "a={a} i={i}: edge {key:?} reused");
                }
            }
        }
    }

    #[test]
    fn odd_group_single_path_valid() {
        let path = in_group_path(5, 0);
        assert_eq!(path[0], 4);
        assert_eq!(*path.last().unwrap(), 0);
        let mut sorted = path.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn embedded_ring_is_valid_for_various_h() {
        for h in 2..=6 {
            let topo = Dragonfly::balanced(h);
            let ring = HamiltonianRing::embedded(&topo, 0);
            ring.validate(&topo).unwrap();
            assert_eq!(ring.len(), topo.num_routers());
        }
    }

    #[test]
    fn h_disjoint_rings_embed_for_balanced_networks() {
        for h in 2..=5 {
            let topo = Dragonfly::balanced(h);
            let rings = HamiltonianRing::embed_disjoint(&topo, h);
            assert_eq!(rings.len(), h);
            for ring in &rings {
                ring.validate(&topo).unwrap();
            }
            assert!(
                HamiltonianRing::pairwise_edge_disjoint(&topo, &rings),
                "h={h}: rings share an edge"
            );
        }
    }

    #[test]
    fn ring_navigation_roundtrips() {
        let topo = Dragonfly::balanced(3);
        let ring = HamiltonianRing::embedded(&topo, 0);
        for &r in ring.order() {
            let next = ring.next_router(r);
            assert_eq!(ring.edge_from(r).to(&topo), next);
            assert_eq!(
                (ring.position_of(r) + 1) % ring.len(),
                ring.position_of(next)
            );
        }
    }

    #[test]
    fn failures_disable_only_affected_rings() {
        let topo = Dragonfly::balanced(3);
        let rings = HamiltonianRing::embed_disjoint(&topo, 3);
        assert_eq!(HamiltonianRing::surviving_rings(&topo, &rings, &[]), 3);
        // Fail one edge of ring 1: exactly one ring dies (disjointness).
        let e = rings[1].edges()[5];
        let failed = [(e.from(), e.to(&topo))];
        assert_eq!(HamiltonianRing::surviving_rings(&topo, &rings, &failed), 2);
        // Fail an edge per ring: none survive.
        let failed: Vec<_> = rings
            .iter()
            .map(|r| {
                let e = r.edges()[0];
                (e.from(), e.to(&topo))
            })
            .collect();
        assert_eq!(HamiltonianRing::surviving_rings(&topo, &rings, &failed), 0);
    }

    #[test]
    fn duplicate_failures_count_once() {
        let topo = Dragonfly::balanced(3);
        let rings = HamiltonianRing::embed_disjoint(&topo, 3);
        let e = rings[0].edges()[2];
        let (a, b) = (e.from(), e.to(&topo));
        // the same edge reported three times kills exactly one ring
        let failed = [(a, b), (a, b), (a, b)];
        assert_eq!(HamiltonianRing::surviving_rings(&topo, &rings, &failed), 2);
    }

    #[test]
    fn either_endpoint_order_matches() {
        let topo = Dragonfly::balanced(3);
        let rings = HamiltonianRing::embed_disjoint(&topo, 3);
        let e = rings[2].edges()[7];
        let (a, b) = (e.from(), e.to(&topo));
        assert_eq!(
            HamiltonianRing::surviving_rings(&topo, &rings, &[(a, b)]),
            HamiltonianRing::surviving_rings(&topo, &rings, &[(b, a)]),
        );
        assert_eq!(
            HamiltonianRing::surviving_rings(&topo, &rings, &[(b, a)]),
            2
        );
    }

    #[test]
    fn non_ring_links_do_not_affect_survival() {
        let topo = Dragonfly::balanced(2);
        let rings = HamiltonianRing::embed_disjoint(&topo, 2);
        // collect every undirected link NOT used by any ring and fail
        // them all: every ring must survive
        let used: std::collections::BTreeSet<_> = rings
            .iter()
            .flat_map(|r| r.edges().iter().map(|e| e.undirected_key(&topo)))
            .collect();
        let mut failed = Vec::new();
        let a = topo.routers_per_group();
        for r in 0..topo.num_routers() {
            let r = RouterId::from(r);
            for p in 0..a - 1 {
                let n = topo.local_neighbor(r, p);
                if !used.contains(&(r.min(n), r.max(n))) {
                    failed.push((r, n));
                }
            }
            for k in 0..topo.params().h {
                let n = topo.global_neighbor(r, k).0;
                if !used.contains(&(r.min(n), r.max(n))) {
                    failed.push((r, n));
                }
            }
        }
        assert!(!failed.is_empty(), "some non-ring links must exist");
        assert_eq!(
            HamiltonianRing::surviving_rings(&topo, &rings, &failed),
            rings.len()
        );
    }

    #[test]
    fn pairs_that_are_not_links_are_ignored() {
        let topo = Dragonfly::balanced(2);
        let rings = HamiltonianRing::embed_disjoint(&topo, 2);
        // a cross-group pair with no global link between them (the
        // Dragonfly has one link per *group* pair, not per router pair),
        // plus a degenerate self-pair
        let x = RouterId::new(0);
        let y = (0..topo.num_routers())
            .map(RouterId::from)
            .find(|&y| {
                topo.group_of(y) != topo.group_of(x)
                    && (0..topo.params().h).all(|k| {
                        topo.global_neighbor(x, k).0 != y && topo.global_neighbor(y, k).0 != x
                    })
            })
            .expect("a non-adjacent cross-group router exists");
        let failed = [(x, y), (RouterId::new(3), RouterId::new(3))];
        assert_eq!(
            HamiltonianRing::surviving_rings(&topo, &rings, &failed),
            rings.len()
        );
    }
}
