//! Strongly-typed identifiers for topology entities.
//!
//! All identifiers are thin wrappers over `u32` (a maximum-size Dragonfly
//! with `h = 16` has 266,272 nodes, far below `u32::MAX`), kept `Copy` and
//! niche-free so they can live in hot simulator arrays.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $short:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw index as `usize`, for array indexing.
            #[inline]
            pub const fn idx(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(raw: usize) -> Self {
                debug_assert!(raw <= u32::MAX as usize);
                Self(raw as u32)
            }
        }
    };
}

id_type!(
    /// A group of routers (first hierarchy level). Groups are numbered
    /// `0 .. 2h² + 1` in the maximum-size network.
    GroupId,
    "G"
);

id_type!(
    /// A router, numbered globally: router `r` of group `g` has id
    /// `g·a + r`.
    RouterId,
    "R"
);

id_type!(
    /// A compute node, numbered globally: node `n` of router `R` has id
    /// `R·p + n`.
    NodeId,
    "N"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_and_format() {
        let g = GroupId::new(7);
        assert_eq!(g.idx(), 7);
        assert_eq!(format!("{g}"), "G7");
        assert_eq!(format!("{g:?}"), "G7");
        let r = RouterId::from(12usize);
        assert_eq!(r, RouterId::new(12));
        let n = NodeId::from(3u32);
        assert_eq!(n.0, 3);
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(RouterId::new(1) < RouterId::new(2));
        assert_eq!(NodeId::default(), NodeId::new(0));
    }
}
