//! Minimal-path routing primitives.
//!
//! A minimal Dragonfly route is at most `l − g − l` (§I): a local hop to
//! the router hosting the global link towards the destination group, the
//! global hop, and a local hop inside the destination group. These helpers
//! compute the *next* minimal hop from any router, which is all both the
//! table-free baseline routings and OFAR's per-cycle re-evaluation need.

use crate::dragonfly::Dragonfly;
use crate::ids::{GroupId, NodeId, RouterId};

/// The next hop of a minimal route, expressed as a port class of the
/// current router.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MinimalHop {
    /// The destination node is attached to the current router; deliver it
    /// through ejection port `node`.
    Eject {
        /// Node index within the router (`0 .. p`).
        node: usize,
    },
    /// Take local port `port` (`0 .. a − 1`).
    Local {
        /// Local port index.
        port: usize,
    },
    /// Take global port `port` (`0 .. h`).
    Global {
        /// Global port index.
        port: usize,
    },
}

/// Where a packet currently is relative to its (possibly Valiant) route.
/// Routing mechanisms use this to decide which misroute classes §IV-A
/// allows at this point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutePhase {
    /// In the source group (global misrouting still possible).
    SourceGroup,
    /// In an intermediate group (only local misrouting possible).
    IntermediateGroup,
    /// In the destination group (only local misrouting possible).
    DestinationGroup,
}

impl Dragonfly {
    /// Next minimal hop from router `current` towards node `dst`.
    pub fn minimal_hop_to_node(&self, current: RouterId, dst: NodeId) -> MinimalHop {
        let dst_router = self.router_of_node(dst);
        if current == dst_router {
            return MinimalHop::Eject {
                node: self.node_index(dst),
            };
        }
        self.minimal_hop_to_router(current, dst_router)
    }

    /// Next minimal hop from router `current` towards router `dst`
    /// (`current != dst`).
    pub fn minimal_hop_to_router(&self, current: RouterId, dst: RouterId) -> MinimalHop {
        debug_assert_ne!(current, dst);
        let gc = self.group_of(current);
        let gd = self.group_of(dst);
        if gc == gd {
            return MinimalHop::Local {
                port: self.local_port_to(current, dst),
            };
        }
        self.hop_toward_group(current, gd)
            // lint:allow(P001, hop_toward_group is total for distinct groups in a connected dragonfly)
            .expect("distinct groups must yield a hop")
    }

    /// Next minimal hop from `current` towards *any* router of `group`
    /// (used for the Valiant phase-1 route to an intermediate group).
    /// Returns `None` when the router is already in `group`.
    pub fn hop_toward_group(&self, current: RouterId, group: GroupId) -> Option<MinimalHop> {
        let gc = self.group_of(current);
        if gc == group {
            return None;
        }
        let (exit, gport) = self.global_link_from(gc, group);
        Some(if exit == current {
            MinimalHop::Global { port: gport }
        } else {
            MinimalHop::Local {
                port: self.local_port_to(current, exit),
            }
        })
    }

    /// Length in hops of the minimal route between two *nodes* (0–3).
    pub fn min_node_hops(&self, src: NodeId, dst: NodeId) -> usize {
        self.min_router_hops(self.router_of_node(src), self.router_of_node(dst))
    }

    // ----- dead-link-aware variants (§VII degraded routing) -------------

    /// Next hop towards node `dst`, avoiding links for which `dead`
    /// returns true. Falls back to a one-router local detour inside a
    /// group when the direct local link is dead (groups are cliques).
    /// Returns `None` when no route towards the destination survives —
    /// the minimal global link is down (an adaptive mechanism must then
    /// divert through another group) or the destination is partitioned.
    pub fn minimal_hop_to_node_avoiding<F>(
        &self,
        current: RouterId,
        dst: NodeId,
        dead: &F,
    ) -> Option<MinimalHop>
    where
        F: Fn(RouterId, RouterId) -> bool,
    {
        let dst_router = self.router_of_node(dst);
        if current == dst_router {
            return Some(MinimalHop::Eject {
                node: self.node_index(dst),
            });
        }
        let gd = self.group_of(dst_router);
        if self.group_of(current) == gd {
            return self.local_hop_avoiding(current, dst_router, dead);
        }
        self.hop_toward_group_avoiding(current, gd, dead)
    }

    /// Next hop towards *any* router of `group` (which must differ from
    /// the current group), avoiding dead links. The Dragonfly has exactly
    /// one global link per group pair, so a dead global link makes the
    /// group minimally unreachable (`None`); a dead local leg towards the
    /// exit router is detoured through a third router of the group.
    pub fn hop_toward_group_avoiding<F>(
        &self,
        current: RouterId,
        group: GroupId,
        dead: &F,
    ) -> Option<MinimalHop>
    where
        F: Fn(RouterId, RouterId) -> bool,
    {
        let gc = self.group_of(current);
        debug_assert_ne!(gc, group, "already in the target group");
        let (exit, gport) = self.global_link_from(gc, group);
        let remote = self.global_neighbor(exit, gport).0;
        if dead(exit, remote) {
            return None;
        }
        if exit == current {
            return Some(MinimalHop::Global { port: gport });
        }
        self.local_hop_avoiding(current, exit, dead)
    }

    /// Next hop from `current` to `to` (same group), avoiding dead local
    /// links: the direct link when alive, otherwise the lowest-index
    /// two-hop detour `current → c → to` with both legs alive.
    fn local_hop_avoiding<F>(&self, current: RouterId, to: RouterId, dead: &F) -> Option<MinimalHop>
    where
        F: Fn(RouterId, RouterId) -> bool,
    {
        debug_assert_eq!(self.group_of(current), self.group_of(to));
        debug_assert_ne!(current, to);
        if !dead(current, to) {
            return Some(MinimalHop::Local {
                port: self.local_port_to(current, to),
            });
        }
        let g = self.group_of(current);
        (0..self.params().a)
            .map(|i| self.router_at(g, i))
            .find(|&c| c != current && c != to && !dead(current, c) && !dead(c, to))
            .map(|c| MinimalHop::Local {
                port: self.local_port_to(current, c),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walk minimal hops from `src` until ejection, returning the hop
    /// sequence (for invariant checks).
    fn walk_minimal(topo: &Dragonfly, src: RouterId, dst: NodeId) -> Vec<MinimalHop> {
        let mut hops = Vec::new();
        let mut cur = src;
        loop {
            let hop = topo.minimal_hop_to_node(cur, dst);
            hops.push(hop);
            match hop {
                MinimalHop::Eject { node } => {
                    assert_eq!(
                        topo.first_node_of(cur).idx() + node,
                        dst.idx(),
                        "ejected at the wrong node"
                    );
                    return hops;
                }
                MinimalHop::Local { port } => cur = topo.local_neighbor(cur, port),
                MinimalHop::Global { port } => cur = topo.global_neighbor(cur, port).0,
            }
            assert!(hops.len() <= 4, "minimal route exceeded diameter");
        }
    }

    #[test]
    fn minimal_routes_terminate_within_diameter() {
        let topo = Dragonfly::balanced(2);
        for s in 0..topo.num_routers() {
            for d in 0..topo.num_nodes() {
                let hops = walk_minimal(&topo, RouterId::from(s), NodeId::from(d));
                // ≤ 3 link hops + the ejection pseudo-hop.
                assert!(hops.len() <= 4);
                let links = hops.len() - 1;
                assert_eq!(
                    links,
                    topo.min_router_hops(RouterId::from(s), topo.router_of_node(NodeId::from(d)))
                );
            }
        }
    }

    #[test]
    fn minimal_route_shape_is_l_g_l() {
        // Hops must follow the l? g? l? pattern: never two locals in a row,
        // never a local before a global after entering the remote group.
        let topo = Dragonfly::balanced(3);
        for s in (0..topo.num_routers()).step_by(7) {
            for d in (0..topo.num_nodes()).step_by(11) {
                let hops = walk_minimal(&topo, RouterId::from(s), NodeId::from(d));
                let classes: Vec<u8> = hops
                    .iter()
                    .filter_map(|h| match h {
                        MinimalHop::Local { .. } => Some(0),
                        MinimalHop::Global { .. } => Some(1),
                        MinimalHop::Eject { .. } => None,
                    })
                    .collect();
                let ok = matches!(
                    classes.as_slice(),
                    [] | [0] | [1] | [0, 1] | [1, 0] | [0, 1, 0]
                );
                assert!(ok, "unexpected minimal hop shape {classes:?}");
            }
        }
    }

    #[test]
    fn avoiding_variant_matches_minimal_when_healthy() {
        let topo = Dragonfly::balanced(2);
        let alive = |_: RouterId, _: RouterId| false;
        for s in 0..topo.num_routers() {
            for d in 0..topo.num_nodes() {
                let cur = RouterId::from(s);
                let dst = NodeId::from(d);
                assert_eq!(
                    topo.minimal_hop_to_node_avoiding(cur, dst, &alive),
                    Some(topo.minimal_hop_to_node(cur, dst)),
                );
            }
        }
    }

    #[test]
    fn dead_local_link_detours_within_the_group() {
        let topo = Dragonfly::balanced(2);
        let a = RouterId::new(0);
        let b = topo.local_neighbor(a, 0);
        let dst = topo.first_node_of(b);
        let dead = move |x: RouterId, y: RouterId| (x, y) == (a, b) || (x, y) == (b, a);
        let hop = topo
            .minimal_hop_to_node_avoiding(a, dst, &dead)
            .expect("clique detour must exist");
        match hop {
            MinimalHop::Local { port } => {
                let c = topo.local_neighbor(a, port);
                assert_ne!(c, b, "must not take the dead link");
                assert_eq!(topo.group_of(c), topo.group_of(a));
            }
            other => panic!("expected a local detour, got {other:?}"),
        }
    }

    #[test]
    fn dead_global_link_severs_minimal_reachability() {
        let topo = Dragonfly::balanced(2);
        let link = topo.global_links().next().unwrap();
        let (src, dst) = (link.src, link.dst);
        let dead = move |x: RouterId, y: RouterId| (x, y) == (src, dst) || (x, y) == (dst, src);
        // From the exit router itself, the target group is minimally
        // unreachable once its one global link is dead.
        let gd = topo.group_of(dst);
        assert_eq!(topo.hop_toward_group_avoiding(src, gd, &dead), None);
        assert_eq!(
            topo.minimal_hop_to_node_avoiding(src, topo.first_node_of(dst), &dead),
            None
        );
    }

    #[test]
    fn hop_toward_group_reaches_group_in_two() {
        let topo = Dragonfly::balanced(4);
        for s in (0..topo.num_routers()).step_by(5) {
            for g in 0..topo.num_groups() {
                let mut cur = RouterId::from(s);
                let mut steps = 0;
                while let Some(hop) = topo.hop_toward_group(cur, GroupId::from(g)) {
                    cur = match hop {
                        MinimalHop::Local { port } => topo.local_neighbor(cur, port),
                        MinimalHop::Global { port } => topo.global_neighbor(cur, port).0,
                        MinimalHop::Eject { .. } => unreachable!(),
                    };
                    steps += 1;
                    assert!(steps <= 2, "group reach must be ≤ 2 hops (l·g)");
                }
                assert_eq!(topo.group_of(cur).idx(), g);
            }
        }
    }
}
