//! Dragonfly sizing parameters.

/// Sizing parameters of a Dragonfly network, using the nomenclature of
/// Kim et al. (ISCA 2008) adopted by the paper:
///
/// * `p` — compute nodes per router,
/// * `a` — routers per group,
/// * `h` — global links per router,
/// * `groups` — number of groups.
///
/// The paper always uses the *balanced, maximum-size* network:
/// `a = 2h`, `p = h`, `groups = a·h + 1 = 2h² + 1`. [`DragonflyParams::balanced`]
/// builds exactly that; the general constructor allows mildly unbalanced
/// networks for testing, as long as the network is maximum size for the
/// palmtree arrangement (`groups = a·h + 1`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DragonflyParams {
    /// Compute nodes per router.
    pub p: usize,
    /// Routers per group.
    pub a: usize,
    /// Global links per router.
    pub h: usize,
}

impl DragonflyParams {
    /// The balanced maximum-size network of the paper: `p = h`, `a = 2h`,
    /// `2h² + 1` groups.
    ///
    /// # Panics
    /// Panics if `h == 0`.
    pub fn balanced(h: usize) -> Self {
        // lint:allow(P001, construction-time validation of h; not on the per-cycle path)
        assert!(h >= 1, "h must be at least 1");
        Self { p: h, a: 2 * h, h }
    }

    /// A general maximum-size network (`groups = a·h + 1`).
    ///
    /// # Panics
    /// Panics if any parameter is zero or `a < 2` (a group needs at least
    /// two routers for local links to exist).
    pub fn new(p: usize, a: usize, h: usize) -> Self {
        assert!(p >= 1 && h >= 1, "p and h must be at least 1");
        assert!(a >= 2, "a must be at least 2");
        Self { p, a, h }
    }

    /// Number of groups, `a·h + 1`.
    #[inline]
    pub fn groups(&self) -> usize {
        self.a * self.h + 1
    }

    /// Total number of routers, `a·(a·h + 1)`.
    #[inline]
    pub fn routers(&self) -> usize {
        self.a * self.groups()
    }

    /// Total number of compute nodes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.p * self.routers()
    }

    /// Ports per router in the canonical network: `p` node ports,
    /// `a − 1` local ports and `h` global ports. For the balanced network
    /// this is the paper's `4h − 1`.
    #[inline]
    pub fn ports_per_router(&self) -> usize {
        self.p + (self.a - 1) + self.h
    }

    /// Number of unidirectional-pair (i.e., full-duplex) local links in the
    /// network: one per router pair per group.
    #[inline]
    pub fn local_links(&self) -> usize {
        self.groups() * self.a * (self.a - 1) / 2
    }

    /// Number of full-duplex global links: one per group pair.
    #[inline]
    pub fn global_links(&self) -> usize {
        let g = self.groups();
        g * (g - 1) / 2
    }

    /// Whether the network satisfies the paper's balance condition
    /// `a = 2p = 2h`.
    #[inline]
    pub fn is_balanced(&self) -> bool {
        self.a == 2 * self.p && self.a == 2 * self.h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_h6_dimensions() {
        // §V: h = 6 → 5,256 nodes, 876 routers, 73 groups of 12 routers,
        // 23 ports each, 2,628 global links and 4,818 local links.
        let p = DragonflyParams::balanced(6);
        assert_eq!(p.groups(), 73);
        assert_eq!(p.routers(), 876);
        assert_eq!(p.nodes(), 5256);
        assert_eq!(p.ports_per_router(), 23);
        assert_eq!(p.global_links(), 2628);
        assert_eq!(p.local_links(), 4818);
        assert!(p.is_balanced());
    }

    #[test]
    fn intro_formulas_hold_for_all_h() {
        for h in 1..=16 {
            let p = DragonflyParams::balanced(h);
            assert_eq!(p.groups(), 2 * h * h + 1);
            assert_eq!(p.routers(), 4 * h * h * h + 2 * h);
            assert_eq!(p.nodes(), 4 * h * h * h * h + 2 * h * h);
            assert_eq!(p.ports_per_router(), 4 * h - 1);
        }
    }

    #[test]
    fn h16_scales_beyond_256k_nodes() {
        // §I: a 64-port router (h = 16) scales to more than 256K nodes.
        let p = DragonflyParams::balanced(16);
        assert!(p.nodes() > 256 * 1024);
    }

    #[test]
    #[should_panic(expected = "h must be at least 1")]
    fn zero_h_rejected() {
        DragonflyParams::balanced(0);
    }

    #[test]
    #[should_panic(expected = "a must be at least 2")]
    fn single_router_groups_rejected() {
        DragonflyParams::new(1, 1, 1);
    }
}
