//! The Dragonfly graph: addressing and link arrangement.

use crate::ids::{GroupId, NodeId, RouterId};
use crate::params::DragonflyParams;

/// Classification of a physical link (used by the simulator to size
/// buffers, pick latencies and count virtual channels, §V).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Intra-group electrical link ("LL"/"LD" in PERCS terms).
    Local,
    /// Inter-group optical link ("D" in PERCS terms).
    Global,
}

/// One endpoint-resolved global link: router `src` global port `src_port`
/// connects to router `dst` global port `dst_port`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GlobalLink {
    /// Router hosting the source end.
    pub src: RouterId,
    /// Global port index at `src`.
    pub src_port: usize,
    /// Router hosting the destination end.
    pub dst: RouterId,
    /// Global port index at `dst`.
    pub dst_port: usize,
}

/// An immutable Dragonfly topology.
///
/// All adjacency is *computed*, not stored: the palmtree arrangement is
/// closed-form, so the struct is a couple of words regardless of network
/// size and can be copied freely into simulator workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dragonfly {
    params: DragonflyParams,
}

impl Dragonfly {
    /// Build the balanced maximum-size Dragonfly for a given `h` (the
    /// paper's configuration; `h = 6` reproduces the evaluated network).
    pub fn balanced(h: usize) -> Self {
        Self::new(DragonflyParams::balanced(h))
    }

    /// Build a Dragonfly with explicit parameters.
    pub fn new(params: DragonflyParams) -> Self {
        Self { params }
    }

    /// The sizing parameters.
    #[inline]
    pub fn params(&self) -> &DragonflyParams {
        &self.params
    }

    /// Number of groups.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.params.groups()
    }

    /// Number of routers.
    #[inline]
    pub fn num_routers(&self) -> usize {
        self.params.routers()
    }

    /// Number of compute nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.params.nodes()
    }

    /// Routers per group (`a`).
    #[inline]
    pub fn routers_per_group(&self) -> usize {
        self.params.a
    }

    /// Nodes per router (`p`).
    #[inline]
    pub fn nodes_per_router(&self) -> usize {
        self.params.p
    }

    /// Global links per router (`h`).
    #[inline]
    pub fn global_ports_per_router(&self) -> usize {
        self.params.h
    }

    // ----- addressing ------------------------------------------------

    /// Group that a router belongs to.
    #[inline]
    pub fn group_of(&self, r: RouterId) -> GroupId {
        GroupId::from(r.idx() / self.params.a)
    }

    /// Index of a router within its group (`0 .. a`).
    #[inline]
    pub fn local_index(&self, r: RouterId) -> usize {
        r.idx() % self.params.a
    }

    /// Router id from (group, local index).
    #[inline]
    pub fn router_at(&self, g: GroupId, local: usize) -> RouterId {
        debug_assert!(local < self.params.a);
        RouterId::from(g.idx() * self.params.a + local)
    }

    /// Router a node is attached to.
    #[inline]
    pub fn router_of_node(&self, n: NodeId) -> RouterId {
        RouterId::from(n.idx() / self.params.p)
    }

    /// Group a node belongs to.
    #[inline]
    pub fn group_of_node(&self, n: NodeId) -> GroupId {
        self.group_of(self.router_of_node(n))
    }

    /// Index of a node within its router (`0 .. p`).
    #[inline]
    pub fn node_index(&self, n: NodeId) -> usize {
        n.idx() % self.params.p
    }

    /// First node attached to a router; nodes of router `r` are
    /// `r·p .. r·p + p`.
    #[inline]
    pub fn first_node_of(&self, r: RouterId) -> NodeId {
        NodeId::from(r.idx() * self.params.p)
    }

    // ----- local links -----------------------------------------------

    /// Neighbor reached through local port `port ∈ 0 .. a−1` of router `r`.
    ///
    /// Local port numbering skips the router itself: port `j` of the
    /// router with local index `i` leads to local index `j` when `j < i`
    /// and `j + 1` otherwise.
    #[inline]
    pub fn local_neighbor(&self, r: RouterId, port: usize) -> RouterId {
        debug_assert!(port < self.params.a - 1);
        let me = self.local_index(r);
        let them = if port < me { port } else { port + 1 };
        self.router_at(self.group_of(r), them)
    }

    /// Local port of `r` that leads to router `to` of the same group.
    ///
    /// # Panics
    /// Panics in debug builds if the routers are not distinct members of
    /// the same group.
    #[inline]
    pub fn local_port_to(&self, r: RouterId, to: RouterId) -> usize {
        debug_assert_eq!(self.group_of(r), self.group_of(to));
        debug_assert_ne!(r, to);
        let me = self.local_index(r);
        let them = self.local_index(to);
        if them < me {
            them
        } else {
            them - 1
        }
    }

    /// The local port at the *other* end of local port `port` of `r`.
    #[inline]
    pub fn local_reverse_port(&self, r: RouterId, port: usize) -> usize {
        let n = self.local_neighbor(r, port);
        self.local_port_to(n, r)
    }

    // ----- global links (palmtree arrangement) ------------------------

    /// Group offset (1-based, mod number of groups) served by global port
    /// `k ∈ 0..h` of a router with local index `r`: `r·h + k + 1`.
    #[inline]
    fn offset_of_port(&self, local_idx: usize, k: usize) -> usize {
        local_idx * self.params.h + k + 1
    }

    /// Which (local router index, global port) of a group hosts the global
    /// link towards the group at `offset ∈ 1 .. groups`.
    #[inline]
    pub fn global_host_for_offset(&self, offset: usize) -> (usize, usize) {
        debug_assert!(offset >= 1 && offset < self.num_groups());
        ((offset - 1) / self.params.h, (offset - 1) % self.params.h)
    }

    /// Group reached by global port `k` of router `r`.
    #[inline]
    pub fn global_neighbor_group(&self, r: RouterId, k: usize) -> GroupId {
        debug_assert!(k < self.params.h);
        let g = self.group_of(r).idx();
        let d = self.offset_of_port(self.local_index(r), k);
        GroupId::from((g + d) % self.num_groups())
    }

    /// Fully resolve global port `k` of router `r`: the remote router and
    /// the remote global-port index.
    pub fn global_neighbor(&self, r: RouterId, k: usize) -> (RouterId, usize) {
        let groups = self.num_groups();
        let d = self.offset_of_port(self.local_index(r), k);
        let dst_group = GroupId::from((self.group_of(r).idx() + d) % groups);
        // Seen from the destination group, the same physical link has
        // offset `groups − d`.
        let (remote_local, remote_port) = self.global_host_for_offset(groups - d);
        (self.router_at(dst_group, remote_local), remote_port)
    }

    /// The router (and its global port) of group `from` that hosts the
    /// unique global link towards group `to`.
    pub fn global_link_from(&self, from: GroupId, to: GroupId) -> (RouterId, usize) {
        debug_assert_ne!(from, to);
        let groups = self.num_groups();
        let d = (to.idx() + groups - from.idx()) % groups;
        let (local, port) = self.global_host_for_offset(d);
        (self.router_at(from, local), port)
    }

    /// Enumerate every global link once (with `src` in the lower-offset
    /// direction). Mostly useful for validation and wiring statistics.
    pub fn global_links(&self) -> impl Iterator<Item = GlobalLink> + '_ {
        let topo = *self;
        (0..self.num_routers()).flat_map(move |r| {
            let r = RouterId::from(r);
            (0..topo.params.h).filter_map(move |k| {
                let (dst, dst_port) = topo.global_neighbor(r, k);
                // Emit each full-duplex link once.
                (r < dst).then_some(GlobalLink {
                    src: r,
                    src_port: k,
                    dst,
                    dst_port,
                })
            })
        })
    }

    /// Minimal hop distance between two routers (0, 1, 2 or 3; the
    /// Dragonfly diameter is 3).
    pub fn min_router_hops(&self, src: RouterId, dst: RouterId) -> usize {
        if src == dst {
            return 0;
        }
        let gs = self.group_of(src);
        let gd = self.group_of(dst);
        if gs == gd {
            return 1;
        }
        let (exit, _) = self.global_link_from(gs, gd);
        let (entry, _) = self.global_link_from(gd, gs);
        let mut hops = 1; // the global hop
        if exit != src {
            hops += 1;
        }
        if entry != dst {
            hops += 1;
        }
        hops
    }

    /// Classify the direct link between two routers, if one exists:
    /// routers of the same group are joined by exactly one local link,
    /// and a router pair of different groups by at most one global link.
    /// Used by the CDG verifier to check that every declared ring edge is
    /// a real wire.
    pub fn link_between(&self, a: RouterId, b: RouterId) -> Option<LinkKind> {
        if a == b {
            return None;
        }
        if self.group_of(a) == self.group_of(b) {
            return Some(LinkKind::Local);
        }
        (0..self.params.h)
            .any(|k| self.global_neighbor(a, k).0 == b)
            .then_some(LinkKind::Global)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_h() -> impl Iterator<Item = usize> {
        1..=6
    }

    #[test]
    fn local_ports_form_complete_graph() {
        let topo = Dragonfly::balanced(3);
        let a = topo.routers_per_group();
        for g in 0..topo.num_groups() {
            for i in 0..a {
                let r = topo.router_at(GroupId::from(g), i);
                let mut seen = vec![false; a];
                for port in 0..a - 1 {
                    let n = topo.local_neighbor(r, port);
                    assert_eq!(topo.group_of(n).idx(), g);
                    assert_ne!(n, r);
                    assert!(!seen[topo.local_index(n)], "duplicate local neighbor");
                    seen[topo.local_index(n)] = true;
                    // port mapping is its own inverse through the pair
                    assert_eq!(topo.local_port_to(r, n), port);
                    let back = topo.local_reverse_port(r, port);
                    assert_eq!(topo.local_neighbor(n, back), r);
                }
            }
        }
    }

    #[test]
    fn exactly_one_global_link_per_group_pair() {
        for h in all_h() {
            let topo = Dragonfly::balanced(h);
            let groups = topo.num_groups();
            let mut count = vec![0u32; groups * groups];
            for link in topo.global_links() {
                let gs = topo.group_of(link.src).idx();
                let gd = topo.group_of(link.dst).idx();
                assert_ne!(gs, gd, "global link inside a group");
                count[gs * groups + gd] += 1;
                count[gd * groups + gs] += 1;
            }
            for s in 0..groups {
                for d in 0..groups {
                    let expect = u32::from(s != d);
                    assert_eq!(
                        count[s * groups + d],
                        expect,
                        "h={h}: groups {s}->{d} must have exactly {expect} link(s)"
                    );
                }
            }
        }
    }

    #[test]
    fn global_wiring_is_symmetric() {
        for h in all_h() {
            let topo = Dragonfly::balanced(h);
            for r in 0..topo.num_routers() {
                let r = RouterId::from(r);
                for k in 0..h {
                    let (n, back) = topo.global_neighbor(r, k);
                    let (rr, kk) = topo.global_neighbor(n, back);
                    assert_eq!((rr, kk), (r, k), "h={h}: link {r}:{k} not symmetric");
                }
            }
        }
    }

    #[test]
    fn global_link_from_agrees_with_ports() {
        let topo = Dragonfly::balanced(4);
        for from in 0..topo.num_groups() {
            for to in 0..topo.num_groups() {
                if from == to {
                    continue;
                }
                let (router, port) = topo.global_link_from(GroupId::from(from), GroupId::from(to));
                assert_eq!(topo.group_of(router).idx(), from);
                assert_eq!(topo.global_neighbor_group(router, port).idx(), to);
            }
        }
    }

    #[test]
    fn consecutive_offsets_share_a_router() {
        // The palmtree property behind the ADV+h pathology (§III): the h
        // links with offsets r·h+1..r·h+h all live on the same router.
        let topo = Dragonfly::balanced(6);
        let h = 6;
        let g = GroupId::new(10);
        for r in 0..topo.routers_per_group() {
            let mut hosts = Vec::new();
            for d in r * h + 1..=r * h + h {
                let to = GroupId::from((g.idx() + d) % topo.num_groups());
                let (router, _) = topo.global_link_from(g, to);
                hosts.push(router);
            }
            assert!(hosts.windows(2).all(|w| w[0] == w[1]));
            assert_eq!(topo.local_index(hosts[0]), r);
        }
    }

    #[test]
    fn diameter_is_three() {
        let topo = Dragonfly::balanced(2);
        let mut max = 0;
        for s in 0..topo.num_routers() {
            for d in 0..topo.num_routers() {
                max = max.max(topo.min_router_hops(RouterId::from(s), RouterId::from(d)));
            }
        }
        assert_eq!(max, 3);
    }

    #[test]
    fn node_addressing_roundtrips() {
        let topo = Dragonfly::balanced(3);
        for n in 0..topo.num_nodes() {
            let n = NodeId::from(n);
            let r = topo.router_of_node(n);
            let base = topo.first_node_of(r);
            assert_eq!(base.idx() + topo.node_index(n), n.idx());
            assert!(topo.node_index(n) < topo.nodes_per_router());
        }
    }
}
