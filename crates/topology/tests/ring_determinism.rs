//! Determinism signatures for the ring family's ordered-set internals.
//!
//! `pairwise_edge_disjoint` and `surviving_rings` build `BTreeSet`s from
//! caller-supplied lists; their answers must be pure functions of the
//! *set* of inputs, never of the order the caller happened to list them
//! in, and repeated construction must yield identical ring embeddings.

use ofar_topology::{Dragonfly, HamiltonianRing, RouterId};

/// Every permutation of the failed-link list gives the same survivor
/// count, whether links are listed canonical-first or reversed.
#[test]
fn surviving_rings_ignores_failed_list_order() {
    let topo = Dragonfly::balanced(4);
    let rings = HamiltonianRing::embed_disjoint(&topo, 2);
    // Kill a handful of edges of ring 0, listed in two orders and with
    // endpoints flipped.
    let pairs = rings[0].successor_pairs(&topo);
    let forward: Vec<(RouterId, RouterId)> = pairs.iter().take(4).copied().collect();
    let mut reversed: Vec<(RouterId, RouterId)> =
        forward.iter().rev().map(|&(a, b)| (b, a)).collect();
    let a = HamiltonianRing::surviving_rings(&topo, &rings, &forward);
    let b = HamiltonianRing::surviving_rings(&topo, &rings, &reversed);
    assert_eq!(a, b, "survivor count depends on failed-list order");
    // Duplicated entries are still one failed link.
    reversed.extend_from_slice(&forward);
    let c = HamiltonianRing::surviving_rings(&topo, &rings, &reversed);
    assert_eq!(a, c, "survivor count depends on duplicate listings");
    assert!(a < rings.len(), "killing ring-0 edges must disable ring 0");
}

/// Re-embedding the ring family is bit-reproducible: same topology in,
/// same router orders and edge lists out, every time.
#[test]
fn ring_embedding_is_reproducible() {
    for h in [2usize, 4] {
        let t1 = Dragonfly::balanced(h);
        let t2 = Dragonfly::balanced(h);
        let r1 = HamiltonianRing::embed_disjoint(&t1, 2);
        let r2 = HamiltonianRing::embed_disjoint(&t2, 2);
        assert_eq!(r1.len(), r2.len());
        for (a, b) in r1.iter().zip(&r2) {
            assert_eq!(a.order(), b.order(), "h={h}: ring orders differ");
            assert_eq!(
                a.successor_pairs(&t1),
                b.successor_pairs(&t2),
                "h={h}: ring edges differ"
            );
        }
        assert!(HamiltonianRing::pairwise_edge_disjoint(&t1, &r1));
    }
}
