//! Property-based tests of the Dragonfly topology and the Hamiltonian
//! ring family.

use ofar_topology::{Dragonfly, GroupId, HamiltonianRing, MinimalHop, NodeId, RouterId};
use proptest::prelude::*;

/// Supported network sizes for exhaustive-ish property checks.
fn h_values() -> impl Strategy<Value = usize> {
    2usize..=5
}

/// Walk the minimal route from `src` router to `dst` node, returning the
/// visited routers.
fn walk(topo: &Dragonfly, src: RouterId, dst: NodeId) -> Vec<RouterId> {
    let mut cur = src;
    let mut visited = vec![cur];
    loop {
        match topo.minimal_hop_to_node(cur, dst) {
            MinimalHop::Eject { node } => {
                assert_eq!(topo.first_node_of(cur).idx() + node, dst.idx());
                return visited;
            }
            MinimalHop::Local { port } => cur = topo.local_neighbor(cur, port),
            MinimalHop::Global { port } => cur = topo.global_neighbor(cur, port).0,
        }
        visited.push(cur);
        assert!(visited.len() <= 4, "minimal walk exceeded the diameter");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn minimal_routes_reach_any_destination(h in h_values(), seed in any::<u64>()) {
        let topo = Dragonfly::balanced(h);
        let src = RouterId::from((seed as usize) % topo.num_routers());
        let dst = NodeId::from((seed as usize / 7) % topo.num_nodes());
        let visited = walk(&topo, src, dst);
        // never visits a router twice
        let mut sorted = visited.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), visited.len());
        // hop count equals the distance formula
        prop_assert_eq!(
            visited.len() - 1,
            topo.min_router_hops(src, topo.router_of_node(dst))
        );
    }

    #[test]
    fn global_links_are_involutions(h in h_values(), seed in any::<u64>()) {
        let topo = Dragonfly::balanced(h);
        let r = RouterId::from((seed as usize) % topo.num_routers());
        let k = (seed as usize / 13) % h;
        let (n, back) = topo.global_neighbor(r, k);
        prop_assert_ne!(topo.group_of(n), topo.group_of(r));
        prop_assert_eq!(topo.global_neighbor(n, back), (r, k));
    }

    #[test]
    fn local_ports_are_involutions(h in h_values(), seed in any::<u64>()) {
        let topo = Dragonfly::balanced(h);
        let r = RouterId::from((seed as usize) % topo.num_routers());
        let a = topo.routers_per_group();
        let port = (seed as usize / 13) % (a - 1);
        let n = topo.local_neighbor(r, port);
        let back = topo.local_port_to(n, r);
        prop_assert_eq!(topo.local_neighbor(n, back), r);
        prop_assert_eq!(topo.group_of(n), topo.group_of(r));
    }

    #[test]
    fn group_hop_is_at_most_two(h in h_values(), seed in any::<u64>()) {
        let topo = Dragonfly::balanced(h);
        let src = RouterId::from((seed as usize) % topo.num_routers());
        let g = GroupId::from((seed as usize / 11) % topo.num_groups());
        let mut cur = src;
        let mut hops = 0;
        while let Some(hop) = topo.hop_toward_group(cur, g) {
            cur = match hop {
                MinimalHop::Local { port } => topo.local_neighbor(cur, port),
                MinimalHop::Global { port } => topo.global_neighbor(cur, port).0,
                MinimalHop::Eject { .. } => unreachable!(),
            };
            hops += 1;
            prop_assert!(hops <= 2);
        }
        prop_assert_eq!(topo.group_of(cur), g);
    }

    #[test]
    fn rings_survive_exactly_the_unhit_count(h in 2usize..=4, seed in any::<u64>()) {
        let topo = Dragonfly::balanced(h);
        let rings = HamiltonianRing::embed_disjoint(&topo, h);
        // fail one edge from a pseudo-random subset of rings; because the
        // family is edge-disjoint, survivors = rings without a failed edge
        let mut failed = Vec::new();
        let mut expected = rings.len();
        for (i, ring) in rings.iter().enumerate() {
            if (seed >> i) & 1 == 1 {
                let e = ring.edges()[(seed as usize / (i + 2)) % ring.len()];
                failed.push((e.from(), e.to(&topo)));
                expected -= 1;
            }
        }
        prop_assert_eq!(
            HamiltonianRing::surviving_rings(&topo, &rings, &failed),
            expected
        );
    }

    #[test]
    fn arbitrary_failure_sets_never_panic(
        h in 2usize..=4,
        pairs in proptest::collection::vec((any::<u16>(), any::<u16>()), 0..32),
    ) {
        // Failure reports may contain duplicates, self-pairs, either
        // endpoint order and pairs that are not links at all; survival
        // counting must take them in stride.
        let topo = Dragonfly::balanced(h);
        let rings = HamiltonianRing::embed_disjoint(&topo, h);
        let n = topo.num_routers();
        let failed: Vec<_> = pairs
            .iter()
            .map(|&(a, b)| (RouterId::from(a as usize % n), RouterId::from(b as usize % n)))
            .collect();
        let alive = HamiltonianRing::surviving_rings(&topo, &rings, &failed);
        prop_assert!(alive <= rings.len());
    }

    #[test]
    fn survival_is_monotone_under_more_failures(
        h in 2usize..=4,
        pairs in proptest::collection::vec((any::<u16>(), any::<u16>()), 1..24),
        split in any::<usize>(),
    ) {
        // Adding failures can only keep or reduce the survivor count.
        let topo = Dragonfly::balanced(h);
        let rings = HamiltonianRing::embed_disjoint(&topo, h);
        let n = topo.num_routers();
        let failed: Vec<_> = pairs
            .iter()
            .map(|&(a, b)| (RouterId::from(a as usize % n), RouterId::from(b as usize % n)))
            .collect();
        let cut = split % (failed.len() + 1);
        let fewer = HamiltonianRing::surviving_rings(&topo, &rings, &failed[..cut]);
        let more = HamiltonianRing::surviving_rings(&topo, &rings, &failed);
        prop_assert!(more <= fewer, "survivors grew from {fewer} to {more}");
    }

    #[test]
    fn ring_positions_are_cyclic_permutations(h in h_values(), idx_seed in any::<u64>()) {
        let topo = Dragonfly::balanced(h);
        let idx = (idx_seed as usize) % h;
        let ring = HamiltonianRing::embedded(&topo, idx);
        prop_assert!(ring.validate(&topo).is_ok());
        let start = RouterId::from((idx_seed as usize / 3) % topo.num_routers());
        // following next_router n times returns to start exactly after
        // ring.len() steps and not before (single cycle)
        let mut cur = ring.next_router(start);
        let mut steps = 1;
        while cur != start {
            cur = ring.next_router(cur);
            steps += 1;
            prop_assert!(steps <= ring.len());
        }
        prop_assert_eq!(steps, ring.len());
    }
}
