//! # ofar-core
//!
//! The public API of the OFAR reproduction (García et al., *On-the-Fly
//! Adaptive Routing in High-Radix Hierarchical Networks*, ICPP 2012):
//! simulation configuration, experiment runners, per-figure regeneration
//! and the analytic throughput bounds of §III.
//!
//! ## Quickstart
//!
//! ```
//! use ofar_core::prelude::*;
//!
//! // A small Dragonfly (h = 2, 72 nodes) with the paper's router model.
//! let cfg = SimConfig::paper(2);
//! let point = steady_state(
//!     cfg,
//!     MechanismKind::Ofar,
//!     &TrafficSpec::adversarial(2),
//!     0.2,                       // offered load, phits/(node·cycle)
//!     SteadyOpts { warmup: 1_000, measure: 2_000 },
//!     42,
//! );
//! assert!(point.throughput > 0.15, "OFAR must sustain ADV+2 at 0.2");
//! ```
//!
//! Every runner refuses to start a configuration that the static
//! channel-dependency-graph verifier ([`verify`]) does not certify as
//! deadlock-free; build with the `audit` feature to additionally police
//! the engine's conservation laws at runtime.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod experiments;
pub mod faults;
pub mod overload;
pub mod run;
pub mod store;
pub mod table;
pub mod theory;

pub use checkpoint::{Checkpoint, CheckpointPolicy};
pub use experiments::Scale;
pub use faults::{
    ber_burst, ber_sweep, degradation, degradation_sweep, BerPoint, DegradationPoint,
};
pub use overload::{overload_point, overload_sweep, OverloadOpts, OverloadPoint};
pub use run::{
    burst, burst_comparison, burst_faulted, burst_net, derive_watchdog, load_sweep,
    replay_snapshot, saturation_throughput, steady_state, steady_state_checkpointed,
    steady_state_tuned, transient, BurstResult, CycleTrace, ReplayReport, RunConfig, StallKind,
    SteadyOpts, SteadyPoint, TransientBucket, TransientOpts,
};
pub use store::{
    point_from_line, point_key, point_to_line, resumable_load_sweep, write_atomic_text, ResultStore,
};
pub use table::Table;

// Re-export the sub-crates so downstream users need a single dependency.
pub use ofar_engine as engine;
pub use ofar_routing as routing;
pub use ofar_topology as topology;
pub use ofar_traffic as traffic;
pub use ofar_verify as verify;

/// Everything needed for typical experiments.
pub mod prelude {
    pub use crate::checkpoint::{Checkpoint, CheckpointPolicy};
    pub use crate::experiments::{self, Scale};
    pub use crate::faults::{
        ber_burst, ber_sweep, degradation, degradation_sweep, BerPoint, DegradationPoint,
    };
    pub use crate::overload::{overload_point, overload_sweep, OverloadOpts, OverloadPoint};
    pub use crate::run::{
        burst, burst_comparison, burst_faulted, burst_net, derive_watchdog, load_sweep,
        replay_snapshot, saturation_throughput, steady_state, steady_state_checkpointed,
        steady_state_tuned, transient, BurstResult, CycleTrace, ReplayReport, RunConfig, StallKind,
        SteadyOpts, SteadyPoint, TransientBucket, TransientOpts,
    };
    pub use crate::store::{resumable_load_sweep, ResultStore};
    pub use crate::table::Table;
    pub use crate::theory;
    pub use ofar_engine::{
        jain_index, random_global_links, source_histogram, AuditReport, AuditViolation, FaultKind,
        FaultPlan, Network, Policy, RingMode, SimConfig, SnapshotError, Stats, StatsWindow,
    };
    pub use ofar_routing::{
        DependencyDecl, Mechanism, MechanismKind, MisrouteThreshold, OfarConfig, OfarPolicy,
        PbConfig, RingGuard,
    };
    pub use ofar_topology::{
        Dragonfly, DragonflyParams, GroupId, HamiltonianRing, NodeId, RouterId,
    };
    pub use ofar_traffic::{Bernoulli, TrafficGen, TrafficPattern, TrafficSpec};
    pub use ofar_verify::{
        certify, certify_cached, conformance, conformance_cached, Certificate, ConformanceError,
        ConformanceReport, TransitionWitness, VerifyError,
    };
}
