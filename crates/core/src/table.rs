//! Minimal aligned-text / CSV table rendering for experiment reports.

use std::fmt;

/// A titled table of string cells.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (figure id + description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; ragged rows are padded when rendered.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Append a row of displayable values.
    pub fn push_display<T: fmt::Display>(&mut self, cells: &[T]) {
        self.push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Render as CSV (title as a comment line).
    pub fn to_csv(&self) -> String {
        let mut out = format!("# {}\n{}\n", self.title, self.headers.join(","));
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            writeln!(f, "{}", line.trim_end())
        };
        fmt_row(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 2).sum();
        writeln!(f, "{}", "-".repeat(total.saturating_sub(2)))?;
        for row in &self.rows {
            fmt_row(f, row)?;
        }
        Ok(())
    }
}

/// Format a float with 4 decimals (throughput in phits/node/cycle).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Format a float with 1 decimal (latencies in cycles).
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text_and_csv() {
        let mut t = Table::new("Fig X", &["mech", "load", "thr"]);
        t.push(vec!["OFAR".into(), "0.10".into(), f4(0.0999)]);
        t.push(vec!["PB".into(), "0.10".into(), f4(0.08)]);
        let s = t.to_string();
        assert!(s.contains("== Fig X =="));
        assert!(s.contains("OFAR"));
        assert!(s.contains("0.0999"));
        let csv = t.to_csv();
        assert!(csv.starts_with("# Fig X\nmech,load,thr\n"));
        assert!(csv.contains("PB,0.10,0.0800"));
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push(vec!["1".into()]);
        let s = t.to_string();
        assert!(s.contains('1'));
    }

    #[test]
    fn float_helpers() {
        assert_eq!(f4(0.5), "0.5000");
        assert_eq!(f1(123.456), "123.5");
    }
}
