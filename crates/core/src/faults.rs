//! Degraded-operation experiment (§VII): how throughput, latency and
//! delivered fraction decay as global links fail, per mechanism and per
//! escape-ring count.
//!
//! Each point is a burst run: every node enqueues a fixed backlog, a
//! seeded [`FaultPlan`] kills `failures` random global links shortly
//! after injection starts (so the drain/requeue path of in-flight phits
//! is exercised, not just cold routing tables), and the network drains —
//! or the watchdog reports *why* it could not ([`StallKind`]).

use crate::run::{burst_faulted, derive_watchdog, BurstResult, RunConfig, StallKind};
use ofar_engine::{FaultPlan, SimConfig};
use ofar_routing::MechanismKind;
use ofar_topology::Dragonfly;
use ofar_traffic::TrafficSpec;
use rayon::prelude::*;

/// Cycle at which the scheduled link failures strike: late enough that
/// the burst is in full flight (buffers occupied, phits on the dead
/// links), early enough that most of the drain happens degraded.
pub const FAIL_AT: u64 = 200;

/// One point of a degradation curve.
#[derive(Clone, Debug)]
pub struct DegradationPoint {
    /// Routing mechanism.
    pub mechanism: MechanismKind,
    /// Escape rings configured (only meaningful for the OFAR variants).
    pub rings: usize,
    /// Global links killed at cycle [`FAIL_AT`].
    pub failures: usize,
    /// Delivered packets / injected packets (1.0 = full delivery).
    pub delivered_fraction: f64,
    /// Accepted throughput over the drain, phits/(node·cycle).
    pub throughput: f64,
    /// Mean packet latency in cycles.
    pub avg_latency: f64,
    /// Cycles to drain (`None` if the watchdog fired).
    pub cycles: Option<u64>,
    /// Watchdog diagnosis when the burst did not drain.
    pub stall: Option<StallKind>,
}

impl DegradationPoint {
    /// True when every injected packet was delivered.
    pub fn complete(&self) -> bool {
        (self.delivered_fraction - 1.0).abs() < f64::EPSILON
    }
}

/// Run one degradation point: a burst of `packets_per_node` per node
/// under `spec`, with `failures` seeded-random global links failing at
/// cycle [`FAIL_AT`] and `rings` escape rings configured.
pub fn degradation(
    cfg: SimConfig,
    kind: MechanismKind,
    spec: &TrafficSpec,
    packets_per_node: usize,
    rings: usize,
    failures: usize,
    seed: u64,
) -> DegradationPoint {
    let mut cfg = cfg;
    cfg.escape_rings = rings.max(1);
    let topo = Dragonfly::new(cfg.params);
    let plan = FaultPlan::random_global_failures(&topo, failures, FAIL_AT, seed ^ 0xFA17);
    let r = burst_faulted(
        cfg,
        kind,
        spec,
        packets_per_node,
        seed,
        plan,
        RunConfig::default(),
    );
    let injected = (topo.num_nodes() * packets_per_node) as f64;
    point_from(
        kind,
        rings,
        failures,
        cfg.packet_size,
        topo.num_nodes(),
        injected,
        r,
    )
}

fn point_from(
    mechanism: MechanismKind,
    rings: usize,
    failures: usize,
    packet_size: usize,
    nodes: usize,
    injected: f64,
    r: BurstResult,
) -> DegradationPoint {
    // Throughput over the drain: delivered phits per node-cycle. For a
    // watchdog-aborted run, charge the cycles actually simulated
    // (derived from the abort condition is unavailable here; latency and
    // delivered fraction carry the signal instead).
    let throughput = match r.cycles {
        Some(c) if c > 0 => (r.delivered * packet_size as u64) as f64 / (c as f64 * nodes as f64),
        _ => 0.0,
    };
    DegradationPoint {
        mechanism,
        rings,
        failures,
        delivered_fraction: r.delivered as f64 / injected,
        throughput,
        avg_latency: r.avg_latency,
        cycles: r.cycles,
        stall: r.stall,
    }
}

/// Full degradation sweep: the cross product of `mechanisms` ×
/// `ring_counts` × `failure_counts`, each point an independent seeded
/// simulation, run in parallel. Mechanisms without an escape ring are
/// swept only at the first ring count (the knob does not affect them).
#[allow(clippy::too_many_arguments)]
pub fn degradation_sweep(
    cfg: SimConfig,
    mechanisms: &[MechanismKind],
    spec: &TrafficSpec,
    packets_per_node: usize,
    ring_counts: &[usize],
    failure_counts: &[usize],
    seed: u64,
) -> Vec<DegradationPoint> {
    let mut jobs: Vec<(MechanismKind, usize, usize)> = Vec::new();
    for &kind in mechanisms {
        let rings: &[usize] = if kind.needs_ring() {
            ring_counts
        } else {
            &ring_counts[..1]
        };
        for &r in rings {
            for &f in failure_counts {
                jobs.push((kind, r, f));
            }
        }
    }
    jobs.par_iter()
        .map(|&(kind, rings, failures)| {
            degradation(
                cfg,
                kind,
                spec,
                packets_per_node,
                rings,
                failures,
                seed.wrapping_add(failures as u64 * 7919),
            )
        })
        .collect()
}

/// The derived watchdog for `cfg` — re-exported here so callers sizing
/// degradation runs can reason about worst-case wall time.
pub fn watchdog_for(cfg: &SimConfig) -> u64 {
    derive_watchdog(cfg)
}

// ---------------------------------------------------------------------
// Transient faults: BER sweep over the link-level retransmission layer
// ---------------------------------------------------------------------

/// One point of a BER sweep: a burst drained over uniformly lossy links,
/// with the link layer (CRC + seq/ack replay, see `ofar_engine::llr`)
/// recovering every corrupted or dropped transfer.
#[derive(Clone, Debug)]
pub struct BerPoint {
    /// Routing mechanism.
    pub mechanism: MechanismKind,
    /// Per-phit bit-error probability applied to every link.
    pub ber: f64,
    /// Delivered packets / injected packets (1.0 = full delivery).
    pub delivered_fraction: f64,
    /// Delivered (goodput) throughput over the drain, phits/(node·cycle).
    /// Retransmitted phits do not count — only unique deliveries.
    pub throughput: f64,
    /// Mean packet latency in cycles.
    pub avg_latency: f64,
    /// 99th-percentile packet latency in cycles — the retry/backoff tail.
    pub p99_latency: f64,
    /// Cycles to drain (`None` if the watchdog fired).
    pub cycles: Option<u64>,
    /// Link-level retransmissions over the run.
    pub retransmits: u64,
    /// Transfers discarded at a receiver on a CRC mismatch.
    pub crc_drops: u64,
    /// Transfers lost outright on the wire.
    pub wire_drops: u64,
    /// Links escalated to fail-stop after exhausting the retry budget.
    pub escalations: u64,
    /// Packets ejected twice — must be 0 (the link layer dedups).
    pub duplicate_deliveries: u64,
    /// Watchdog diagnosis when the burst did not drain.
    pub stall: Option<StallKind>,
}

impl BerPoint {
    /// True when every injected packet was delivered exactly once.
    pub fn complete(&self) -> bool {
        (self.delivered_fraction - 1.0).abs() < f64::EPSILON && self.duplicate_deliveries == 0
    }
}

/// Run one BER point: a burst of `packets_per_node` per node under
/// `spec`, every link suffering independent per-phit bit errors with
/// probability `ber`. A nonzero `ber` auto-enables the link-level
/// retransmission layer.
pub fn ber_burst(
    cfg: SimConfig,
    kind: MechanismKind,
    spec: &TrafficSpec,
    packets_per_node: usize,
    ber: f64,
    seed: u64,
) -> BerPoint {
    let cfg = cfg.with_ber(ber);
    let topo = Dragonfly::new(cfg.params);
    let r = burst_faulted(
        cfg,
        kind,
        spec,
        packets_per_node,
        seed,
        FaultPlan::default(),
        RunConfig::default(),
    );
    let injected = (topo.num_nodes() * packets_per_node) as f64;
    let throughput = match r.cycles {
        Some(c) if c > 0 => {
            (r.delivered * cfg.packet_size as u64) as f64 / (c as f64 * topo.num_nodes() as f64)
        }
        _ => 0.0,
    };
    BerPoint {
        mechanism: kind,
        ber,
        delivered_fraction: r.delivered as f64 / injected,
        throughput,
        avg_latency: r.avg_latency,
        p99_latency: r.p99_latency,
        cycles: r.cycles,
        retransmits: r.stats.llr_retransmits,
        crc_drops: r.stats.llr_crc_drops,
        wire_drops: r.stats.llr_wire_drops,
        escalations: r.stats.llr_escalations,
        duplicate_deliveries: r.stats.duplicate_deliveries,
        stall: r.stall,
    }
}

/// Full BER sweep: the cross product of `mechanisms` × `bers`, each
/// point an independent seeded simulation, run in parallel.
pub fn ber_sweep(
    cfg: SimConfig,
    mechanisms: &[MechanismKind],
    spec: &TrafficSpec,
    packets_per_node: usize,
    bers: &[f64],
    seed: u64,
) -> Vec<BerPoint> {
    let mut jobs: Vec<(MechanismKind, f64)> = Vec::new();
    for &kind in mechanisms {
        for &b in bers {
            jobs.push((kind, b));
        }
    }
    jobs.par_iter()
        .enumerate()
        .map(|(i, &(kind, ber))| {
            ber_burst(
                cfg,
                kind,
                spec,
                packets_per_node,
                ber,
                seed.wrapping_add(i as u64 * 7919),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ofar_survives_h_minus_one_failures() {
        // h = 2: one failed global link, k = h = 2 embedded rings.
        let p = degradation(
            SimConfig::paper(2),
            MechanismKind::Ofar,
            &TrafficSpec::uniform(),
            2,
            2,
            1,
            5,
        );
        assert!(p.complete(), "OFAR must deliver everything: {p:?}");
        assert!(p.stall.is_none());
        assert!(p.cycles.is_some());
        assert!(p.avg_latency > 0.0);
    }

    #[test]
    fn zero_failures_matches_plain_burst() {
        let p = degradation(
            SimConfig::paper(2),
            MechanismKind::Ofar,
            &TrafficSpec::uniform(),
            2,
            1,
            0,
            9,
        );
        let r = crate::run::burst(
            MechanismKind::Ofar.adapt_config({
                let mut c = SimConfig::paper(2);
                c.escape_rings = 1;
                c
            }),
            MechanismKind::Ofar,
            &TrafficSpec::uniform(),
            2,
            9,
        );
        assert_eq!(p.cycles, r.cycles);
        assert_eq!(p.delivered_fraction, 1.0);
    }

    #[test]
    fn ofar_delivers_fully_under_percent_level_ber() {
        let p = ber_burst(
            SimConfig::paper(2),
            MechanismKind::Ofar,
            &TrafficSpec::uniform(),
            2,
            1e-2,
            7,
        );
        assert!(p.complete(), "lossy burst must fully drain: {p:?}");
        assert!(p.retransmits > 0, "1% BER must force retries: {p:?}");
        assert_eq!(p.escalations, 0);
        assert_eq!(p.stall, None);
        // every loss (drop or CRC discard) was recovered by exactly one
        // retransmission
        assert_eq!(p.retransmits, p.wire_drops + p.crc_drops);
    }

    #[test]
    fn zero_ber_disables_the_link_layer() {
        let p = ber_burst(
            SimConfig::paper(2),
            MechanismKind::Min,
            &TrafficSpec::uniform(),
            1,
            0.0,
            3,
        );
        assert!(p.complete());
        assert_eq!(p.retransmits, 0);
        assert_eq!(p.crc_drops + p.wire_drops, 0);
    }

    #[test]
    fn sweep_covers_the_grid() {
        let pts = degradation_sweep(
            SimConfig::paper(2),
            &[MechanismKind::Min, MechanismKind::Ofar],
            &TrafficSpec::uniform(),
            1,
            &[1, 2],
            &[0, 1],
            3,
        );
        // MIN collapses to one ring count; OFAR sweeps both.
        assert_eq!(pts.len(), 2 + 4);
        assert!(pts.iter().all(|p| p.delivered_fraction <= 1.0));
    }
}
