//! Crash-resilient experiment results: a content-addressed store with a
//! manifest, written via atomic tmp-file + rename.
//!
//! A sweep writes each completed point as an *object* — a file named by
//! the CRC-32 of its content under `objects/` — and records
//! `content-hash → point-key` in a `MANIFEST` file, itself rewritten
//! atomically on every update. A killed suite therefore leaves only
//! whole files behind; resuming reads the manifest, verifies each
//! object's checksum, and re-runs exactly the missing (or corrupt)
//! points. Because every runner is deterministic in its key, the final
//! result files of an interrupted-then-resumed sweep are byte-identical
//! to an uninterrupted run — the CI kill-and-resume job asserts this.
//!
//! The store is deliberately dumb: string keys, string values, no
//! background state. Point (de)serialization for [`SteadyPoint`] is
//! provided alongside ([`point_to_line`] / [`point_from_line`]) using
//! exact bit patterns for the floating-point fields, so a stored point
//! is the point, not a rounding of it.

use crate::run::{steady_state, SteadyOpts, SteadyPoint};
use ofar_engine::{config_fingerprint, crc32, SimConfig};
use ofar_routing::MechanismKind;
use ofar_traffic::TrafficSpec;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A directory of completed experiment points: `MANIFEST` plus
/// content-addressed object files. See the module docs.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    /// key → content hash, mirrored from `MANIFEST`.
    index: BTreeMap<String, u32>,
}

impl ResultStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(root.join("objects"))?;
        let mut index = BTreeMap::new();
        if let Ok(manifest) = std::fs::read_to_string(root.join("MANIFEST")) {
            for line in manifest.lines() {
                // Unparseable lines (a torn write from a crashed process
                // predating the atomic rewrite) are skipped, not fatal:
                // their points simply re-run.
                if let Some((hash, key)) = line.split_once('\t') {
                    if let Ok(h) = u32::from_str_radix(hash, 16) {
                        index.insert(key.to_string(), h);
                    }
                }
            }
        }
        Ok(Self { root, index })
    }

    /// Number of completed points recorded in the manifest.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no completed points.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn object_path(&self, hash: u32) -> PathBuf {
        self.root.join("objects").join(format!("{hash:08x}.res"))
    }

    /// Fetch a completed point's content, verifying its checksum. A
    /// missing or corrupt object (truncated write at kill time) returns
    /// `None` — the caller recomputes and overwrites it.
    pub fn get(&self, key: &str) -> Option<String> {
        let hash = *self.index.get(key)?;
        let content = std::fs::read_to_string(self.object_path(hash)).ok()?;
        (crc32(content.as_bytes()) == hash).then_some(content)
    }

    /// Record a completed point. The object file lands first (atomic
    /// tmp + rename), then the manifest is rewritten the same way, so a
    /// kill between the two leaves an orphan object but never a manifest
    /// entry pointing at nothing durable.
    pub fn put(&mut self, key: &str, content: &str) -> std::io::Result<()> {
        assert!(
            !key.contains('\t') && !key.contains('\n'),
            "store keys must be single-line, tab-free"
        );
        let hash = crc32(content.as_bytes());
        write_atomic_text(&self.object_path(hash), content)?;
        self.index.insert(key.to_string(), hash);
        let mut manifest = String::new();
        for (k, h) in &self.index {
            manifest.push_str(&format!("{h:08x}\t{k}\n"));
        }
        write_atomic_text(&self.root.join("MANIFEST"), &manifest)
    }
}

/// Write `content` to `path` through a sibling temporary file and an
/// atomic rename, so a crash never leaves a torn file at the final name.
pub fn write_atomic_text(path: &Path, content: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(content.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Canonical key of one sweep point: every input that affects the
/// result, including the config/mechanism fingerprint and the exact bit
/// pattern of the offered load.
pub fn point_key(
    cfg: &SimConfig,
    kind: MechanismKind,
    spec: &TrafficSpec,
    load: f64,
    opts: SteadyOpts,
    seed: u64,
) -> String {
    let cfg = kind.adapt_config(*cfg);
    format!(
        "cfg={:08x} spec={} load={:016x} warmup={} measure={} seed={}",
        config_fingerprint(&cfg, kind.name()),
        spec.label(),
        load.to_bits(),
        opts.warmup,
        opts.measure,
        seed
    )
}

/// Serialize a [`SteadyPoint`] to one line, floats as exact bit
/// patterns. Inverse: [`point_from_line`].
pub fn point_to_line(p: &SteadyPoint) -> String {
    format!(
        "v1 {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {} {}",
        p.load.to_bits(),
        p.throughput.to_bits(),
        p.avg_latency.to_bits(),
        p.p50_latency.to_bits(),
        p.p99_latency.to_bits(),
        p.avg_hops.to_bits(),
        p.misroute_rate.to_bits(),
        p.ring_entries,
        p.delivered
    )
}

/// Parse a line written by [`point_to_line`]; `None` on any mismatch.
pub fn point_from_line(line: &str) -> Option<SteadyPoint> {
    let mut it = line.split_ascii_whitespace();
    if it.next()? != "v1" {
        return None;
    }
    let mut f =
        || -> Option<f64> { Some(f64::from_bits(u64::from_str_radix(it.next()?, 16).ok()?)) };
    let load = f()?;
    let throughput = f()?;
    let avg_latency = f()?;
    let p50_latency = f()?;
    let p99_latency = f()?;
    let avg_hops = f()?;
    let misroute_rate = f()?;
    let ring_entries = it.next()?.parse().ok()?;
    let delivered = it.next()?.parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some(SteadyPoint {
        load,
        throughput,
        avg_latency,
        p50_latency,
        p99_latency,
        avg_hops,
        misroute_rate,
        ring_entries,
        delivered,
    })
}

/// [`crate::run::load_sweep`] with crash resilience: each completed
/// point is recorded in `store` as it finishes, and points already
/// recorded (from a previous, possibly killed, invocation) are loaded
/// instead of re-simulated. Runs sequentially — resumability is about
/// surviving kills deterministically, and the per-point seeds match
/// [`crate::run::load_sweep`] exactly, so the numbers are identical to
/// the parallel sweep's.
///
/// `after_each(i)` fires after point `i` is durably recorded; the CI
/// kill-and-resume smoke job uses it to die mid-sweep on purpose.
#[allow(clippy::too_many_arguments)]
pub fn resumable_load_sweep(
    store: &mut ResultStore,
    cfg: SimConfig,
    kind: MechanismKind,
    spec: &TrafficSpec,
    loads: &[f64],
    opts: SteadyOpts,
    seed: u64,
    mut after_each: impl FnMut(usize),
) -> Vec<SteadyPoint> {
    let mut out = Vec::with_capacity(loads.len());
    for (i, &load) in loads.iter().enumerate() {
        let point_seed = seed.wrapping_add(i as u64 * 7919);
        let key = point_key(&cfg, kind, spec, load, opts, point_seed);
        let point = match store.get(&key).and_then(|s| point_from_line(&s)) {
            Some(p) => p,
            None => {
                let p = steady_state(cfg, kind, spec, load, opts, point_seed);
                store
                    .put(&key, &point_to_line(&p))
                    .expect("result store write failed");
                p
            }
        };
        out.push(point);
        after_each(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ofar-store-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn put_get_roundtrip_and_reopen() {
        let dir = tmpdir("roundtrip");
        let mut s = ResultStore::open(&dir).unwrap();
        assert!(s.is_empty());
        s.put("key a", "value a").unwrap();
        s.put("key b", "value b").unwrap();
        assert_eq!(s.get("key a").as_deref(), Some("value a"));
        let s2 = ResultStore::open(&dir).unwrap();
        assert_eq!(s2.len(), 2);
        assert_eq!(s2.get("key b").as_deref(), Some("value b"));
        assert_eq!(s2.get("key c"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_object_reads_as_missing() {
        let dir = tmpdir("corrupt");
        let mut s = ResultStore::open(&dir).unwrap();
        s.put("k", "payload").unwrap();
        let hash = crc32(b"payload");
        std::fs::write(s.object_path(hash), "torn!").unwrap();
        assert_eq!(s.get("k"), None, "corrupt object must not be served");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn point_line_roundtrip_is_bit_exact() {
        let p = SteadyPoint {
            load: 0.3,
            throughput: 0.2987654321,
            avg_latency: 123.456,
            p50_latency: 101.0,
            p99_latency: 999.0,
            avg_hops: 3.75,
            misroute_rate: 0.0625,
            ring_entries: 42,
            delivered: 123_456,
        };
        let line = point_to_line(&p);
        let q = point_from_line(&line).unwrap();
        assert_eq!(p.load.to_bits(), q.load.to_bits());
        assert_eq!(p.throughput.to_bits(), q.throughput.to_bits());
        assert_eq!(p.misroute_rate.to_bits(), q.misroute_rate.to_bits());
        assert_eq!(p.ring_entries, q.ring_entries);
        assert_eq!(p.delivered, q.delivered);
        assert_eq!(point_from_line("v0 junk"), None);
        assert_eq!(point_from_line(&format!("{line} extra")), None);
    }
}
