//! One function per figure of the paper's evaluation (§VI, §VII).
//!
//! Every function regenerates the corresponding figure's data as a
//! [`Table`] — same axes, same mechanisms, same traffic. Scale is
//! controlled by [`Scale`]: the default regenerates every figure on an
//! `h = 4` network in minutes; `Scale::paper()` (or `OFAR_FULL=1`) uses
//! the paper's `h = 6`, 5,256-node network and full run lengths.

use crate::run::{burst_comparison, load_sweep, transient, SteadyOpts, TransientOpts};
use crate::table::{f1, f4, Table};
use crate::theory;
use ofar_engine::{RingMode, SimConfig};
use ofar_routing::MechanismKind;
use ofar_traffic::TrafficSpec;
use rayon::prelude::*;

/// Experiment scale knobs.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Dragonfly `h` (paper: 6).
    pub h: usize,
    /// Steady-state warmup/measurement lengths.
    pub steady: SteadyOpts,
    /// Transient experiment windows.
    pub transient: TransientOpts,
    /// Packets per node in burst runs (paper: 2000).
    pub burst_packets: usize,
    /// Points per load sweep.
    pub sweep_points: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Scale {
    /// Default bench scale: `h = 4` (1,056 nodes), full curve shapes in
    /// minutes on a single core.
    pub fn default_bench() -> Self {
        Self {
            h: 4,
            steady: SteadyOpts {
                warmup: 6_000,
                measure: 10_000,
            },
            transient: TransientOpts {
                warmup: 8_000,
                post: 8_000,
                pre_window: 1_600,
                bucket: 200,
                drain: 6_000,
            },
            burst_packets: 50,
            sweep_points: 7,
            seed: 2012,
        }
    }

    /// The paper's scale: `h = 6`, 5,256 nodes, 2000-packet bursts.
    pub fn paper() -> Self {
        Self {
            h: 6,
            steady: SteadyOpts {
                warmup: 30_000,
                measure: 50_000,
            },
            transient: TransientOpts {
                warmup: 30_000,
                post: 20_000,
                pre_window: 3_000,
                bucket: 250,
                drain: 10_000,
            },
            burst_packets: 2_000,
            sweep_points: 10,
            seed: 2012,
        }
    }

    /// Tiny scale for CI smoke tests (`h = 2`, 72 nodes).
    pub fn quick() -> Self {
        Self {
            h: 2,
            steady: SteadyOpts {
                warmup: 1_500,
                measure: 2_500,
            },
            transient: TransientOpts {
                warmup: 2_000,
                post: 1_500,
                pre_window: 500,
                bucket: 250,
                drain: 2_000,
            },
            burst_packets: 5,
            sweep_points: 4,
            seed: 2012,
        }
    }

    /// Read the scale from `OFAR_QUICK`, `OFAR_FULL` and `OFAR_H`
    /// environment variables.
    pub fn from_env() -> Self {
        let mut s = if std::env::var_os("OFAR_FULL").is_some() {
            Self::paper()
        } else if std::env::var_os("OFAR_QUICK").is_some() {
            Self::quick()
        } else {
            Self::default_bench()
        };
        if let Ok(h) = std::env::var("OFAR_H") {
            s.h = h.parse().expect("OFAR_H must be an integer ≥ 2");
        }
        s
    }

    /// Base simulator configuration at this scale.
    pub fn cfg(&self) -> SimConfig {
        SimConfig::paper(self.h).with_seed(self.seed)
    }

    /// `n` evenly spaced loads in `(0, max]`.
    pub fn loads(&self, max: f64) -> Vec<f64> {
        let n = self.sweep_points;
        (1..=n).map(|i| max * i as f64 / n as f64).collect()
    }
}

/// Sweep several mechanisms over a load range under one traffic spec,
/// long-format rows `(mech, load, latency, throughput, misroutes/pkt,
/// ring entries)`.
fn sweep_table(
    title: &str,
    scale: &Scale,
    cfg: SimConfig,
    mechs: &[MechanismKind],
    spec: &TrafficSpec,
    max_load: f64,
) -> Table {
    let loads = scale.loads(max_load);
    let mut t = Table::new(
        title,
        &[
            "mech",
            "load",
            "latency",
            "p99",
            "throughput",
            "misroutes_per_pkt",
            "ring_entries",
        ],
    );
    let results: Vec<_> = mechs
        .par_iter()
        .map(|&kind| {
            (
                kind,
                load_sweep(cfg, kind, spec, &loads, scale.steady, scale.seed),
            )
        })
        .collect();
    for (kind, points) in results {
        for p in points {
            t.push(vec![
                kind.name().to_string(),
                format!("{:.3}", p.load),
                f1(p.avg_latency),
                f1(p.p99_latency),
                f4(p.throughput),
                format!("{:.3}", p.misroute_rate),
                p.ring_entries.to_string(),
            ]);
        }
    }
    t
}

/// **Fig. 2b** — Valiant saturation throughput vs adversarial offset
/// (§III): reproduces the dips at offsets `n·h` that motivate local
/// misrouting, next to the analytic estimate of `theory`.
pub fn fig2b(scale: &Scale) -> Table {
    let cfg = scale.cfg();
    let offsets: Vec<usize> = (1..=2 * scale.h).collect();
    let mut t = Table::new(
        format!("Fig 2b: VAL throughput vs ADV offset (h={})", scale.h),
        &[
            "offset",
            "throughput",
            "analytic_estimate",
            "l2_concentration",
        ],
    );
    let rows: Vec<_> = offsets
        .par_iter()
        .map(|&n| {
            let p = crate::run::steady_state(
                cfg,
                MechanismKind::Valiant,
                &TrafficSpec::adversarial(n),
                1.0,
                scale.steady,
                scale.seed.wrapping_add(n as u64),
            );
            (n, p.throughput)
        })
        .collect();
    for (n, thr) in rows {
        t.push(vec![
            format!("+{n}"),
            f4(thr),
            f4(theory::valiant_adv_estimate(&cfg.params, n)),
            theory::adv_l2_concentration(&cfg.params, n).to_string(),
        ]);
    }
    t
}

/// **Fig. 3** — latency and throughput vs offered load under uniform
/// traffic (MIN, PB, OFAR, OFAR-L; VAL omitted as in the paper).
pub fn fig3(scale: &Scale) -> Table {
    sweep_table(
        &format!("Fig 3: uniform traffic (UN), h={}", scale.h),
        scale,
        scale.cfg(),
        &[
            MechanismKind::Min,
            MechanismKind::Pb,
            MechanismKind::Ofar,
            MechanismKind::OfarL,
        ],
        &TrafficSpec::uniform(),
        0.9,
    )
}

/// **Fig. 4** — ADV+2 (VAL reference instead of MIN, as in the paper).
pub fn fig4(scale: &Scale) -> Table {
    sweep_table(
        &format!("Fig 4: adversarial +2 (ADV+2), h={}", scale.h),
        scale,
        scale.cfg(),
        &[
            MechanismKind::Valiant,
            MechanismKind::Pb,
            MechanismKind::Ofar,
            MechanismKind::OfarL,
        ],
        &TrafficSpec::adversarial(2),
        0.55,
    )
}

/// **Fig. 5** — the worst case ADV+h, where VAL/PB/OFAR-L hit the `1/h`
/// local-link wall and only OFAR stays near the global-link bound.
pub fn fig5(scale: &Scale) -> Table {
    sweep_table(
        &format!(
            "Fig 5: adversarial +h (ADV+{0}), h={0} — 1/h wall at {1:.3}",
            scale.h,
            1.0 / scale.h as f64
        ),
        scale,
        scale.cfg(),
        &[
            MechanismKind::Valiant,
            MechanismKind::Pb,
            MechanismKind::Ofar,
            MechanismKind::OfarL,
        ],
        &TrafficSpec::adversarial(scale.h),
        0.55,
    )
}

/// **Fig. 6** — transient response: latency (by send cycle) around a
/// traffic-pattern switch, for PB, OFAR and OFAR-L, in the paper's three
/// cases (UN→ADV+2 and ADV+2→UN at 0.14; ADV+2→ADV+h at 0.12).
pub fn fig6(scale: &Scale) -> Table {
    let cfg = scale.cfg();
    let h = scale.h;
    let cases: [(&str, TrafficSpec, TrafficSpec, f64); 3] = [
        (
            "UN->ADV+2",
            TrafficSpec::uniform(),
            TrafficSpec::adversarial(2),
            0.14,
        ),
        (
            "ADV+2->UN",
            TrafficSpec::adversarial(2),
            TrafficSpec::uniform(),
            0.14,
        ),
        (
            "ADV+2->ADV+h",
            TrafficSpec::adversarial(2),
            TrafficSpec::adversarial(h),
            0.12,
        ),
    ];
    let mechs = [MechanismKind::Pb, MechanismKind::Ofar, MechanismKind::OfarL];
    let mut t = Table::new(
        format!("Fig 6: transient latency evolution, h={h}"),
        &["case", "mech", "cycle_rel", "latency", "sent"],
    );
    let mut jobs = Vec::new();
    for (name, before, after, load) in &cases {
        for &mech in &mechs {
            jobs.push((*name, mech, before.clone(), after.clone(), *load));
        }
    }
    let results: Vec<_> = jobs
        .par_iter()
        .map(|(name, mech, before, after, load)| {
            let series = transient(
                cfg,
                *mech,
                before,
                after,
                *load,
                scale.transient,
                scale.seed,
            );
            (*name, *mech, series)
        })
        .collect();
    for (name, mech, series) in results {
        for b in series {
            t.push(vec![
                name.to_string(),
                mech.name().to_string(),
                b.start.to_string(),
                f1(b.avg_latency),
                b.sent.to_string(),
            ]);
        }
    }
    t
}

/// **Fig. 7** — burst consumption time, normalized to PB (lower is
/// better): UN, ADV+2, ADV+h and the three mixes.
pub fn fig7(scale: &Scale) -> Table {
    let cfg = scale.cfg();
    let h = scale.h;
    let patterns = [
        TrafficSpec::uniform(),
        TrafficSpec::adversarial(2),
        TrafficSpec::adversarial(h),
        TrafficSpec::mix1(h),
        TrafficSpec::mix2(h),
        TrafficSpec::mix3(h),
    ];
    let mechs = [MechanismKind::Pb, MechanismKind::Ofar, MechanismKind::OfarL];
    let mut t = Table::new(
        format!(
            "Fig 7: burst consumption time ({} pkts/node), normalized to PB",
            scale.burst_packets
        ),
        &["pattern", "mech", "cycles", "normalized_to_PB"],
    );
    let results: Vec<_> = patterns
        .par_iter()
        .map(|spec| {
            (
                spec.label(),
                burst_comparison(cfg, &mechs, spec, scale.burst_packets, scale.seed),
            )
        })
        .collect();
    for (label, runs) in results {
        let pb_cycles = runs
            .iter()
            .find(|(k, _)| *k == MechanismKind::Pb)
            .and_then(|(_, r)| r.cycles)
            .unwrap_or(0);
        for (kind, r) in runs {
            let (cycles_s, norm_s) = match r.cycles {
                Some(c) if pb_cycles > 0 => {
                    (c.to_string(), format!("{:.3}", c as f64 / pb_cycles as f64))
                }
                Some(c) => (c.to_string(), "-".to_string()),
                None => ("STALLED".to_string(), "-".to_string()),
            };
            t.push(vec![
                label.clone(),
                kind.name().to_string(),
                cycles_s,
                norm_s,
            ]);
        }
    }
    t
}

/// **Fig. 8** — OFAR with a physical vs an embedded escape ring, under
/// UN and ADV+2: the two implementations must be indistinguishable
/// (the ring carries almost no traffic).
pub fn fig8(scale: &Scale) -> Table {
    let mut t = Table::new(
        format!(
            "Fig 8: physical vs embedded escape ring (OFAR), h={}",
            scale.h
        ),
        &[
            "ring",
            "pattern",
            "load",
            "latency",
            "throughput",
            "ring_entries",
        ],
    );
    let jobs: Vec<(RingMode, TrafficSpec, f64)> = [RingMode::Physical, RingMode::Embedded]
        .into_iter()
        .flat_map(|ring| {
            let mut v = Vec::new();
            for load in scale.loads(0.9) {
                v.push((ring, TrafficSpec::uniform(), load));
            }
            for load in scale.loads(0.5) {
                v.push((ring, TrafficSpec::adversarial(2), load));
            }
            v
        })
        .collect();
    let results: Vec<_> = jobs
        .par_iter()
        .map(|(ring, spec, load)| {
            let cfg = scale.cfg().with_ring(*ring);
            let p = crate::run::steady_state(
                cfg,
                MechanismKind::Ofar,
                spec,
                *load,
                scale.steady,
                scale.seed,
            );
            (*ring, spec.label(), p)
        })
        .collect();
    for (ring, label, p) in results {
        t.push(vec![
            format!("{ring:?}"),
            label,
            format!("{:.3}", p.load),
            f1(p.avg_latency),
            f4(p.throughput),
            p.ring_entries.to_string(),
        ]);
    }
    t
}

/// **Fig. 9** — congestion with reduced resources: 2 local / 1 global
/// VCs, embedded ring, no congestion management. At high load the
/// canonical network can congest and throughput collapses towards the
/// ring capacity (§VII).
pub fn fig9(scale: &Scale) -> Table {
    let cfg = SimConfig::reduced_vcs(scale.h).with_seed(scale.seed);
    let h = scale.h;
    let mut t = Table::new(
        format!("Fig 9: reduced VCs (2 local / 1 global), OFAR, h={h}"),
        &["pattern", "load", "latency", "throughput", "ring_entries"],
    );
    let patterns = [
        TrafficSpec::uniform(),
        TrafficSpec::adversarial(2),
        TrafficSpec::adversarial(h),
    ];
    let jobs: Vec<(TrafficSpec, f64)> = patterns
        .iter()
        .flat_map(|s| scale.loads(0.9).into_iter().map(move |l| (s.clone(), l)))
        .collect();
    let results: Vec<_> = jobs
        .par_iter()
        .map(|(spec, load)| {
            let p = crate::run::steady_state(
                cfg,
                MechanismKind::Ofar,
                spec,
                *load,
                scale.steady,
                scale.seed,
            );
            (spec.label(), p)
        })
        .collect();
    for (label, p) in results {
        t.push(vec![
            label,
            format!("{:.3}", p.load),
            f1(p.avg_latency),
            f4(p.throughput),
            p.ring_entries.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults() {
        // no env manipulation here (tests run in parallel); just the
        // constructors
        assert_eq!(Scale::default_bench().h, 4);
        assert_eq!(Scale::paper().h, 6);
        assert_eq!(Scale::paper().burst_packets, 2000);
        assert_eq!(Scale::quick().h, 2);
    }

    #[test]
    fn loads_are_evenly_spaced() {
        let s = Scale::quick();
        let l = s.loads(0.8);
        assert_eq!(l.len(), s.sweep_points);
        assert!((l[0] - 0.2).abs() < 1e-12);
        assert!((l.last().unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn fig2b_quick_reproduces_the_dip() {
        let s = Scale::quick();
        let t = fig2b(&s);
        assert_eq!(t.rows.len(), 2 * s.h);
        // offset h row reports concentration == h
        let advh = &t.rows[s.h - 1];
        assert_eq!(advh[0], format!("+{}", s.h));
        assert_eq!(advh[3], s.h.to_string());
    }
}
