//! Closed-form throughput bounds from §III of the paper.
//!
//! These are used three ways: as oracle values in the test suite, as the
//! reference lines of the figure reproductions, and as the analytical
//! backbone of the motivation example (`examples/local_saturation.rs`).

use ofar_topology::DragonflyParams;

/// Maximum throughput (phits/node/cycle) of **minimal routing under an
/// inter-group adversarial pattern**: all `2h²` nodes of a group compete
/// for the single global link to the destination group, so at most
/// `1/(2h²)` per node (§III; <0.2% for h = 16).
pub fn min_adversarial_bound(params: &DragonflyParams) -> f64 {
    1.0 / (params.a * params.p) as f64
}

/// Maximum throughput of **Valiant routing** under any inter-group
/// pattern limited by global links: every packet takes two global hops
/// while the network provides one global link per node, so ½ (§III).
pub fn valiant_global_bound() -> f64 {
    0.5
}

/// Maximum throughput of **minimal routing under an intra-group
/// adversarial pattern** (all `h` nodes of a router target a neighbor
/// router): the single local link bounds it at `1/p` (§III; 6.25% for
/// h = 16).
pub fn min_local_adversarial_bound(params: &DragonflyParams) -> f64 {
    1.0 / params.p as f64
}

/// Maximum throughput of **Valiant under ADV+n·h**: the misrouted
/// traffic entering each intermediate group concentrates its `l₂` hop on
/// single local links, bounding throughput at `1/h` (§III).
pub fn valiant_advh_bound(params: &DragonflyParams) -> f64 {
    1.0 / params.h as f64
}

/// The `l₂` concentration count for ADV+`n` under Valiant: the maximum
/// number of (incoming-global-link → outgoing-global-link) flows of an
/// intermediate group that share one local link.
///
/// Enumerates the palmtree wiring exactly: a packet from source group at
/// incoming offset `d` (i.e. the link *towards* the source has offset
/// `G − d`, hosted at router `(G − d − 1)/h`) must leave through the
/// link at offset `(n − d) mod G` (router `(n − d − 1)/h`). Flows whose
/// in and out routers coincide skip `l₂` entirely and do not count.
pub fn adv_l2_concentration(params: &DragonflyParams, n: usize) -> usize {
    let groups = params.groups();
    let h = params.h;
    assert!(n >= 1 && n < groups, "offset out of range");
    let a = params.a;
    let mut counts = vec![0usize; a * a];
    for d in 1..groups {
        // d == n would mean the chosen intermediate *is* the destination
        // group; Valiant excludes it. The source group itself (d such
        // that out offset is 0) is excluded likewise.
        if d == n {
            continue;
        }
        let r_in = (groups - d - 1) / h;
        let out = (groups + n - d) % groups;
        if out == 0 {
            continue;
        }
        let r_out = (out - 1) / h;
        if r_in != r_out {
            counts[r_in * a + r_out] += 1;
        }
    }
    counts.into_iter().max().unwrap_or(0)
}

/// Analytic Valiant saturation-throughput estimate for ADV+`n`,
/// combining the global-link bound with the `l₂` local-link bound
/// implied by [`adv_l2_concentration`] (the shape of Fig. 2b).
///
/// With Valiant at per-node throughput θ, each global link carries
/// ≈ `2·Np·θ/(G−2)` and the hottest `l₂` local link carries
/// `C·Np·θ/(G−2)`, so θ ≤ (G−2)/(Np·max(2, C)).
pub fn valiant_adv_estimate(params: &DragonflyParams, n: usize) -> f64 {
    let c = adv_l2_concentration(params, n);
    let np = (params.a * params.p) as f64;
    let g = params.groups() as f64;
    ((g - 2.0) / (np * 2.0f64.max(c as f64))).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_numbers() {
        let h16 = DragonflyParams::balanced(16);
        // §III: h=16 → MIN adversarial < 0.2% of max
        assert!(min_adversarial_bound(&h16) < 0.002);
        // §III: local adversarial at 6.25%
        assert!((min_local_adversarial_bound(&h16) - 0.0625).abs() < 1e-12);
        let h6 = DragonflyParams::balanced(6);
        // §VI: 1/h = 1/6 ≈ 0.166 limit for VAL/PB/OFAR-L under ADV+6
        assert!((valiant_advh_bound(&h6) - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(valiant_global_bound(), 0.5);
    }

    #[test]
    fn concentration_peaks_at_multiples_of_h() {
        for hh in [4usize, 6] {
            let p = DragonflyParams::balanced(hh);
            // ADV+h and ADV+2h concentrate all h flows on one local link
            assert_eq!(adv_l2_concentration(&p, hh), hh, "h={hh}");
            assert_eq!(adv_l2_concentration(&p, 2 * hh), hh, "h={hh}");
            // all offsets concentrate at most h flows
            for n in 1..2 * hh {
                let c = adv_l2_concentration(&p, n);
                assert!(c <= hh, "h={hh} n={n}: c={c}");
            }
            // §V: "ADV+1 causes the lower congestion on local links":
            // exactly one flow per l2 link.
            assert_eq!(adv_l2_concentration(&p, 1), 1, "h={hh}");
            // small offsets grow linearly (blocks split by n mod h)…
            assert_eq!(adv_l2_concentration(&p, 2), 2, "h={hh}");
            // …and because groups ≡ 1 (mod h), the wrap-around block
            // also fully concentrates at offset h+1 — a discrete
            // artifact of the palmtree wiring beyond the paper's
            // simplified analysis, visible as the wide dips of Fig. 2b.
            assert_eq!(adv_l2_concentration(&p, hh + 1), hh, "h={hh}");
        }
    }

    #[test]
    fn estimate_dips_at_advh() {
        let p = DragonflyParams::balanced(6);
        let at_h = valiant_adv_estimate(&p, 6);
        let at_1 = valiant_adv_estimate(&p, 1);
        // Fig. 2b: ADV+6 throughput far below ADV+1 under VAL
        assert!(at_h < 0.2, "ADV+6 estimate {at_h}");
        assert!(at_1 > 0.3, "ADV+1 estimate {at_1}");
        assert!(at_h < at_1);
        // and ≈ the 1/h wall
        assert!((at_h - valiant_advh_bound(&p)).abs() < 0.05);
    }

    #[test]
    fn estimate_never_exceeds_global_bound() {
        let p = DragonflyParams::balanced(4);
        for n in 1..p.groups() {
            let e = valiant_adv_estimate(&p, n);
            assert!(e <= valiant_global_bound() + 0.01, "n={n}: {e}");
        }
    }
}
