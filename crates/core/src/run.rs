//! Experiment runners: steady state, load sweeps, transients and bursts
//! (§VI of the paper).

use crate::checkpoint::CheckpointPolicy;
use ofar_engine::{
    AuditReport, FaultPlan, Network, Policy, SimConfig, SnapshotError, Stats, StatsWindow,
};
use ofar_routing::MechanismKind;
use ofar_topology::{NodeId, RouterId};
use ofar_traffic::{Bernoulli, TrafficGen, TrafficSpec};
use rayon::prelude::*;
use std::path::Path;

/// Warmup/measurement lengths for steady-state runs.
#[derive(Clone, Copy, Debug)]
pub struct SteadyOpts {
    /// Cycles simulated before measurement starts.
    pub warmup: u64,
    /// Cycles measured.
    pub measure: u64,
}

impl Default for SteadyOpts {
    fn default() -> Self {
        Self {
            warmup: 20_000,
            measure: 30_000,
        }
    }
}

/// One point of a steady-state curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SteadyPoint {
    /// Offered load in phits/(node·cycle).
    pub load: f64,
    /// Accepted throughput in phits/(node·cycle).
    pub throughput: f64,
    /// Mean packet latency in cycles (generation → delivery).
    pub avg_latency: f64,
    /// Median latency of packets generated inside the measurement window.
    pub p50_latency: f64,
    /// 99th-percentile latency of packets generated inside the window.
    pub p99_latency: f64,
    /// Mean link hops per packet.
    pub avg_hops: f64,
    /// Misroute hops per delivered packet.
    pub misroute_rate: f64,
    /// Escape-ring entries during the measurement window.
    pub ring_entries: u64,
    /// Packets delivered during the measurement window.
    pub delivered: u64,
}

/// Refuse to start a configuration the static CDG verifier does not
/// certify as deadlock-free. The proof is cached per distinct
/// configuration, so sweeps pay it once; a rejection names the offending
/// dependency cycle, ring defect or buffer inequality.
///
/// With `OFAR_CONFORMANCE=1` in the environment the gate is upgraded to
/// the full routing-conformance model checker: the mechanism's actual
/// `route`/`on_inject` code is exhaustively driven over the topology's
/// abstract decision space and must stay inside its declaration, strictly
/// decrease its livelock ranking, and re-certify its observed dependency
/// graph. Cached per configuration like the plain certificate, but
/// markedly more expensive on first use — an opt-in for CI and paranoid
/// runs.
pub(crate) fn ensure_certified(cfg: &SimConfig, kind: MechanismKind) {
    let conformance = std::env::var("OFAR_CONFORMANCE").is_ok_and(|v| v == "1");
    if conformance {
        if let Err(e) = ofar_verify::conformance_cached(cfg, kind) {
            panic!(
                "refusing to start non-conformant configuration for {}: {e}",
                kind.name()
            );
        }
        return;
    }
    if let Err(e) = ofar_verify::certify_cached(cfg, kind) {
        panic!(
            "refusing to start unverified configuration for {}: {e}",
            kind.name()
        );
    }
}

/// Run one steady-state simulation point.
///
/// The configuration is adapted to the mechanism (escape ring for the
/// OFAR models, 4 local VCs for PAR) unless `cfg.ring` already picks a
/// ring model.
pub fn steady_state(
    cfg: SimConfig,
    kind: MechanismKind,
    spec: &TrafficSpec,
    load: f64,
    opts: SteadyOpts,
    seed: u64,
) -> SteadyPoint {
    steady_state_tuned(cfg, kind, spec, load, opts, seed, None, None)
}

/// [`steady_state`] with explicit mechanism tunables — OFAR thresholds
/// and patience, PB broadcast parameters — for the ablation studies
/// (§V's "selection of this policy was empirical").
#[allow(clippy::too_many_arguments)]
pub fn steady_state_tuned(
    cfg: SimConfig,
    kind: MechanismKind,
    spec: &TrafficSpec,
    load: f64,
    opts: SteadyOpts,
    seed: u64,
    ofar: Option<ofar_routing::OfarConfig>,
    pb: Option<ofar_routing::PbConfig>,
) -> SteadyPoint {
    steady_state_resumable(
        cfg,
        kind,
        spec,
        load,
        opts,
        seed,
        ofar,
        pb,
        &CheckpointPolicy::from_env(),
    )
}

/// [`steady_state`] with an explicit [`CheckpointPolicy`] instead of the
/// environment-derived one — the programmatic entry point for
/// kill-and-resume harnesses and tests.
pub fn steady_state_checkpointed(
    cfg: SimConfig,
    kind: MechanismKind,
    spec: &TrafficSpec,
    load: f64,
    opts: SteadyOpts,
    seed: u64,
    ckpt: &CheckpointPolicy,
) -> SteadyPoint {
    steady_state_resumable(cfg, kind, spec, load, opts, seed, None, None, ckpt)
}

/// The single steady-state driver behind [`steady_state`],
/// [`steady_state_tuned`] and [`steady_state_checkpointed`]: one unified
/// warmup+measure loop so a run can be checkpointed at any cycle and
/// resumed from the newest valid checkpoint bit-exactly. With
/// checkpointing disabled the loop is step-for-step identical to the
/// original two-phase (warmup, then measure) structure.
#[allow(clippy::too_many_arguments)]
fn steady_state_resumable(
    cfg: SimConfig,
    kind: MechanismKind,
    spec: &TrafficSpec,
    load: f64,
    opts: SteadyOpts,
    seed: u64,
    ofar: Option<ofar_routing::OfarConfig>,
    pb: Option<ofar_routing::PbConfig>,
    ckpt: &CheckpointPolicy,
) -> SteadyPoint {
    let cfg = kind.adapt_config(cfg);
    ensure_certified(&cfg, kind);
    let mut net = Network::new(cfg, kind.build_tuned(&cfg, seed, ofar, pb));
    let topo = *net.fabric().topo();
    let mut gen = TrafficGen::new(&topo, spec.clone(), seed.wrapping_add(1));
    let mut bern = Bernoulli::new(load, cfg.packet_size, seed.wrapping_add(2));
    let nodes = net.num_nodes();
    let total = opts.warmup + opts.measure;

    let key = crate::checkpoint::run_key(
        &cfg,
        kind,
        spec,
        load,
        opts,
        seed,
        &format!("{ofar:?}/{pb:?}"),
    );
    let mut cycle = 0u64;
    let mut start: Option<Stats> = None;
    if let Some(resume) = ckpt.resume(key) {
        // A checkpoint that fails to restore (config drift, corrupt
        // nested snapshot) is discarded and the run starts from zero —
        // resumption is an optimization, never a correctness risk.
        if resume.restore(&mut net, &mut gen, &mut bern).is_ok() {
            cycle = resume.cycle;
            start = resume.start.clone();
        }
    }

    while cycle <= total {
        if cycle == opts.warmup {
            start = Some(net.stats().clone());
            net.enable_delivery_log();
        }
        if cycle == total {
            break;
        }
        bern.cycle(nodes, |src| {
            let dst = gen.destination(src);
            net.generate(src, dst);
        });
        net.step();
        cycle += 1;
        if ckpt.due(cycle, total) {
            // Best-effort: a full disk must not kill the simulation.
            ckpt.save(key, cycle, start.as_ref(), &net, &gen, &bern)
                .ok();
        }
    }
    let start = start.expect("warmup boundary is always crossed");
    let w = StatsWindow::between(&start, net.stats(), opts.measure, nodes);
    // Latency percentiles over packets *generated* during the window
    // (excludes warmup stragglers delivered early in the window).
    let mut lat: Vec<u32> = net
        .take_delivery_log()
        .into_iter()
        .filter(|&(t, _)| t >= opts.warmup)
        .map(|(_, l)| l)
        .collect();
    lat.sort_unstable();
    let pct = |q: f64| -> f64 {
        if lat.is_empty() {
            0.0
        } else {
            lat[((lat.len() - 1) as f64 * q) as usize] as f64
        }
    };
    SteadyPoint {
        load,
        throughput: w.throughput(),
        avg_latency: w.avg_latency(),
        p50_latency: pct(0.50),
        p99_latency: pct(0.99),
        avg_hops: w.avg_hops(),
        misroute_rate: w.misroute_rate(),
        ring_entries: w.ring_entries,
        delivered: w.delivered_packets,
    }
}

/// A whole latency/throughput curve for one mechanism: one
/// [`SteadyPoint`] per offered load, simulated in parallel (each point is
/// an independent simulation).
pub fn load_sweep(
    cfg: SimConfig,
    kind: MechanismKind,
    spec: &TrafficSpec,
    loads: &[f64],
    opts: SteadyOpts,
    seed: u64,
) -> Vec<SteadyPoint> {
    loads
        .par_iter()
        .enumerate()
        .map(|(i, &load)| {
            steady_state(
                cfg,
                kind,
                spec,
                load,
                opts,
                seed.wrapping_add(i as u64 * 7919),
            )
        })
        .collect()
}

/// Saturation throughput: accepted throughput at (near-)full offered
/// load, the quantity plotted per offset in Fig. 2b.
pub fn saturation_throughput(
    cfg: SimConfig,
    kind: MechanismKind,
    spec: &TrafficSpec,
    opts: SteadyOpts,
    seed: u64,
) -> f64 {
    steady_state(cfg, kind, spec, 1.0, opts, seed).throughput
}

// ---------------------------------------------------------------------
// Transients (Fig. 6)
// ---------------------------------------------------------------------

/// Options for a transient (pattern-switch) experiment.
#[derive(Clone, Copy, Debug)]
pub struct TransientOpts {
    /// Warmup cycles under the initial pattern.
    pub warmup: u64,
    /// Cycles simulated after the switch.
    pub post: u64,
    /// Cycles before the switch included in the reported series.
    pub pre_window: u64,
    /// Series bucket width in cycles.
    pub bucket: u64,
    /// Extra cycles (with injection continuing) so packets sent near the
    /// end of the window still get delivered and counted.
    pub drain: u64,
}

impl Default for TransientOpts {
    fn default() -> Self {
        Self {
            warmup: 20_000,
            post: 12_000,
            pre_window: 2_000,
            bucket: 200,
            drain: 8_000,
        }
    }
}

/// One bucket of a transient latency series.
#[derive(Clone, Copy, Debug)]
pub struct TransientBucket {
    /// Bucket start, in cycles relative to the pattern switch.
    pub start: i64,
    /// Mean latency of the packets *sent* during the bucket.
    pub avg_latency: f64,
    /// Packets sent during the bucket (and delivered before the run
    /// ended).
    pub sent: u64,
}

/// Latency-evolution experiment: warm up under `before`, switch to
/// `after`, and report the average latency of the packets sent in each
/// bucket around the switch — the paper's "latency of the packets that
/// are sent each cycle" metric (§VI-B).
pub fn transient(
    cfg: SimConfig,
    kind: MechanismKind,
    before: &TrafficSpec,
    after: &TrafficSpec,
    load: f64,
    opts: TransientOpts,
    seed: u64,
) -> Vec<TransientBucket> {
    let cfg = kind.adapt_config(cfg);
    ensure_certified(&cfg, kind);
    let mut net = Network::new(cfg, kind.build(&cfg, seed));
    net.enable_delivery_log();
    let topo = *net.fabric().topo();
    let mut gen = TrafficGen::new(&topo, before.clone(), seed.wrapping_add(1));
    let mut bern = Bernoulli::new(load, cfg.packet_size, seed.wrapping_add(2));
    let nodes = net.num_nodes();

    let switch_at = opts.warmup;
    let total = opts.warmup + opts.post + opts.drain;
    for cycle in 0..total {
        if cycle == switch_at {
            gen.set_spec(after.clone());
        }
        bern.cycle(nodes, |src| {
            let dst = gen.destination(src);
            net.generate(src, dst);
        });
        net.step();
    }

    // Bucket deliveries by generation cycle, relative to the switch.
    let lo = switch_at.saturating_sub(opts.pre_window);
    let hi = switch_at + opts.post;
    let nbuckets = ((hi - lo) / opts.bucket) as usize;
    let mut sum = vec![0u64; nbuckets];
    let mut cnt = vec![0u64; nbuckets];
    for (injected_at, latency) in net.take_delivery_log() {
        if injected_at < lo || injected_at >= hi {
            continue;
        }
        let b = ((injected_at - lo) / opts.bucket) as usize;
        sum[b] += u64::from(latency);
        cnt[b] += 1;
    }
    (0..nbuckets)
        .map(|b| TransientBucket {
            start: (lo + b as u64 * opts.bucket) as i64 - switch_at as i64,
            avg_latency: if cnt[b] == 0 {
                0.0
            } else {
                sum[b] as f64 / cnt[b] as f64
            },
            sent: cnt[b],
        })
        .collect()
}

// ---------------------------------------------------------------------
// Bursts (Fig. 7)
// ---------------------------------------------------------------------

/// Why a run's progress watchdog fired.
///
/// The watchdog distinguishes five failure modes instead of silently
/// returning "no progress": a *partition* (failures disconnected some
/// source–destination pairs — no routing mechanism can finish), a
/// *retransmission storm* (every link is alive but the error rate is so
/// high the link layer retries forever and goodput collapses), a
/// *deadlock* (buffered packets but no allocator grant anywhere for a
/// whole window), a *livelock* (grants keep happening — packets move —
/// but none has been delivered for several windows) and *saturation*
/// (the topology is healthy and packets keep draining, but offered load
/// exceeds delivered throughput so the backlog diverges — an overload
/// condition, not a routing defect).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StallKind {
    /// Link/router failures disconnected the listed in-flight
    /// source–destination pairs; the run can never drain.
    Partition {
        /// Undeliverable `(src, dst)` pairs still in flight.
        unreachable_pairs: Vec<(NodeId, NodeId)>,
    },
    /// The topology is connected and the link layer keeps retrying, but
    /// goodput is (near) zero: retransmissions climb while nothing is
    /// delivered. Distinct from deadlock (the wires are busy) and from
    /// livelock (packets are not circulating — they are stuck replaying
    /// the same hops).
    RetransmissionStorm {
        /// The worst offending directed links as
        /// `(sender, receiver, retransmissions)`, most retried first.
        links: Vec<(RouterId, RouterId, u64)>,
        /// Total link-level retransmissions when the watchdog fired.
        retransmits: u64,
    },
    /// No router granted any output for a whole watchdog window while
    /// packets remain buffered.
    Deadlock {
        /// Routers holding phits that have not granted for a window.
        stalled_routers: Vec<RouterId>,
    },
    /// Outputs keep being granted but no packet has been delivered for
    /// several watchdog windows (packets circulate without ejecting).
    Livelock {
        /// Routers holding phits that have not granted for a window.
        stalled_routers: Vec<RouterId>,
    },
    /// The network is healthy — connected topology, grants flowing,
    /// deliveries within the last watchdog window — but offered load
    /// exceeds delivered throughput, so the in-flight backlog diverges.
    /// Post-saturation overload, not a routing defect: distinguishes
    /// over-saturation "livelock" (drain is nonzero) from true routing
    /// livelock (drain is zero). Diagnosed only by open-loop runners
    /// that keep injecting (e.g. the overload sweep); a closed-loop
    /// burst that stopped delivering can never reach this arm.
    Saturation {
        /// Packets generated (offered demand, including NIC queues)
        /// when the watchdog fired.
        offered: u64,
        /// Packets delivered when the watchdog fired.
        delivered: u64,
        /// Diverging backlog (`offered - delivered`).
        backlog: u64,
    },
}

/// Retransmissions since the last delivery above which a stalled run is
/// diagnosed as a [`StallKind::RetransmissionStorm`]: enough retries that
/// a handful of unlucky transfers cannot explain them.
const STORM_RETX_THRESHOLD: u64 = 64;

/// Knobs of the burst runner that are about the *runner*, not the
/// simulated hardware.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunConfig {
    /// Progress-watchdog window in cycles. `None` derives it from the
    /// configuration via [`derive_watchdog`].
    pub watchdog: Option<u64>,
}

/// Watchdog window scaled to the configuration instead of the former
/// hard-coded `20_000 + 50·lat_global`.
///
/// A packet that is maximally unlucky serializes behind a full buffer on
/// every hop (`packet_size · a` phit times per group), pays the global
/// latency twice (Valiant/misroute), detours over dead local links, and
/// may sit out OFAR's ring patience (100 cycles) plus a full escape-ring
/// lap before each of its ring exits. Sixteen such epochs with a fixed
/// floor is comfortably past any transient burst congestion while still
/// firing in well under a second of wall time on a stalled network.
pub fn derive_watchdog(cfg: &SimConfig) -> u64 {
    // One worst-case "epoch": two global legs, a handful of local legs
    // (minimal + clique detours), full-buffer serialization across the
    // group, and ring patience + a ring lap of slack.
    let a = cfg.params.a as u64;
    let serialization = (cfg.packet_size as u64) * a * 4;
    let ring_slack = 400;
    let epoch = 2 * cfg.lat_global + 6 * cfg.lat_local + serialization + ring_slack;
    2_000 + 16 * epoch
}

/// Result of a burst-consumption run.
#[derive(Clone, Debug)]
pub struct BurstResult {
    /// Cycles until every packet was delivered (`None` if the watchdog
    /// fired — see [`BurstResult::stall`] for the diagnosis).
    pub cycles: Option<u64>,
    /// Packets delivered.
    pub delivered: u64,
    /// Mean latency over the burst.
    pub avg_latency: f64,
    /// 99th-percentile latency over the delivered packets (0 when
    /// nothing was delivered).
    pub p99_latency: f64,
    /// Escape-ring entries over the whole burst.
    pub ring_entries: u64,
    /// Jain fairness index of per-source delivered packets (1.0 =
    /// perfectly fair; 1/n = one source monopolizes the network).
    pub jain_fairness: f64,
    /// Packets delivered per source NIC, indexed by node id — the raw
    /// distribution behind [`BurstResult::jain_fairness`].
    pub per_source_delivered: Vec<u64>,
    /// Why the watchdog fired (`None` when the burst drained).
    pub stall: Option<StallKind>,
    /// Full engine counters at the end of the run — delivery accounting,
    /// fault transitions and the LLR retry/drop/escalation counters.
    pub stats: Stats,
    /// Runtime invariant audit over the burst. Populated when the crate
    /// is built with the `audit` feature, `None` otherwise.
    pub audit: Option<AuditReport>,
}

/// Burst experiment (§VI-C): every node enqueues `packets_per_node`
/// packets at cycle 0 (destinations drawn from `spec`) and injects as
/// fast as possible; the result is the time to drain the network.
pub fn burst(
    cfg: SimConfig,
    kind: MechanismKind,
    spec: &TrafficSpec,
    packets_per_node: usize,
    seed: u64,
) -> BurstResult {
    burst_faulted(
        cfg,
        kind,
        spec,
        packets_per_node,
        seed,
        FaultPlan::default(),
        RunConfig::default(),
    )
}

/// [`burst`] under a scheduled [`FaultPlan`] (§VII degraded operation).
/// Plan events fire at their scheduled cycles while the burst drains;
/// if the surviving topology cannot deliver every packet the watchdog
/// reports a structured [`StallKind`] instead of hanging.
pub fn burst_faulted(
    cfg: SimConfig,
    kind: MechanismKind,
    spec: &TrafficSpec,
    packets_per_node: usize,
    seed: u64,
    plan: FaultPlan,
    run: RunConfig,
) -> BurstResult {
    let cfg = kind.adapt_config(cfg);
    ensure_certified(&cfg, kind);
    let mut net = Network::new(cfg, kind.build(&cfg, seed));
    #[cfg(feature = "audit")]
    net.enable_audit();
    net.set_fault_plan(plan);
    burst_net(&mut net, spec, packets_per_node, seed, run)
}

/// The policy-generic burst runner: drive a caller-built [`Network`]
/// through a burst and diagnose stalls, without the certification gate
/// or the mechanism registry. This is the entry point for the mutation
/// harness, which must run *deliberately defective* policies (and
/// engine-level fault seams) that [`burst`] refuses by construction —
/// the caller keeps the network afterwards, e.g. to pull an audit
/// report. Watchdog semantics, stall diagnosis and the result shape are
/// identical to [`burst_faulted`], which delegates here.
pub fn burst_net<P: Policy>(
    net: &mut Network<P>,
    spec: &TrafficSpec,
    packets_per_node: usize,
    seed: u64,
    run: RunConfig,
) -> BurstResult {
    net.enable_delivery_log();
    let cfg = *net.fabric().cfg();
    let topo = *net.fabric().topo();
    let mut gen = TrafficGen::new(&topo, spec.clone(), seed.wrapping_add(1));
    let nodes = net.num_nodes();
    for _ in 0..packets_per_node {
        for n in 0..nodes {
            let src = NodeId::from(n);
            let dst = gen.destination(src);
            net.generate(src, dst);
        }
    }
    let watchdog = run.watchdog.unwrap_or_else(|| derive_watchdog(&cfg));
    let mut last_delivered = 0u64;
    let mut last_delivery_at = 0u64;
    let mut retx_at_last_delivery = 0u64;
    while !net.drained() {
        net.step();
        let delivered = net.stats().delivered_packets;
        if delivered > last_delivered {
            last_delivered = delivered;
            last_delivery_at = net.now();
            retx_at_last_delivery = net.stats().llr_retransmits;
        }
        // Two triggers: a dead network (no grants at all), or a busy one
        // that stopped delivering — livelock takes longer to call because
        // packets legitimately circulate under heavy misrouting.
        let no_grant = net.now() - net.stats().last_grant > watchdog;
        let no_delivery = net.now() - last_delivery_at > 4 * watchdog;
        if no_grant || no_delivery {
            let retx_since = net.stats().llr_retransmits - retx_at_last_delivery;
            let stall = diagnose_stall(net, watchdog, no_grant, retx_since);
            postmortem_dump(net, &stall);
            return BurstResult {
                cycles: None,
                delivered,
                avg_latency: net.stats().avg_latency(),
                p99_latency: p99_of(net.take_delivery_log()),
                ring_entries: net.stats().ring_entries,
                jain_fairness: net.jain_fairness(),
                per_source_delivered: net.per_source_delivered().to_vec(),
                stall: Some(stall),
                stats: net.stats().clone(),
                audit: final_audit(net),
            };
        }
    }
    BurstResult {
        cycles: Some(net.now()),
        delivered: net.stats().delivered_packets,
        avg_latency: net.stats().avg_latency(),
        p99_latency: p99_of(net.take_delivery_log()),
        ring_entries: net.stats().ring_entries,
        jain_fairness: net.jain_fairness(),
        per_source_delivered: net.per_source_delivered().to_vec(),
        stall: None,
        stats: net.stats().clone(),
        audit: final_audit(net),
    }
}

/// When `OFAR_POSTMORTEM_DIR` is set, dump a full engine snapshot plus a
/// plain-text diagnosis next to it the moment a stall is diagnosed —
/// *before* the burst runner consumes the delivery log. The snapshot can
/// be replayed later with [`replay_snapshot`] (or `ofar-sim --replay`)
/// to watch the network's final cycles with per-cycle tracing.
/// Best-effort: a dump failure never turns a diagnosed stall into a
/// crash.
fn postmortem_dump<P: Policy>(net: &Network<P>, stall: &StallKind) {
    let Ok(dir) = std::env::var("OFAR_POSTMORTEM_DIR") else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    let dir = std::path::PathBuf::from(dir);
    let base = format!("stall-{}", net.now());
    let snap = net.save_snapshot();
    if ofar_engine::write_atomic(&dir.join(format!("{base}.snap")), &snap).is_err() {
        return;
    }
    let s = net.stats();
    let report = format!(
        "cycle: {}\ndiagnosis: {stall:#?}\n\ninjected: {}\ndelivered: {}\n\
         last_delivery: {}\nlast_grant: {}\nllr_retransmits: {}\n\
         link_failures: {}\nrouter_failures: {}\nsnapshot: {base}.snap ({} bytes)\n",
        net.now(),
        s.injected_packets,
        s.delivered_packets,
        s.last_delivery,
        s.last_grant,
        s.llr_retransmits,
        s.link_failures,
        s.router_failures,
        snap.len(),
    );
    crate::store::write_atomic_text(&dir.join(format!("{base}.txt")), &report).ok();
}

/// One cycle of a replayed snapshot (see [`replay_snapshot`]).
#[derive(Clone, Copy, Debug)]
pub struct CycleTrace {
    /// Cycle number (continues the original run's clock).
    pub cycle: u64,
    /// Packets delivered during this cycle.
    pub delivered: u64,
    /// Link-level retransmissions issued during this cycle.
    pub retransmits: u64,
    /// Whether any crossbar output was granted this cycle.
    pub granted: bool,
    /// Packets injected but not yet delivered after this cycle.
    pub in_flight: u64,
}

/// Result of replaying a snapshot (see [`replay_snapshot`]).
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Mechanism named by the snapshot.
    pub mechanism: String,
    /// Cycle at which the snapshot was taken.
    pub start_cycle: u64,
    /// Cycle at which the replay stopped.
    pub end_cycle: u64,
    /// Per-cycle trace of the replayed window.
    pub trace: Vec<CycleTrace>,
    /// Engine counters at the end of the replay.
    pub stats: Stats,
    /// Whether the network drained during the replay.
    pub drained: bool,
    /// Runtime invariant audit over the replay (`audit` builds only).
    pub audit: Option<AuditReport>,
}

/// Restore a snapshot file (e.g. a post-mortem stall dump) and re-run up
/// to `cycles` further cycles with per-cycle tracing and no new
/// injection. The embedded configuration is re-certified through the
/// same CDG gate as a fresh run before a single cycle executes, and
/// under the `audit` feature the replay runs fully audited.
///
/// The mechanism is rebuilt with its default tunables; its dynamic state
/// (RNG streams, piggybacked congestion estimates) is restored from the
/// snapshot's policy section.
pub fn replay_snapshot(path: &Path, cycles: u64) -> Result<ReplayReport, SnapshotError> {
    let bytes = ofar_engine::read_file(path)?;
    let header = ofar_engine::peek_header(&bytes)?;
    let kind = MechanismKind::from_name(&header.mechanism)
        .ok_or(SnapshotError::Malformed("unknown mechanism name"))?;
    let cfg = header.config;
    ensure_certified(&cfg, kind);
    let mut net = Network::new(cfg, kind.build(&cfg, cfg.seed));
    #[cfg(feature = "audit")]
    net.enable_audit();
    net.restore_snapshot(&bytes)?;
    let start_cycle = net.now();
    let mut trace = Vec::with_capacity(cycles.min(1 << 20) as usize);
    let mut prev_delivered = net.stats().delivered_packets;
    let mut prev_retx = net.stats().llr_retransmits;
    for _ in 0..cycles {
        if net.drained() {
            break;
        }
        let before = net.now();
        net.step();
        let s = net.stats();
        trace.push(CycleTrace {
            cycle: net.now(),
            delivered: s.delivered_packets - prev_delivered,
            retransmits: s.llr_retransmits - prev_retx,
            granted: s.last_grant >= before,
            in_flight: s.injected_packets - s.delivered_packets,
        });
        prev_delivered = s.delivered_packets;
        prev_retx = s.llr_retransmits;
    }
    Ok(ReplayReport {
        mechanism: header.mechanism,
        start_cycle,
        end_cycle: net.now(),
        trace,
        stats: net.stats().clone(),
        drained: net.drained(),
        audit: final_audit(&mut net),
    })
}

/// 99th-percentile latency of a delivery log (`(injected_at, latency)`
/// pairs); 0 when empty.
pub(crate) fn p99_of(log: Vec<(u64, u32)>) -> f64 {
    let mut lat: Vec<u32> = log.into_iter().map(|(_, l)| l).collect();
    if lat.is_empty() {
        return 0.0;
    }
    lat.sort_unstable();
    lat[(lat.len() - 1) * 99 / 100] as f64
}

/// Take the burst's audit report (includes a forced final deep pass).
#[cfg(feature = "audit")]
fn final_audit<P: Policy>(net: &mut Network<P>) -> Option<AuditReport> {
    net.take_audit_report()
}

/// Without the `audit` feature there is nothing to report.
#[cfg(not(feature = "audit"))]
fn final_audit<P: Policy>(_net: &mut Network<P>) -> Option<AuditReport> {
    None
}

/// Classify a fired watchdog. Partition wins (it explains the others and
/// is definitive — connectivity is a property of the topology, not of
/// the schedule). A retransmission storm is called next: the links are
/// alive but the link layer burned `retx_since` retries since the last
/// delivery, so the allocator's silence is a symptom, not the disease.
/// Otherwise a silent allocator means deadlock and a busy one livelock.
pub(crate) fn diagnose_stall<P: Policy>(
    net: &Network<P>,
    watchdog: u64,
    no_grant: bool,
    retx_since: u64,
) -> StallKind {
    let unreachable_pairs = net.unreachable_pairs();
    if !unreachable_pairs.is_empty() {
        return StallKind::Partition { unreachable_pairs };
    }
    if net.llr_enabled() && retx_since >= STORM_RETX_THRESHOLD {
        return StallKind::RetransmissionStorm {
            links: net.top_retransmit_links(8),
            retransmits: net.stats().llr_retransmits,
        };
    }
    let s = net.stats();
    if !no_grant
        && s.generated_packets > s.delivered_packets
        && net.now().saturating_sub(s.last_delivery) <= watchdog
    {
        // Deliveries are recent and grants are flowing: the network is
        // draining, just slower than the offered load. In a closed-loop
        // burst the `no_delivery` trigger implies a stale last delivery,
        // so this arm is reachable only from open-loop overload runners.
        return StallKind::Saturation {
            offered: s.generated_packets,
            delivered: s.delivered_packets,
            backlog: s.generated_packets - s.delivered_packets,
        };
    }
    let stalled_routers = net.stalled_routers(watchdog);
    if no_grant {
        StallKind::Deadlock { stalled_routers }
    } else {
        StallKind::Livelock { stalled_routers }
    }
}

/// Run the same burst for several mechanisms in parallel and return
/// `(mechanism, result)` pairs in input order.
pub fn burst_comparison(
    cfg: SimConfig,
    kinds: &[MechanismKind],
    spec: &TrafficSpec,
    packets_per_node: usize,
    seed: u64,
) -> Vec<(MechanismKind, BurstResult)> {
    kinds
        .par_iter()
        .map(|&k| (k, burst(cfg, k, spec, packets_per_node, seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SimConfig {
        SimConfig::paper(2)
    }

    fn quick() -> SteadyOpts {
        SteadyOpts {
            warmup: 1500,
            measure: 2500,
        }
    }

    #[test]
    fn percentiles_are_ordered_and_plausible() {
        let p = steady_state(
            small(),
            MechanismKind::Ofar,
            &TrafficSpec::uniform(),
            0.2,
            quick(),
            8,
        );
        assert!(p.p50_latency > 0.0);
        assert!(p.p50_latency <= p.p99_latency);
        // the mean sits between the median and the tail under queueing
        assert!(p.avg_latency >= p.p50_latency * 0.8);
        assert!(p.p99_latency < 10.0 * p.avg_latency);
    }

    #[test]
    fn min_uniform_low_load_accepts_everything() {
        let p = steady_state(
            small(),
            MechanismKind::Min,
            &TrafficSpec::uniform(),
            0.1,
            quick(),
            1,
        );
        assert!(
            (p.throughput - 0.1).abs() < 0.02,
            "low-load throughput {} ≉ offered 0.1",
            p.throughput
        );
        assert!(p.avg_latency > 0.0 && p.avg_latency < 400.0);
    }

    #[test]
    fn valiant_halves_uniform_capacity() {
        // VAL doubles global-link usage: accepted < MIN's at high load.
        let v = steady_state(
            small(),
            MechanismKind::Valiant,
            &TrafficSpec::uniform(),
            0.9,
            quick(),
            1,
        );
        let m = steady_state(
            small(),
            MechanismKind::Min,
            &TrafficSpec::uniform(),
            0.9,
            quick(),
            1,
        );
        assert!(
            v.throughput < m.throughput,
            "VAL {} must be below MIN {} under UN",
            v.throughput,
            m.throughput
        );
    }

    #[test]
    fn transient_series_has_expected_shape() {
        let opts = TransientOpts {
            warmup: 2000,
            post: 1500,
            pre_window: 500,
            bucket: 250,
            drain: 2000,
        };
        let series = transient(
            small(),
            MechanismKind::Ofar,
            &TrafficSpec::uniform(),
            &TrafficSpec::adversarial(2),
            0.08,
            opts,
            3,
        );
        assert_eq!(series.len(), ((500 + 1500) / 250) as usize);
        assert_eq!(series[0].start, -500);
        assert!(series.iter().all(|b| b.sent > 0), "every bucket measured");
    }

    #[test]
    fn burst_drains_and_reports_cycles() {
        let r = burst(small(), MechanismKind::Ofar, &TrafficSpec::uniform(), 3, 9);
        let cycles = r.cycles.expect("burst must drain");
        assert!(cycles > 0);
        // 3 packets * nodes delivered
        assert_eq!(r.delivered, 3 * 72);
    }
}
