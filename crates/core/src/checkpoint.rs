//! Periodic auto-checkpoints for long steady-state runs.
//!
//! A checkpoint is one file holding everything a run needs to continue
//! bit-exactly: the engine snapshot (see `ofar_engine::snapshot`), the
//! traffic-generator and injection-process RNG streams, the cycle
//! counter, and — once the measurement window has opened — the stats
//! baseline captured at its start. Files are written atomically and
//! carry a whole-file CRC-32, so a kill mid-write leaves either the
//! previous checkpoint or a file that fails validation and is skipped;
//! resume picks the newest *valid* checkpoint for the run's key.
//!
//! Enabled via the environment (`OFAR_CHECKPOINT_EVERY` = cycles between
//! checkpoints, `OFAR_CHECKPOINT_DIR` = directory, default
//! `results/checkpoints`) or programmatically with
//! [`CheckpointPolicy::every`] — see
//! [`crate::run::steady_state_checkpointed`].

use ofar_engine::{
    config_fingerprint, crc32, write_atomic, Network, Policy, SimConfig, SnapshotError, Stats,
    STATS_COUNTERS,
};
use ofar_traffic::{Bernoulli, TrafficGen, TrafficSpec};
use std::path::PathBuf;

use crate::run::SteadyOpts;
use ofar_routing::MechanismKind;

/// Checkpoint file magic (distinct from the engine snapshot's, which is
/// nested inside).
const CKPT_MAGIC: [u8; 8] = *b"OFARCKPT";
/// Checkpoint container format version.
const CKPT_VERSION: u32 = 1;
/// Upper bound accepted for the nested snapshot length (allocation
/// guard against corrupt length fields).
const CKPT_SNAP_BOUND: usize = 1 << 28;

/// When and where to take checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Cycles between checkpoints; `None` disables both saving and
    /// resuming.
    pub interval: Option<u64>, // lint:allow(S001, run configuration; not part of the checkpoint payload)
    /// Directory holding the checkpoint files.
    pub dir: PathBuf, // lint:allow(S001, run configuration; not part of the checkpoint payload)
    /// How many newest checkpoints to retain per run key.
    pub keep: usize, // lint:allow(S001, run configuration; not part of the checkpoint payload)
}

impl CheckpointPolicy {
    /// Checkpointing off (the default when the environment says nothing).
    pub fn disabled() -> Self {
        Self {
            interval: None,
            dir: PathBuf::from("results/checkpoints"),
            keep: 2,
        }
    }

    /// Checkpoint every `cycles` cycles into `dir`.
    pub fn every(cycles: u64, dir: impl Into<PathBuf>) -> Self {
        Self {
            interval: (cycles > 0).then_some(cycles),
            dir: dir.into(),
            keep: 2,
        }
    }

    /// Read `OFAR_CHECKPOINT_EVERY` / `OFAR_CHECKPOINT_DIR` from the
    /// environment. Unset, empty or unparsable `EVERY` disables
    /// checkpointing.
    pub fn from_env() -> Self {
        let interval = std::env::var("OFAR_CHECKPOINT_EVERY")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&e| e > 0);
        let dir = std::env::var("OFAR_CHECKPOINT_DIR")
            .unwrap_or_else(|_| "results/checkpoints".to_string());
        Self {
            interval,
            dir: dir.into(),
            keep: 2,
        }
    }

    /// Whether checkpointing is active.
    pub fn enabled(&self) -> bool {
        self.interval.is_some()
    }

    /// Whether a checkpoint is owed after completing `cycle` of `total`
    /// (never at the very end — the run is about to finish anyway).
    pub(crate) fn due(&self, cycle: u64, total: u64) -> bool {
        matches!(self.interval, Some(e) if cycle.is_multiple_of(e) && cycle < total)
    }

    fn file(&self, key: u32, cycle: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{key:08x}-{cycle:016x}.bin"))
    }

    /// Write a checkpoint for run `key` after `cycle` cycles, then prune
    /// old files beyond [`CheckpointPolicy::keep`].
    pub fn save<P: Policy>(
        &self,
        key: u32,
        cycle: u64,
        start: Option<&Stats>,
        net: &Network<P>,
        gen: &TrafficGen,
        bern: &Bernoulli,
    ) -> Result<(), SnapshotError> {
        let bytes = encode(
            key,
            cycle,
            start,
            gen.rng_state(),
            bern.rng_state(),
            &net.save_snapshot(),
        );
        write_atomic(&self.file(key, cycle), &bytes)?;
        self.prune(key);
        Ok(())
    }

    /// Remove all but the newest [`CheckpointPolicy::keep`] checkpoints
    /// of run `key` (best-effort).
    fn prune(&self, key: u32) {
        let mut files = self.list(key);
        files.sort_by_key(|&(cycle, _)| std::cmp::Reverse(cycle)); // newest first
        for (_, path) in files.into_iter().skip(self.keep) {
            std::fs::remove_file(path).ok();
        }
    }

    /// `(cycle, path)` of every file named like a checkpoint of `key`.
    fn list(&self, key: u32) -> Vec<(u64, PathBuf)> {
        let prefix = format!("ckpt-{key:08x}-");
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let hex = name.strip_prefix(&prefix)?.strip_suffix(".bin")?;
                let cycle = u64::from_str_radix(hex, 16).ok()?;
                Some((cycle, e.path()))
            })
            .collect()
    }

    /// Load the newest checkpoint of run `key` that decodes and
    /// validates; corrupt or truncated files are skipped, not fatal.
    /// Returns `None` when checkpointing is disabled.
    pub fn resume(&self, key: u32) -> Option<Checkpoint> {
        if !self.enabled() {
            return None;
        }
        let mut files = self.list(key);
        files.sort_by_key(|&(cycle, _)| std::cmp::Reverse(cycle)); // newest first
        files.into_iter().find_map(|(_, path)| {
            let bytes = std::fs::read(path).ok()?;
            decode(&bytes, key)
        })
    }
}

/// A decoded, checksum-verified checkpoint, ready to restore.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Cycles already simulated when the checkpoint was taken.
    pub cycle: u64, // lint:allow(S001, written by this module's free encode/decode pair; covered by encode_decode_roundtrip)
    /// Stats baseline at the start of the measurement window, if the
    /// window had already opened.
    pub start: Option<Stats>, // lint:allow(S001, written by this module's free encode/decode pair; covered by encode_decode_roundtrip)
    gen_rng: [u64; 4],
    bern_rng: [u64; 4],
    snap: Vec<u8>,
}

impl Checkpoint {
    /// Restore the network and both RNG streams. The nested engine
    /// snapshot re-validates its own checksums and the configuration
    /// fingerprint, so a checkpoint can never be replayed onto a
    /// different experiment.
    pub fn restore<P: Policy>(
        &self,
        net: &mut Network<P>,
        gen: &mut TrafficGen,
        bern: &mut Bernoulli,
    ) -> Result<(), SnapshotError> {
        net.restore_snapshot(&self.snap)?;
        gen.set_rng_state(self.gen_rng);
        bern.set_rng_state(self.bern_rng);
        Ok(())
    }
}

/// Key identifying one steady-state run: every input that affects its
/// trajectory, hashed to a u32 used in checkpoint file names. `tunables`
/// carries the debug rendering of any mechanism tunables so an ablation
/// run never resumes a differently-tuned checkpoint.
pub fn run_key(
    cfg: &SimConfig,
    kind: MechanismKind,
    spec: &TrafficSpec,
    load: f64,
    opts: SteadyOpts,
    seed: u64,
    tunables: &str,
) -> u32 {
    crc32(
        format!(
            "ckpt cfg={:08x} spec={} load={:016x} warmup={} measure={} seed={} tunables={}",
            config_fingerprint(cfg, kind.name()),
            spec.label(),
            load.to_bits(),
            opts.warmup,
            opts.measure,
            seed,
            tunables
        )
        .as_bytes(),
    )
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(b: &[u8], o: &mut usize) -> Option<u32> {
    let s = b.get(*o..*o + 4)?;
    *o += 4;
    Some(u32::from_le_bytes(s.try_into().unwrap()))
}

fn get_u64(b: &[u8], o: &mut usize) -> Option<u64> {
    let s = b.get(*o..*o + 8)?;
    *o += 8;
    Some(u64::from_le_bytes(s.try_into().unwrap()))
}

/// Serialize a checkpoint: magic, version, run key, cycle, optional
/// stats baseline, both RNG streams, the nested engine snapshot, and a
/// whole-file CRC-32 trailer.
fn encode(
    key: u32,
    cycle: u64,
    start: Option<&Stats>,
    gen_rng: [u64; 4],
    bern_rng: [u64; 4],
    snap: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(snap.len() + 64 + STATS_COUNTERS * 8);
    out.extend_from_slice(&CKPT_MAGIC);
    put_u32(&mut out, CKPT_VERSION);
    put_u32(&mut out, key);
    put_u64(&mut out, cycle);
    match start {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            for c in s.counters() {
                put_u64(&mut out, c);
            }
        }
    }
    for w in gen_rng.iter().chain(bern_rng.iter()) {
        put_u64(&mut out, *w);
    }
    put_u32(
        &mut out,
        u32::try_from(snap.len()).expect("snapshot over 4 GiB"),
    );
    out.extend_from_slice(snap);
    let trailer = crc32(&out);
    put_u32(&mut out, trailer);
    out
}

/// Parse and validate a checkpoint file. Any defect — bad checksum,
/// magic, version, key mismatch, short or oversized payload — yields
/// `None`: a corrupt checkpoint is treated as absent, never trusted.
fn decode(bytes: &[u8], expect_key: u32) -> Option<Checkpoint> {
    if bytes.len() < CKPT_MAGIC.len() + 4 {
        return None;
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    if crc32(body) != u32::from_le_bytes(trailer.try_into().unwrap()) {
        return None;
    }
    if body.get(..CKPT_MAGIC.len())? != CKPT_MAGIC {
        return None;
    }
    let mut o = CKPT_MAGIC.len();
    if get_u32(body, &mut o)? != CKPT_VERSION {
        return None;
    }
    if get_u32(body, &mut o)? != expect_key {
        return None;
    }
    let cycle = get_u64(body, &mut o)?;
    let start = match *body.get(o)? {
        0 => {
            o += 1;
            None
        }
        1 => {
            o += 1;
            let mut counters = [0u64; STATS_COUNTERS];
            for c in counters.iter_mut() {
                *c = get_u64(body, &mut o)?;
            }
            let mut s = Stats::default();
            s.set_counters(&counters);
            Some(s)
        }
        _ => return None,
    };
    let mut gen_rng = [0u64; 4];
    for w in gen_rng.iter_mut() {
        *w = get_u64(body, &mut o)?;
    }
    let mut bern_rng = [0u64; 4];
    for w in bern_rng.iter_mut() {
        *w = get_u64(body, &mut o)?;
    }
    let snap_len = get_u32(body, &mut o)? as usize;
    if snap_len > CKPT_SNAP_BOUND || body.len() - o != snap_len {
        return None;
    }
    let snap = body[o..].to_vec();
    Some(Checkpoint {
        cycle,
        start,
        gen_rng,
        bern_rng,
        snap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let start = Stats {
            delivered_packets: 77,
            latency_sum: 1234,
            ..Default::default()
        };
        let snap = vec![1u8, 2, 3, 4, 5];
        let bytes = encode(0xAB, 4096, Some(&start), [1, 2, 3, 4], [5, 6, 7, 8], &snap);
        let ck = decode(&bytes, 0xAB).expect("valid checkpoint must decode");
        assert_eq!(ck.cycle, 4096);
        assert_eq!(ck.start.as_ref().unwrap().delivered_packets, 77);
        assert_eq!(ck.gen_rng, [1, 2, 3, 4]);
        assert_eq!(ck.bern_rng, [5, 6, 7, 8]);
        assert_eq!(ck.snap, snap);
        // warmup-phase checkpoint has no baseline
        let bytes2 = encode(0xAB, 10, None, [1, 2, 3, 4], [5, 6, 7, 8], &snap);
        assert!(decode(&bytes2, 0xAB).unwrap().start.is_none());
    }

    #[test]
    fn corruption_and_mismatch_fail_closed() {
        let bytes = encode(0xAB, 4096, None, [1, 2, 3, 4], [5, 6, 7, 8], &[9, 9]);
        assert!(decode(&bytes, 0xCD).is_none(), "wrong run key");
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut], 0xAB).is_none(), "truncation at {cut}");
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(decode(&bad, 0xAB).is_none(), "bit flip at byte {i}");
        }
    }

    #[test]
    fn due_respects_interval_and_end() {
        let p = CheckpointPolicy::every(100, "x");
        assert!(p.due(100, 1000));
        assert!(!p.due(150, 1000));
        assert!(!p.due(1000, 1000), "no checkpoint at the finish line");
        assert!(!CheckpointPolicy::disabled().due(100, 1000));
    }
}
