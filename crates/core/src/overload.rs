//! Post-saturation overload experiment: what happens *past* the knee.
//!
//! Every figure in the paper stops at the saturation point; this module
//! drives each mechanism **beyond** it — open-loop Bernoulli injection
//! at a multiple of the mechanism's own measured saturation throughput
//! (2× by default) — and reports whether delivery degrades gracefully
//! or collapses. With the congestion-management layer enabled
//! (`SimConfig::with_cm`: NIC token-bucket throttling plus OFAR's
//! escape-ring admission guard) the network is expected to *retain* its
//! saturation throughput, keep the delivered-latency tail bounded and
//! trip no watchdog; with it disabled the same offered load documents
//! the collapse baseline.
//!
//! Beyond throughput retention the sweep scores *fairness*: congestion
//! trees starve sources unevenly, so each point carries the Jain index
//! and a per-source delivery histogram over the measurement window.
//!
//! Structured like [`crate::faults`]: one function per point, a
//! parallel sweep over the mechanism × CM grid, and a [`StallKind`]
//! diagnosis instead of a hang when a run stops making progress — with
//! [`StallKind::Saturation`] naming diverging-backlog overload (healthy
//! topology, nonzero drain) distinctly from true routing livelock.

use crate::run::{
    derive_watchdog, diagnose_stall, ensure_certified, p99_of, steady_state, StallKind, SteadyOpts,
};
use ofar_engine::{jain_index, source_histogram, Network, SimConfig, Stats};
use ofar_routing::MechanismKind;
use ofar_traffic::{Bernoulli, TrafficGen, TrafficSpec};
use rayon::prelude::*;

/// Knobs of an overload run.
#[derive(Clone, Copy, Debug)]
pub struct OverloadOpts {
    /// Offered load as a multiple of the measured saturation throughput
    /// (the paper's figures end at 1.0; the overload sweep defaults to
    /// 2.0).
    pub factor: f64,
    /// Warmup/measure lengths of the *saturation* probe (a standard
    /// closed-form steady-state run at offered load 1.0).
    pub sat: SteadyOpts,
    /// Overload cycles simulated before the measurement window opens.
    pub warmup: u64,
    /// Overload cycles measured.
    pub measure: u64,
    /// Progress-watchdog window; `None` derives it from the
    /// configuration via [`derive_watchdog`].
    pub watchdog: Option<u64>,
    /// Buckets of the per-source delivery histogram.
    pub histogram_buckets: usize,
}

impl Default for OverloadOpts {
    fn default() -> Self {
        Self {
            factor: 2.0,
            sat: SteadyOpts {
                warmup: 2_000,
                measure: 4_000,
            },
            warmup: 2_000,
            measure: 6_000,
            watchdog: None,
            histogram_buckets: 8,
        }
    }
}

/// One point of the post-saturation grid.
#[derive(Clone, Debug)]
pub struct OverloadPoint {
    /// Routing mechanism.
    pub mechanism: MechanismKind,
    /// Whether the congestion-management layer was enabled.
    pub cm: bool,
    /// Measured saturation throughput (offered load 1.0, same
    /// configuration), phits/(node·cycle).
    pub saturation: f64,
    /// Offered load of the overload segment, phits/(node·cycle)
    /// (`factor × saturation`).
    pub offered: f64,
    /// Delivered throughput over the measurement window,
    /// phits/(node·cycle).
    pub throughput: f64,
    /// `throughput / saturation` — 1.0 means the mechanism retained its
    /// full pre-saturation capacity under 2× overload; the acceptance
    /// floor with CM enabled is 0.9.
    pub retention: f64,
    /// Mean latency of packets delivered in the window.
    pub avg_latency: f64,
    /// 99th-percentile latency of packets *generated* in the window and
    /// delivered before the run ended.
    pub p99_latency: f64,
    /// Jain fairness index of per-source deliveries in the window.
    pub jain: f64,
    /// Per-source delivery histogram over the window
    /// ([`OverloadOpts::histogram_buckets`] equal-width bins).
    pub src_histogram: Vec<u64>,
    /// Packets delivered during the window.
    pub delivered: u64,
    /// NIC injections deferred by the token bucket during the window
    /// (0 with CM disabled).
    pub throttle_deferrals: u64,
    /// Escape-ring entries during the window.
    pub ring_entries: u64,
    /// Watchdog diagnosis if the run stopped making progress (`None`
    /// when the full overload segment completed).
    pub stall: Option<StallKind>,
}

impl OverloadPoint {
    /// The issue's stability bar: the full segment ran (no watchdog
    /// stall) and throughput retention is at least `floor`.
    pub fn stable(&self, floor: f64) -> bool {
        self.stall.is_none() && self.retention >= floor
    }
}

/// Run one overload point: measure the mechanism's saturation
/// throughput, then drive `factor ×` that load open-loop through the
/// same configuration and measure what survives.
pub fn overload_point(
    cfg: SimConfig,
    kind: MechanismKind,
    spec: &TrafficSpec,
    opts: OverloadOpts,
    seed: u64,
) -> OverloadPoint {
    let cfg = kind.adapt_config(cfg);
    ensure_certified(&cfg, kind);
    let saturation = steady_state(cfg, kind, spec, 1.0, opts.sat, seed).throughput;
    // Offered load is capped at 1 packet/node/cycle — the physical
    // injection-port limit (and `Bernoulli`'s own precondition).
    let offered = (opts.factor * saturation).min(cfg.packet_size as f64);

    let mut net = Network::new(cfg, kind.build(&cfg, seed));
    #[cfg(feature = "audit")]
    net.enable_audit();
    net.enable_delivery_log();
    let topo = *net.fabric().topo();
    let mut gen = TrafficGen::new(&topo, spec.clone(), seed.wrapping_add(1));
    let mut bern = Bernoulli::new(offered, cfg.packet_size, seed.wrapping_add(2));
    let nodes = net.num_nodes();
    let watchdog = opts.watchdog.unwrap_or_else(|| derive_watchdog(&cfg));
    let total = opts.warmup + opts.measure;

    let mut start = Stats::default();
    let mut src_start: Vec<u64> = vec![0; nodes];
    let mut last_delivered = 0u64;
    let mut last_delivery_at = 0u64;
    let mut retx_at_last_delivery = 0u64;
    let mut stall = None;
    let mut measured = 0u64;
    for cycle in 0..total {
        if cycle == opts.warmup {
            start = net.stats().clone();
            src_start.copy_from_slice(net.per_source_delivered());
        }
        bern.cycle(nodes, |src| {
            let dst = gen.destination(src);
            net.generate(src, dst);
        });
        net.step();
        if cycle >= opts.warmup {
            measured += 1;
        }
        let delivered = net.stats().delivered_packets;
        if delivered > last_delivered {
            last_delivered = delivered;
            last_delivery_at = net.now();
            retx_at_last_delivery = net.stats().llr_retransmits;
        }
        // Same two triggers as the burst runner: a silent allocator, or
        // a busy network that stopped delivering. Overload legitimately
        // slows delivery down, so the windows are identical — a stall
        // here means *zero* drain, not merely saturated drain.
        let no_grant = net.now() - net.stats().last_grant > watchdog;
        let no_delivery = net.now() - last_delivery_at > 4 * watchdog;
        if no_grant || no_delivery {
            let retx_since = net.stats().llr_retransmits - retx_at_last_delivery;
            stall = Some(diagnose_stall(&net, watchdog, no_grant, retx_since));
            break;
        }
    }

    let end = net.stats().clone();
    let window_cycles = measured.max(1);
    let delivered = end.delivered_packets - start.delivered_packets;
    let delivered_phits = end.delivered_phits - start.delivered_phits;
    let throughput = delivered_phits as f64 / (window_cycles as f64 * nodes as f64);
    let latency_sum = end.latency_sum - start.latency_sum;
    let per_src: Vec<u64> = net
        .per_source_delivered()
        .iter()
        .zip(&src_start)
        .map(|(&e, &s)| e - s)
        .collect();
    let p99_latency = p99_of(
        net.take_delivery_log()
            .into_iter()
            .filter(|&(t, _)| t >= opts.warmup)
            .collect(),
    );
    OverloadPoint {
        mechanism: kind,
        cm: cfg.cm_enabled,
        saturation,
        offered,
        throughput,
        retention: if saturation > 0.0 {
            throughput / saturation
        } else {
            0.0
        },
        avg_latency: if delivered == 0 {
            0.0
        } else {
            latency_sum as f64 / delivered as f64
        },
        p99_latency,
        jain: jain_index(&per_src),
        src_histogram: source_histogram(&per_src, opts.histogram_buckets),
        delivered,
        throttle_deferrals: end.cm_throttle_deferrals - start.cm_throttle_deferrals,
        ring_entries: end.ring_entries - start.ring_entries,
        stall,
    }
}

/// Full overload sweep: every mechanism × {CM off, CM on}, each point an
/// independent seeded simulation, run in parallel. The CM-off half is
/// the collapse baseline; the CM-on half carries the stability claim.
pub fn overload_sweep(
    cfg: SimConfig,
    mechanisms: &[MechanismKind],
    spec: &TrafficSpec,
    opts: OverloadOpts,
    seed: u64,
) -> Vec<OverloadPoint> {
    let mut jobs: Vec<(MechanismKind, bool)> = Vec::new();
    for &kind in mechanisms {
        jobs.push((kind, false));
        jobs.push((kind, true));
    }
    jobs.par_iter()
        .enumerate()
        .map(|(i, &(kind, cm))| {
            let c = if cm {
                cfg.with_cm()
            } else {
                let mut c = cfg;
                c.cm_enabled = false;
                c
            };
            overload_point(c, kind, spec, opts, seed.wrapping_add(i as u64 * 7919))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> OverloadOpts {
        OverloadOpts {
            sat: SteadyOpts {
                warmup: 800,
                measure: 1_500,
            },
            warmup: 800,
            measure: 2_500,
            ..OverloadOpts::default()
        }
    }

    #[test]
    fn cm_on_retains_throughput_past_saturation() {
        let p = overload_point(
            SimConfig::paper(2).with_cm(),
            MechanismKind::Ofar,
            &TrafficSpec::uniform(),
            quick(),
            7,
        );
        assert!(p.cm);
        assert!(p.saturation > 0.0);
        assert!(p.offered > p.saturation);
        assert!(
            p.stable(0.9),
            "CM-enabled OFAR must retain ≥90% of saturation at 2×: {p:?}"
        );
        assert!(p.jain > 0.0 && p.jain <= 1.0 + 1e-12);
        assert_eq!(p.src_histogram.iter().sum::<u64>() as usize, 72);
    }

    #[test]
    fn sweep_covers_the_cm_grid() {
        // Valiant under uniform traffic congests its own randomized
        // middle hops well past the sensing threshold, so the CM half
        // of the grid must actually throttle. (MIN would not: its NIC
        // serialization port, not any router buffer, is the
        // bottleneck, and CM correctly leaves it alone.)
        let pts = overload_sweep(
            SimConfig::paper(2),
            &[MechanismKind::Valiant],
            &TrafficSpec::uniform(),
            quick(),
            3,
        );
        assert_eq!(pts.len(), 2);
        assert!(!pts[0].cm && pts[1].cm);
        assert!(pts[1].throttle_deferrals > 0, "2× load must throttle");
        assert_eq!(pts[0].throttle_deferrals, 0);
    }
}
