//! Integration tests of the link-level retransmission subsystem: end-to-end
//! delivery guarantees under seeded loss/corruption, bit-exact determinism,
//! and the accounting identities that tie the LLR counters together.
//!
//! Uses the trivially deadlock-free `TestMin` policy so every property
//! isolates the link layer, not a routing mechanism.

mod common;

use common::TestMin;
use ofar_engine::{FaultPlan, Network, SimConfig};
use ofar_topology::{NodeId, RouterId};
use proptest::prelude::*;

/// Drain the network, panicking if it stalls. Returns the drain cycle.
fn drain(net: &mut Network<TestMin>, guard: u64) -> u64 {
    while !net.drained() {
        net.step();
        assert!(net.now() < guard, "drain stalled at cycle {}", net.now());
    }
    net.now()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exactly-once delivery under uniform Bernoulli BER up to 10%: every
    /// generated packet is delivered exactly once, and every transfer lost
    /// on the wire (dropped or corrupted) is retransmitted exactly once —
    /// no spurious timeouts, no duplicates reaching a node.
    #[test]
    fn exactly_once_delivery_under_ber(
        pairs in prop::collection::vec((0usize..72, 0usize..72), 1..40),
        ber_pct in 0u32..=10,
        seed in 0u64..1_000,
    ) {
        let mut cfg = SimConfig::paper(2).with_ber(f64::from(ber_pct) / 100.0);
        cfg.seed = seed;
        // TestMin is not fault-aware: raise the retry budget so the
        // probability of escalating a link to fail-stop is negligible
        // (p_loss^30 < 1e-7 even at 10% BER).
        cfg.llr_retry_budget = 30;
        let mut net = Network::new(cfg, TestMin);
        prop_assert_eq!(net.llr_enabled(), ber_pct > 0);

        let mut generated = 0u64;
        for &(s, d) in &pairs {
            if s != d {
                net.generate(NodeId::from(s), NodeId::from(d));
                generated += 1;
            }
        }
        drain(&mut net, 400_000);

        let stats = net.stats();
        prop_assert_eq!(stats.delivered_packets, generated);
        prop_assert_eq!(stats.duplicate_deliveries, 0);
        prop_assert_eq!(stats.llr_escalations, 0);
        // Each loss event (wire drop or CRC discard) triggers exactly one
        // retransmission once the network has drained.
        prop_assert_eq!(
            stats.llr_retransmits,
            stats.llr_wire_drops + stats.llr_crc_drops
        );
        // Phit conservation: everything generated was delivered.
        let size = net.cfg().packet_size as u64;
        prop_assert_eq!(stats.delivered_phits, generated * size);
        prop_assert_eq!(net.phits_in_system(), 0);
        net.check_credit_conservation();
    }

    /// Same config, seed and traffic ⇒ bit-identical retry counters and
    /// drain cycle. The LLR fate sampler must be a pure function of the
    /// seeded stream, never of host state.
    #[test]
    fn llr_is_deterministic(
        pairs in prop::collection::vec((0usize..72, 0usize..72), 1..30),
        seed in 0u64..1_000,
    ) {
        let run = |pairs: &[(usize, usize)], seed: u64| {
            let mut cfg = SimConfig::paper(2).with_ber(0.05);
            cfg.seed = seed;
            cfg.llr_retry_budget = 30;
            let mut net = Network::new(cfg, TestMin);
            for &(s, d) in pairs {
                if s != d {
                    net.generate(NodeId::from(s), NodeId::from(d));
                }
            }
            let end = drain(&mut net, 400_000);
            let s = net.stats();
            (
                end,
                s.llr_retransmits,
                s.llr_wire_drops,
                s.llr_crc_drops,
                s.llr_dup_drops,
                s.llr_nacks,
                s.llr_timeouts,
                s.delivered_packets,
            )
        };
        prop_assert_eq!(run(&pairs, seed), run(&pairs, seed));
    }
}

/// A single scheduled `CorruptPhit` on an otherwise clean network: the
/// receiver discards exactly one transfer on CRC, nacks it, and the sender
/// replays it once. The packet still arrives exactly once.
#[test]
fn one_shot_corruption_is_nacked_and_replayed() {
    let cfg = SimConfig::paper(2); // ber = 0
    let mut net = Network::new(cfg, TestMin);
    assert!(!net.llr_enabled());
    // Scheduling a transient fault auto-enables the link layer.
    net.set_fault_plan(FaultPlan::new().corrupt_phit_at(0, RouterId::new(0), RouterId::new(1)));
    assert!(net.llr_enabled());

    // Node 0 lives on router 0, node 2 on router 1 (p = 2): minimal
    // routing crosses exactly the sabotaged local link.
    net.generate(NodeId::from(0usize), NodeId::from(2usize));
    while !net.drained() {
        net.step();
        assert!(net.now() < 10_000, "drain stalled");
    }

    let stats = net.stats();
    assert_eq!(stats.delivered_packets, 1);
    assert_eq!(stats.duplicate_deliveries, 0);
    assert_eq!(stats.llr_crc_drops, 1);
    assert_eq!(stats.llr_nacks, 1);
    assert_eq!(stats.llr_retransmits, 1);
    assert_eq!(stats.llr_wire_drops, 0);
    assert_eq!(stats.llr_timeouts, 0, "nack must beat the timeout");
    net.check_credit_conservation();
}

/// A single scheduled `DropPhit`: the transfer never arrives, so recovery
/// must come from the retransmit timeout, not a nack.
#[test]
fn one_shot_drop_recovers_via_timeout() {
    let cfg = SimConfig::paper(2);
    let mut net = Network::new(cfg, TestMin);
    net.set_fault_plan(FaultPlan::new().drop_phit_at(0, RouterId::new(0), RouterId::new(1)));

    net.generate(NodeId::from(0usize), NodeId::from(2usize));
    while !net.drained() {
        net.step();
        assert!(net.now() < 10_000, "drain stalled");
    }

    let stats = net.stats();
    assert_eq!(stats.delivered_packets, 1);
    assert_eq!(stats.llr_wire_drops, 1);
    assert_eq!(stats.llr_crc_drops, 0);
    assert_eq!(stats.llr_nacks, 0);
    assert_eq!(stats.llr_timeouts, 1);
    assert_eq!(stats.llr_retransmits, 1);
    assert_eq!(
        net.top_retransmit_links(4),
        vec![(RouterId::new(0), RouterId::new(1), 1)]
    );
    net.check_credit_conservation();
}

/// A flapping link composes transient fail/restore pairs: while the link is
/// down the replay buffer holds the undelivered transfers (unless the
/// fail-stop path force-delivers them), and every packet still arrives
/// exactly once with no duplicates.
#[test]
fn exactly_once_across_a_link_flap() {
    let mut cfg = SimConfig::paper(2).with_ber(0.02);
    cfg.llr_retry_budget = 30;
    let mut net = Network::new(cfg, TestMin);
    // Flap the (0,1) local link twice: down at 20..40 and 120..140.
    net.set_fault_plan(FaultPlan::new().flap_link(
        RouterId::new(0),
        RouterId::new(1),
        20,
        20,
        100,
        2,
    ));

    let mut generated = 0u64;
    for round in 0..6u64 {
        for s in 0..4usize {
            for d in 0..4usize {
                if s != d {
                    net.generate(NodeId::from(s), NodeId::from(d));
                    generated += 1;
                }
            }
        }
        net.run(30 * (round + 1) - net.now());
    }
    while !net.drained() {
        net.step();
        assert!(net.now() < 100_000, "drain stalled");
    }

    let stats = net.stats();
    assert_eq!(stats.delivered_packets, generated);
    assert_eq!(stats.duplicate_deliveries, 0);
    assert_eq!(stats.link_failures, 2);
    assert_eq!(stats.link_repairs, 2);
    net.check_credit_conservation();
}
