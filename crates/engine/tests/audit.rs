//! Integration tests for the `audit` feature: a healthy run must be
//! audit-clean, and the report machinery must actually have looked.

#![cfg(feature = "audit")]

mod common;

use common::TestMin;
use ofar_engine::{Network, SimConfig};
use ofar_topology::NodeId;

/// Uniform random-ish traffic over a healthy network: every fast and
/// deep check passes, and the deep checks demonstrably ran.
#[test]
fn healthy_run_is_audit_clean() {
    let mut net = Network::new(SimConfig::paper(2), TestMin);
    net.enable_audit_with_interval(16);
    let nodes = net.num_nodes();
    for round in 0..4u64 {
        for src in 0..nodes {
            let dst = (src + 7 + round as usize * 13) % nodes;
            if dst != src {
                net.generate(NodeId::from(src), NodeId::from(dst));
            }
        }
        net.run(50);
    }
    while !net.drained() {
        net.step();
        assert!(net.now() < 50_000, "drain stalled");
    }
    let report = net.take_audit_report().expect("auditing was enabled");
    assert!(report.is_clean(), "{report}");
    // deep + fast checks both contributed
    assert!(report.checks > 10_000, "only {} checks ran", report.checks);
}

/// The report is taken-and-reset: a second take starts from zero.
#[test]
fn take_resets_the_report() {
    let mut net = Network::new(SimConfig::paper(2), TestMin);
    net.enable_audit();
    net.generate(NodeId::from(0usize), NodeId::from(50usize));
    while !net.drained() {
        net.step();
    }
    let first = net.take_audit_report().expect("enabled");
    assert!(first.checks > 0);
    let second = net.take_audit_report().expect("still enabled");
    // only the forced final deep pass contributes after the reset
    assert!(second.checks < first.checks);
    assert!(second.is_clean());
}

/// Auditing composes with live faults: a fault campaign on OFAR-less
/// minimal traffic (fail and restore a local link mid-run) keeps every
/// conservation law intact — fail-stop is at packet granularity.
#[test]
fn fault_campaign_conserves_under_audit() {
    use ofar_topology::{Dragonfly, RouterId};
    let cfg = SimConfig::paper(2);
    let topo = Dragonfly::new(cfg.params);
    let mut net = Network::new(cfg, TestMin);
    net.enable_audit_with_interval(8);
    let nodes = net.num_nodes();
    let (a, b) = (RouterId::new(0), topo.local_neighbor(RouterId::new(0), 0));
    for src in 0..nodes {
        net.generate(NodeId::from(src), NodeId::from((src + 11) % nodes));
    }
    net.run(20);
    net.fail_link(a, b);
    net.run(60);
    net.restore_link(a, b);
    while !net.drained() {
        net.step();
        assert!(net.now() < 50_000, "drain stalled");
    }
    let report = net.take_audit_report().expect("enabled");
    assert!(report.is_clean(), "{report}");
}
