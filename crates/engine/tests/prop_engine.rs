//! Property-based tests of the simulator core: conservation under
//! arbitrary traffic, config validation, and allocator sanity. Uses a
//! trivially deadlock-free test policy (pure minimal routing with
//! position VCs, see `common`) so every property isolates the *engine*,
//! not a routing mechanism.

mod common;

use common::TestMin;
use ofar_engine::{Network, RingMode, SimConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn phits_are_conserved_under_arbitrary_traffic(
        pairs in prop::collection::vec((0usize..72, 0usize..72), 1..200),
        cycles in 100u64..1_500,
    ) {
        let cfg = SimConfig::paper(2);
        let mut net = Network::new(cfg, TestMin);
        let mut generated = 0u64;
        for (i, &(s, d)) in pairs.iter().enumerate() {
            if s == d {
                continue;
            }
            // stagger generation over the first cycles
            if (i as u64).is_multiple_of(7) {
                net.step();
            }
            net.generate(ofar_topology::NodeId::from(s), ofar_topology::NodeId::from(d));
            generated += 1;
        }
        net.run(cycles);
        let size = cfg.packet_size as u64;
        prop_assert_eq!(
            generated * size,
            net.stats().delivered_phits + net.phits_in_system()
        );
        net.check_credit_conservation();
    }

    #[test]
    fn everything_drains_eventually(
        pairs in prop::collection::vec((0usize..72, 0usize..72), 1..100),
    ) {
        let cfg = SimConfig::paper(2);
        let mut net = Network::new(cfg, TestMin);
        for &(s, d) in &pairs {
            if s != d {
                net.generate(ofar_topology::NodeId::from(s), ofar_topology::NodeId::from(d));
            }
        }
        let expected = net.stats().generated_packets;
        let mut guard = 0u64;
        while !net.drained() {
            net.step();
            guard += 1;
            prop_assert!(guard < 200_000, "engine failed to drain");
        }
        prop_assert_eq!(net.stats().delivered_packets, expected);
        prop_assert_eq!(net.phits_in_system(), 0);
        // every delivery within the minimal-hop ceiling
        prop_assert!(net.stats().avg_hops() <= 3.0 + 1e-9);
    }

    #[test]
    fn config_validation_catches_undersized_buffers(
        packet_size in 1usize..64,
        buf in 1usize..64,
    ) {
        let mut cfg = SimConfig::paper(2);
        cfg.packet_size = packet_size;
        cfg.buf_local = buf;
        let valid = cfg.validate().is_ok();
        let expect = buf >= packet_size
            && cfg.buf_global >= packet_size
            && cfg.buf_injection >= packet_size;
        prop_assert_eq!(valid, expect);
    }

    #[test]
    fn ring_configs_validate_bubble_capacity(
        packet_size in 1usize..32,
        buf_ring in 1usize..96,
    ) {
        let mut cfg = SimConfig::paper(2).with_ring(RingMode::Embedded);
        cfg.packet_size = packet_size;
        cfg.buf_ring = buf_ring;
        // keep the other buffers valid so only the ring constraint varies
        cfg.buf_local = 64.max(packet_size);
        cfg.buf_injection = 64.max(packet_size);
        let valid = cfg.validate().is_ok();
        prop_assert_eq!(valid, buf_ring >= 2 * packet_size);
    }
}

#[test]
fn zero_traffic_is_a_fixed_point() {
    let cfg = SimConfig::paper(2);
    let mut net = Network::new(cfg, TestMin);
    net.run(500);
    assert_eq!(net.stats().delivered_packets, 0);
    assert_eq!(net.phits_in_system(), 0);
    net.check_credit_conservation();
}
