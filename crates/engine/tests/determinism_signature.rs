//! Determinism signatures over the fault subsystem's ordered containers.
//!
//! The fault tracker keeps its failed-link/router sets and pending
//! transient maps in `BTreeSet`/`BTreeMap` precisely so that iteration
//! order — and therefore snapshot byte streams and degraded-mode routing
//! decisions — is a pure function of *contents*, never of insertion
//! history or hasher state. These tests pin that contract: identical
//! runs are byte-identical, snapshots round-trip mid-outage, and the
//! accessors iterate in ascending key order no matter how the faults
//! arrived.

mod common;

use common::TestMin;
use ofar_engine::{FaultPlan, Network, SimConfig};
use ofar_topology::{NodeId, RouterId};

/// A fault schedule touching every ordered container in `FaultState`:
/// fail-stop links and a router (`failed_links` / `failed_routers`
/// sets), one-shot transients (`pending_corrupt` / `pending_drop` maps)
/// and a per-link BER override (`link_ber_ppm` map), with a restore so
/// the sets shrink as well as grow.
fn stress_plan() -> FaultPlan {
    let r = RouterId::new;
    FaultPlan::new()
        .fail_link_at(50, r(2), r(3))
        .fail_link_at(50, r(10), r(11))
        .fail_router_at(120, r(7))
        .corrupt_phit_at(10, r(0), r(1))
        .drop_phit_at(20, r(1), r(2))
        .set_link_ber_at(30, r(4), r(5), 5_000)
        .restore_link_at(300, r(2), r(3))
        .restore_router_at(350, r(7))
}

/// Build a seeded faulted network with traffic already injected.
fn faulted_net(seed: u64) -> Network<TestMin> {
    let mut cfg = SimConfig::paper(2);
    cfg.seed = seed;
    cfg.llr_retry_budget = 30;
    let mut net = Network::new(cfg, TestMin);
    net.set_fault_plan(stress_plan());
    // Deterministic traffic spread across groups so degraded routing and
    // the transient machinery all fire.
    for i in 0usize..48 {
        let (s, d) = (i % 72, (i * 29 + 5) % 72);
        if s != d {
            net.generate(NodeId::from(s), NodeId::from(d));
        }
    }
    net
}

/// Step `net` for `cycles` cycles.
fn advance(net: &mut Network<TestMin>, cycles: u64) {
    for _ in 0..cycles {
        net.step();
    }
}

/// Identical seed + plan + traffic ⇒ byte-identical snapshots at every
/// probe point, through link failures, a router failure, transients and
/// restores. This is the signature that would diverge cross-process if
/// any fault container were hash-ordered.
#[test]
fn faulted_run_snapshots_are_bit_identical() {
    let mut a = faulted_net(42);
    let mut b = faulted_net(42);
    for probe in 0..6 {
        advance(&mut a, 100);
        advance(&mut b, 100);
        assert_eq!(
            a.save_snapshot(),
            b.save_snapshot(),
            "snapshot diverged at probe {probe}"
        );
    }
    assert_eq!(a.stats().delivered_packets, b.stats().delivered_packets);
}

/// Snapshot taken mid-outage (failed links *and* pending transients
/// live) restores into a fresh network that then evolves identically to
/// the original — the BTree maps encode and decode completely.
#[test]
fn mid_outage_snapshot_roundtrips_and_replays() {
    let mut orig = faulted_net(7);
    advance(&mut orig, 150); // links 2–3 / 10–11 and router 7 are down
    let snap = orig.save_snapshot();

    let mut resumed = faulted_net(7);
    resumed
        .restore_snapshot(&snap)
        .expect("mid-outage snapshot must decode");

    // Both must agree immediately and keep agreeing through the
    // restore events at cycles 300/350 and the drain that follows.
    assert_eq!(orig.save_snapshot(), resumed.save_snapshot());
    for probe in 0..5 {
        advance(&mut orig, 100);
        advance(&mut resumed, 100);
        assert_eq!(
            orig.save_snapshot(),
            resumed.save_snapshot(),
            "replay diverged at probe {probe}"
        );
    }
}

/// The fault accessors iterate in ascending key order regardless of the
/// order failures were scheduled — the observable BTreeSet contract the
/// degraded-routing code and snapshot codec rely on.
#[test]
fn fault_sets_iterate_in_ascending_order() {
    let r = RouterId::new;
    // Schedule failures so they apply in descending key order.
    let plan = FaultPlan::new()
        .fail_link_at(1, r(30), r(31))
        .fail_link_at(2, r(20), r(21))
        .fail_link_at(3, r(4), r(5))
        .fail_router_at(4, r(25))
        .fail_router_at(5, r(3));
    let mut cfg = SimConfig::paper(2);
    cfg.seed = 1;
    let mut net = Network::new(cfg, TestMin);
    net.set_fault_plan(plan);
    advance(&mut net, 10);

    let links: Vec<(RouterId, RouterId)> = net.faults().failed_links().collect();
    let mut sorted = links.clone();
    sorted.sort();
    assert_eq!(links, sorted, "failed_links not ascending");
    assert_eq!(links.len(), 3);

    let routers: Vec<RouterId> = net.faults().failed_routers().collect();
    let mut sorted = routers.clone();
    sorted.sort();
    assert_eq!(routers, sorted, "failed_routers not ascending");
    assert_eq!(routers, vec![r(3), r(25)]);
}
