//! Shared helpers for the engine integration tests: a trivially
//! deadlock-free minimal policy so tests exercise the *engine* alone.

use ofar_engine::{InputCtx, Packet, Policy, Request, RequestKind, RouterView};
use ofar_topology::MinimalHop;

/// Pure minimal routing with position-indexed VCs (source 0 →
/// destination last). Deadlock-free by the ascending ladder.
pub struct TestMin;

impl Policy for TestMin {
    fn name(&self) -> &'static str {
        "test-min"
    }

    fn route(
        &mut self,
        view: &RouterView<'_>,
        _input: InputCtx,
        pkt: &mut Packet,
    ) -> Option<Request> {
        let topo = view.fab.topo();
        let cfg = view.fab.cfg();
        Some(match topo.minimal_hop_to_node(view.router, pkt.dst) {
            MinimalHop::Eject { node } => {
                Request::new(view.fab.eject_out(node), 0, RequestKind::Eject)
            }
            MinimalHop::Local { port } => {
                let dst_group = topo.group_of_node(pkt.dst);
                let vc = if view.group() == dst_group {
                    cfg.vcs_local - 1
                } else {
                    0
                };
                Request::new(view.fab.local_out(port), vc, RequestKind::Minimal)
            }
            MinimalHop::Global { port } => {
                Request::new(view.fab.global_out(port), 0, RequestKind::Minimal)
            }
        })
    }

    fn on_inject(&mut self, _view: &RouterView<'_>, pkt: &mut Packet) -> usize {
        (pkt.id % 3) as usize
    }
}
