//! Microarchitectural scenario tests: crafted traffic whose timing
//! behaviour is predictable from the §V router model, pinning down the
//! engine's serialization, arbitration, flow-control and ordering
//! semantics.

mod common;

use common::TestMin;
use ofar_engine::{Network, SimConfig};
use ofar_topology::{Dragonfly, NodeId};

fn net() -> Network<TestMin> {
    Network::new(SimConfig::paper(2), TestMin)
}

/// Deliver a single packet and return its latency.
fn single_latency(src: usize, dst: usize) -> u64 {
    let mut n = net();
    n.generate(NodeId::from(src), NodeId::from(dst));
    while !n.drained() {
        n.step();
        assert!(n.now() < 10_000);
    }
    n.stats().latency_sum
}

#[test]
fn zero_load_latency_decomposes_by_hops() {
    let cfg = SimConfig::paper(2);
    let topo = Dragonfly::new(cfg.params);
    // src router 0; pick destinations at known distances.
    // injection (8) + per hop (link latency) + ejection (8), one cycle
    // per router pass for the allocator.
    let same_router = single_latency(0, 1); // routers equal, hops = 0
    let local_1 = {
        // same group, different router → one local hop
        let dst = cfg.params.p; // router 1, node 0
        single_latency(0, dst)
    };
    let global_path = {
        // a destination two groups over → l g l (3 hops)
        let dst_router = topo.router_at(ofar_topology::GroupId::new(2), 1);
        single_latency(0, topo.first_node_of(dst_router).idx())
    };
    // exact values depend on pipeline details; assert the decomposition
    // ordering and the latency deltas match the link latencies.
    assert!(same_router < local_1);
    assert!(local_1 < global_path);
    // one local hop adds ~lat_local (10) + serialization/arbitration
    assert!(
        (local_1 - same_router) >= cfg.lat_local && (local_1 - same_router) <= cfg.lat_local + 16,
        "local hop delta {}",
        local_1 - same_router
    );
    // the l-g-l path adds ≥ one global latency over the local-only path
    assert!(global_path - local_1 >= cfg.lat_global);
}

#[test]
fn ejection_port_serializes_at_one_phit_per_cycle() {
    // Two packets to the same node from different sources: the second
    // delivery completes ≥ packet_size cycles after the first.
    let mut n = net();
    let dst = NodeId::new(40);
    n.enable_delivery_log();
    n.generate(NodeId::new(0), dst);
    n.generate(NodeId::new(1), dst);
    while !n.drained() {
        n.step();
        assert!(n.now() < 10_000);
    }
    let log = n.take_delivery_log();
    assert_eq!(log.len(), 2);
    let mut ends: Vec<u64> = log.iter().map(|&(t, l)| t + u64::from(l)).collect();
    ends.sort_unstable();
    assert!(
        ends[1] - ends[0] >= SimConfig::paper(2).packet_size as u64,
        "ejection not serialized: {ends:?}"
    );
}

#[test]
fn injection_is_rate_limited_per_node() {
    // One node generates 4 packets at cycle 0; the injection buffer
    // accepts one packet per packet_size cycles, so injected counts
    // ramp at that rate.
    let mut n = net();
    let src = NodeId::new(0);
    for d in 1usize..5 {
        n.generate(src, NodeId::from(d * 7));
    }
    let size = n.cfg().packet_size as u64;
    let mut injected_at = Vec::new();
    let mut last = 0;
    for _ in 0..200 {
        n.step();
        let inj = n.stats().injected_packets;
        if inj > last {
            injected_at.push(n.now());
            last = inj;
        }
    }
    assert_eq!(injected_at.len(), 4);
    for w in injected_at.windows(2) {
        assert!(w[1] - w[0] >= size, "injection faster than 1 phit/cycle");
    }
}

#[test]
fn same_flow_stays_in_fifo_order() {
    // Packets of one (src, dst) pair ride the same VCs and must arrive
    // in generation order: with the delivery log, generation cycles of
    // consecutive deliveries are non-decreasing for a single flow.
    let mut n = net();
    n.enable_delivery_log();
    let src = NodeId::new(3);
    let dst = NodeId::new(60);
    for cycle in 0..400u64 {
        if cycle % 20 == 0 {
            n.generate(src, dst);
        }
        n.step();
    }
    while !n.drained() {
        n.step();
        assert!(n.now() < 20_000);
    }
    let log = n.take_delivery_log();
    assert_eq!(log.len(), 20);
    let ends: Vec<u64> = log.iter().map(|&(t, l)| t + u64::from(l)).collect();
    let mut sorted = ends.clone();
    sorted.sort_unstable();
    assert_eq!(ends, sorted, "single-flow deliveries out of order");
}

#[test]
fn output_contention_is_shared_fairly() {
    // Nodes on two different routers of group 0 hammer the same third
    // router; the LRS output arbiter must serve both flows within ~2x of
    // each other.
    let mut n = net();
    let cfg = *n.cfg();
    let p = cfg.params.p;
    let dst_a = NodeId::from(2 * p); // router 2, node 0
    let dst_b = NodeId::from(2 * p + 1); // router 2, node 1
    for cycle in 0..2_000u64 {
        if cycle % 8 == 0 {
            n.generate(NodeId::new(0), dst_a); // router 0 → router 2
            n.generate(NodeId::from(p), dst_b); // router 1 → router 2
        }
        n.step();
    }
    while !n.drained() {
        n.step();
        assert!(n.now() < 50_000);
    }
    // both flows fully delivered (250 each) — fairness means neither was
    // starved into the watchdog; stronger: equal counts by construction
    assert_eq!(n.stats().delivered_packets, 2 * 250);
}

#[test]
fn credit_exhaustion_stalls_but_never_overflows() {
    // Offered load far above a single local link's capacity: the engine
    // must backpressure into source queues without any buffer assert
    // firing, and drain completely afterwards.
    let mut n = net();
    let cfg = *n.cfg();
    let p = cfg.params.p;
    // all nodes of router 0 and 1 send to router 2's nodes
    for burst in 0..30 {
        for s in 0..2 * p {
            let d = 2 * p + (s + burst) % p;
            n.generate(NodeId::from(s), NodeId::from(d));
        }
    }
    while !n.drained() {
        n.step();
        assert!(n.now() < 100_000);
    }
    n.check_credit_conservation();
    assert_eq!(n.stats().delivered_packets, 30 * 2 * p as u64);
}

#[test]
fn stats_windows_do_not_drift() {
    // generated == injected + still-in-source-queues at every instant.
    let mut n = net();
    for cycle in 0..500u64 {
        if cycle % 3 == 0 {
            let s = (cycle as usize * 13) % 72;
            let d = (s + 17) % 72;
            n.generate(NodeId::from(s), NodeId::from(d));
        }
        n.step();
        let queued: u64 = (0..72)
            .map(|node: usize| n.source_queue_len(NodeId::from(node)) as u64)
            .sum();
        assert_eq!(
            n.stats().generated_packets,
            n.stats().injected_packets + queued
        );
    }
}

#[test]
fn fault_transition_counters_count_once_per_transition() {
    use ofar_engine::FaultPlan;
    use ofar_topology::RouterId;
    let (a, b) = (RouterId::new(0), RouterId::new(1));
    let r = RouterId::new(2);
    let mut n = net();
    // Same-cycle restore + re-fail at cycle 20 is two transitions, one
    // count each; the duplicate fail at 30 is a no-op transition and
    // must not be counted at all. Routers get the symmetric treatment.
    n.set_fault_plan(
        FaultPlan::new()
            .fail_link_at(10, a, b)
            .restore_link_at(20, a, b)
            .fail_link_at(20, a, b)
            .fail_link_at(30, a, b)
            .restore_link_at(40, a, b)
            .fail_router_at(10, r)
            .restore_router_at(20, r)
            .fail_router_at(20, r)
            .restore_router_at(40, r),
    );
    n.run(50);
    let s = n.stats();
    assert_eq!(
        s.link_failures, 2,
        "fail→(restore,fail) is two fail transitions"
    );
    assert_eq!(s.link_repairs, 2);
    assert_eq!(s.router_failures, 2);
    assert_eq!(s.router_repairs, 2);
}
