//! The routing-policy interface.
//!
//! The engine is routing-agnostic: every cycle it asks a [`Policy`] for a
//! single request per head-of-queue packet and arbitrates the requests.
//! Policies only see the *current router* (credits, busy state) plus
//! whatever internal state they maintain — matching OFAR's premise of
//! misrouting "without relying on remote sensing of the network status"
//! (§IV). Mechanisms that do use remote state (PB's broadcast) rebuild it
//! in [`Policy::end_cycle`] from a network snapshot, which models the
//! in-band broadcast explicitly.

use crate::fabric::{EscapeOut, Fabric, PortKind};
use crate::fault::FaultState;
use crate::packet::{Packet, Request};
use crate::router::{OutputPort, RouterStore};
use ofar_topology::{GroupId, RouterId};

/// Read-only view of one router used while routing a packet.
pub struct RouterView<'a> {
    /// Static wiring.
    pub fab: &'a Fabric,
    /// The router being routed at.
    pub router: RouterId,
    /// Current cycle.
    pub now: u64,
    pub(crate) outputs: &'a [OutputPort],
    pub(crate) faults: &'a FaultState,
}

impl<'a> RouterView<'a> {
    pub(crate) fn new(
        fab: &'a Fabric,
        router: RouterId,
        now: u64,
        outputs: &'a [OutputPort],
        faults: &'a FaultState,
    ) -> Self {
        Self {
            fab,
            router,
            now,
            outputs,
            faults,
        }
    }

    /// Packet size in phits.
    #[inline]
    pub fn packet_phits(&self) -> u32 {
        // lint:allow(P002, packet_size is validated at config build and fits u32)
        self.fab.cfg().packet_size as u32
    }

    /// Group of the current router.
    #[inline]
    pub fn group(&self) -> GroupId {
        self.fab.topo().group_of(self.router)
    }

    /// Whether the output port is currently transmitting.
    #[inline]
    pub fn out_busy(&self, port: usize) -> bool {
        self.outputs[port].busy_until > self.now
    }

    /// Cycles since the output port last transmitted (0 while busy).
    /// A *saturated* output keeps granting — its idle time stays below a
    /// couple of packet times; a *stalled* (deadlocked) output freezes.
    /// OFAR uses this to reserve the escape ring for genuine stalls
    /// (§IV-C: the ring is a last resort, "rarely used").
    #[inline]
    pub fn out_idle_cycles(&self, port: usize) -> u64 {
        self.now.saturating_sub(self.outputs[port].busy_until)
    }

    /// Available downstream credits of (`port`, `vc`) in phits.
    #[inline]
    pub fn credits(&self, port: usize, vc: usize) -> u32 {
        self.outputs[port].credits[vc]
    }

    /// Credit-estimated downstream occupancy of (`port`, `vc`) in
    /// `[0, 1]` — the `Q` of the misroute thresholds (§IV-B).
    #[inline]
    pub fn occupancy(&self, port: usize, vc: usize) -> f64 {
        self.outputs[port].occupancy_frac(vc)
    }

    /// Whether a whole packet can be granted to (`port`, `vc`) right now:
    /// the output link is alive, idle, and the downstream VC has space
    /// for the packet. Ejection ports only need an idle output (nodes
    /// are infinite sinks). Dead outputs (fault injection, §VII) are
    /// never available — adaptive mechanisms route around them exactly
    /// like congested ones.
    #[inline]
    pub fn available(&self, port: usize, vc: usize) -> bool {
        if self.out_busy(port) || !self.link_up(port) {
            return false;
        }
        let out = &self.outputs[port];
        out.credits.is_empty() || out.credits[vc] >= self.packet_phits()
    }

    /// Like [`Self::available`] but requiring space for two packets — the
    /// bubble condition for entering the escape ring (§IV-C).
    #[inline]
    pub fn available_with_bubble(&self, port: usize, vc: usize) -> bool {
        !self.out_busy(port)
            && self.link_up(port)
            && self.outputs[port].credits[vc] >= 2 * self.packet_phits()
    }

    /// Whether output `port` is alive (not failed).
    #[inline]
    pub fn link_up(&self, port: usize) -> bool {
        self.faults.link_up(self.router.idx(), port)
    }

    /// Whether escape ring `ring` is fully alive.
    #[inline]
    pub fn ring_up(&self, ring: usize) -> bool {
        self.faults.ring_up(ring)
    }

    /// The current fault state (liveness of links, routers and rings).
    #[inline]
    pub fn faults(&self) -> &FaultState {
        self.faults
    }

    /// The primary escape output of this router, if an escape ring is
    /// configured.
    #[inline]
    pub fn escape(&self) -> Option<EscapeOut> {
        self.fab.escape(self.router)
    }

    /// All escape outputs of this router (one per configured ring, §VII
    /// multi-ring extension).
    #[inline]
    pub fn escapes(&self) -> &[EscapeOut] {
        self.fab.escapes(self.router)
    }

    /// The escape (port, vc) with the most downstream credits across all
    /// configured *surviving* rings, if any. Rings with a failed link or
    /// router anywhere along them are skipped — packets must never enter
    /// a broken ring (§VII failover rule).
    pub fn best_escape_vc(&self) -> Option<(usize, usize)> {
        self.escapes()
            .iter()
            .enumerate()
            .filter(|&(ring, _)| self.ring_up(ring))
            .flat_map(|(_, esc)| {
                let port = esc.out_port as usize;
                (esc.base_vc..esc.base_vc + esc.num_vcs).map(move |vc| (port, vc as usize))
            })
            .max_by_key(|&(port, vc)| self.credits(port, vc))
    }

    /// Credit-estimated congestion of this router's *network* outputs
    /// (local, global and ring links; ejection ports are infinite sinks
    /// and excluded), aggregated over all VCs, in `[0, 1]`. This is the
    /// congestion-management layer's per-router sensor: purely local
    /// (OFAR's §IV premise — no remote sensing), derived from the same
    /// credit state the misroute thresholds read. A failed link senses
    /// as fully occupied, exactly like [`NetSnapshot::global_out_occupancy`].
    pub fn local_congestion(&self) -> f64 {
        let mut cap_sum = 0u64;
        let mut used = 0u64;
        for (port, out) in self.outputs.iter().enumerate() {
            if out.credits.is_empty() {
                continue; // ejection port: no downstream buffer to fill
            }
            let cap: u32 = out.capacity.iter().sum();
            if cap == 0 {
                continue;
            }
            cap_sum += u64::from(cap);
            if self.link_up(port) {
                let credits: u32 = out.credits.iter().sum();
                used += u64::from(cap - credits);
            } else {
                used += u64::from(cap);
            }
        }
        if cap_sum == 0 {
            0.0
        } else {
            used as f64 / cap_sum as f64
        }
    }

    /// Credit-estimated occupancy of this router's escape outputs across
    /// all *surviving* rings, in `[0, 1]` (0 when no ring is configured
    /// or every ring is dead). The escape-ring admission guard compares
    /// this against its threshold: a ring sensed nearly full is being
    /// used as a congestion sink, not an emergency escape.
    pub fn sensed_ring_occupancy(&self) -> f64 {
        let mut cap_sum = 0u64;
        let mut used = 0u64;
        for (ring, esc) in self.escapes().iter().enumerate() {
            if !self.ring_up(ring) {
                continue;
            }
            let port = esc.out_port as usize;
            for vc in esc.base_vc..esc.base_vc + esc.num_vcs {
                let vc = vc as usize;
                let cap = self.outputs[port].capacity[vc];
                cap_sum += u64::from(cap);
                used += u64::from(cap - self.outputs[port].credits[vc]);
            }
        }
        if cap_sum == 0 {
            0.0
        } else {
            used as f64 / cap_sum as f64
        }
    }

    /// The escape (port, vc) of one specific ring, with the most
    /// downstream credits among that ring's VCs. `None` for a dead ring.
    pub fn escape_vc_of_ring(&self, ring: usize) -> Option<(usize, usize)> {
        if !self.ring_up(ring) {
            return None;
        }
        let esc = self.escapes().get(ring)?;
        let port = esc.out_port as usize;
        (esc.base_vc..esc.base_vc + esc.num_vcs)
            .map(|vc| vc as usize)
            .max_by_key(|&vc| self.credits(port, vc))
            .map(|vc| (port, vc))
    }
}

/// Where the packet being routed currently waits.
#[derive(Clone, Copy, Debug)]
pub struct InputCtx {
    /// Input-port index.
    pub port: usize,
    /// VC index within the port.
    pub vc: usize,
    /// Port class (injection / local / global / ring).
    pub kind: PortKind,
    /// Whether the packet waits in an escape VC (embedded ring) or a
    /// physical ring buffer.
    pub is_escape_vc: bool,
}

/// Read-only view of the whole network, for per-cycle policy hooks.
pub struct NetSnapshot<'a> {
    /// Static wiring.
    pub fab: &'a Fabric,
    /// Current cycle.
    pub now: u64,
    pub(crate) routers: &'a [RouterStore],
    pub(crate) faults: &'a FaultState,
}

impl<'a> NetSnapshot<'a> {
    pub(crate) fn new(
        fab: &'a Fabric,
        now: u64,
        routers: &'a [RouterStore],
        faults: &'a FaultState,
    ) -> Self {
        Self {
            fab,
            now,
            routers,
            faults,
        }
    }

    /// Credit-estimated occupancy (in `[0, 1]`, aggregated over VCs) of
    /// global output `k` of `router`. This is the quantity each router
    /// would broadcast to its group under Piggybacking. A *failed*
    /// global link reports full occupancy — remote-sensing mechanisms
    /// (PB) then shun it exactly like a saturated one.
    pub fn global_out_occupancy(&self, router: RouterId, k: usize) -> f64 {
        let port = self.fab.global_out(k);
        if !self.faults.link_up(router.idx(), port) {
            return 1.0;
        }
        let out = &self.routers[router.idx()].outputs[port];
        let cap: u32 = out.capacity.iter().sum();
        if cap == 0 {
            return 0.0;
        }
        let credits: u32 = out.credits.iter().sum();
        f64::from(cap - credits) / f64::from(cap)
    }

    /// The current fault state.
    #[inline]
    pub fn faults(&self) -> &FaultState {
        self.faults
    }
}

/// A routing mechanism.
///
/// The engine calls [`Policy::route`] for the packet at the head of every
/// input VC, every cycle, as long as the packet has not been granted —
/// this is exactly the "routing decision … revisited every cycle" model
/// of §V, and what enables OFAR's on-the-fly adaptivity.
pub trait Policy {
    /// Human-readable mechanism name (used in reports).
    fn name(&self) -> &'static str;

    /// Decide the request for the head packet of (`input.port`,
    /// `input.vc`). Returning `None` keeps the packet waiting this cycle.
    ///
    /// `pkt` is mutable for idempotent bookkeeping only (e.g. clearing a
    /// reached Valiant intermediate); irreversible state changes (header
    /// misroute flags, ring state) are applied by the engine when the
    /// request is *granted*, based on [`crate::packet::RequestKind`].
    fn route(
        &mut self,
        view: &RouterView<'_>,
        input: InputCtx,
        pkt: &mut Packet,
    ) -> Option<Request>;

    /// Called when a packet moves from its source queue into an injection
    /// buffer; decides the injection VC and performs injection-time route
    /// setup (e.g. Valiant intermediate-group selection).
    fn on_inject(&mut self, view: &RouterView<'_>, pkt: &mut Packet) -> usize;

    /// Per-cycle hook with a whole-network snapshot (e.g. the PB
    /// congestion broadcast). Default: no-op.
    fn end_cycle(&mut self, _net: &NetSnapshot<'_>) {}

    /// Whether the mechanism requires an escape ring to be deadlock-free.
    fn needs_ring(&self) -> bool {
        false
    }

    /// Serialize mechanism-internal dynamic state (RNG streams,
    /// congestion tables, patience counters) for a checkpoint. The
    /// engine owns framing and checksums; implementations just append
    /// raw little-endian bytes. Default: stateless, writes nothing.
    fn save_state(&self, _out: &mut Vec<u8>) {}

    /// Restore state captured by [`Policy::save_state`]. Must fail
    /// closed (an `Err`, never a panic) on bytes it does not recognize;
    /// on success the policy's future decision stream is bit-identical
    /// to the one it would have produced without the round-trip.
    /// Default: accepts only the empty state a stateless
    /// [`Policy::save_state`] writes.
    fn load_state(&mut self, data: &[u8]) -> Result<(), String> {
        if data.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{} carries no serializable state but the snapshot has {} bytes of it",
                self.name(),
                data.len()
            ))
        }
    }
}
