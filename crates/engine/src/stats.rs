//! Simulation statistics and measurement windows.

/// Monotonic counters maintained by the engine. All figures of the paper
/// derive from deltas of these counters over a measurement window (see
/// [`StatsWindow`]).
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Packets generated (pushed into source queues).
    pub generated_packets: u64,
    /// Packets that entered an injection buffer.
    pub injected_packets: u64,
    /// Packets delivered to their destination node.
    pub delivered_packets: u64,
    /// Phits delivered.
    pub delivered_phits: u64,
    /// Sum of packet latencies (generation → ejection grant + packet
    /// serialization), in cycles.
    pub latency_sum: u64,
    /// Sum of link hops of delivered packets (local + global + ring).
    pub hop_sum: u64,
    /// Non-minimal local hops taken (§IV-A).
    pub local_misroutes: u64,
    /// Non-minimal global hops taken (§IV-A).
    pub global_misroutes: u64,
    /// Packets that entered the escape ring (§IV-C).
    pub ring_entries: u64,
    /// Hops taken along the escape ring.
    pub ring_advances: u64,
    /// Packets that abandoned the ring through a canonical output.
    pub ring_exits: u64,
    /// Packets delivered directly from the escape ring.
    pub ring_deliveries: u64,
    /// Cycle of the last delivered packet.
    pub last_delivery: u64,
    /// Cycle of the last crossbar grant anywhere in the network
    /// (progress watchdog for deadlock detection).
    pub last_grant: u64,
    /// Link-failure transitions applied (fault injection, §VII).
    pub link_failures: u64,
    /// Link-restoration transitions applied.
    pub link_repairs: u64,
    /// Router-failure transitions applied.
    pub router_failures: u64,
    /// Router-restoration transitions applied.
    pub router_repairs: u64,
    /// LLR: retransmissions issued (first transmissions excluded).
    pub llr_retransmits: u64,
    /// LLR: transfers lost on the wire (header phit hit — never arrive).
    pub llr_wire_drops: u64,
    /// LLR: transfers discarded at the receiver on a CRC mismatch.
    pub llr_crc_drops: u64,
    /// LLR: duplicate transfers discarded at the receiver (spurious
    /// retransmissions — the sequence number was already accepted).
    pub llr_dup_drops: u64,
    /// LLR: nacks processed by senders.
    pub llr_nacks: u64,
    /// LLR: retransmit timeouts fired.
    pub llr_timeouts: u64,
    /// LLR: links escalated to fail-stop after exhausting the retry
    /// budget.
    pub llr_escalations: u64,
    /// Packets ejected more than once (must stay 0 while the link layer
    /// dedups; counted, not asserted, so release runs surface it too).
    pub duplicate_deliveries: u64,
}

impl Stats {
    /// Mean packet latency over all deliveries so far.
    pub fn avg_latency(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered_packets as f64
        }
    }

    /// Mean hop count over all deliveries so far.
    pub fn avg_hops(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.hop_sum as f64 / self.delivered_packets as f64
        }
    }

    /// All counters as a fixed-order array — the checkpoint codec's
    /// stats layout. The order (field declaration order) is part of the
    /// snapshot format: append new counters at the end and bump
    /// [`crate::snapshot::SNAPSHOT_VERSION`].
    pub fn counters(&self) -> [u64; STATS_COUNTERS] {
        [
            self.generated_packets,
            self.injected_packets,
            self.delivered_packets,
            self.delivered_phits,
            self.latency_sum,
            self.hop_sum,
            self.local_misroutes,
            self.global_misroutes,
            self.ring_entries,
            self.ring_advances,
            self.ring_exits,
            self.ring_deliveries,
            self.last_delivery,
            self.last_grant,
            self.link_failures,
            self.link_repairs,
            self.router_failures,
            self.router_repairs,
            self.llr_retransmits,
            self.llr_wire_drops,
            self.llr_crc_drops,
            self.llr_dup_drops,
            self.llr_nacks,
            self.llr_timeouts,
            self.llr_escalations,
            self.duplicate_deliveries,
        ]
    }

    /// Inverse of [`Stats::counters`].
    pub fn set_counters(&mut self, c: &[u64; STATS_COUNTERS]) {
        [
            self.generated_packets,
            self.injected_packets,
            self.delivered_packets,
            self.delivered_phits,
            self.latency_sum,
            self.hop_sum,
            self.local_misroutes,
            self.global_misroutes,
            self.ring_entries,
            self.ring_advances,
            self.ring_exits,
            self.ring_deliveries,
            self.last_delivery,
            self.last_grant,
            self.link_failures,
            self.link_repairs,
            self.router_failures,
            self.router_repairs,
            self.llr_retransmits,
            self.llr_wire_drops,
            self.llr_crc_drops,
            self.llr_dup_drops,
            self.llr_nacks,
            self.llr_timeouts,
            self.llr_escalations,
            self.duplicate_deliveries,
        ] = *c;
    }
}

/// Number of `u64` counters in [`Stats`] (a snapshot format constant).
pub const STATS_COUNTERS: usize = 26;

/// A measurement window: the delta of two [`Stats`] snapshots plus the
/// elapsed cycles, exposing the paper's metrics.
#[derive(Clone, Copy, Debug)]
pub struct StatsWindow {
    /// Cycles covered by the window.
    pub cycles: u64,
    /// Nodes in the network (for per-node normalization).
    pub nodes: usize,
    /// Packets delivered in the window.
    pub delivered_packets: u64,
    /// Phits delivered in the window.
    pub delivered_phits: u64,
    /// Packets generated in the window.
    pub generated_packets: u64,
    /// Latency sum of deliveries in the window.
    pub latency_sum: u64,
    /// Hop sum of deliveries in the window.
    pub hop_sum: u64,
    /// Local misroutes in the window.
    pub local_misroutes: u64,
    /// Global misroutes in the window.
    pub global_misroutes: u64,
    /// Ring entries in the window.
    pub ring_entries: u64,
}

impl StatsWindow {
    /// Delta between two snapshots taken `cycles` apart.
    pub fn between(start: &Stats, end: &Stats, cycles: u64, nodes: usize) -> Self {
        Self {
            cycles,
            nodes,
            delivered_packets: end.delivered_packets - start.delivered_packets,
            delivered_phits: end.delivered_phits - start.delivered_phits,
            generated_packets: end.generated_packets - start.generated_packets,
            latency_sum: end.latency_sum - start.latency_sum,
            hop_sum: end.hop_sum - start.hop_sum,
            local_misroutes: end.local_misroutes - start.local_misroutes,
            global_misroutes: end.global_misroutes - start.global_misroutes,
            ring_entries: end.ring_entries - start.ring_entries,
        }
    }

    /// Accepted throughput in phits/(node·cycle) — the paper's y-axis in
    /// Figs. 2b, 3b, 4b, 5b, 8b and 9.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 || self.nodes == 0 {
            return 0.0;
        }
        self.delivered_phits as f64 / (self.cycles as f64 * self.nodes as f64)
    }

    /// Average latency (cycles) of packets delivered in the window — the
    /// paper's y-axis in Figs. 3a, 4a, 5a and 8a.
    pub fn avg_latency(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered_packets as f64
        }
    }

    /// Average hops per delivered packet.
    pub fn avg_hops(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.hop_sum as f64 / self.delivered_packets as f64
        }
    }

    /// Fraction of delivered packets that were misrouted at least once
    /// (upper bound: counts misroute hops over packets).
    pub fn misroute_rate(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            (self.local_misroutes + self.global_misroutes) as f64 / self.delivered_packets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_delta_and_metrics() {
        let start = Stats {
            delivered_packets: 10,
            delivered_phits: 80,
            latency_sum: 1000,
            ..Default::default()
        };
        let end = Stats {
            delivered_packets: 110,
            delivered_phits: 880,
            latency_sum: 21000,
            hop_sum: 300,
            ..Default::default()
        };
        let w = StatsWindow::between(&start, &end, 100, 4);
        assert_eq!(w.delivered_packets, 100);
        assert_eq!(w.delivered_phits, 800);
        // 800 phits / (100 cycles * 4 nodes) = 2.0
        assert!((w.throughput() - 2.0).abs() < 1e-12);
        assert!((w.avg_latency() - 200.0).abs() < 1e-12);
        assert!((w.avg_hops() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_window_is_safe() {
        let s = Stats::default();
        let w = StatsWindow::between(&s, &s, 0, 0);
        assert_eq!(w.throughput(), 0.0);
        assert_eq!(w.avg_latency(), 0.0);
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.avg_hops(), 0.0);
    }
}
