//! Simulation statistics and measurement windows.

/// Monotonic counters maintained by the engine. All figures of the paper
/// derive from deltas of these counters over a measurement window (see
/// [`StatsWindow`]).
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Packets generated (pushed into source queues).
    pub generated_packets: u64,
    /// Packets that entered an injection buffer.
    pub injected_packets: u64,
    /// Packets delivered to their destination node.
    pub delivered_packets: u64,
    /// Phits delivered.
    pub delivered_phits: u64,
    /// Sum of packet latencies (generation → ejection grant + packet
    /// serialization), in cycles.
    pub latency_sum: u64,
    /// Sum of link hops of delivered packets (local + global + ring).
    pub hop_sum: u64,
    /// Non-minimal local hops taken (§IV-A).
    pub local_misroutes: u64,
    /// Non-minimal global hops taken (§IV-A).
    pub global_misroutes: u64,
    /// Packets that entered the escape ring (§IV-C).
    pub ring_entries: u64,
    /// Hops taken along the escape ring.
    pub ring_advances: u64,
    /// Packets that abandoned the ring through a canonical output.
    pub ring_exits: u64,
    /// Packets delivered directly from the escape ring.
    pub ring_deliveries: u64,
    /// Cycle of the last delivered packet.
    pub last_delivery: u64,
    /// Cycle of the last crossbar grant anywhere in the network
    /// (progress watchdog for deadlock detection).
    pub last_grant: u64,
    /// Link-failure transitions applied (fault injection, §VII).
    pub link_failures: u64,
    /// Link-restoration transitions applied.
    pub link_repairs: u64,
    /// Router-failure transitions applied.
    pub router_failures: u64,
    /// Router-restoration transitions applied.
    pub router_repairs: u64,
    /// LLR: retransmissions issued (first transmissions excluded).
    pub llr_retransmits: u64,
    /// LLR: transfers lost on the wire (header phit hit — never arrive).
    pub llr_wire_drops: u64,
    /// LLR: transfers discarded at the receiver on a CRC mismatch.
    pub llr_crc_drops: u64,
    /// LLR: duplicate transfers discarded at the receiver (spurious
    /// retransmissions — the sequence number was already accepted).
    pub llr_dup_drops: u64,
    /// LLR: nacks processed by senders.
    pub llr_nacks: u64,
    /// LLR: retransmit timeouts fired.
    pub llr_timeouts: u64,
    /// LLR: links escalated to fail-stop after exhausting the retry
    /// budget.
    pub llr_escalations: u64,
    /// Packets ejected more than once (must stay 0 while the link layer
    /// dedups; counted, not asserted, so release runs surface it too).
    pub duplicate_deliveries: u64,
    /// CM: token-bucket units actually credited to injection buckets
    /// (cap-clamped, so `granted − consumed ≡ Σ bucket levels` exactly —
    /// the `ThrottleTokenLaw` auditor invariant).
    pub cm_tokens_granted: u64,
    /// CM: token-bucket units debited by successful injections.
    pub cm_tokens_consumed: u64,
    /// CM: injection attempts deferred because the bucket was short.
    pub cm_throttle_deferrals: u64,
    /// CM: router·cycles spent in the throttled hysteresis state.
    pub cm_throttled_cycles: u64,
}

impl Stats {
    /// Mean packet latency over all deliveries so far.
    pub fn avg_latency(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered_packets as f64
        }
    }

    /// Mean hop count over all deliveries so far.
    pub fn avg_hops(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.hop_sum as f64 / self.delivered_packets as f64
        }
    }

    /// All counters as a fixed-order array — the checkpoint codec's
    /// stats layout. The order (field declaration order) is part of the
    /// snapshot format: append new counters at the end and bump
    /// [`crate::snapshot::SNAPSHOT_VERSION`].
    pub fn counters(&self) -> [u64; STATS_COUNTERS] {
        [
            self.generated_packets,
            self.injected_packets,
            self.delivered_packets,
            self.delivered_phits,
            self.latency_sum,
            self.hop_sum,
            self.local_misroutes,
            self.global_misroutes,
            self.ring_entries,
            self.ring_advances,
            self.ring_exits,
            self.ring_deliveries,
            self.last_delivery,
            self.last_grant,
            self.link_failures,
            self.link_repairs,
            self.router_failures,
            self.router_repairs,
            self.llr_retransmits,
            self.llr_wire_drops,
            self.llr_crc_drops,
            self.llr_dup_drops,
            self.llr_nacks,
            self.llr_timeouts,
            self.llr_escalations,
            self.duplicate_deliveries,
            self.cm_tokens_granted,
            self.cm_tokens_consumed,
            self.cm_throttle_deferrals,
            self.cm_throttled_cycles,
        ]
    }

    /// Inverse of [`Stats::counters`].
    pub fn set_counters(&mut self, c: &[u64; STATS_COUNTERS]) {
        [
            self.generated_packets,
            self.injected_packets,
            self.delivered_packets,
            self.delivered_phits,
            self.latency_sum,
            self.hop_sum,
            self.local_misroutes,
            self.global_misroutes,
            self.ring_entries,
            self.ring_advances,
            self.ring_exits,
            self.ring_deliveries,
            self.last_delivery,
            self.last_grant,
            self.link_failures,
            self.link_repairs,
            self.router_failures,
            self.router_repairs,
            self.llr_retransmits,
            self.llr_wire_drops,
            self.llr_crc_drops,
            self.llr_dup_drops,
            self.llr_nacks,
            self.llr_timeouts,
            self.llr_escalations,
            self.duplicate_deliveries,
            self.cm_tokens_granted,
            self.cm_tokens_consumed,
            self.cm_throttle_deferrals,
            self.cm_throttled_cycles,
        ] = *c;
    }

    /// Field names of [`Stats::counters`], in the same order (snapshot
    /// diff labels; the arrays must stay index-aligned).
    pub fn counter_names() -> [&'static str; STATS_COUNTERS] {
        [
            "generated_packets",
            "injected_packets",
            "delivered_packets",
            "delivered_phits",
            "latency_sum",
            "hop_sum",
            "local_misroutes",
            "global_misroutes",
            "ring_entries",
            "ring_advances",
            "ring_exits",
            "ring_deliveries",
            "last_delivery",
            "last_grant",
            "link_failures",
            "link_repairs",
            "router_failures",
            "router_repairs",
            "llr_retransmits",
            "llr_wire_drops",
            "llr_crc_drops",
            "llr_dup_drops",
            "llr_nacks",
            "llr_timeouts",
            "llr_escalations",
            "duplicate_deliveries",
            "cm_tokens_granted",
            "cm_tokens_consumed",
            "cm_throttle_deferrals",
            "cm_throttled_cycles",
        ]
    }
}

/// Number of `u64` counters in [`Stats`] (a snapshot format constant).
pub const STATS_COUNTERS: usize = 30;

/// Jain's fairness index over per-source delivery counts:
/// `(Σx)² / (n · Σx²)`, in `(0, 1]` — 1 when every source receives equal
/// service, `1/n` when a single source monopolizes the network.
/// Returns 1.0 for an empty or all-zero population (nothing is unfair
/// about nothing delivered).
pub fn jain_index(xs: &[u64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().map(|&x| x as f64).sum();
    let sq_sum: f64 = xs.iter().map(|&x| (x as f64) * (x as f64)).sum();
    if sq_sum == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sq_sum)
}

/// Histogram of per-source delivery counts in `buckets` equal-width bins
/// spanning `0..=max(xs)`. The shape of the post-saturation fairness
/// story: with CM off the mass splits into starved and monopolizing
/// sources; with CM on it concentrates in the middle bins.
pub fn source_histogram(xs: &[u64], buckets: usize) -> Vec<u64> {
    let mut hist = vec![0u64; buckets.max(1)];
    let max = xs.iter().copied().max().unwrap_or(0);
    for &x in xs {
        let idx = if max == 0 {
            0
        } else {
            (((x as u128 * hist.len() as u128) / (max as u128 + 1)) as usize).min(hist.len() - 1)
        };
        hist[idx] += 1;
    }
    hist
}

/// A measurement window: the delta of two [`Stats`] snapshots plus the
/// elapsed cycles, exposing the paper's metrics.
#[derive(Clone, Copy, Debug)]
pub struct StatsWindow {
    /// Cycles covered by the window.
    pub cycles: u64,
    /// Nodes in the network (for per-node normalization).
    pub nodes: usize,
    /// Packets delivered in the window.
    pub delivered_packets: u64,
    /// Phits delivered in the window.
    pub delivered_phits: u64,
    /// Packets generated in the window.
    pub generated_packets: u64,
    /// Latency sum of deliveries in the window.
    pub latency_sum: u64,
    /// Hop sum of deliveries in the window.
    pub hop_sum: u64,
    /// Local misroutes in the window.
    pub local_misroutes: u64,
    /// Global misroutes in the window.
    pub global_misroutes: u64,
    /// Ring entries in the window.
    pub ring_entries: u64,
}

impl StatsWindow {
    /// Delta between two snapshots taken `cycles` apart.
    pub fn between(start: &Stats, end: &Stats, cycles: u64, nodes: usize) -> Self {
        Self {
            cycles,
            nodes,
            delivered_packets: end.delivered_packets - start.delivered_packets,
            delivered_phits: end.delivered_phits - start.delivered_phits,
            generated_packets: end.generated_packets - start.generated_packets,
            latency_sum: end.latency_sum - start.latency_sum,
            hop_sum: end.hop_sum - start.hop_sum,
            local_misroutes: end.local_misroutes - start.local_misroutes,
            global_misroutes: end.global_misroutes - start.global_misroutes,
            ring_entries: end.ring_entries - start.ring_entries,
        }
    }

    /// Accepted throughput in phits/(node·cycle) — the paper's y-axis in
    /// Figs. 2b, 3b, 4b, 5b, 8b and 9.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 || self.nodes == 0 {
            return 0.0;
        }
        self.delivered_phits as f64 / (self.cycles as f64 * self.nodes as f64)
    }

    /// Average latency (cycles) of packets delivered in the window — the
    /// paper's y-axis in Figs. 3a, 4a, 5a and 8a.
    pub fn avg_latency(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered_packets as f64
        }
    }

    /// Average hops per delivered packet.
    pub fn avg_hops(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.hop_sum as f64 / self.delivered_packets as f64
        }
    }

    /// Fraction of delivered packets that were misrouted at least once
    /// (upper bound: counts misroute hops over packets).
    pub fn misroute_rate(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            (self.local_misroutes + self.global_misroutes) as f64 / self.delivered_packets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_delta_and_metrics() {
        let start = Stats {
            delivered_packets: 10,
            delivered_phits: 80,
            latency_sum: 1000,
            ..Default::default()
        };
        let end = Stats {
            delivered_packets: 110,
            delivered_phits: 880,
            latency_sum: 21000,
            hop_sum: 300,
            ..Default::default()
        };
        let w = StatsWindow::between(&start, &end, 100, 4);
        assert_eq!(w.delivered_packets, 100);
        assert_eq!(w.delivered_phits, 800);
        // 800 phits / (100 cycles * 4 nodes) = 2.0
        assert!((w.throughput() - 2.0).abs() < 1e-12);
        assert!((w.avg_latency() - 200.0).abs() < 1e-12);
        assert!((w.avg_hops() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn jain_index_bounds_and_extremes() {
        // Equal service → 1.0.
        assert!((jain_index(&[5, 5, 5, 5]) - 1.0).abs() < 1e-12);
        // One source monopolizes an n=4 population → 1/4.
        assert!((jain_index(&[12, 0, 0, 0]) - 0.25).abs() < 1e-12);
        // Degenerate populations are "fair".
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0, 0]), 1.0);
        // Always in (0, 1].
        let j = jain_index(&[1, 2, 3, 4, 100]);
        assert!(j > 0.0 && j <= 1.0);
    }

    #[test]
    fn source_histogram_buckets_by_share() {
        let h = source_histogram(&[0, 0, 9, 9], 2);
        assert_eq!(h, vec![2, 2]);
        // All-zero population lands in the first bin.
        assert_eq!(source_histogram(&[0, 0, 0], 4), vec![3, 0, 0, 0]);
        // Total mass is preserved.
        let xs = [3, 1, 4, 1, 5, 9, 2, 6];
        assert_eq!(
            source_histogram(&xs, 3).iter().sum::<u64>(),
            xs.len() as u64
        );
    }

    #[test]
    fn empty_window_is_safe() {
        let s = Stats::default();
        let w = StatsWindow::between(&s, &s, 0, 0);
        assert_eq!(w.throughput(), 0.0);
        assert_eq!(w.avg_latency(), 0.0);
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.avg_hops(), 0.0);
    }
}
