//! # ofar-engine
//!
//! A cycle-accurate network simulator for Dragonfly topologies,
//! reproducing the evaluation substrate of *On-the-Fly Adaptive Routing
//! in High-Radix Hierarchical Networks* (García et al., ICPP 2012, §V):
//!
//! * single-cycle, input-FIFO-buffered **virtual cut-through** routers;
//! * credit-based flow control in phits, whole-packet granularity;
//! * an **iterative separable batch allocator** (3 iterations) with
//!   least-recently-served arbiters, after Gupta & McKeown;
//! * per-cycle re-evaluated routing decisions at every input VC head;
//! * optional **escape subnetwork** — a physical or embedded Hamiltonian
//!   ring with bubble flow control and restricted injection (§IV-C);
//! * optional **link-level retransmission** over lossy links — CRC-32,
//!   sequence/ack replay, timeout with exponential backoff, and
//!   escalation of persistently-failing links to the §VII fail-stop
//!   machinery (see the [`llr`] module).
//!
//! The engine is routing-agnostic: mechanisms implement the
//! [`policy::Policy`] trait (see the `ofar-routing` crate for MIN,
//! Valiant, Piggybacking, PAR, OFAR and OFAR-L).
//!
//! Under the `audit` cargo feature the engine can also police its own
//! invariants at runtime — see the [`audit`] module.

#![warn(missing_docs)]

pub mod audit;
pub mod buffer;
pub mod config;
pub mod fabric;
pub mod fault;
pub mod llr;
#[cfg(feature = "mutate")]
pub mod mutation;
pub mod network;
pub mod packet;
pub mod policy;
pub mod probe;
pub mod router;
pub mod schedule;
pub mod snapshot;
pub mod stats;

pub use audit::{AuditReport, AuditViolation, Auditor};
pub use config::{ConfigError, RingMode, SimConfig};
pub use fabric::{EscapeOut, Fabric, InDesc, OutLink, PortKind};
pub use fault::{random_global_links, FaultEvent, FaultKind, FaultPlan, FaultState};
pub use llr::{crc32, Fate, Llr, RxVerdict};
#[cfg(feature = "mutate")]
pub use mutation::EngineMutation;
pub use network::Network;
pub use packet::{
    Packet, Request, RequestKind, FLAG_AUX, FLAG_GLOBAL_MISROUTED, FLAG_LOCAL_MISROUTED,
    FLAG_ON_RING,
};
pub use policy::{InputCtx, NetSnapshot, Policy, RouterView};
pub use probe::{PortLoad, ViewProbe, PROBE_NOW};
pub use schedule::ShardSchedule;
pub use snapshot::{
    config_fingerprint, diff_snapshots, peek_header, read_file, write_atomic, SectionDiff,
    SnapshotError, SnapshotHeader, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use stats::{jain_index, source_histogram, Stats, StatsWindow, STATS_COUNTERS};
