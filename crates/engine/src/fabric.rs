//! Static port wiring ("fabric"): how router ports map onto topology
//! links, how many VCs and how much buffering each port has, and where
//! the escape ring(s) run.
//!
//! Port layout per router (identical for every router):
//!
//! * inputs — `0 .. p` injection, `p .. p+a−1` local, `p+a−1 .. p+a−1+h`
//!   global, plus one ring input *per escape ring* in the physical-ring
//!   model;
//! * outputs — `0 .. p` ejection, then local, global and ring in the same
//!   order.
//!
//! The canonical port count is `p + a − 1 + h` (the paper's `4h − 1` for
//! balanced networks); each physical ring adds the two extra ports noted
//! in §VII.
//!
//! Multiple escape rings (the §VII fault-tolerance extension) are
//! supported in both models. The rings are pairwise edge-disjoint, so in
//! the embedded model every input port is the landing of **at most one**
//! ring and carries at most one extra escape VC.

use crate::config::{RingMode, SimConfig};
use ofar_topology::{Dragonfly, HamiltonianRing, RingEdge, RouterId};

/// Port class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PortKind {
    /// Injection (input) / ejection (output) port of one attached node.
    Node,
    /// Local (intra-group) link.
    Local,
    /// Global (inter-group) link.
    Global,
    /// Dedicated physical escape-ring link.
    Ring,
}

/// Resolved output port: where the link lands and what the downstream
/// buffering looks like.
#[derive(Clone, Copy, Debug)]
pub struct OutLink {
    /// Port class.
    pub kind: PortKind,
    /// Downstream router (== own router for ejection ports).
    pub dst_router: u32,
    /// Downstream input-port index (unused for ejection ports).
    pub dst_port: u16,
    /// Link latency in cycles (0 for ejection).
    pub latency: u32,
    /// Downstream VC count (mirrors the input port's VC count).
    pub vcs: u8,
}

/// Input-port descriptor.
#[derive(Clone, Copy, Debug)]
pub struct InDesc {
    /// Port class.
    pub kind: PortKind,
    /// Number of VCs (includes the embedded escape VC when this input is
    /// a ring's landing link).
    pub vcs: u8,
    /// Upstream router (`u32::MAX` for injection ports).
    pub up_router: u32,
    /// Upstream output-port index.
    pub up_port: u16,
    /// Upstream link latency (credit return delay), 0 for injection.
    pub latency: u32,
}

/// The escape output of a router for one ring: which output port and VC
/// range reach the next router along that ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EscapeOut {
    /// Output port index.
    pub out_port: u16,
    /// First escape VC index at the downstream input.
    pub base_vc: u8,
    /// Number of escape VCs (1 for embedded, `vcs_ring` for physical).
    pub num_vcs: u8,
}

/// Immutable wiring of the whole network.
pub struct Fabric {
    topo: Dragonfly,
    cfg: SimConfig,
    rings: Vec<HamiltonianRing>,
    n_in: usize,
    n_out: usize,
    n_canonical: usize,
    out_links: Vec<OutLink>,
    in_descs: Vec<InDesc>,
    /// `[router × rings]` escape outputs.
    escapes: Vec<EscapeOut>,
    /// Per (router, input port): `(ring index, escape VC)` when the port
    /// is a ring landing; ring index −1 otherwise.
    ring_landing: Vec<(i8, u8)>,
}

impl Fabric {
    /// Build the wiring for a configuration, embedding
    /// `cfg.escape_rings` pairwise edge-disjoint rings when an escape
    /// subnetwork is configured.
    pub fn new(cfg: SimConfig) -> Self {
        cfg.validate().expect("invalid SimConfig");
        let topo = Dragonfly::new(cfg.params);
        let rings = match cfg.ring {
            RingMode::None => Vec::new(),
            _ => HamiltonianRing::embed_disjoint(&topo, cfg.escape_rings),
        };
        Self::with_rings(cfg, rings)
    }

    /// Build the wiring with one explicit ring (compatibility shortcut
    /// for [`Self::with_rings`]).
    pub fn with_ring(cfg: SimConfig, ring: Option<HamiltonianRing>) -> Self {
        Self::with_rings(cfg, ring.into_iter().collect())
    }

    /// Build the wiring with an explicit ring family (must be non-empty
    /// exactly when `cfg.ring != RingMode::None`). The rings must be
    /// pairwise edge-disjoint in the embedded model — each link can host
    /// only one escape VC.
    pub fn with_rings(cfg: SimConfig, rings: Vec<HamiltonianRing>) -> Self {
        cfg.validate().expect("invalid SimConfig");
        assert_eq!(
            !rings.is_empty(),
            cfg.ring != RingMode::None,
            "ring presence must match RingMode"
        );
        let topo = Dragonfly::new(cfg.params);
        if cfg.ring == RingMode::Embedded && rings.len() > 1 {
            assert!(
                HamiltonianRing::pairwise_edge_disjoint(&topo, &rings),
                "embedded escape rings must be edge-disjoint"
            );
        }
        let p = cfg.params.p;
        let a = cfg.params.a;
        let h = cfg.params.h;
        let k = rings.len();
        let physical = cfg.ring == RingMode::Physical;
        let n_canonical = p + (a - 1) + h;
        let extra = if physical { k } else { 0 };
        let n_in = n_canonical + extra;
        let n_out = n_canonical + extra;
        let nr = topo.num_routers();

        let mut fab = Self {
            topo,
            cfg,
            rings,
            n_in,
            n_out,
            n_canonical,
            out_links: Vec::with_capacity(nr * n_out),
            in_descs: vec![
                InDesc {
                    kind: PortKind::Node,
                    vcs: 0,
                    up_router: u32::MAX,
                    up_port: 0,
                    latency: 0,
                };
                nr * n_in
            ],
            escapes: Vec::with_capacity(nr * k),
            ring_landing: vec![(-1, 0); nr * n_in],
        };

        // Base VC counts per input kind.
        let base_vcs = |kind: PortKind| -> u8 {
            match kind {
                PortKind::Node => cfg.vcs_injection as u8,
                PortKind::Local => cfg.vcs_local as u8,
                PortKind::Global => cfg.vcs_global as u8,
                PortKind::Ring => cfg.vcs_ring as u8,
            }
        };

        // 1. Input descriptors (upstream info filled below).
        for r in 0..nr {
            for port in 0..n_in {
                let kind = fab.in_kind(port);
                fab.in_descs[r * n_in + port] = InDesc {
                    kind,
                    vcs: base_vcs(kind),
                    up_router: u32::MAX,
                    up_port: 0,
                    latency: 0,
                };
            }
        }

        // Ring landings: in the embedded model the landing input of each
        // ring edge gains one escape VC; in the physical model ring `j`
        // owns the dedicated input `n_canonical + j`.
        if cfg.ring == RingMode::Embedded {
            for j in 0..k {
                let ring = fab.rings[j].clone();
                for &r in ring.order() {
                    let edge = ring.edge_from(r);
                    let (dst, dst_port) = fab.resolve_edge(edge);
                    let d = &mut fab.in_descs[dst.idx() * n_in + dst_port];
                    let esc_vc = d.vcs;
                    d.vcs += 1;
                    let slot = &mut fab.ring_landing[dst.idx() * n_in + dst_port];
                    assert_eq!(slot.0, -1, "two rings landing on one link");
                    *slot = (j as i8, esc_vc);
                }
            }
        } else if physical {
            for r in 0..nr {
                for j in 0..k {
                    fab.ring_landing[r * n_in + n_canonical + j] = (j as i8, 0);
                }
            }
        }

        // 2. Output links.
        for r in 0..nr {
            let rid = RouterId::from(r);
            for port in 0..n_out {
                let link = fab.build_out_link(rid, port);
                fab.out_links.push(link);
            }
        }

        // 3. Upstream (credit-return) info on inputs.
        for r in 0..nr {
            for port in 0..n_out {
                let link = fab.out_links[r * n_out + port];
                if link.kind == PortKind::Node {
                    continue; // ejection: no downstream input port
                }
                let d = &mut fab.in_descs[link.dst_router as usize * n_in + link.dst_port as usize];
                d.up_router = r as u32;
                d.up_port = port as u16;
                d.latency = link.latency;
            }
        }

        // 4. Escape outputs, `[router × rings]`.
        for r in 0..nr {
            let rid = RouterId::from(r);
            for j in 0..k {
                let esc = if physical {
                    EscapeOut {
                        out_port: (n_canonical + j) as u16,
                        base_vc: 0,
                        num_vcs: cfg.vcs_ring as u8,
                    }
                } else {
                    let (out_port, base) = match fab.rings[j].edge_from(rid) {
                        RingEdge::Local { port, .. } => (fab.local_out(port), cfg.vcs_local as u8),
                        RingEdge::Global { port, .. } => {
                            (fab.global_out(port), cfg.vcs_global as u8)
                        }
                    };
                    EscapeOut {
                        out_port: out_port as u16,
                        base_vc: base,
                        num_vcs: 1,
                    }
                };
                fab.escapes.push(esc);
            }
        }

        fab
    }

    fn resolve_edge(&self, edge: RingEdge) -> (RouterId, usize) {
        match edge {
            RingEdge::Local { from, port } => {
                let dst = self.topo.local_neighbor(from, port);
                (dst, self.local_in(self.topo.local_port_to(dst, from)))
            }
            RingEdge::Global { from, port } => {
                let (dst, rport) = self.topo.global_neighbor(from, port);
                (dst, self.global_in(rport))
            }
        }
    }

    fn build_out_link(&self, r: RouterId, port: usize) -> OutLink {
        let p = self.cfg.params.p;
        let a = self.cfg.params.a;
        let h = self.cfg.params.h;
        if port < p {
            return OutLink {
                kind: PortKind::Node,
                dst_router: r.0,
                dst_port: 0,
                latency: 0,
                vcs: 1,
            };
        }
        let port_rel = port - p;
        if port_rel < a - 1 {
            let dst = self.topo.local_neighbor(r, port_rel);
            let dst_port = self.local_in(self.topo.local_port_to(dst, r));
            let vcs = self.in_descs[dst.idx() * self.n_in + dst_port].vcs;
            return OutLink {
                kind: PortKind::Local,
                dst_router: dst.0,
                dst_port: dst_port as u16,
                latency: self.cfg.lat_local as u32,
                vcs,
            };
        }
        let k = port_rel - (a - 1);
        if k < h {
            let (dst, rk) = self.topo.global_neighbor(r, k);
            let dst_port = self.global_in(rk);
            let vcs = self.in_descs[dst.idx() * self.n_in + dst_port].vcs;
            return OutLink {
                kind: PortKind::Global,
                dst_router: dst.0,
                dst_port: dst_port as u16,
                latency: self.cfg.lat_global as u32,
                vcs,
            };
        }
        // Physical ring output `j`: to the next router along ring `j`.
        // The wire spans the same distance as the underlying topology
        // step, so it gets the matching latency class.
        let j = port - self.n_canonical;
        let ring = &self.rings[j];
        let dst = ring.next_router(r);
        let latency = match ring.edge_from(r) {
            RingEdge::Local { .. } => self.cfg.lat_local as u32,
            RingEdge::Global { .. } => self.cfg.lat_global as u32,
        };
        OutLink {
            kind: PortKind::Ring,
            dst_router: dst.0,
            dst_port: (self.n_canonical + j) as u16,
            latency,
            vcs: self.cfg.vcs_ring as u8,
        }
    }

    // ----- index helpers ------------------------------------------------

    /// Input ports per router.
    #[inline]
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Output ports per router.
    #[inline]
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Canonical (non-ring) ports per router.
    #[inline]
    pub fn n_canonical(&self) -> usize {
        self.n_canonical
    }

    /// Class of input port `port`.
    #[inline]
    pub fn in_kind(&self, port: usize) -> PortKind {
        let p = self.cfg.params.p;
        let a = self.cfg.params.a;
        let h = self.cfg.params.h;
        if port < p {
            PortKind::Node
        } else if port < p + a - 1 {
            PortKind::Local
        } else if port < p + a - 1 + h {
            PortKind::Global
        } else {
            PortKind::Ring
        }
    }

    /// Class of output port `port` (layout mirrors inputs).
    #[inline]
    pub fn out_kind(&self, port: usize) -> PortKind {
        self.in_kind(port)
    }

    /// Input-port index of injection port `node` (`0 .. p`).
    #[inline]
    pub fn inj_in(&self, node: usize) -> usize {
        debug_assert!(node < self.cfg.params.p);
        node
    }

    /// Input-port index of local port `j` (`0 .. a−1`).
    #[inline]
    pub fn local_in(&self, j: usize) -> usize {
        self.cfg.params.p + j
    }

    /// Input-port index of global port `k` (`0 .. h`).
    #[inline]
    pub fn global_in(&self, k: usize) -> usize {
        self.cfg.params.p + self.cfg.params.a - 1 + k
    }

    /// Output-port index of ejection port `node`.
    #[inline]
    pub fn eject_out(&self, node: usize) -> usize {
        debug_assert!(node < self.cfg.params.p);
        node
    }

    /// Output-port index of local port `j`.
    #[inline]
    pub fn local_out(&self, j: usize) -> usize {
        self.cfg.params.p + j
    }

    /// Output-port index of global port `k`.
    #[inline]
    pub fn global_out(&self, k: usize) -> usize {
        self.cfg.params.p + self.cfg.params.a - 1 + k
    }

    /// Local-port index (`0 .. a−1`) of local output `port`, if it is one.
    #[inline]
    pub fn local_port_of_out(&self, port: usize) -> Option<usize> {
        let p = self.cfg.params.p;
        (self.out_kind(port) == PortKind::Local).then(|| port - p)
    }

    /// Global-port index (`0 .. h`) of global output `port`, if it is one.
    #[inline]
    pub fn global_port_of_out(&self, port: usize) -> Option<usize> {
        let p = self.cfg.params.p;
        let a = self.cfg.params.a;
        (self.out_kind(port) == PortKind::Global).then(|| port - p - (a - 1))
    }

    // ----- lookups -------------------------------------------------------

    /// The resolved output link of (`router`, `port`).
    #[inline]
    pub fn out_link(&self, router: RouterId, port: usize) -> &OutLink {
        &self.out_links[router.idx() * self.n_out + port]
    }

    /// The input-port descriptor of (`router`, `port`).
    #[inline]
    pub fn in_desc(&self, router: RouterId, port: usize) -> &InDesc {
        &self.in_descs[router.idx() * self.n_in + port]
    }

    /// Per-VC buffer capacity (phits) of an input port, by VC index
    /// (escape VCs use `buf_ring`).
    #[inline]
    pub fn in_capacity(&self, router: RouterId, port: usize, vc: usize) -> usize {
        let d = self.in_desc(router, port);
        let base = match d.kind {
            PortKind::Node => self.cfg.buf_injection,
            PortKind::Local => self.cfg.buf_local,
            PortKind::Global => self.cfg.buf_global,
            PortKind::Ring => self.cfg.buf_ring,
        };
        // The embedded escape VC is the extra, last VC of a canonical port.
        let base_vcs = match d.kind {
            PortKind::Node => self.cfg.vcs_injection,
            PortKind::Local => self.cfg.vcs_local,
            PortKind::Global => self.cfg.vcs_global,
            PortKind::Ring => self.cfg.vcs_ring,
        };
        if d.kind != PortKind::Ring && vc >= base_vcs {
            self.cfg.buf_ring
        } else {
            base
        }
    }

    /// Escape outputs of a router, one per configured ring.
    #[inline]
    pub fn escapes(&self, router: RouterId) -> &[EscapeOut] {
        let k = self.rings.len();
        &self.escapes[router.idx() * k..router.idx() * k + k]
    }

    /// The primary escape output of a router (`None` when no ring is
    /// configured).
    #[inline]
    pub fn escape(&self, router: RouterId) -> Option<EscapeOut> {
        self.escapes(router).first().copied()
    }

    /// When (`port`, `vc`) of `router` is an escape-ring landing buffer,
    /// the index of the ring it belongs to.
    #[inline]
    pub fn ring_of_input(&self, router: RouterId, port: usize, vc: usize) -> Option<usize> {
        let (ring, esc_vc) = self.ring_landing[router.idx() * self.n_in + port];
        if ring < 0 {
            return None;
        }
        let physical = self.cfg.ring == RingMode::Physical;
        (physical || vc == esc_vc as usize).then_some(ring as usize)
    }

    /// Topology accessor.
    #[inline]
    pub fn topo(&self) -> &Dragonfly {
        &self.topo
    }

    /// Configuration accessor.
    #[inline]
    pub fn cfg(&self) -> &SimConfig {
        &self.cfg
    }

    /// The escape-ring family.
    #[inline]
    pub fn rings(&self) -> &[HamiltonianRing] {
        &self.rings
    }

    /// The primary escape ring, if any.
    #[inline]
    pub fn ring(&self) -> Option<&HamiltonianRing> {
        self.rings.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_port_count_is_4h_minus_1() {
        let fab = Fabric::new(SimConfig::paper(3));
        assert_eq!(fab.n_in(), 4 * 3 - 1);
        assert_eq!(fab.n_out(), 4 * 3 - 1);
    }

    #[test]
    fn physical_ring_adds_two_ports() {
        let fab = Fabric::new(SimConfig::paper(3).with_ring(RingMode::Physical));
        assert_eq!(fab.n_in(), 4 * 3);
        assert_eq!(fab.n_out(), 4 * 3);
        assert_eq!(fab.in_kind(fab.n_in() - 1), PortKind::Ring);
        // every router has an escape output on the ring port
        for r in 0..fab.topo().num_routers() {
            let esc = fab.escape(RouterId::from(r)).unwrap();
            assert_eq!(esc.out_port as usize, fab.n_out() - 1);
            assert_eq!(esc.num_vcs as usize, fab.cfg().vcs_ring);
        }
    }

    #[test]
    fn out_links_mirror_in_descs() {
        for ring in [RingMode::None, RingMode::Physical, RingMode::Embedded] {
            let fab = Fabric::new(SimConfig::paper(2).with_ring(ring));
            for r in 0..fab.topo().num_routers() {
                let rid = RouterId::from(r);
                for port in 0..fab.n_out() {
                    let link = fab.out_link(rid, port);
                    if link.kind == PortKind::Node {
                        assert_eq!(link.dst_router, rid.0);
                        continue;
                    }
                    let d = fab.in_desc(RouterId::new(link.dst_router), link.dst_port as usize);
                    assert_eq!(d.kind, link.kind, "r={r} port={port}");
                    assert_eq!(d.vcs, link.vcs, "r={r} port={port}");
                    assert_eq!(d.up_router, rid.0, "r={r} port={port}");
                    assert_eq!(d.up_port as usize, port, "r={r} port={port}");
                    assert_eq!(d.latency, link.latency);
                }
            }
        }
    }

    #[test]
    fn embedded_ring_adds_one_vc_on_each_ring_landing() {
        let cfg = SimConfig::paper(2).with_ring(RingMode::Embedded);
        let fab = Fabric::new(cfg);
        let nr = fab.topo().num_routers();
        // Each router has exactly one incoming ring edge, so exactly one
        // input port network-wide per router carries an extra VC.
        let mut extra = 0usize;
        for r in 0..nr {
            let rid = RouterId::from(r);
            for port in 0..fab.n_in() {
                let d = fab.in_desc(rid, port);
                let base = match d.kind {
                    PortKind::Node => cfg.vcs_injection,
                    PortKind::Local => cfg.vcs_local,
                    PortKind::Global => cfg.vcs_global,
                    PortKind::Ring => cfg.vcs_ring,
                };
                if d.vcs as usize == base + 1 {
                    extra += 1;
                    // escape VC uses the ring buffer size
                    assert_eq!(fab.in_capacity(rid, port, base), cfg.buf_ring);
                    assert_eq!(fab.ring_of_input(rid, port, base), Some(0));
                    assert_eq!(fab.ring_of_input(rid, port, 0), None);
                } else {
                    assert_eq!(d.vcs as usize, base);
                }
            }
            assert!(fab.escape(rid).is_some());
        }
        assert_eq!(extra, nr, "one ring landing per router");
    }

    #[test]
    fn escape_out_points_at_next_ring_router() {
        let cfg = SimConfig::paper(2).with_ring(RingMode::Embedded);
        let fab = Fabric::new(cfg);
        let ring = fab.ring().unwrap().clone();
        for &r in ring.order() {
            let esc = fab.escape(r).unwrap();
            let link = fab.out_link(r, esc.out_port as usize);
            assert_eq!(link.dst_router, ring.next_router(r).0);
            assert_eq!(esc.num_vcs, 1);
            // the escape VC is the downstream input's last VC
            assert_eq!(esc.base_vc, link.vcs - 1);
        }
    }

    #[test]
    fn multiple_embedded_rings_wire_disjoint_escape_vcs() {
        let mut cfg = SimConfig::paper(2).with_ring(RingMode::Embedded);
        cfg.escape_rings = 2;
        let fab = Fabric::new(cfg);
        let nr = fab.topo().num_routers();
        for r in 0..nr {
            let rid = RouterId::from(r);
            let escapes = fab.escapes(rid);
            assert_eq!(escapes.len(), 2);
            // the two escape outputs lead to the two rings' successors
            for (j, esc) in escapes.iter().enumerate() {
                let link = fab.out_link(rid, esc.out_port as usize);
                assert_eq!(link.dst_router, fab.rings()[j].next_router(rid).0);
                let landing = fab.ring_of_input(
                    RouterId::new(link.dst_router),
                    link.dst_port as usize,
                    esc.base_vc as usize,
                );
                assert_eq!(landing, Some(j));
            }
        }
        // exactly 2 landings per router
        let landings: usize = (0..nr)
            .map(|r| {
                (0..fab.n_in())
                    .filter(|&p| {
                        let d = fab.in_desc(RouterId::from(r), p);
                        fab.ring_of_input(RouterId::from(r), p, d.vcs as usize - 1)
                            .is_some()
                    })
                    .count()
            })
            .sum();
        assert_eq!(landings, 2 * nr);
    }

    #[test]
    fn multiple_physical_rings_add_port_pairs() {
        let mut cfg = SimConfig::paper(2).with_ring(RingMode::Physical);
        cfg.escape_rings = 2;
        let fab = Fabric::new(cfg);
        assert_eq!(fab.n_in(), fab.n_canonical() + 2);
        for r in 0..fab.topo().num_routers() {
            let rid = RouterId::from(r);
            assert_eq!(fab.escapes(rid).len(), 2);
            for j in 0..2 {
                assert_eq!(fab.ring_of_input(rid, fab.n_canonical() + j, 0), Some(j));
            }
        }
    }
}
