//! Packets, in-transit routing state and routing requests.

use ofar_topology::{GroupId, NodeId};

/// Header flag: the packet has already taken its one allowed global
/// misroute (§IV-A).
pub const FLAG_GLOBAL_MISROUTED: u8 = 1 << 0;
/// Header flag: the packet has taken its one allowed local misroute in
/// the *current* group; cleared when the packet changes group (§IV-A).
pub const FLAG_LOCAL_MISROUTED: u8 = 1 << 1;
/// The packet is currently travelling on the escape ring (§IV-C).
pub const FLAG_ON_RING: u8 = 1 << 2;
/// Mechanism-private header flag, free for policies to use (e.g. PAR's
/// "adaptive decision still pending" marker). The engine never touches it.
pub const FLAG_AUX: u8 = 1 << 7;

/// A packet. Sized for hot simulator queues: it stays well under a cache
/// line and is `Copy`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Unique id (injection order).
    pub id: u64,
    /// Cycle the packet was generated (source-queue time counts towards
    /// latency, which is what makes saturation visible).
    pub injected_at: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Valiant intermediate group, when one was chosen at injection and
    /// has not been reached yet (VAL, PB and PAR). Cleared by the engine
    /// on arrival at the intermediate group.
    pub intermediate: Option<GroupId>,
    /// Misroute/ring header flags.
    pub flags: u8,
    /// Remaining escape-ring abandonments (livelock bound, §IV-C).
    pub ring_exits_left: u8,
    /// Local link hops taken so far (used for VC selection and path-length
    /// invariants).
    pub local_hops: u8,
    /// Global link hops taken so far.
    pub global_hops: u8,
    /// Hops taken along the escape ring (not part of the canonical hop
    /// ladder; diagnostics and livelock analysis).
    pub ring_hops: u8,
    /// Cycles this packet has spent blocked at the head of its current
    /// input VC (reset by the engine on every grant). Policies use it as
    /// a congestion-persistence signal — e.g. OFAR's escape-ring
    /// patience (§IV-C: the ring is a *last* resort).
    pub wait: u8,
    /// Group the packet is currently in (kept by the engine so the
    /// local-misroute flag can be reset on group change).
    pub cur_group: GroupId,
}

impl Packet {
    /// Whether `flag` (one of the `FLAG_*` bits) is set.
    #[inline]
    pub fn has(&self, flag: u8) -> bool {
        self.flags & flag != 0
    }

    /// Set `flag` (one of the `FLAG_*` bits).
    #[inline]
    pub fn set(&mut self, flag: u8) {
        self.flags |= flag;
    }

    /// Clear `flag` (one of the `FLAG_*` bits).
    #[inline]
    pub fn clear(&mut self, flag: u8) {
        self.flags &= !flag;
    }

    /// Whether the packet is on the escape ring.
    #[inline]
    pub fn on_ring(&self) -> bool {
        self.has(FLAG_ON_RING)
    }

    /// Total link hops taken.
    #[inline]
    pub fn hops(&self) -> u32 {
        self.local_hops as u32 + self.global_hops as u32
    }

    /// The header bytes covered by the link-level CRC: the immutable
    /// identity fields plus the link-local sequence number `seq`. Routing
    /// state (flags, hop counts, `wait`) is deliberately excluded — it
    /// legitimately differs between a transmission and its replay-buffer
    /// copy is irrelevant anyway because the replayed copy is byte-exact.
    /// Covering the stable identity keeps a corrupted wire image
    /// detectable without making the CRC depend on mutable scratch state.
    #[inline]
    pub fn fingerprint(&self, seq: u32) -> [u8; 24] {
        let mut out = [0u8; 24];
        out[..8].copy_from_slice(&self.id.to_le_bytes());
        out[8..12].copy_from_slice(&self.src.0.to_le_bytes());
        out[12..16].copy_from_slice(&self.dst.0.to_le_bytes());
        out[16..20].copy_from_slice(&seq.to_le_bytes());
        // lint:allow(P002, fingerprint keeps the low 32 bits of injected_at by design; compared only within a replay window)
        out[20..24].copy_from_slice(&(self.injected_at as u32).to_le_bytes());
        out
    }
}

/// Semantic class of a routing request; the engine uses it to perform the
/// header-flag bookkeeping of §IV-A and the bubble check of §IV-C.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// Deliver to the attached destination node.
    Eject,
    /// The minimal (or Valiant-minimal) next hop.
    Minimal,
    /// Non-minimal local hop (sets [`FLAG_LOCAL_MISROUTED`]).
    MisrouteLocal,
    /// Non-minimal global hop (sets [`FLAG_GLOBAL_MISROUTED`]).
    MisrouteGlobal,
    /// Enter the escape ring from the canonical network (bubble rule:
    /// needs space for *two* packets downstream).
    RingEnter,
    /// Advance along the escape ring (needs space for one packet).
    RingAdvance,
    /// Leave the escape ring through a canonical output (decrements
    /// `ring_exits_left`). Ejection from the ring is `Eject` and is
    /// always allowed.
    RingExit,
}

/// A routing request emitted by a policy for the packet at the head of an
/// input VC: "move this packet to output port `out_port`, into downstream
/// VC `out_vc`".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Output port index (router-local).
    pub out_port: u16,
    /// Downstream VC index the packet will occupy.
    pub out_vc: u8,
    /// Request class for flag/bubble bookkeeping.
    pub kind: RequestKind,
}

impl Request {
    /// Convenience constructor.
    #[inline]
    // lint:allow(P002, ports fit u16 and vcs fit u8 for any realizable fabric radix)
    pub fn new(out_port: usize, out_vc: usize, kind: RequestKind) -> Self {
        Self {
            out_port: out_port as u16,
            out_vc: out_vc as u8,
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_set_clear_roundtrip() {
        let mut p = Packet {
            id: 0,
            injected_at: 0,
            src: NodeId::new(0),
            dst: NodeId::new(1),
            intermediate: None,
            flags: 0,
            ring_exits_left: 4,
            local_hops: 0,
            global_hops: 0,
            ring_hops: 0,
            wait: 0,
            cur_group: GroupId::new(0),
        };
        assert!(!p.has(FLAG_GLOBAL_MISROUTED));
        p.set(FLAG_GLOBAL_MISROUTED);
        p.set(FLAG_ON_RING);
        assert!(p.has(FLAG_GLOBAL_MISROUTED));
        assert!(p.on_ring());
        p.clear(FLAG_ON_RING);
        assert!(!p.on_ring());
        assert!(p.has(FLAG_GLOBAL_MISROUTED));
    }

    #[test]
    fn packet_stays_small() {
        // Keep the hot queue element within half a cache line.
        assert!(std::mem::size_of::<Packet>() <= 48);
    }
}
