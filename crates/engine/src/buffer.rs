//! Virtual-channel FIFO buffers, counted in phits.

use crate::packet::Packet;
use std::collections::VecDeque;

/// One virtual-channel FIFO of an input port.
///
/// Occupancy is tracked in phits (the paper's flow-control unit); the
/// queue itself stores whole packets, as virtual cut-through only moves
/// and accounts whole packets once the header has been accepted.
#[derive(Clone, Debug)]
pub struct VcFifo {
    q: VecDeque<Packet>,
    occupancy: u32,
    capacity: u32,
}

impl VcFifo {
    /// Create a FIFO holding up to `capacity_phits` phits.
    pub fn new(capacity_phits: usize, packet_size: usize) -> Self {
        Self {
            q: VecDeque::with_capacity(capacity_phits / packet_size.max(1) + 1),
            occupancy: 0,
            capacity: capacity_phits as u32,
        }
    }

    /// Current occupancy in phits.
    #[inline]
    pub fn occupancy(&self) -> u32 {
        self.occupancy
    }

    /// Capacity in phits.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Free space in phits.
    #[inline]
    pub fn free(&self) -> u32 {
        self.capacity - self.occupancy
    }

    /// Whether a packet of `phits` fits.
    #[inline]
    pub fn fits(&self, phits: u32) -> bool {
        self.free() >= phits
    }

    /// Number of queued packets.
    #[inline]
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the FIFO is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Append a packet occupying `phits` phits.
    ///
    /// # Panics
    /// Panics if the packet does not fit — callers must have reserved
    /// space through the credit mechanism, so an overflow here is a
    /// flow-control bug, not an operational condition.
    #[inline]
    pub fn push(&mut self, pkt: Packet, phits: u32) {
        // lint:allow(P001, overflow here means a broken credit loop; failing loud beats silent corruption)
        assert!(
            self.fits(phits),
            "VC overflow: {} + {phits} > {} phits (flow-control violation)",
            self.occupancy,
            self.capacity
        );
        self.occupancy += phits;
        self.q.push_back(pkt);
    }

    /// [`Self::push`] without the flow-control assertion, for runs with
    /// an engine mutation seam armed: a seeded credit defect makes
    /// overflow an *expected* consequence that the runtime auditor — not
    /// a panic — must detect and report.
    #[cfg(feature = "mutate")]
    #[inline]
    pub(crate) fn push_overflowing(&mut self, pkt: Packet, phits: u32) {
        self.occupancy += phits;
        self.q.push_back(pkt);
    }

    /// The packet at the head, if any.
    #[inline]
    pub fn head(&self) -> Option<&Packet> {
        self.q.front()
    }

    /// Mutable access to the head packet (routing bookkeeping).
    #[inline]
    pub fn head_mut(&mut self) -> Option<&mut Packet> {
        self.q.front_mut()
    }

    /// Remove the head packet, releasing `phits` phits.
    #[inline]
    pub fn pop(&mut self, phits: u32) -> Packet {
        // lint:allow(P001, pop contract requires a prior occupancy check; an empty pop is a broken allocator)
        let pkt = self.q.pop_front().expect("pop from empty VC");
        debug_assert!(self.occupancy >= phits);
        self.occupancy -= phits;
        pkt
    }

    /// Iterate queued packets, head first (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &Packet> {
        self.q.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofar_topology::{GroupId, NodeId};

    fn pkt(id: u64) -> Packet {
        Packet {
            id,
            injected_at: 0,
            src: NodeId::new(0),
            dst: NodeId::new(1),
            intermediate: None,
            flags: 0,
            ring_exits_left: 0,
            local_hops: 0,
            global_hops: 0,
            ring_hops: 0,
            wait: 0,
            cur_group: GroupId::new(0),
        }
    }

    #[test]
    fn fifo_order_and_occupancy() {
        let mut f = VcFifo::new(32, 8);
        assert!(f.is_empty());
        f.push(pkt(1), 8);
        f.push(pkt(2), 8);
        assert_eq!(f.occupancy(), 16);
        assert_eq!(f.free(), 16);
        assert_eq!(f.len(), 2);
        assert_eq!(f.head().unwrap().id, 1);
        assert_eq!(f.pop(8).id, 1);
        assert_eq!(f.pop(8).id, 2);
        assert!(f.is_empty());
        assert_eq!(f.occupancy(), 0);
    }

    #[test]
    fn fits_respects_capacity() {
        let mut f = VcFifo::new(32, 8);
        for i in 0..4 {
            assert!(f.fits(8));
            f.push(pkt(i), 8);
        }
        assert!(!f.fits(8));
        assert!(f.fits(0));
    }

    #[test]
    #[should_panic(expected = "VC overflow")]
    fn overflow_panics() {
        let mut f = VcFifo::new(8, 8);
        f.push(pkt(1), 8);
        f.push(pkt(2), 8);
    }
}
