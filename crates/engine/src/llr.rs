//! Link-level retransmission (LLR): a reliable delivery layer over lossy
//! links.
//!
//! The base engine models a perfectly lossless fabric; real high-radix
//! links fail *transiently* far more often than they fail-stop — bit
//! errors, dropped phits, flapping SerDes. This module adds the link
//! retry hardware production Dragonfly deployments rely on (the lossless
//! reliable link layer the InfiniBand routing-engine literature assumes
//! underneath its deadlock-free routing engines):
//!
//! * every network link (local, global and escape-ring — never the
//!   on-router injection/ejection wires) gets a **sender-side replay
//!   buffer** of up to [`crate::config::SimConfig::llr_window`] packets,
//!   each stamped with a per-link sequence number and a CRC-32 over the
//!   header fields ([`crate::packet::Packet::fingerprint`]);
//! * the receiver recomputes the CRC and checks the sequence number
//!   against a selective-repeat window: a corrupted packet is discarded
//!   and **nacked**, a duplicate (spurious retransmission) is discarded
//!   silently, a good packet is accepted and **acked** — acks and nacks
//!   ride the credit-return path, so they share its latency and are
//!   never lost;
//! * a transfer that vanishes on the wire (dropped phit) triggers a
//!   **retransmit timeout** of one round trip plus
//!   [`crate::config::SimConfig::llr_timeout_slack`], doubling per retry
//!   up to `2^llr_backoff_cap` (exponential backoff);
//! * a packet retried past [`crate::config::SimConfig::llr_retry_budget`]
//!   **escalates** the link to the §VII fail-stop machinery: the copies
//!   already reserved downstream are force-delivered (fail-stop at
//!   packet granularity — transfers already started complete), the link
//!   is failed, and the degraded-mode routing of PR 1 plus the dead-port
//!   auditing of PR 2 take over seamlessly.
//!
//! Flow-control interaction: the credit decremented at the *first*
//! transmission keeps the downstream space reserved across every retry,
//! so retransmissions never consume new credits and the conservation
//! laws keep holding with one amendment — a replay entry whose sequence
//! number the receiver has not accepted yet *is* the canonical copy of
//! its packet (copies in flight are phantoms). See
//! [`Llr::undelivered_phits`].
//!
//! Error model: each phit of a transfer flips independently with the
//! effective per-phit error probability of the link
//! ([`crate::fault::FaultState::link_ber`] override, else
//! [`crate::config::SimConfig::ber`]). A failed transfer is a *drop*
//! (header phit hit — the receiver never sees the packet) with
//! probability `1/packet_size`, otherwise a *corruption* (payload hit —
//! CRC-detected at the receiver). One-shot
//! [`crate::fault::FaultKind::CorruptPhit`] / `DropPhit` events queue a
//! deterministic fault for the next transfer crossing the link.
//! Undetected errors (a corruption that preserves the CRC, ~2⁻³² per
//! event in hardware) are not modelled.

use crate::fabric::{Fabric, PortKind};
use crate::packet::Packet;
use std::collections::VecDeque;

/// Outcome of one wire transfer, decided at transmission time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fate {
    /// Arrives intact.
    Good,
    /// Arrives with a CRC-detectable payload corruption.
    Corrupt,
    /// Never arrives (header phit lost).
    Drop,
}

/// One replay-buffer entry: a transmitted packet awaiting its ack.
#[derive(Clone, Debug)]
pub struct LlrEntry {
    /// Link-local sequence number.
    pub seq: u32,
    /// Downstream VC the reservation was taken on.
    pub out_vc: u8,
    /// Retransmissions so far.
    pub retries: u32,
    /// Cycle of the last transmission.
    pub sent_at: u64,
    /// The last transmission is known failed (nack received, or timeout
    /// expired) and the entry awaits retransmission.
    pub lost: bool,
    /// The retained packet.
    pub pkt: Packet,
    /// CRC-32 computed at first transmission.
    pub crc: u32,
}

/// An ack or nack travelling back to the sender on the credit path.
#[derive(Clone, Copy, Debug)]
struct AckEvent {
    /// Cycle it reaches the sender.
    at: u64,
    /// Acknowledged sequence number.
    seq: u32,
    /// true = ack (free the entry), false = nack (retransmit).
    ok: bool,
}

/// Sender-side state of one directed link.
#[derive(Clone, Debug, Default)]
struct TxLink {
    /// Next sequence number to assign.
    next_seq: u32,
    /// Replay buffer, in sequence order.
    entries: VecDeque<LlrEntry>,
    /// Acks/nacks in flight back to this sender.
    acks: VecDeque<AckEvent>,
}

/// Metadata travelling with a packet on the wire (alongside the engine's
/// arrival event, in lockstep).
#[derive(Clone, Copy, Debug)]
struct WireMeta {
    /// Sequence number.
    seq: u32,
    /// CRC as received (corrupted on the wire when the fate said so).
    wire_crc: u32,
}

/// Receiver-side state of one directed link: the selective-repeat
/// acceptance window and the wire-metadata queue.
#[derive(Clone, Debug, Default)]
struct RxLink {
    /// Lowest sequence number not yet cumulatively accepted.
    base: u32,
    /// Bit `i` set ⇔ `base + i` accepted (out of order).
    mask: u64,
    /// Metadata of packets in flight toward this input, arrival order.
    wire: VecDeque<WireMeta>,
}

impl RxLink {
    /// Whether `seq` has already been accepted.
    fn accepted(&self, seq: u32) -> bool {
        let d = seq.wrapping_sub(self.base);
        if d >= 1 << 31 {
            return true; // behind the window: long acked
        }
        d < 64 && self.mask & (1 << d) != 0
    }

    /// Mark `seq` accepted and slide the window.
    fn accept(&mut self, seq: u32) {
        let d = seq.wrapping_sub(self.base);
        debug_assert!(d < 64, "sender window exceeded the receiver window");
        if d < 64 {
            self.mask |= 1 << d;
        }
        while self.mask & 1 != 0 {
            self.mask >>= 1;
            self.base = self.base.wrapping_add(1);
        }
    }
}

/// What the receiver decided about a landed transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxVerdict {
    /// CRC good, sequence fresh: accept into the VC buffer.
    Accept,
    /// CRC mismatch: discard, nack.
    CrcDrop,
    /// Already accepted (spurious retransmission): discard silently.
    Duplicate,
}

/// The link-level retransmission state of a whole network. Lives on
/// [`crate::network::Network`] as an `Option` — `None` (the default on a
/// lossless configuration) keeps the healthy path zero-cost.
#[derive(Clone, Debug)]
pub struct Llr {
    n_out: usize,
    n_in: usize,
    /// `[router × n_out]` sender state (unused slots for ejection ports).
    tx: Vec<TxLink>,
    /// `[router × n_in]` receiver state (unused slots for injection).
    rx: Vec<RxLink>,
    /// Replay-buffer depth per link, in packets (≤ 64).
    window: usize,
    /// splitmix64 state for wire-error sampling.
    rng: u64,
    /// Per-directed-link retransmission counters (`[router × n_out]`),
    /// the raw data of the per-link retry histogram.
    retx_per_link: Vec<u64>,
    /// Delivered-packet-id bitmap for exactly-once accounting.
    delivered_ids: Vec<u64>,
}

impl Llr {
    /// Fresh LLR state for a fabric, seeded for wire-error sampling.
    pub fn new(fab: &Fabric, seed: u64) -> Self {
        let nr = fab.topo().num_routers();
        let (n_in, n_out) = (fab.n_in(), fab.n_out());
        Self {
            n_out,
            n_in,
            tx: vec![TxLink::default(); nr * n_out],
            rx: vec![RxLink::default(); nr * n_in],
            window: fab.cfg().llr_window,
            rng: seed ^ 0xC2B2_AE3D_27D4_EB4F,
            retx_per_link: vec![0; nr * n_out],
            delivered_ids: Vec::new(),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` (53-bit mantissa).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Sample the fate of one transfer of `size` phits under per-phit
    /// error probability `ber`.
    pub fn sample_fate(&mut self, ber: f64, size: u32) -> Fate {
        if ber <= 0.0 {
            return Fate::Good;
        }
        // lint:allow(P002, packet size fits i32; powi takes i32 by API)
        let p_fail = 1.0 - (1.0 - ber).powi(size as i32);
        if self.next_f64() >= p_fail {
            return Fate::Good;
        }
        // A failed transfer is a drop iff the (first) hit phit was the
        // header; uniform over phits, that is probability 1/size.
        if self.next_f64() < 1.0 / f64::from(size.max(1)) {
            Fate::Drop
        } else {
            Fate::Corrupt
        }
    }

    /// A nonzero CRC perturbation for a corrupted wire image.
    pub fn corruption(&mut self) -> u32 {
        loop {
            // lint:allow(P002, deliberate truncation; keeps the low 32 bits of the generator word)
            let x = (self.next_u64() >> 16) as u32;
            if x != 0 {
                return x;
            }
        }
    }

    #[inline]
    fn tx_idx(&self, router: usize, port: usize) -> usize {
        router * self.n_out + port
    }

    #[inline]
    fn rx_idx(&self, router: usize, port: usize) -> usize {
        router * self.n_in + port
    }

    /// Whether the replay buffer of (`router`, `port`) can take one more
    /// packet (gates new grants on that output).
    #[inline]
    pub fn tx_has_room(&self, router: usize, port: usize) -> bool {
        self.tx[self.tx_idx(router, port)].entries.len() < self.window
    }

    /// Replay-buffer occupancy of (`router`, out `port`), in packets.
    #[inline]
    pub fn tx_occupancy(&self, router: usize, port: usize) -> usize {
        self.tx[self.tx_idx(router, port)].entries.len()
    }

    /// Configured replay window, in packets.
    #[inline]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Retransmissions issued by (`router`, out `port`) so far.
    #[inline]
    pub fn link_retransmits(&self, router: usize, port: usize) -> u64 {
        self.retx_per_link[router * self.n_out + port]
    }

    /// Record a transmission: assign a sequence number, compute the CRC,
    /// store the replay entry, and return `(seq, wire_crc)` for the wire
    /// (the caller pairs it with the fate it sampled). `retransmit`
    /// entries are recorded through [`Self::record_retransmit`].
    pub fn record_send(
        &mut self,
        router: usize,
        port: usize,
        out_vc: u8,
        pkt: Packet,
        now: u64,
        fate: Fate,
    ) -> (u32, u32) {
        let corruption = if fate == Fate::Corrupt {
            self.corruption()
        } else {
            0
        };
        let t = &mut self.tx[router * self.n_out + port];
        debug_assert!(t.entries.len() < self.window, "replay buffer overflow");
        let seq = t.next_seq;
        t.next_seq = t.next_seq.wrapping_add(1);
        let crc = crc32(&pkt.fingerprint(seq));
        t.entries.push_back(LlrEntry {
            seq,
            out_vc,
            retries: 0,
            sent_at: now,
            lost: false,
            pkt,
            crc,
        });
        (seq, crc ^ corruption)
    }

    /// Push the wire metadata toward the receiving input port, in
    /// lockstep with the engine's arrival event. Not called for a
    /// dropped transfer (no arrival exists).
    pub fn push_wire(&mut self, dst_router: usize, dst_port: usize, seq: u32, wire_crc: u32) {
        let i = self.rx_idx(dst_router, dst_port);
        self.rx[i].wire.push_back(WireMeta { seq, wire_crc });
    }

    /// Judge a landed transfer at (`dst_router`, `dst_port`): pop the
    /// wire metadata, recompute the CRC over the packet, and run the
    /// sequence check. Returns the verdict plus the sequence number (for
    /// the ack/nack). On `Accept` the sequence is marked accepted.
    pub fn receive(
        &mut self,
        dst_router: usize,
        dst_port: usize,
        pkt: &Packet,
    ) -> (RxVerdict, u32) {
        let i = self.rx_idx(dst_router, dst_port);
        let meta = self.rx[i]
            .wire
            .pop_front()
            // lint:allow(P001, wire metadata is written at send time for every in-flight packet)
            .expect("arrival without wire metadata (LLR enabled mid-flight?)");
        if crc32(&pkt.fingerprint(meta.seq)) != meta.wire_crc {
            return (RxVerdict::CrcDrop, meta.seq);
        }
        if self.rx[i].accepted(meta.seq) {
            return (RxVerdict::Duplicate, meta.seq);
        }
        self.rx[i].accept(meta.seq);
        (RxVerdict::Accept, meta.seq)
    }

    /// Queue an ack (`ok = true`) or nack toward the sender of
    /// (`up_router`, `up_port`), arriving at `at` (credit-path latency).
    pub fn push_ack(&mut self, up_router: usize, up_port: usize, seq: u32, ok: bool, at: u64) {
        let i = self.tx_idx(up_router, up_port);
        self.tx[i].acks.push_back(AckEvent { at, seq, ok });
    }

    /// Process acks/nacks due at `now` for (`router`, `port`): acked
    /// entries are freed, nacked entries are marked lost. Returns the
    /// number of nacks processed.
    pub fn drain_acks(&mut self, router: usize, port: usize, now: u64) -> u64 {
        let i = self.tx_idx(router, port);
        let t = &mut self.tx[i];
        let mut nacks = 0;
        while let Some(&AckEvent { at, seq, ok }) = t.acks.front() {
            if at > now {
                break;
            }
            t.acks.pop_front();
            if ok {
                // Selective ack: free the entry (may be out of order).
                if let Some(pos) = t.entries.iter().position(|e| e.seq == seq) {
                    t.entries.remove(pos);
                }
            } else {
                nacks += 1;
                if let Some(e) = t.entries.iter_mut().find(|e| e.seq == seq) {
                    e.lost = true;
                }
            }
        }
        nacks
    }

    /// Retransmit timeout for an entry on a link of latency `lat`: one
    /// round trip plus the configured slack, doubling per retry up to
    /// `2^backoff_cap`.
    pub fn timeout(lat: u64, size: u64, slack: u64, retries: u32, backoff_cap: u32) -> u64 {
        let base = 2 * lat + size + slack;
        base << retries.min(backoff_cap)
    }

    /// Expire outstanding entries of (`router`, `port`) whose timeout
    /// passed, marking them lost. Returns how many timed out.
    #[allow(clippy::too_many_arguments)]
    pub fn expire(
        &mut self,
        router: usize,
        port: usize,
        now: u64,
        lat: u64,
        size: u64,
        slack: u64,
        backoff_cap: u32,
    ) -> u64 {
        let i = self.tx_idx(router, port);
        let mut n = 0;
        for e in self.tx[i].entries.iter_mut() {
            if !e.lost && now >= e.sent_at + Self::timeout(lat, size, slack, e.retries, backoff_cap)
            {
                e.lost = true;
                n += 1;
            }
        }
        n
    }

    /// The oldest lost entry of (`router`, `port`) eligible for
    /// retransmission, if any. Returns `(seq, retries)`.
    pub fn next_retransmit(&self, router: usize, port: usize) -> Option<(u32, u32)> {
        self.tx[router * self.n_out + port]
            .entries
            .iter()
            .find(|e| e.lost)
            .map(|e| (e.seq, e.retries))
    }

    /// Re-send the lost entry `seq` of (`router`, `port`): bump its retry
    /// counter, stamp `now`, sample the wire image. Returns
    /// `(out_vc, pkt, wire_crc, fate)` for the caller to put on the wire.
    pub fn record_retransmit(
        &mut self,
        router: usize,
        port: usize,
        seq: u32,
        now: u64,
        fate: Fate,
    ) -> (u8, Packet, u32, Fate) {
        let corruption = if fate == Fate::Corrupt {
            self.corruption()
        } else {
            0
        };
        let i = self.tx_idx(router, port);
        self.retx_per_link[i] += 1;
        let e = self.tx[i]
            .entries
            .iter_mut()
            .find(|e| e.seq == seq)
            // lint:allow(P001, a replay entry exists for every outstanding seq by protocol invariant)
            .expect("retransmit of unknown seq");
        e.retries += 1;
        e.sent_at = now;
        // The sender cannot observe the wire: a dropped retransmission is
        // rediscovered by `expire` after the (backed-off) timeout.
        e.lost = false;
        (e.out_vc, e.pkt, e.crc ^ corruption, fate)
    }

    /// Entries of (`router`, `port`) the receiver has not accepted —
    /// each is the canonical copy of its packet (any copy in flight is a
    /// phantom). `dst` locates the receiver state.
    pub fn undelivered(
        &self,
        router: usize,
        port: usize,
        dst_router: usize,
        dst_port: usize,
    ) -> impl Iterator<Item = &LlrEntry> {
        let rx = &self.rx[dst_router * self.n_in + dst_port];
        self.tx[router * self.n_out + port]
            .entries
            .iter()
            .filter(move |e| !rx.accepted(e.seq))
    }

    /// Total phits whose canonical copy currently lives in a replay
    /// buffer (undelivered entries), network-wide. Replaces the
    /// in-flight-arrival term of phit conservation when LLR is enabled.
    pub fn undelivered_phits(&self, fab: &Fabric, size: u64) -> u64 {
        let nr = fab.topo().num_routers();
        let mut phits = 0;
        for r in 0..nr {
            for port in 0..self.n_out {
                let link = fab.out_link(ofar_topology::RouterId::from(r), port);
                if link.kind == PortKind::Node {
                    continue;
                }
                phits += self
                    .undelivered(r, port, link.dst_router as usize, link.dst_port as usize)
                    .count() as u64
                    * size;
            }
        }
        phits
    }

    /// Remove every entry of (`router`, `port`) and return the ones the
    /// receiver has not accepted (escalation / fail-stop force-delivery);
    /// their sequence numbers are marked accepted so copies still in
    /// flight are discarded as duplicates. Pending acks are dropped and
    /// the sequence space continues (a restored link keeps counting).
    pub fn take_undelivered(
        &mut self,
        router: usize,
        port: usize,
        dst_router: usize,
        dst_port: usize,
    ) -> Vec<LlrEntry> {
        let ti = self.tx_idx(router, port);
        let entries = std::mem::take(&mut self.tx[ti].entries);
        self.tx[ti].acks.clear();
        let ri = self.rx_idx(dst_router, dst_port);
        // lint:allow(H001, link-death recovery path; runs per fault event, not per cycle)
        let mut out = Vec::new();
        for e in entries {
            if !self.rx[ri].accepted(e.seq) {
                self.rx[ri].accept(e.seq);
                out.push(e);
            }
        }
        out
    }

    /// Exactly-once delivery check: marks packet `id` delivered and
    /// returns true if it had already been delivered (a duplicate
    /// ejection — must never happen while the link layer dedups).
    pub fn mark_delivered(&mut self, id: u64) -> bool {
        let (word, bit) = ((id / 64) as usize, id % 64);
        if word >= self.delivered_ids.len() {
            self.delivered_ids.resize(word + 1, 0);
        }
        let dup = self.delivered_ids[word] & (1 << bit) != 0;
        self.delivered_ids[word] |= 1 << bit;
        dup
    }
}

// ---------------------------------------------------------------------
// Checkpoint codec (see crate::snapshot)
// ---------------------------------------------------------------------

use crate::snapshot::{decode_packet, encode_packet, Dec, Enc, SnapshotError};

/// Decode-time sanity cap on in-flight queues (acks, wire metadata):
/// far above anything a real run produces, far below an allocation bomb.
const SNAP_QUEUE_BOUND: usize = 1 << 20;

impl Llr {
    /// Append the complete link-layer state: every replay buffer, ack in
    /// flight, selective-repeat window, wire queue and counter, plus the
    /// wire-error RNG — everything needed for a bit-exact resume.
    pub(crate) fn snap_encode(&self, e: &mut Enc) {
        e.usize(self.n_out);
        e.usize(self.n_in);
        e.usize(self.window);
        e.u64(self.rng);
        e.usize(self.tx.len());
        for tx in &self.tx {
            e.u32(tx.next_seq);
            e.usize(tx.entries.len());
            for en in &tx.entries {
                e.u32(en.seq);
                e.u8(en.out_vc);
                e.u32(en.retries);
                e.u64(en.sent_at);
                e.u8(u8::from(en.lost));
                encode_packet(e, &en.pkt);
                e.u32(en.crc);
            }
            e.usize(tx.acks.len());
            for a in &tx.acks {
                e.u64(a.at);
                e.u32(a.seq);
                e.u8(u8::from(a.ok));
            }
        }
        e.usize(self.rx.len());
        for rx in &self.rx {
            e.u32(rx.base);
            e.u64(rx.mask);
            e.usize(rx.wire.len());
            for w in &rx.wire {
                e.u32(w.seq);
                e.u32(w.wire_crc);
            }
        }
        e.usize(self.retx_per_link.len());
        for &c in &self.retx_per_link {
            e.u64(c);
        }
        e.usize(self.delivered_ids.len());
        for &w in &self.delivered_ids {
            e.u64(w);
        }
    }

    /// Rebuild the link-layer state written by [`Llr::snap_encode`],
    /// validating every dimension against the restoring fabric.
    pub(crate) fn snap_decode(d: &mut Dec<'_>, fab: &Fabric) -> Result<Self, SnapshotError> {
        let nr = fab.topo().num_routers();
        let n_out = d.usize()?;
        let n_in = d.usize()?;
        let window = d.usize()?;
        if n_out != fab.n_out() || n_in != fab.n_in() || window != fab.cfg().llr_window {
            return Err(SnapshotError::Malformed("LLR dimensions disagree"));
        }
        let rng = d.u64()?;
        let ntx = d.len(nr * n_out, "LLR tx count")?;
        if ntx != nr * n_out {
            return Err(SnapshotError::Malformed("LLR tx count disagrees"));
        }
        let mut tx = Vec::with_capacity(ntx);
        for _ in 0..ntx {
            let next_seq = d.u32()?;
            let n_entries = d.len(window, "LLR replay buffer overflows its window")?;
            let mut entries = VecDeque::with_capacity(n_entries);
            for _ in 0..n_entries {
                let seq = d.u32()?;
                let out_vc = d.u8()?;
                let retries = d.u32()?;
                let sent_at = d.u64()?;
                let lost = d.u8()? != 0;
                let pkt = decode_packet(d)?;
                let crc = d.u32()?;
                entries.push_back(LlrEntry {
                    seq,
                    out_vc,
                    retries,
                    sent_at,
                    lost,
                    pkt,
                    crc,
                });
            }
            let n_acks = d.len(SNAP_QUEUE_BOUND, "LLR ack queue")?;
            let mut acks = VecDeque::with_capacity(n_acks);
            for _ in 0..n_acks {
                let at = d.u64()?;
                let seq = d.u32()?;
                let ok = d.u8()? != 0;
                acks.push_back(AckEvent { at, seq, ok });
            }
            tx.push(TxLink {
                next_seq,
                entries,
                acks,
            });
        }
        let nrx = d.len(nr * n_in, "LLR rx count")?;
        if nrx != nr * n_in {
            return Err(SnapshotError::Malformed("LLR rx count disagrees"));
        }
        let mut rx = Vec::with_capacity(nrx);
        for _ in 0..nrx {
            let base = d.u32()?;
            let mask = d.u64()?;
            let n_wire = d.len(SNAP_QUEUE_BOUND, "LLR wire queue")?;
            let mut wire = VecDeque::with_capacity(n_wire);
            for _ in 0..n_wire {
                let seq = d.u32()?;
                let wire_crc = d.u32()?;
                wire.push_back(WireMeta { seq, wire_crc });
            }
            rx.push(RxLink { base, mask, wire });
        }
        let n_retx = d.len(nr * n_out, "LLR retx counters")?;
        if n_retx != nr * n_out {
            return Err(SnapshotError::Malformed("LLR retx counter count disagrees"));
        }
        let mut retx_per_link = Vec::with_capacity(n_retx);
        for _ in 0..n_retx {
            retx_per_link.push(d.u64()?);
        }
        let n_ids = d.len(SNAP_QUEUE_BOUND, "LLR delivered-id bitmap")?;
        let mut delivered_ids = Vec::with_capacity(n_ids);
        for _ in 0..n_ids {
            delivered_ids.push(d.u64()?);
        }
        Ok(Self {
            n_out,
            n_in,
            tx,
            rx,
            window,
            rng,
            retx_per_link,
            delivered_ids,
        })
    }
}

/// CRC-32 (IEEE 802.3, reflected, bitwise) over `data`. Small and
/// allocation-free; the simulator CRCs a few words per transfer, so a
/// lookup table would be wasted cache.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofar_topology::{GroupId, NodeId};

    fn pkt(id: u64) -> Packet {
        Packet {
            id,
            injected_at: 0,
            src: NodeId::new(0),
            dst: NodeId::new(1),
            intermediate: None,
            flags: 0,
            ring_exits_left: 0,
            local_hops: 0,
            global_hops: 0,
            ring_hops: 0,
            wait: 0,
            cur_group: GroupId::new(0),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn rx_window_accepts_once_and_slides() {
        let mut rx = RxLink::default();
        assert!(!rx.accepted(0));
        rx.accept(0);
        assert!(rx.accepted(0));
        assert_eq!(rx.base, 1);
        // out-of-order accept holds the base until the gap fills
        rx.accept(2);
        assert!(rx.accepted(2));
        assert!(!rx.accepted(1));
        assert_eq!(rx.base, 1);
        rx.accept(1);
        assert_eq!(rx.base, 3);
        // far behind the window counts as accepted
        rx.base = 1000;
        assert!(rx.accepted(3));
    }

    #[test]
    fn fate_sampling_is_deterministic_and_ber_zero_is_clean() {
        let fab = Fabric::new(crate::config::SimConfig::paper(2));
        let mut a = Llr::new(&fab, 7);
        let mut b = Llr::new(&fab, 7);
        for _ in 0..100 {
            assert_eq!(a.sample_fate(0.05, 8), b.sample_fate(0.05, 8));
        }
        let mut c = Llr::new(&fab, 9);
        for _ in 0..1000 {
            assert_eq!(c.sample_fate(0.0, 8), Fate::Good);
        }
    }

    #[test]
    fn fate_rates_track_the_ber() {
        let fab = Fabric::new(crate::config::SimConfig::paper(2));
        let mut l = Llr::new(&fab, 11);
        let n = 20_000;
        let fails = (0..n)
            .filter(|_| l.sample_fate(0.01, 8) != Fate::Good)
            .count();
        // packet failure probability = 1 - 0.99^8 ≈ 0.0773
        let p = fails as f64 / n as f64;
        assert!((p - 0.0773).abs() < 0.01, "observed failure rate {p}");
    }

    #[test]
    fn send_receive_ack_roundtrip_frees_the_entry() {
        let fab = Fabric::new(crate::config::SimConfig::paper(2));
        let mut l = Llr::new(&fab, 3);
        let (seq, wire_crc) = l.record_send(0, 2, 1, pkt(5), 10, Fate::Good);
        assert_eq!(l.tx_occupancy(0, 2), 1);
        l.push_wire(1, 3, seq, wire_crc);
        let (verdict, rseq) = l.receive(1, 3, &pkt(5));
        assert_eq!((verdict, rseq), (RxVerdict::Accept, seq));
        // a duplicate copy of the same seq is rejected
        l.push_wire(1, 3, seq, wire_crc);
        assert_eq!(l.receive(1, 3, &pkt(5)).0, RxVerdict::Duplicate);
        l.push_ack(0, 2, seq, true, 30);
        assert_eq!(l.drain_acks(0, 2, 29), 0);
        assert_eq!(l.tx_occupancy(0, 2), 1, "ack not due yet");
        l.drain_acks(0, 2, 30);
        assert_eq!(l.tx_occupancy(0, 2), 0);
    }

    #[test]
    fn corrupted_wire_image_fails_crc_and_nack_marks_lost() {
        let fab = Fabric::new(crate::config::SimConfig::paper(2));
        let mut l = Llr::new(&fab, 3);
        let (seq, wire_crc) = l.record_send(0, 2, 0, pkt(9), 0, Fate::Corrupt);
        l.push_wire(1, 3, seq, wire_crc);
        assert_eq!(l.receive(1, 3, &pkt(9)).0, RxVerdict::CrcDrop);
        l.push_ack(0, 2, seq, false, 5);
        assert_eq!(l.drain_acks(0, 2, 5), 1);
        let (rseq, retries) = l.next_retransmit(0, 2).expect("entry must be lost");
        assert_eq!((rseq, retries), (seq, 0));
        let (_, p, wire_crc2, _) = l.record_retransmit(0, 2, seq, 7, Fate::Good);
        assert_eq!(p.id, 9);
        l.push_wire(1, 3, seq, wire_crc2);
        assert_eq!(l.receive(1, 3, &pkt(9)).0, RxVerdict::Accept);
        assert_eq!(l.link_retransmits(0, 2), 1);
    }

    #[test]
    fn timeout_backs_off_exponentially_and_caps() {
        let t0 = Llr::timeout(10, 8, 64, 0, 6);
        assert_eq!(t0, 2 * 10 + 8 + 64);
        assert_eq!(Llr::timeout(10, 8, 64, 3, 6), t0 << 3);
        assert_eq!(Llr::timeout(10, 8, 64, 50, 6), t0 << 6, "cap at 2^6");
    }

    #[test]
    fn expire_marks_only_overdue_entries() {
        let fab = Fabric::new(crate::config::SimConfig::paper(2));
        let mut l = Llr::new(&fab, 3);
        let (seq, _) = l.record_send(0, 2, 0, pkt(1), 0, Fate::Drop);
        // The sender cannot observe the wire: the dropped transfer stays
        // outstanding (not lost) until its timeout passes.
        assert!(l.next_retransmit(0, 2).is_none());
        let deadline = Llr::timeout(10, 8, 64, 0, 6);
        assert_eq!(l.expire(0, 2, deadline - 1, 10, 8, 64, 6), 0);
        assert_eq!(l.expire(0, 2, deadline, 10, 8, 64, 6), 1);
        assert_eq!(l.next_retransmit(0, 2), Some((seq, 0)));
    }

    #[test]
    fn take_undelivered_returns_unacked_and_dedups_flying_copies() {
        let fab = Fabric::new(crate::config::SimConfig::paper(2));
        let mut l = Llr::new(&fab, 5);
        let (s1, c1) = l.record_send(0, 2, 0, pkt(1), 0, Fate::Good);
        let (_s2, _) = l.record_send(0, 2, 0, pkt(2), 0, Fate::Drop);
        // first packet lands and is accepted
        l.push_wire(1, 3, s1, c1);
        assert_eq!(l.receive(1, 3, &pkt(1)).0, RxVerdict::Accept);
        let forced = l.take_undelivered(0, 2, 1, 3);
        assert_eq!(forced.len(), 1, "only the undelivered entry is forced");
        assert_eq!(forced[0].pkt.id, 2);
        assert_eq!(l.tx_occupancy(0, 2), 0);
    }

    #[test]
    fn mark_delivered_detects_duplicates() {
        let fab = Fabric::new(crate::config::SimConfig::paper(2));
        let mut l = Llr::new(&fab, 1);
        assert!(!l.mark_delivered(0));
        assert!(!l.mark_delivered(129));
        assert!(l.mark_delivered(0));
        assert!(l.mark_delivered(129));
        assert!(!l.mark_delivered(64));
    }
}
