//! Deterministic mock router views for conformance checking.
//!
//! The conformance model checker (`ofar-verify`) drives every routing
//! policy over its full reachable decision space without running the
//! cycle engine. [`ViewProbe`] owns one router's worth of output-port
//! state and hands out [`RouterView`]s over it, so a policy's `route`
//! and `on_inject` can be called on arbitrary (router, credit-state)
//! configurations. The credit state is set per port from a small
//! lattice of [`PortLoad`] conditions rather than evolved cycle by
//! cycle — the checker enumerates the lattice instead of simulating.

use crate::fabric::Fabric;
use crate::fault::FaultState;
use crate::policy::RouterView;
use crate::router::{OutputPort, RouterStore};
use ofar_topology::RouterId;

/// The fixed "current cycle" of every probe view. Any value works; it
/// only needs to be far enough from zero that a `busy_until` in the
/// future can be expressed.
pub const PROBE_NOW: u64 = 10_000;

/// One point of the credit/occupancy lattice applied to an output port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortLoad {
    /// Downstream buffers empty: full credits, link idle.
    Empty,
    /// Downstream buffers full: zero credits on every VC.
    Congested,
    /// Room for exactly one packet per VC: a single packet fits, but the
    /// two-packet bubble condition for ring entry fails.
    BubbleBlocked,
    /// Full credits but the output link is transmitting (busy).
    Busy,
}

/// A self-contained mock of one router's policy-visible state.
///
/// Owns the [`Fabric`], a healthy [`FaultState`] and one router's
/// [`OutputPort`] vector; [`ViewProbe::view`] borrows them as the
/// `RouterView` every [`crate::policy::Policy`] method takes.
pub struct ViewProbe {
    fab: Fabric,
    faults: FaultState,
    outputs: Vec<OutputPort>,
    router: RouterId,
}

impl ViewProbe {
    /// Build a probe over a fresh fabric for `cfg`, positioned at router 0
    /// with all ports [`PortLoad::Empty`].
    pub fn new(cfg: crate::config::SimConfig) -> Self {
        let fab = Fabric::new(cfg);
        let faults = FaultState::new(&fab);
        let outputs = RouterStore::new(&fab, RouterId::new(0)).outputs;
        Self {
            fab,
            faults,
            outputs,
            router: RouterId::new(0),
        }
    }

    /// The wiring being probed.
    #[inline]
    pub fn fab(&self) -> &Fabric {
        &self.fab
    }

    /// The router the next [`ViewProbe::view`] will describe.
    #[inline]
    pub fn router(&self) -> RouterId {
        self.router
    }

    /// Reposition the probe at `router`, resetting every port to
    /// [`PortLoad::Empty`].
    pub fn set_router(&mut self, router: RouterId) {
        self.router = router;
        self.outputs = RouterStore::new(&self.fab, router).outputs;
    }

    /// Apply one lattice point to a single output port. Ejection ports
    /// carry no credits (nodes are infinite sinks); for them only the
    /// busy bit is meaningful.
    pub fn set_load(&mut self, port: usize, load: PortLoad) {
        let out = &mut self.outputs[port];
        out.busy_until = 0;
        match load {
            PortLoad::Empty => out.credits.copy_from_slice(&out.capacity),
            PortLoad::Congested => out.credits.fill(0),
            PortLoad::BubbleBlocked => {
                let one = self.fab.cfg().packet_size as u32;
                for (c, cap) in out.credits.iter_mut().zip(&out.capacity) {
                    *c = one.min(*cap);
                }
            }
            PortLoad::Busy => {
                out.credits.copy_from_slice(&out.capacity);
                out.busy_until = PROBE_NOW + 1_000;
            }
        }
    }

    /// Apply one lattice point to every output port.
    pub fn set_all(&mut self, load: PortLoad) {
        for port in 0..self.outputs.len() {
            self.set_load(port, load);
        }
    }

    /// Apply one fault transition to the probe's fault mask, so views
    /// can be taken over a partially-dead router (failed links filter
    /// `link_up`/`ring_up` exactly as they do in the live engine).
    /// Returns whether the liveness mask changed.
    pub fn apply_fault(&mut self, kind: crate::fault::FaultKind) -> bool {
        self.faults.apply(kind, &self.fab)
    }

    /// Borrow the current state as the view a policy routes against.
    pub fn view(&self) -> RouterView<'_> {
        RouterView::new(
            &self.fab,
            self.router,
            PROBE_NOW,
            &self.outputs,
            &self.faults,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RingMode, SimConfig};

    #[test]
    fn lattice_points_shape_availability() {
        let mut probe = ViewProbe::new(SimConfig::paper(2).with_ring(RingMode::Embedded));
        let lp = probe.fab().local_out(0);
        let phits = probe.fab().cfg().packet_size as u32;

        probe.set_load(lp, PortLoad::Empty);
        assert!(probe.view().available(lp, 0));
        assert!(probe.view().available_with_bubble(lp, 0));

        probe.set_load(lp, PortLoad::Congested);
        assert!(!probe.view().available(lp, 0));
        assert_eq!(probe.view().occupancy(lp, 0), 1.0);

        probe.set_load(lp, PortLoad::BubbleBlocked);
        assert!(probe.view().available(lp, 0));
        assert!(!probe.view().available_with_bubble(lp, 0));
        assert_eq!(probe.view().credits(lp, 0), phits);

        probe.set_load(lp, PortLoad::Busy);
        assert!(!probe.view().available(lp, 0));
        assert!(probe.view().out_busy(lp));
    }

    #[test]
    fn repositioning_resets_state() {
        let mut probe = ViewProbe::new(SimConfig::paper(2));
        probe.set_all(PortLoad::Congested);
        probe.set_router(RouterId::new(5));
        assert_eq!(probe.router(), RouterId::new(5));
        let lp = probe.fab().local_out(0);
        assert!(probe.view().available(lp, 0));
    }

    /// The all-zero-credit corner of the lattice: every routable port
    /// reads fully occupied and unavailable, yet the escape outputs are
    /// still *enumerable* — a policy must be able to ask for the ring
    /// precisely when nothing else has room.
    #[test]
    fn zero_credit_lattice_saturates_every_port() {
        let mut probe = ViewProbe::new(SimConfig::paper(2).with_ring(RingMode::Embedded));
        probe.set_all(PortLoad::Congested);
        let view = probe.view();
        let n_out = probe.fab().n_out();
        for port in 0..n_out {
            if view.fab.out_kind(port) == crate::fabric::PortKind::Node {
                continue; // ejection ports carry no credits
            }
            assert!(!view.available(port, 0), "port {port} must be saturated");
            assert_eq!(view.occupancy(port, 0), 1.0, "port {port}");
        }
        let (port, vc) = view
            .best_escape_vc()
            .expect("escape outputs stay enumerable at zero credits");
        assert_eq!(view.credits(port, vc), 0);
        assert!(!view.available_with_bubble(port, vc));
    }

    /// Fault masks flow through the probe exactly as in the live engine:
    /// a failed link turns its output port dead (`link_up` false, hence
    /// unavailable at full credits), takes any ring crossing it down
    /// with it, and a restore brings both back.
    #[test]
    fn dead_ports_under_fault_masks() {
        use crate::fault::FaultKind;
        let mut probe = ViewProbe::new(SimConfig::paper(2).with_ring(RingMode::Embedded));
        probe.set_all(PortLoad::Empty);
        let lp = probe.fab().local_out(0);
        let peer = RouterId::new(probe.fab().out_link(probe.router(), lp).dst_router);

        assert!(probe.view().link_up(lp));
        assert!(probe.view().ring_up(0));

        assert!(probe.apply_fault(FaultKind::FailLink(probe.router(), peer)));
        let view = probe.view();
        assert!(!view.link_up(lp), "failed link must read dead");
        assert!(
            !view.available(lp, 0),
            "full credits cannot resurrect a dead port"
        );
        // The h=2 embedded ring uses every router's local links, so
        // killing one severs the ring and best_escape_vc must refuse it.
        assert!(!view.ring_up(0), "ring crossing the dead link is down");
        assert!(view.best_escape_vc().is_none());

        assert!(probe.apply_fault(FaultKind::RestoreLink(probe.router(), peer)));
        assert!(probe.view().link_up(lp));
        assert!(probe.view().ring_up(0));
        assert!(probe.view().best_escape_vc().is_some());
    }
}
