//! The network simulator: per-cycle arrival/injection/allocation loop.
//!
//! The model follows §V of the paper:
//!
//! * single-cycle, input-FIFO-buffered virtual cut-through routers;
//! * one phit per cycle per link and crossbar port, no internal speedup;
//! * credit-based flow control with whole-packet granularity;
//! * an iterative separable batch allocator (default 3 iterations) with
//!   least-recently-served arbiters at both stages;
//! * routing decisions taken at the head of each input VC and revisited
//!   every cycle until the packet is granted.

use crate::config::SimConfig;
use crate::fabric::{Fabric, PortKind};
use crate::fault::{FaultKind, FaultPlan, FaultState};
use crate::llr::{Fate, Llr, RxVerdict};
use crate::packet::{
    Packet, Request, RequestKind, FLAG_GLOBAL_MISROUTED, FLAG_LOCAL_MISROUTED, FLAG_ON_RING,
};
use crate::policy::{InputCtx, NetSnapshot, Policy, RouterView};
use crate::router::RouterStore;
use crate::schedule::ShardSchedule;
use crate::stats::Stats;
use ofar_topology::{NodeId, RouterId};
use std::collections::VecDeque;

/// Deferred cross-router side effects of a grant.
enum Effect {
    /// Packet arrives at (`router`, `port`) VC `vc` at cycle `at`.
    Arrival {
        router: u32,
        port: u16,
        vc: u8,
        at: u64,
        pkt: Packet,
    },
    /// `phits` credits return to output (`router`, `port`) VC `vc` at
    /// cycle `at`.
    Credit {
        router: u32,
        port: u16,
        vc: u8,
        phits: u32,
        at: u64,
    },
    /// LLR wire transfer lands on the receive side of input
    /// (`router`, `port`): sequence number and the CRC the wire saw.
    Wire {
        router: u32,
        port: u16,
        seq: u32,
        wire_crc: u32,
    },
    /// LLR ack/nack for `seq` returns to the sender side of output
    /// (`router`, `port`) at cycle `at`.
    Ack {
        router: u32,
        port: u16,
        seq: u32,
        ok: bool,
        at: u64,
    },
}

/// Mixing key of one ledger entry for the `EffectOrderFold` mutation
/// seam: identifies the effect's target so the fold distinguishes
/// ledger *orders*, not payloads.
#[cfg(feature = "mutate")]
fn effect_order_key(e: &Effect) -> u64 {
    let (tag, router, port, salt) = match e {
        Effect::Arrival {
            router, port, vc, ..
        } => (1u64, *router, *port, u64::from(*vc)),
        Effect::Credit {
            router, port, vc, ..
        } => (2, *router, *port, u64::from(*vc)),
        Effect::Wire {
            router, port, seq, ..
        } => (3, *router, *port, u64::from(*seq)),
        Effect::Ack {
            router, port, seq, ..
        } => (4, *router, *port, u64::from(*seq)),
    };
    (tag << 48) | (u64::from(router) << 24) | (u64::from(port) << 8) | (salt & 0xFF)
}

/// A network simulation bound to one routing [`Policy`].
pub struct Network<P: Policy> {
    fab: Fabric,
    routers: Vec<RouterStore>,
    policy: P,
    now: u64,
    next_id: u64,
    /// Unbounded per-node source queues (latency includes time spent
    /// here, which is how saturation becomes visible in latency curves).
    src_q: Vec<VecDeque<Packet>>,
    /// Node→injection-buffer transfer is serialized at 1 phit/cycle.
    inj_busy: Vec<u64>,
    stats: Stats,
    /// Optional per-delivery log: (generation cycle, latency).
    delivered_log: Option<Vec<(u64, u32)>>,
    /// Optional per-output-port phit counters (link utilization).
    link_phits: Option<Vec<u64>>,
    /// Current liveness of links, routers and rings (§VII fault model).
    faults: FaultState,
    /// Scheduled fault transitions, consumed in time order by `step`.
    plan: FaultPlan,
    plan_cursor: usize,
    /// Sticky: true once any fault transition has ever applied (some
    /// path-length invariants only hold on never-faulted networks).
    faults_ever: bool,
    /// Cycle of the last grant at each router (stall diagnosis).
    router_last_grant: Vec<u64>,
    /// Link-level retransmission state; `None` keeps the lossless fast
    /// path (see [`crate::llr`]). Enabled by a nonzero `cfg.ber`, a
    /// transient fault plan, or [`Self::enable_llr`].
    llr: Option<Llr>,
    /// Congestion-management throttle state; `Some` iff `cfg.cm_enabled`
    /// (per-router occupancy estimators + per-NIC token buckets).
    cm: Option<CmState>,
    /// Packets delivered per source node (Jain fairness / per-source
    /// histograms; one counter bump per delivery, always on).
    delivered_per_src: Vec<u64>,
    /// Shard iteration order of the router-sharded parallel phases
    /// (`deliver`, `route`); empty = identity, the release fast path.
    /// A harness knob ([`Self::set_shard_schedule`]): simulation state
    /// must be schedule-blind, which is exactly what `ofar-race`
    /// certifies, so the order is deliberately outside snapshots.
    order_routers: Vec<u32>, // lint:allow(S001, schedule is a harness knob; snapshots are schedule-blind by construction)
    /// Shard iteration order of the node-sharded `inject` phase; empty =
    /// identity. Same snapshot-blindness argument as `order_routers`.
    order_nodes: Vec<u32>, // lint:allow(S001, schedule is a harness knob; snapshots are schedule-blind by construction)
    /// Runtime invariant auditor; `None` until [`Self::enable_audit`].
    #[cfg(feature = "audit")]
    auditor: Option<crate::audit::Auditor>, // lint:allow(S001, cfg-gated diagnostic harness; deliberately outside simulation snapshots)
    /// Seeded flow-control defect (mutation testing only); `None` until
    /// [`Self::set_engine_mutation`].
    #[cfg(feature = "mutate")]
    mutation: Option<crate::mutation::EngineMutation>,
    /// Credit events seen since the mutation was installed (periodic
    /// mutations key off this).
    #[cfg(feature = "mutate")]
    mutation_ticks: u64, // lint:allow(S001, cfg-gated diagnostic harness; deliberately outside simulation snapshots)
    // reusable scratch
    effects: Vec<Effect>,
    /// Deliveries completed this cycle, pushed in route-phase shard
    /// order; `commit_effects` drains them *sorted* into
    /// `delivered_log`, so the log is shard-schedule-invariant.
    delivered_now: Vec<(u64, u32)>,
    reqs: Vec<(u16, u8, Request)>,
    matched_in: Vec<bool>, // lint:allow(S001, per-cycle scratch; rebuilt each cycle and dead at snapshot boundaries)
    matched_out: Vec<bool>,
    grants: Vec<(u16, u8, Request)>,
    best_out: Vec<Option<(u64, u16, u32)>>, // lint:allow(S001, per-cycle scratch; rebuilt each cycle and dead at snapshot boundaries)
}

/// Fixed-point scale of the congestion-management token buckets:
/// 256 bucket units per phit, so fractional rate floors stay exact in
/// integer arithmetic (`cm_min_rate` resolves to whole units per cycle).
const CM_TOKEN_SCALE: u32 = 256;

/// Fixed-point one (`1.0`) of the per-router occupancy estimator.
const CM_CONG_ONE: u32 = 1 << 16;

/// Shift of the sensor's exact multiply-shift division. With
/// `M = ceil(2^50 / d)` the identity `(n * M) >> 50 == n / d` holds for
/// every feasible operand pair: writing `M = (2^50 + e) / d` with
/// `0 ≤ e < d`, the rounding term is `n·e / 2^50 < 1` whenever
/// `n·d < 2^50`, and the sensor's numerator `n = used · 2^16` with
/// `used ≤ d < 2^17` keeps `n·d < 2^(17+16+17) = 2^50`. The widened
/// product `n·M < 2^33 · 2^50` needs u128 — one `mulx` on 64-bit
/// targets, far cheaper than the `div` it replaces.
const CM_INV_SHIFT: u32 = 50;

/// Congestion-management state: per-router occupancy estimators with a
/// hysteresis flag, and one token bucket per NIC. All integer, all
/// snapshot-covered (see `encode_state`); the derived rate constants are
/// recomputed from the configuration on construction and restore.
struct CmState {
    /// Token bucket per node, in `CM_TOKEN_SCALE` units per phit.
    tokens: Vec<u32>,
    /// Per-router smoothed occupancy (EWMA, `CM_CONG_ONE` fixed point).
    cong: Vec<u32>,
    /// Per-router hysteresis state: `true` while throttled.
    throttled: Vec<bool>,
    /// Bucket capacity (two packets of headroom). Config-derived.
    cap: u32,
    /// Full-rate refill: one phit per cycle. Config-derived.
    full_rate: u32,
    /// Throttled refill floor, ≥ 1 unit per cycle. Config-derived.
    min_rate: u32,
    /// Throttle-on threshold in `CM_CONG_ONE` fixed point. Config-derived.
    on_fp: u32,
    /// Throttle-off threshold (`target − hysteresis`). Config-derived.
    off_fp: u32,
    /// Per-router Σ capacity over its network outputs (static for a
    /// fabric; ejection ports carry no credits and contribute 0).
    cap_sum: Vec<u64>,
    /// Per-router Σ credits over its network outputs, maintained
    /// incrementally at the three credit-mutation sites so the per-cycle
    /// sensor is O(1) per router instead of a full port scan. Equals the
    /// scan whenever no fault is active; the fault path re-scans (a
    /// failed link must sense as fully occupied, which a plain credit
    /// sum cannot express).
    free: Vec<u64>,
    /// Per-router magic reciprocal `ceil(2^CM_INV_SHIFT / cap_sum)`
    /// (0 for a router with no credited outputs): the healthy sensor
    /// divides by a per-router *constant*, so a multiply-shift with
    /// this factor replaces the hardware division — and it is exact
    /// over the whole feasible range (see [`CM_INV_SHIFT`] and the
    /// `cm_reciprocal_division_is_exact` test), so sensor values are
    /// bit-identical to the divided form.
    inv: Vec<u64>,
}

impl CmState {
    fn new(cfg: &SimConfig, nodes: usize, routers: usize) -> Self {
        let size = cfg.packet_size as u32;
        let cap = 2 * size * CM_TOKEN_SCALE;
        Self {
            // Buckets start full: an idle network must inject at line
            // rate from cycle 0 exactly as without CM.
            tokens: vec![cap; nodes],
            cong: vec![0; routers],
            throttled: vec![false; routers],
            cap,
            full_rate: CM_TOKEN_SCALE,
            min_rate: ((cm_fp(cfg.cm_min_rate) as u64 * u64::from(CM_TOKEN_SCALE)) >> 16).max(1)
                as u32,
            on_fp: cm_fp(cfg.cm_target_occupancy),
            off_fp: cm_fp(cfg.cm_target_occupancy - cfg.cm_hysteresis),
            cap_sum: vec![0; routers],
            free: vec![0; routers],
            inv: vec![0; routers],
        }
    }

    /// Recompute the incremental credit sums from the routers' actual
    /// credit state. Called at construction and after a snapshot restore;
    /// between calls the three credit-mutation sites keep `free` exact.
    fn rebuild_free(&mut self, routers: &[RouterStore]) {
        for (ridx, store) in routers.iter().enumerate() {
            let mut cap_sum = 0u64;
            let mut free = 0u64;
            for out in &store.outputs {
                cap_sum += out.capacity.iter().map(|&c| u64::from(c)).sum::<u64>();
                free += out.credits.iter().map(|&c| u64::from(c)).sum::<u64>();
            }
            self.cap_sum[ridx] = cap_sum;
            self.free[ridx] = free;
            debug_assert!(
                cap_sum < 1 << 17,
                "cap_sum {cap_sum} outside the reciprocal exactness bound"
            );
            self.inv[ridx] = cm_inv(cap_sum);
        }
    }
}

/// The magic reciprocal of `d` for the CM sensor's exact multiply-shift
/// division (0 when `d == 0`, where the sensed occupancy is defined as
/// 0). See [`CM_INV_SHIFT`] for the exactness argument.
fn cm_inv(d: u64) -> u64 {
    if d == 0 {
        0
    } else {
        (1u64 << CM_INV_SHIFT).div_ceil(d)
    }
}

/// Convert a validated CM fraction in `[0, 1]` to `CM_CONG_ONE` fixed
/// point. Deterministic: one rounding mode, no platform-dependent math.
fn cm_fp(frac: f64) -> u32 {
    (frac * f64::from(CM_CONG_ONE)) as u32
}

impl<P: Policy> Network<P> {
    /// Build a network with the default escape-ring choice implied by
    /// `cfg.ring`.
    pub fn new(cfg: SimConfig, policy: P) -> Self {
        Self::with_fabric(Fabric::new(cfg), policy)
    }

    /// Build a network over a pre-built [`Fabric`] (e.g. with one of the
    /// alternative disjoint escape rings of §VII).
    pub fn with_fabric(fab: Fabric, policy: P) -> Self {
        assert!(
            !policy.needs_ring() || fab.escape(RouterId::new(0)).is_some(),
            "{} requires an escape ring (SimConfig::ring)",
            policy.name()
        );
        let nr = fab.topo().num_routers();
        let nodes = fab.topo().num_nodes();
        let routers: Vec<RouterStore> = (0..nr)
            .map(|r| RouterStore::new(&fab, RouterId::from(r)))
            .collect();
        let n_in = fab.n_in();
        let n_out = fab.n_out();
        let llr = (fab.cfg().ber > 0.0).then(|| Llr::new(&fab, fab.cfg().seed));
        let cm = fab.cfg().cm_enabled.then(|| {
            let mut cm = CmState::new(fab.cfg(), nodes, nr);
            cm.rebuild_free(&routers);
            cm
        });
        let mut stats = Stats::default();
        if let Some(cm) = &cm {
            // The initial full buckets count as granted so the token law
            // `granted − consumed ≡ Σ levels` holds from cycle 0.
            stats.cm_tokens_granted = cm.tokens.iter().map(|&t| u64::from(t)).sum();
        }
        Self {
            routers,
            policy,
            now: 0,
            next_id: 0,
            src_q: vec![VecDeque::new(); nodes],
            inj_busy: vec![0; nodes],
            stats,
            delivered_log: None,
            link_phits: None,
            faults: FaultState::new(&fab),
            plan: FaultPlan::new(),
            plan_cursor: 0,
            faults_ever: false,
            router_last_grant: vec![0; nr],
            llr,
            cm,
            delivered_per_src: vec![0; nodes],
            order_routers: Vec::new(),
            order_nodes: Vec::new(),
            #[cfg(feature = "audit")]
            auditor: None,
            #[cfg(feature = "mutate")]
            mutation: None,
            #[cfg(feature = "mutate")]
            mutation_ticks: 0,
            effects: Vec::with_capacity(256),
            delivered_now: Vec::new(),
            reqs: Vec::with_capacity(n_in * 4),
            matched_in: vec![false; n_in],
            matched_out: vec![false; n_out],
            grants: Vec::with_capacity(n_in),
            best_out: vec![None; n_out],
            fab,
        }
    }

    // ----- accessors ---------------------------------------------------

    /// Current cycle.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Statistics counters.
    #[inline]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Static wiring.
    #[inline]
    pub fn fabric(&self) -> &Fabric {
        &self.fab
    }

    /// Configuration shortcut.
    #[inline]
    pub fn cfg(&self) -> &SimConfig {
        self.fab.cfg()
    }

    /// The routing policy (e.g. to inspect mechanism-specific state).
    #[inline]
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Number of compute nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.src_q.len()
    }

    /// Packets waiting in the source queue of `node`.
    #[inline]
    pub fn source_queue_len(&self, node: NodeId) -> usize {
        self.src_q[node.idx()].len()
    }

    /// Packets generated but not yet delivered (anywhere: source queues,
    /// buffers, links).
    #[inline]
    pub fn in_flight(&self) -> u64 {
        self.stats.generated_packets - self.stats.delivered_packets
    }

    /// Whether every generated packet has been delivered.
    #[inline]
    pub fn drained(&self) -> bool {
        self.in_flight() == 0
    }

    /// Packets delivered per source node since cycle 0 (fairness
    /// accounting; index = `NodeId::idx()`).
    #[inline]
    pub fn per_source_delivered(&self) -> &[u64] {
        &self.delivered_per_src
    }

    /// Jain's fairness index of per-source deliveries so far.
    pub fn jain_fairness(&self) -> f64 {
        crate::stats::jain_index(&self.delivered_per_src)
    }

    /// Whether the congestion-management layer is active.
    #[inline]
    pub fn cm_active(&self) -> bool {
        self.cm.is_some()
    }

    /// Current token-bucket level of `node`'s NIC, in phits (0 when CM
    /// is disabled).
    pub fn cm_bucket_phits(&self, node: NodeId) -> f64 {
        self.cm
            .as_ref()
            .map(|cm| f64::from(cm.tokens[node.idx()]) / f64::from(CM_TOKEN_SCALE))
            .unwrap_or(0.0)
    }

    /// Smoothed sensed occupancy of `router` in `[0, 1]` (the CM
    /// estimator the throttle thresholds compare against; 0 when CM is
    /// disabled).
    pub fn cm_congestion(&self, router: RouterId) -> f64 {
        self.cm
            .as_ref()
            .map(|cm| f64::from(cm.cong[router.idx()]) / f64::from(CM_CONG_ONE))
            .unwrap_or(0.0)
    }

    /// Whether `router`'s NICs are currently in the throttled hysteresis
    /// state.
    pub fn cm_throttled(&self, router: RouterId) -> bool {
        self.cm
            .as_ref()
            .is_some_and(|cm| cm.throttled[router.idx()])
    }

    /// Start recording one `(generation cycle, latency)` entry per
    /// delivery (transient experiments, Fig. 6).
    pub fn enable_delivery_log(&mut self) {
        self.delivered_log = Some(Vec::new());
    }

    /// Drain the recorded delivery log.
    pub fn take_delivery_log(&mut self) -> Vec<(u64, u32)> {
        self.delivered_log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Start counting phits per output port (link-utilization studies,
    /// §III).
    pub fn enable_link_utilization(&mut self) {
        self.link_phits = Some(vec![0; self.routers.len() * self.fab.n_out()]);
    }

    /// Install a shard iteration schedule for the three `parallel`
    /// phases of [`Self::step`] (`deliver`/`route` over routers,
    /// `inject` over nodes). The commutativity certifier (`ofar-race`)
    /// runs adversarial schedules against [`ShardSchedule::Identity`]
    /// and byte-compares snapshots; a divergence falsifies the
    /// parallelization contract. Identity (the default) materializes to
    /// empty order vectors and keeps the plain `0..n` loops.
    pub fn set_shard_schedule(&mut self, sched: ShardSchedule) {
        self.order_routers = sched.order(self.routers.len());
        self.order_nodes = sched.order(self.src_q.len());
    }

    /// The effective router-shard iteration order (empty = identity).
    /// Exposed for harness assertions.
    pub fn shard_order_routers(&self) -> &[u32] {
        &self.order_routers
    }

    /// Phits transmitted by output `port` of `router` since
    /// [`Self::enable_link_utilization`].
    pub fn link_utilization(&self, router: RouterId, port: usize) -> u64 {
        self.link_phits
            .as_ref()
            .map(|v| v[router.idx() * self.fab.n_out() + port])
            .unwrap_or(0)
    }

    // ----- link-level retransmission ------------------------------------

    /// Enable the link-level retransmission layer (see [`crate::llr`]):
    /// every network link gets a replay buffer, CRC/sequence checking and
    /// ack/nack recovery. Automatic when `cfg.ber > 0` or the fault plan
    /// contains transient wire-error events; call it explicitly to run a
    /// lossless network through the reliable-delivery machinery. Must be
    /// enabled before any packet is in flight (link arrivals already on
    /// the wire would have no sequence metadata).
    pub fn enable_llr(&mut self) {
        if self.llr.is_some() {
            return;
        }
        assert!(
            self.routers
                .iter()
                .all(|r| r.inputs.iter().all(|i| i.arrivals.is_empty())),
            "LLR must be enabled before packets are on the wire"
        );
        self.llr = Some(Llr::new(&self.fab, self.fab.cfg().seed));
    }

    /// Whether the link-level retransmission layer is active.
    #[inline]
    pub fn llr_enabled(&self) -> bool {
        self.llr.is_some()
    }

    /// Retransmissions issued on the directed link out of (`router`,
    /// output `port`) — the raw data of the per-link retry histogram.
    /// 0 when LLR is off.
    pub fn link_retransmits(&self, router: RouterId, port: usize) -> u64 {
        self.llr
            .as_ref()
            .map(|l| l.link_retransmits(router.idx(), port))
            .unwrap_or(0)
    }

    /// Replay-buffer occupancy (packets awaiting ack) of (`router`,
    /// output `port`). 0 when LLR is off.
    pub fn replay_occupancy(&self, router: RouterId, port: usize) -> usize {
        self.llr
            .as_ref()
            .map(|l| l.tx_occupancy(router.idx(), port))
            .unwrap_or(0)
    }

    /// The `k` directed links with the most retransmissions, as
    /// `(src router, dst router, retransmits)`, most-retried first —
    /// the storm diagnosis names these. Links with zero retries are
    /// omitted; empty when LLR is off.
    pub fn top_retransmit_links(&self, k: usize) -> Vec<(RouterId, RouterId, u64)> {
        let Some(llr) = &self.llr else {
            return Vec::new();
        };
        let mut all: Vec<(RouterId, RouterId, u64)> = Vec::new();
        for r in 0..self.routers.len() {
            let rid = RouterId::from(r);
            for port in 0..self.fab.n_out() {
                let n = llr.link_retransmits(r, port);
                if n > 0 {
                    let link = self.fab.out_link(rid, port);
                    all.push((rid, RouterId::new(link.dst_router), n));
                }
            }
        }
        all.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        all.truncate(k);
        all
    }

    // ----- mutation-testing fault seams (feature `mutate`) --------------

    /// Install (or clear) a seeded flow-control defect. See
    /// [`crate::mutation::EngineMutation`] for the catalog; used only by
    /// the mutation-testing harness to measure auditor coverage.
    #[cfg(feature = "mutate")]
    pub fn set_engine_mutation(&mut self, mutation: Option<crate::mutation::EngineMutation>) {
        self.mutation = mutation;
        self.mutation_ticks = 0;
    }

    /// Downstream space a ring-entry grant must see: the §IV-C bubble
    /// (two packets), unless a seeded mutation erodes it.
    fn ring_entry_need(&self, size: u32) -> u32 {
        #[cfg(feature = "mutate")]
        if let Some(m) = self.mutation {
            return m.ring_need(size);
        }
        2 * size
    }

    // ----- runtime invariant auditing (feature `audit`) -----------------

    /// Start auditing runtime invariants with the default deep-check
    /// cadence. The fast checks mirror the hot-path `debug_assert!`s
    /// (credit overflow, ring-membership transitions, dead-port grants,
    /// injection VC range); the deep checks walk the whole network
    /// (phit/credit conservation, occupancy bounds, ring bubble) every
    /// [`crate::audit::Auditor::DEFAULT_DEEP_INTERVAL`] cycles.
    #[cfg(feature = "audit")]
    pub fn enable_audit(&mut self) {
        self.auditor = Some(crate::audit::Auditor::new());
    }

    /// [`Self::enable_audit`] with an explicit deep-check interval
    /// (0 disables the deep checks, 1 runs them every cycle).
    #[cfg(feature = "audit")]
    pub fn enable_audit_with_interval(&mut self, interval: u64) {
        self.auditor = Some(crate::audit::Auditor::with_deep_interval(interval));
    }

    /// The audit report accumulated so far, if auditing is enabled.
    #[cfg(feature = "audit")]
    pub fn audit_report(&self) -> Option<&crate::audit::AuditReport> {
        self.auditor.as_ref().map(crate::audit::Auditor::report)
    }

    /// Run the deep checks right now (regardless of cadence) and take
    /// the accumulated report, resetting the auditor.
    #[cfg(feature = "audit")]
    pub fn take_audit_report(&mut self) -> Option<crate::audit::AuditReport> {
        if self.auditor.is_some() {
            let now = self.now;
            self.deep_audit(now);
        }
        self.auditor
            .as_mut()
            .map(crate::audit::Auditor::take_report)
    }

    // ----- fault injection (§VII) ---------------------------------------

    /// Install a deterministic fault schedule. Events are applied at the
    /// top of the `step` for their cycle; events already in the past
    /// apply on the next step. Replaces any previous plan. A plan with
    /// transient wire-error events enables the LLR layer.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        if plan.has_transient() {
            self.enable_llr();
        }
        self.plan = plan;
        self.plan_cursor = 0;
    }

    /// The current fault state (liveness of links, routers and rings).
    #[inline]
    pub fn faults(&self) -> &FaultState {
        &self.faults
    }

    /// Fail the link(s) between two adjacent routers right now. Dead
    /// outputs stop being granted immediately; phits already on the wire
    /// land normally (fail-stop at packet granularity), so conservation
    /// invariants keep holding. Returns false if already failed.
    pub fn fail_link(&mut self, a: RouterId, b: RouterId) -> bool {
        self.apply_fault(FaultKind::FailLink(a, b))
    }

    /// Restore a previously failed link. Returns false if it was not
    /// failed.
    pub fn restore_link(&mut self, a: RouterId, b: RouterId) -> bool {
        self.apply_fault(FaultKind::RestoreLink(a, b))
    }

    /// Fail a router (all incident links) right now.
    pub fn fail_router(&mut self, r: RouterId) -> bool {
        self.apply_fault(FaultKind::FailRouter(r))
    }

    /// Restore a previously failed router.
    pub fn restore_router(&mut self, r: RouterId) -> bool {
        self.apply_fault(FaultKind::RestoreRouter(r))
    }

    // lint:allow(P001, transient fault kinds never report a changed fail-stop state; the arm is statically dead)
    fn apply_fault(&mut self, kind: FaultKind) -> bool {
        let changed = self.faults.apply(kind, &self.fab);
        if changed {
            self.faults_ever = true;
            // One count per effective transition: a link restored and
            // re-failed in the same cycle registers once on each counter,
            // while redundant transitions (apply returned false) never
            // count.
            match kind {
                FaultKind::FailLink(..) => self.stats.link_failures += 1,
                FaultKind::RestoreLink(..) => self.stats.link_repairs += 1,
                FaultKind::FailRouter(..) => self.stats.router_failures += 1,
                FaultKind::RestoreRouter(..) => self.stats.router_repairs += 1,
                // Transient kinds never change the fail-stop liveness
                // state, so apply() returns false for them.
                FaultKind::CorruptPhit(..)
                | FaultKind::DropPhit(..)
                | FaultKind::SetLinkBer(..) => unreachable!(),
            }
            // Fail-stop semantics under LLR: transfers already started
            // complete. A replay entry the receiver has not accepted IS
            // the canonical in-progress transfer of its packet, so a
            // failing link force-delivers them into the (credit-reserved)
            // downstream buffers before the allocator stops serving it.
            if matches!(kind, FaultKind::FailLink(..) | FaultKind::FailRouter(..))
                && self.llr.is_some()
            {
                self.llr_flush_dead_links();
            }
        } else if kind.is_transient() {
            // One-shots and BER overrides registered inside FaultState;
            // they need the LLR layer to mean anything.
            debug_assert!(self.llr.is_some(), "transient fault without LLR enabled");
        }
        changed
    }

    /// Force-deliver the undelivered replay entries of every LLR link
    /// whose fail-stop liveness just went down (both directions — the
    /// sweep is idempotent: already-flushed links have empty buffers).
    // lint:allow(P002, packet_size is validated at config build and fits u32) lint:allow(P001, runs only when LLR is enabled; self.llr checked by the caller)
    fn llr_flush_dead_links(&mut self) {
        let size = self.fab.cfg().packet_size as u32;
        let topo = *self.fab.topo();
        for ridx in 0..self.routers.len() {
            let rid = RouterId::from(ridx);
            for port in 0..self.fab.n_out() {
                let link = *self.fab.out_link(rid, port);
                if link.kind == PortKind::Node
                    || self
                        .faults
                        .topo_link_up(rid, RouterId::new(link.dst_router))
                {
                    continue;
                }
                let llr = self.llr.as_mut().expect("caller checked");
                if llr.tx_occupancy(ridx, port) == 0 {
                    continue;
                }
                let forced = llr.take_undelivered(
                    ridx,
                    port,
                    link.dst_router as usize,
                    link.dst_port as usize,
                );
                let dst = &mut self.routers[link.dst_router as usize];
                let g = topo.group_of(RouterId::new(link.dst_router));
                for e in forced {
                    let mut pkt = e.pkt;
                    // Same landing bookkeeping as `deliver_events`.
                    if pkt.cur_group != g {
                        pkt.cur_group = g;
                        pkt.clear(FLAG_LOCAL_MISROUTED);
                        if pkt.intermediate == Some(g) {
                            pkt.intermediate = None;
                        }
                    }
                    // The credit held since first transmission reserves
                    // this space, so the push cannot overflow.
                    dst.inputs[link.dst_port as usize].vcs[e.out_vc as usize].push(pkt, size);
                }
            }
        }
    }

    /// Routers holding buffered packets that have not granted anything
    /// for at least `window` cycles — the candidates a stall diagnosis
    /// reports.
    pub fn stalled_routers(&self, window: u64) -> Vec<RouterId> {
        let horizon = self.now.saturating_sub(window);
        self.routers
            .iter()
            .enumerate()
            .filter(|(r, store)| store.buffered_phits() > 0 && self.router_last_grant[*r] < horizon)
            .map(|(r, _)| RouterId::from(r))
            .collect()
    }

    /// Source/destination node pairs of undelivered packets whose
    /// destination router is unreachable from the packet's current
    /// position over the surviving links — the *partition* diagnosis.
    /// Empty on a connected network. Pairs are deduplicated and sorted.
    pub fn unreachable_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let comp = self.router_components();
        let topo = self.fab.topo();
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        let mut check = |at: RouterId, pkt: &Packet| {
            if comp[at.idx()] != comp[topo.router_of_node(pkt.dst).idx()] {
                pairs.push((pkt.src, pkt.dst));
            }
        };
        for (node, q) in self.src_q.iter().enumerate() {
            let at = topo.router_of_node(NodeId::from(node));
            for pkt in q {
                check(at, pkt);
            }
        }
        for (ridx, store) in self.routers.iter().enumerate() {
            let at = RouterId::from(ridx);
            for input in &store.inputs {
                for fifo in &input.vcs {
                    for pkt in fifo.iter() {
                        check(at, pkt);
                    }
                }
                // In-flight packets land at this router regardless of
                // faults, so they are judged from here.
                for (_, _, pkt) in &input.arrivals {
                    check(at, pkt);
                }
            }
        }
        pairs.sort();
        pairs.dedup();
        pairs
    }

    /// Connected components of the router graph over surviving links.
    fn router_components(&self) -> Vec<u32> {
        let topo = self.fab.topo();
        let nr = self.routers.len();
        let (a, h) = (self.fab.cfg().params.a, self.fab.cfg().params.h);
        let mut comp = vec![u32::MAX; nr];
        let mut stack = Vec::new();
        let mut next = 0u32;
        for start in 0..nr {
            if comp[start] != u32::MAX {
                continue;
            }
            comp[start] = next;
            stack.push(RouterId::from(start));
            while let Some(r) = stack.pop() {
                for j in 0..a - 1 + h {
                    let n = if j < a - 1 {
                        topo.local_neighbor(r, j)
                    } else {
                        topo.global_neighbor(r, j - (a - 1)).0
                    };
                    if comp[n.idx()] == u32::MAX && self.faults.topo_link_up(r, n) {
                        comp[n.idx()] = next;
                        stack.push(n);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    // ----- traffic entry ------------------------------------------------

    /// Generate a packet at `src` destined to `dst`, stamped with the
    /// current cycle. The packet waits in the node's unbounded source
    /// queue until the injection buffer accepts it.
    pub fn generate(&mut self, src: NodeId, dst: NodeId) {
        debug_assert_ne!(src, dst, "self-traffic is not meaningful");
        let pkt = Packet {
            id: self.next_id,
            injected_at: self.now,
            src,
            dst,
            intermediate: None,
            flags: 0,
            ring_exits_left: self.fab.cfg().max_ring_exits,
            local_hops: 0,
            global_hops: 0,
            ring_hops: 0,
            wait: 0,
            cur_group: self.fab.topo().group_of_node(src),
        };
        self.next_id += 1;
        self.stats.generated_packets += 1;
        self.src_q[src.idx()].push_back(pkt);
    }

    /// Advance the simulation by one cycle.
    ///
    /// The body is segmented into declared phases (`ofar-lint:
    /// phase(…)` markers) that the R-family phase analysis checks and
    /// exports as the parallelization contract
    /// (`results/phase-contract.json`): a `parallel` phase may only
    /// write its own shard's state (plus reduction-safe sinks), so the
    /// parallel engine can fan its routers out; a `commit` phase runs
    /// serially and is where cross-router effects apply.
    pub fn step(&mut self) {
        // ofar-lint: phase(fault_apply, commit)
        // Apply scheduled fault transitions due at (or before) this
        // cycle, in plan order — before arrivals so the cycle already
        // sees the new liveness.
        let now = self.now;
        while self.plan_cursor < self.plan.events().len()
            && self.plan.events()[self.plan_cursor].at <= now
        {
            let kind = self.plan.events()[self.plan_cursor].kind;
            self.plan_cursor += 1;
            self.apply_fault(kind);
        }
        // ofar-lint: phase(deliver, parallel)
        self.deliver_events(now);
        // ofar-lint: phase(llr_timers, commit)
        if self.llr.is_some() {
            self.llr_phase(now);
        }
        // ofar-lint: phase(cm_sense, commit)
        // CM sensing and refill sweep every router's estimator and
        // every NIC's bucket from one loop — inherently cross-shard, so
        // it runs as its own commit phase rather than inside the
        // node-parallel injection phase (it used to be the first
        // statement of `inject`, so the order is unchanged).
        if self.cm.is_some() {
            self.cm_sense_and_refill();
        }
        // ofar-lint: phase(inject, parallel)
        self.inject(now);
        // ofar-lint: phase(route, parallel)
        for i in 0..self.routers.len() {
            let r = if self.order_routers.is_empty() {
                i
            } else {
                self.order_routers[i] as usize
            };
            self.route_and_allocate(r, now);
        }
        // ofar-lint: phase(effect_commit, commit)
        self.commit_effects();
        // ofar-lint: phase(audit, commit)
        #[cfg(feature = "audit")]
        if self.auditor.as_ref().is_some_and(|a| a.deep_due(now)) {
            self.deep_audit(now);
        }
        // ofar-lint: phase(policy_end, commit)
        let snap = NetSnapshot::new(&self.fab, now, &self.routers, &self.faults);
        self.policy.end_cycle(&snap);
        self.now = now + 1;
    }

    /// Advance by `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    // ----- cycle phases --------------------------------------------------

    /// Phase 1: land packets and credits whose link traversal completes.
    /// Landing at a new group clears the per-group local-misroute flag
    /// and retires a reached Valiant intermediate (§IV-A).
    // lint:allow(P002, router/port indices bounded by fabric radix; packet_size bounded by config) lint:allow(P001, pop follows a successful front peek in the same iteration)
    fn deliver_events(&mut self, now: u64) {
        let size = self.fab.cfg().packet_size as u32;
        let topo = *self.fab.topo();
        let fab = &self.fab;
        let llr = &mut self.llr;
        let stats = &mut self.stats;
        let cm = &mut self.cm;
        let effects = &mut self.effects;
        #[cfg(feature = "audit")]
        let auditor = &mut self.auditor;
        #[cfg(feature = "mutate")]
        let mutation = self.mutation;
        #[cfg(feature = "mutate")]
        let mutation_ticks = &mut self.mutation_ticks;
        let order = &self.order_routers;
        for i in 0..self.routers.len() {
            // Empty order = identity (release fast path): shard i is
            // router i. Under an adversarial schedule the shard index is
            // resolved through the permutation; the body is unchanged.
            let ridx = if order.is_empty() {
                i
            } else {
                order[i] as usize
            };
            let router = &mut self.routers[ridx];
            let g = topo.group_of(RouterId::from(ridx));
            for (port, input) in router.inputs.iter_mut().enumerate() {
                while let Some(&(at, vc, _)) = input.arrivals.front() {
                    if at > now {
                        break;
                    }
                    let (_, _, mut pkt) = input.arrivals.pop_front().unwrap();
                    // Link-level CRC/sequence check: a corrupted transfer
                    // is discarded and nacked, a duplicate discarded and
                    // re-acked, a good one accepted and acked. Acks ride
                    // the credit-return path (same latency, never lost)
                    // and land at `now + latency >= now + 1`, so routing
                    // them through the commit phase instead of writing
                    // the upstream router's ack queue here changes
                    // nothing the sender can observe this cycle.
                    if let Some(l) = llr.as_mut() {
                        let desc = fab.in_desc(RouterId::from(ridx), port);
                        if desc.up_router != u32::MAX {
                            let (verdict, seq) = l.receive(ridx, port, &pkt);
                            let at = now + u64::from(desc.latency);
                            let (router, port) = (desc.up_router, desc.up_port);
                            match verdict {
                                RxVerdict::Accept => effects.push(Effect::Ack {
                                    router,
                                    port,
                                    seq,
                                    ok: true,
                                    at,
                                }),
                                RxVerdict::CrcDrop => {
                                    stats.llr_crc_drops += 1;
                                    effects.push(Effect::Ack {
                                        router,
                                        port,
                                        seq,
                                        ok: false,
                                        at,
                                    });
                                    continue;
                                }
                                RxVerdict::Duplicate => {
                                    stats.llr_dup_drops += 1;
                                    // Re-ack: the sender may have timed
                                    // out before the first ack landed.
                                    effects.push(Effect::Ack {
                                        router,
                                        port,
                                        seq,
                                        ok: true,
                                        at,
                                    });
                                    continue;
                                }
                            }
                        }
                    }
                    if pkt.cur_group != g {
                        pkt.cur_group = g;
                        pkt.clear(FLAG_LOCAL_MISROUTED);
                        if pkt.intermediate == Some(g) {
                            pkt.intermediate = None;
                        }
                    }
                    // Arrival-side mirror of the credit mechanism: flow
                    // control must have reserved this space upstream.
                    #[cfg(feature = "audit")]
                    if let Some(a) = auditor.as_mut() {
                        let fifo = &input.vcs[vc as usize];
                        if fifo.fits(size) {
                            a.count(1);
                        } else {
                            a.record(crate::audit::AuditViolation::BufferOverflow {
                                cycle: now,
                                router: ridx as u32,
                                port: port as u16,
                                vc,
                                occupancy: fifo.occupancy(),
                                capacity: fifo.capacity(),
                            });
                        }
                    }
                    #[cfg(feature = "mutate")]
                    if mutation.is_some() {
                        // A seeded credit defect may legitimately
                        // oversubscribe the buffer; the auditor above
                        // recorded it, so land the packet anyway.
                        input.vcs[vc as usize].push_overflowing(pkt, size);
                    } else {
                        input.vcs[vc as usize].push(pkt, size);
                    }
                    #[cfg(not(feature = "mutate"))]
                    input.vcs[vc as usize].push(pkt, size);
                }
            }
            #[cfg_attr(not(feature = "audit"), allow(clippy::unused_enumerate_index))]
            for (_port, output) in router.outputs.iter_mut().enumerate() {
                while let Some(&(at, vc, phits)) = output.credit_events.front() {
                    if at > now {
                        break;
                    }
                    output.credit_events.pop_front();
                    // Seeded credit-accounting skew (mutation testing):
                    // drop, double or re-VC this landing so the auditor's
                    // conservation checks can be exercised against real
                    // in-engine defects.
                    #[cfg(feature = "mutate")]
                    let (vc, phits) = match mutation {
                        Some(m) => {
                            *mutation_ticks += 1;
                            m.skew_credit(vc, phits, *mutation_ticks, output.credits.len())
                        }
                        None => (vc, phits),
                    };
                    #[cfg(feature = "mutate")]
                    if phits == 0 {
                        continue; // the seeded leak: credit never lands
                    }
                    let cap = output.capacity[vc as usize];
                    let c = &mut output.credits[vc as usize];
                    *c += phits;
                    if let Some(cm) = cm.as_mut() {
                        cm.free[ridx] += u64::from(phits);
                    }
                    #[cfg(feature = "mutate")]
                    debug_assert!(mutation.is_some() || *c <= cap, "credit overflow");
                    #[cfg(not(feature = "mutate"))]
                    debug_assert!(*c <= cap, "credit overflow");
                    // Release form of the assert above: a counter past
                    // the downstream capacity means a double credit.
                    #[cfg(feature = "audit")]
                    if let Some(a) = auditor.as_mut() {
                        if *c <= cap {
                            a.count(1);
                        } else {
                            a.record(crate::audit::AuditViolation::CreditOverflow {
                                cycle: now,
                                router: ridx as u32,
                                port: _port as u16,
                                vc,
                                credits: *c,
                                capacity: cap,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Phase 2: move source-queue heads into injection buffers
    /// (1 phit/cycle per node).
    ///
    /// With CM enabled this is also the throttle point: a head packet
    /// only moves when its NIC bucket (sensed and refilled by the
    /// preceding `cm_sense` commit phase) holds a packet's worth of
    /// tokens. Throttling delays `on_inject` only — packets already in
    /// the fabric are never slowed, so the CDG certificate is untouched.
    // lint:allow(P002, node index and packet size bounded by fabric dimensions) lint:allow(P001, source queue verified non-empty by the loop guard) lint:allow(R003, on_inject mutates per-mechanism policy state; the parallel plan gives each worker its own policy replica merged at commit)
    fn inject(&mut self, now: u64) {
        let size = self.fab.cfg().packet_size as u32;
        let p = self.fab.cfg().params.p;
        #[cfg(feature = "mutate")]
        let bypass = self.mutation.is_some_and(|m| m.bypass_throttle());
        #[cfg(not(feature = "mutate"))]
        let bypass = false;
        let need = size * CM_TOKEN_SCALE;
        for i in 0..self.src_q.len() {
            let node = if self.order_nodes.is_empty() {
                i
            } else {
                self.order_nodes[i] as usize
            };
            if self.inj_busy[node] > now || self.src_q[node].is_empty() {
                continue;
            }
            if let Some(cm) = self.cm.as_ref() {
                if cm.tokens[node] < need && !bypass {
                    self.stats.cm_throttle_deferrals += 1;
                    continue;
                }
            }
            let router = RouterId::from(node / p);
            let port = self.fab.inj_in(node % p);
            let store = &mut self.routers[router.idx()];
            let view = RouterView::new(&self.fab, router, now, &store.outputs, &self.faults);
            let pkt = self.src_q[node].front_mut().unwrap();
            let vc = self.policy.on_inject(&view, pkt);
            debug_assert!(vc < store.inputs[port].vcs.len());
            // Release form of the assert above: an out-of-range pick
            // would corrupt an unrelated VC, so it is also skipped.
            #[cfg(feature = "audit")]
            if let Some(a) = self.auditor.as_mut() {
                if vc < store.inputs[port].vcs.len() {
                    a.count(1);
                } else {
                    a.record(crate::audit::AuditViolation::InjectionVcRange {
                        cycle: now,
                        node: node as u32,
                        vc,
                        vcs: store.inputs[port].vcs.len(),
                    });
                    continue;
                }
            }
            if store.inputs[port].vcs[vc].fits(size) {
                let pkt = self.src_q[node].pop_front().unwrap();
                store.inputs[port].vcs[vc].push(pkt, size);
                self.inj_busy[node] = now + u64::from(size);
                self.stats.injected_packets += 1;
                if let Some(cm) = self.cm.as_mut() {
                    // `saturating_sub` + full-price accounting: the gate
                    // above guarantees `tokens >= need`, so the two agree
                    // — unless the `ThrottleBypass` mutation skipped the
                    // gate, in which case granted − consumed drifts below
                    // the summed levels and `ThrottleTokenLaw` fires.
                    cm.tokens[node] = cm.tokens[node].saturating_sub(need);
                    self.stats.cm_tokens_consumed += u64::from(need);
                }
            }
        }
    }

    /// CM per-cycle bookkeeping: update each router's smoothed occupancy
    /// estimator and hysteresis state, then refill every NIC bucket at
    /// the rate its router's state dictates. Grants are cap-clamped and
    /// counted exactly, so `granted − consumed ≡ Σ levels` is an
    /// identity (the `ThrottleTokenLaw` auditor invariant).
    fn cm_sense_and_refill(&mut self) {
        let p = self.fab.cfg().params.p;
        let healthy = !self.faults.any();
        let routers = &self.routers;
        let faults = &self.faults;
        let Some(cm) = self.cm.as_mut() else { return };
        let mut throttled_now = 0u64;
        for (ridx, store) in routers.iter().enumerate() {
            // Instantaneous occupancy of this router's network outputs
            // (ejection ports carry no credits and drop out of the sum).
            // Healthy fast path: `free` is maintained incrementally at
            // the three credit-mutation sites, so the sensor reads two
            // integers per router instead of re-scanning every port —
            // the whole CM layer costs O(routers + nodes) per cycle.
            let inst = if healthy {
                let used = cm.cap_sum[ridx].saturating_sub(cm.free[ridx]);
                // Exact multiply-shift division by the static `cap_sum`
                // (see `CM_INV_SHIFT`) — no hardware `div` per router.
                let wide = (u128::from(used) << 16) * u128::from(cm.inv[ridx]);
                // lint:allow(P002, quotient <= CM_CONG_ONE so it fits u32)
                let inst = (wide >> CM_INV_SHIFT) as u32;
                debug_assert_eq!(
                    u64::from(inst),
                    (used << 16).checked_div(cm.cap_sum[ridx]).unwrap_or(0),
                    "reciprocal division diverged from exact division"
                );
                inst
            } else {
                // Fault-active fallback: a failed link must sense as
                // fully occupied, which a plain credit sum cannot
                // express — re-scan the ports while any fault is live
                // (`FaultState::any` clears again on full recovery).
                let mut cap_sum = 0u64;
                let mut used = 0u64;
                for (port, out) in store.outputs.iter().enumerate() {
                    let cap: u32 = out.capacity.iter().sum();
                    if cap == 0 {
                        continue;
                    }
                    cap_sum += u64::from(cap);
                    if faults.link_up(ridx, port) {
                        let credits: u32 = out.credits.iter().sum();
                        used += u64::from(cap - credits);
                    } else {
                        used += u64::from(cap);
                    }
                }
                // Cold path: `cap_sum` here differs from the static one
                // while links are down, so divide for real.
                (used * u64::from(CM_CONG_ONE))
                    .checked_div(cap_sum)
                    // lint:allow(P002, used <= cap_sum so the quotient fits u32)
                    .map_or(0, |q| q as u32)
            };
            // EWMA with α = 1/8: smooth enough to ride out allocator
            // jitter, fast enough to track a burst front within ~a
            // packet time. Pure integer — bit-exact across platforms.
            let smoothed = (u64::from(cm.cong[ridx]) * 7 + u64::from(inst)) / 8;
            // lint:allow(P002, EWMA of values <= CM_CONG_ONE fits u32)
            cm.cong[ridx] = smoothed as u32;
            if cm.throttled[ridx] {
                if cm.cong[ridx] < cm.off_fp {
                    cm.throttled[ridx] = false;
                }
            } else if cm.cong[ridx] >= cm.on_fp {
                cm.throttled[ridx] = true;
            }
            if cm.throttled[ridx] {
                throttled_now += 1;
            }
        }
        self.stats.cm_throttled_cycles += throttled_now;
        // One bucket chunk per router (`p` NICs each): reading the
        // throttle latch once per chunk keeps the refill free of the
        // per-node `node / p` division.
        let (cap, min_rate, full_rate) = (cm.cap, cm.min_rate, cm.full_rate);
        for (chunk, &throttled) in cm.tokens.chunks_mut(p).zip(cm.throttled.iter()) {
            let rate = if throttled { min_rate } else { full_rate };
            for tokens in chunk {
                let added = rate.min(cap - *tokens);
                *tokens += added;
                self.stats.cm_tokens_granted += u64::from(added);
            }
        }
    }

    /// Phase 3: routing + separable iterative allocation + grant
    /// execution for one router.
    // lint:allow(P002, port/vc/candidate indices bounded by fabric radix and VC count) lint:allow(R003, policy.route mutates per-mechanism state only; serialized per worker replica in the parallel plan)
    fn route_and_allocate(&mut self, ridx: usize, now: u64) {
        let size = self.fab.cfg().packet_size as u32;
        let ring_need = self.ring_entry_need(size);
        let router = RouterId::from(ridx);

        // --- collect one request per head-of-VC packet ---
        self.reqs.clear();
        {
            let store = &mut self.routers[ridx];
            let (inputs, outputs) = (&mut store.inputs, &store.outputs);
            let view = RouterView::new(&self.fab, router, now, outputs, &self.faults);
            for (port, input) in inputs.iter_mut().enumerate() {
                if input.busy_until > now {
                    continue; // crossbar input still streaming a packet
                }
                let desc = self.fab.in_desc(router, port);
                let base_vcs = match desc.kind {
                    PortKind::Node => self.fab.cfg().vcs_injection,
                    PortKind::Local => self.fab.cfg().vcs_local,
                    PortKind::Global => self.fab.cfg().vcs_global,
                    PortKind::Ring => self.fab.cfg().vcs_ring,
                };
                for (vc, fifo) in input.vcs.iter_mut().enumerate() {
                    let Some(pkt) = fifo.head_mut() else { continue };
                    let ctx = InputCtx {
                        port,
                        vc,
                        kind: desc.kind,
                        is_escape_vc: desc.kind == PortKind::Ring || vc >= base_vcs,
                    };
                    if let Some(req) = self.policy.route(&view, ctx, pkt) {
                        // A dead output is never allocated, whatever the
                        // policy asked for (defence in depth — fault-
                        // aware policies already avoid dead ports). An
                        // output whose replay buffer is full is likewise
                        // skipped: the sender must retain every
                        // unacknowledged packet.
                        if view.link_up(req.out_port as usize)
                            && self
                                .llr
                                .as_ref()
                                .is_none_or(|l| l.tx_has_room(ridx, req.out_port as usize))
                        {
                            self.reqs.push((port as u16, vc as u8, req));
                        }
                    }
                }
            }
        }
        if self.reqs.is_empty() {
            return;
        }

        // --- iterative separable allocation (input stage then output
        //     stage, LRS arbiters, `alloc_iters` iterations) ---
        self.matched_in.iter_mut().for_each(|m| *m = false);
        self.matched_out.iter_mut().for_each(|m| *m = false);
        self.grants.clear();
        let iters = self.fab.cfg().alloc_iters;
        for _ in 0..iters {
            self.best_out.iter_mut().for_each(|b| *b = None);
            let store = &self.routers[ridx];
            let mut any = false;
            let mut i = 0;
            while i < self.reqs.len() {
                let in_port = self.reqs[i].0;
                let mut j = i;
                while j < self.reqs.len() && self.reqs[j].0 == in_port {
                    j += 1;
                }
                if !self.matched_in[in_port as usize] {
                    // Input stage: least-recently-served VC among the
                    // eligible candidates of this input port.
                    let mut pick: Option<(u64, usize)> = None;
                    for (idx, &(_, vc, req)) in
                        self.reqs[i..j].iter().enumerate().map(|(k, r)| (i + k, r))
                    {
                        let out = req.out_port as usize;
                        if self.matched_out[out]
                            || !Self::eligible(store, req, now, size, ring_need)
                        {
                            continue;
                        }
                        let stamp = store.inputs[in_port as usize].vc_served_at[vc as usize];
                        if pick.is_none_or(|(s, _)| stamp < s) {
                            pick = Some((stamp, idx));
                        }
                    }
                    if let Some((_, idx)) = pick {
                        // Output stage: LRS over proposing inputs.
                        let req = self.reqs[idx].2;
                        let out = req.out_port as usize;
                        let stamp = store.outputs[out].in_served_at[in_port as usize];
                        if self.best_out[out].is_none_or(|(s, _, _)| stamp < s) {
                            self.best_out[out] = Some((stamp, in_port, idx as u32));
                        }
                    }
                }
                i = j;
            }
            for out in 0..self.best_out.len() {
                if let Some((_, in_port, idx)) = self.best_out[out] {
                    let (port, vc, req) = self.reqs[idx as usize];
                    self.matched_in[in_port as usize] = true;
                    self.matched_out[out] = true;
                    self.grants.push((port, vc, req));
                    any = true;
                }
            }
            if !any {
                break;
            }
        }

        // --- execute grants ---
        for gi in 0..self.grants.len() {
            let (in_port, vc, req) = self.grants[gi];
            #[cfg(feature = "audit")]
            self.audit_grant(ridx, in_port as usize, vc as usize, req, now);
            self.execute_grant(ridx, in_port as usize, vc as usize, req, now);
        }
    }

    /// Commit phase: apply the cycle's deferred cross-router effects in
    /// submission order — packet arrivals, credit returns and (LLR
    /// only) wire transfers and acks. Every target queue has exactly
    /// one upstream writer and at most one entry lands per cycle, all
    /// stamped `at >= now + 1`, so applying them here instead of inside
    /// each router's allocation turn is observationally identical: no
    /// phase of the current cycle reads them, and per-queue order is
    /// the submission order either way.
    fn commit_effects(&mut self) {
        let llr = &mut self.llr;
        #[cfg(feature = "mutate")]
        let fold = self.mutation.is_some_and(|m| m.folds_effect_order());
        #[cfg(feature = "mutate")]
        let mut fold_acc = 0u64;
        for e in self.effects.drain(..) {
            // Seeded race defect (`EngineMutation::EffectOrderFold`): a
            // non-commutative fold over the ledger's *push order*. The
            // applied per-queue state stays correct; only the folded
            // value — later mixed into a serialized counter — leaks the
            // shard schedule into the snapshot. This is the defect
            // class R006 forbids statically (waived here as a cfg-gated
            // seam) and `ofar-race` must kill dynamically.
            #[cfg(feature = "mutate")]
            if fold {
                // lint:allow(R006, cfg-gated mutation seam; the order-sensitive fold is the seeded defect the race certifier must catch)
                fold_acc = fold_acc.wrapping_mul(31).wrapping_add(effect_order_key(&e));
            }
            match e {
                Effect::Arrival {
                    router,
                    port,
                    vc,
                    at,
                    pkt,
                } => {
                    let q = &mut self.routers[router as usize].inputs[port as usize].arrivals;
                    debug_assert!(q.back().is_none_or(|&(t, _, _)| t <= at));
                    q.push_back((at, vc, pkt));
                }
                Effect::Credit {
                    router,
                    port,
                    vc,
                    phits,
                    at,
                } => {
                    let q = &mut self.routers[router as usize].outputs[port as usize].credit_events;
                    debug_assert!(q.back().is_none_or(|&(t, _, _)| t <= at));
                    q.push_back((at, vc, phits));
                }
                Effect::Wire {
                    router,
                    port,
                    seq,
                    wire_crc,
                } => {
                    if let Some(l) = llr.as_mut() {
                        l.push_wire(router as usize, port as usize, seq, wire_crc);
                    }
                }
                Effect::Ack {
                    router,
                    port,
                    seq,
                    ok,
                    at,
                } => {
                    if let Some(l) = llr.as_mut() {
                        l.push_ack(router as usize, port as usize, seq, ok, at);
                    }
                }
            }
        }
        #[cfg(feature = "mutate")]
        if fold {
            // Mix the order fold into a snapshot-covered counter so the
            // ledger order becomes externally observable state.
            self.stats.latency_sum = self.stats.latency_sum.wrapping_add(fold_acc);
        }
        // This cycle's deliveries were recorded in route-phase *shard*
        // order; a canonical sort before appending keeps the log
        // schedule-invariant (entries are value tuples, so equal keys
        // are identical entries and the tie-break is immaterial).
        if !self.delivered_now.is_empty() {
            self.delivered_now.sort_unstable();
            if let Some(log) = self.delivered_log.as_mut() {
                log.append(&mut self.delivered_now);
            } else {
                self.delivered_now.clear();
            }
        }
    }

    /// Grant eligibility: output idle, and downstream space for the
    /// packet (`ring_need` — normally twice the packet, the bubble of
    /// §IV-C — for ring entry).
    fn eligible(store: &RouterStore, req: Request, now: u64, size: u32, ring_need: u32) -> bool {
        let out = &store.outputs[req.out_port as usize];
        if out.busy_until > now {
            return false;
        }
        if out.credits.is_empty() {
            return true; // ejection: infinite sink
        }
        let need = match req.kind {
            RequestKind::RingEnter => ring_need,
            _ => size,
        };
        out.credits[req.out_vc as usize] >= need
    }

    /// Pre-grant audit: the release form of `execute_grant`'s ring-
    /// membership `debug_assert!`s, plus the no-grant-to-dead-port rule.
    /// Reads only — runs before the grant mutates anything.
    #[cfg(feature = "audit")]
    // lint:allow(P001, auditor presence checked at fn entry) lint:allow(P002, audit record fields bounded by fabric dimensions)
    fn audit_grant(&mut self, ridx: usize, in_port: usize, vc: usize, req: Request, now: u64) {
        use crate::audit::AuditViolation;
        if self.auditor.is_none() {
            return;
        }
        let head = self.routers[ridx].inputs[in_port].vcs[vc]
            .head()
            .map(|p| (p.id, p.on_ring()));
        let Some((packet, on_ring)) = head else {
            return;
        };
        let link_up = self.faults.link_up(ridx, req.out_port as usize);
        let a = self.auditor.as_mut().expect("checked above");
        if link_up {
            a.count(1);
        } else {
            // Dead outputs are filtered at request collection, so this
            // firing means a liveness change raced past the filter.
            a.record(AuditViolation::DeadPortGrant {
                cycle: now,
                router: ridx as u32,
                port: req.out_port,
            });
        }
        let expected = match req.kind {
            RequestKind::RingEnter => Some(("enter", false)),
            RequestKind::RingAdvance => Some(("advance", true)),
            RequestKind::RingExit => Some(("exit", true)),
            _ => None,
        };
        if let Some((transition, want_on_ring)) = expected {
            if on_ring == want_on_ring {
                a.count(1);
            } else {
                a.record(AuditViolation::RingMembership {
                    cycle: now,
                    router: ridx as u32,
                    transition,
                    packet,
                    on_ring,
                });
            }
        }
    }

    /// The whole-network conservation checks (cadenced by the auditor's
    /// deep interval): phit conservation, per-link credit conservation,
    /// occupancy bounds and the escape-ring bubble invariant.
    #[cfg(feature = "audit")]
    // lint:allow(H001, audit-only sweep; runs at audit intervals and off in release measurement runs) lint:allow(P002, audit record fields bounded by fabric dimensions) lint:allow(P001, auditor presence checked at fn entry)
    fn deep_audit(&mut self, now: u64) {
        use crate::audit::AuditViolation;
        if self.auditor.is_none() {
            return;
        }
        let size = self.fab.cfg().packet_size as u64;
        let mut checks = 0u64;
        let mut viols: Vec<AuditViolation> = Vec::new();

        // Phit conservation: generated = delivered + inside the system.
        checks += 1;
        let generated = self.stats.generated_packets * size;
        let delivered = self.stats.delivered_phits;
        let in_system = self.phits_in_system();
        if generated != delivered + in_system {
            viols.push(AuditViolation::PhitImbalance {
                cycle: now,
                generated,
                delivered,
                in_system,
            });
        }

        // Credit conservation per (link, VC) — the non-fatal form of
        // `check_credit_conservation` — and occupancy ≤ capacity.
        for ridx in 0..self.routers.len() {
            let router = RouterId::from(ridx);
            for port in 0..self.fab.n_out() {
                let link = self.fab.out_link(router, port);
                if link.kind == PortKind::Node {
                    continue;
                }
                let out = &self.routers[ridx].outputs[port];
                let din = &self.routers[link.dst_router as usize].inputs[link.dst_port as usize];
                // Replay-buffer occupancy must respect the window the
                // allocator gates grants on.
                if let Some(l) = &self.llr {
                    checks += 1;
                    let occ = l.tx_occupancy(ridx, port);
                    if occ > l.window() {
                        viols.push(AuditViolation::ReplayOverflow {
                            cycle: now,
                            router: ridx as u32,
                            port: port as u16,
                            occupancy: occ as u32,
                            window: l.window() as u32,
                        });
                    }
                }
                for vcn in 0..out.credits.len() {
                    checks += 1;
                    // Mirrors `check_credit_conservation`: under LLR the
                    // reserved space is the undelivered replay entries,
                    // not the phantom copies in flight.
                    let reserved = match &self.llr {
                        Some(l) => {
                            l.undelivered(
                                ridx,
                                port,
                                link.dst_router as usize,
                                link.dst_port as usize,
                            )
                            .filter(|e| e.out_vc as usize == vcn)
                            .count() as u32
                                * size as u32
                        }
                        None => {
                            din.arrivals
                                .iter()
                                .filter(|&&(_, v, _)| v as usize == vcn)
                                .count() as u32
                                * size as u32
                        }
                    };
                    let inflight_credits: u32 = out
                        .credit_events
                        .iter()
                        .filter(|&&(_, v, _)| v as usize == vcn)
                        .map(|&(_, _, p)| p)
                        .sum();
                    let sum =
                        out.credits[vcn] + din.vcs[vcn].occupancy() + reserved + inflight_credits;
                    if sum != out.capacity[vcn] {
                        viols.push(AuditViolation::CreditLeak {
                            cycle: now,
                            router: ridx as u32,
                            port: port as u16,
                            vc: vcn as u8,
                            sum,
                            capacity: out.capacity[vcn],
                        });
                    }
                }
            }
            for (port, input) in self.routers[ridx].inputs.iter().enumerate() {
                for (vcn, fifo) in input.vcs.iter().enumerate() {
                    checks += 1;
                    if fifo.occupancy() > fifo.capacity() {
                        viols.push(AuditViolation::OccupancyOverCapacity {
                            cycle: now,
                            router: ridx as u32,
                            port: port as u16,
                            vc: vcn as u8,
                            occupancy: fifo.occupancy(),
                            capacity: fifo.capacity(),
                        });
                    }
                }
            }
        }

        // Escape-ring bubble: the free space summed over each live
        // ring's lanes must never drop below one packet (§IV-C). All
        // credit motion is whole-packet, so a packet-sized total means a
        // packet-sized hole at some router.
        for j in 0..self.fab.rings().len() {
            if !self.faults.ring_up(j) {
                continue; // a dead ring is drained by emergency exits
            }
            checks += 1;
            let mut free = 0u64;
            for ridx in 0..self.routers.len() {
                let esc = self.fab.escapes(RouterId::from(ridx))[j];
                let out = &self.routers[ridx].outputs[esc.out_port as usize];
                for lane in esc.base_vc..esc.base_vc + esc.num_vcs {
                    free += u64::from(out.credits[lane as usize]);
                    free += out
                        .credit_events
                        .iter()
                        .filter(|&&(_, v, _)| v == lane)
                        .map(|&(_, _, p)| u64::from(p))
                        .sum::<u64>();
                }
            }
            if free < size {
                viols.push(AuditViolation::BubbleLost {
                    cycle: now,
                    ring: j,
                    free_phits: free,
                    required: size,
                });
            }
        }

        // Throttle token conservation: refills are cap-clamped and
        // counted exactly, debits charge the full packet price, so
        // granted − consumed must equal the summed bucket levels as an
        // identity (stated addition-only to stay underflow-safe even
        // when a seeded bypass makes `consumed` overshoot).
        if let Some(cm) = &self.cm {
            checks += 1;
            let levels: u64 = cm.tokens.iter().map(|&t| u64::from(t)).sum();
            if self.stats.cm_tokens_granted != self.stats.cm_tokens_consumed + levels {
                viols.push(AuditViolation::ThrottleTokenLaw {
                    cycle: now,
                    granted: self.stats.cm_tokens_granted,
                    consumed: self.stats.cm_tokens_consumed,
                    levels,
                });
            }
            // The sensor's incremental free-credit sums against a fresh
            // scan: drift means a credit moved through a path the three
            // mirrored mutation sites do not cover, and every throttle
            // decision after the divergence point is suspect.
            for (ridx, store) in self.routers.iter().enumerate() {
                checks += 1;
                let actual: u64 = store
                    .outputs
                    .iter()
                    .flat_map(|out| out.credits.iter())
                    .map(|&c| u64::from(c))
                    .sum();
                if cm.free[ridx] != actual {
                    viols.push(AuditViolation::CmSensorDrift {
                        cycle: now,
                        router: ridx as u32,
                        tracked: cm.free[ridx],
                        actual,
                    });
                }
            }
        }

        let a = self.auditor.as_mut().expect("checked above");
        a.count(checks - viols.len() as u64);
        for v in viols {
            a.record(v);
        }
    }

    /// Whether the credit return travels through the effects ledger
    /// (always, unless the `CreditInstant` race seam is installed).
    #[inline]
    fn credit_deferred(&self) -> bool {
        #[cfg(feature = "mutate")]
        {
            !self.mutation.is_some_and(|m| m.instant_credits())
        }
        #[cfg(not(feature = "mutate"))]
        true
    }

    /// The `CreditInstant` seam body: add the returned phits to the
    /// upstream output's credit counter immediately (no link latency,
    /// no ledger). Deliberately a defect — the §IV-style credit loop is
    /// what the commutativity certifier must prove schedule-blind, and
    /// this write is visible to any shard scheduled after the caller.
    #[cfg(feature = "mutate")]
    fn land_credit_instantly(&mut self, router: u32, port: u16, vc: u8, phits: u32) {
        let out = &mut self.routers[router as usize].outputs[port as usize];
        out.credits[vc as usize] += phits;
        if let Some(cm) = self.cm.as_mut() {
            cm.free[router as usize] += u64::from(phits);
        }
    }

    // lint:allow(P002, vc/router ids and latencies bounded by fabric dimensions and run length) lint:allow(P001, canonical grants are eject-only by construction in route_and_allocate) lint:allow(R003, last_grant and last_delivery are monotone cycle stamps; cross-worker merge is max)
    fn execute_grant(&mut self, ridx: usize, in_port: usize, vc: usize, req: Request, now: u64) {
        let size = self.fab.cfg().packet_size as u32;
        let router = RouterId::from(ridx);
        let deferred = self.credit_deferred();
        let store = &mut self.routers[ridx];
        let mut pkt = store.inputs[in_port].vcs[vc].pop(size);
        pkt.wait = 0; // the head-blocked counter restarts at the next hop
        store.inputs[in_port].busy_until = now + u64::from(size);
        store.inputs[in_port].vc_served_at[vc] = now + 1; // LRS stamp (0 = never)
        let out = &mut store.outputs[req.out_port as usize];
        out.in_served_at[in_port] = now + 1;
        out.busy_until = now + u64::from(size);
        self.stats.last_grant = now;
        self.router_last_grant[ridx] = now;
        if let Some(util) = self.link_phits.as_mut() {
            util[ridx * self.fab.n_out() + req.out_port as usize] += u64::from(size);
        }

        // Credit return to the upstream router feeding this input.
        let desc = *self.fab.in_desc(router, in_port);
        if desc.up_router != u32::MAX && deferred {
            self.effects.push(Effect::Credit {
                router: desc.up_router,
                port: desc.up_port,
                vc: vc as u8,
                phits: size,
                at: now + u64::from(desc.latency),
            });
        }

        // Header-flag and ring bookkeeping (§IV-A, §IV-C).
        let was_on_ring = pkt.on_ring();
        match req.kind {
            RequestKind::Minimal | RequestKind::Eject => {}
            RequestKind::MisrouteLocal => {
                pkt.set(FLAG_LOCAL_MISROUTED);
                self.stats.local_misroutes += 1;
            }
            RequestKind::MisrouteGlobal => {
                pkt.set(FLAG_GLOBAL_MISROUTED);
                self.stats.global_misroutes += 1;
            }
            RequestKind::RingEnter => {
                debug_assert!(!was_on_ring);
                // §IV-C bubble, re-checked per grant: every ring entry
                // must see two packets of downstream room. The deep
                // `BubbleLost` check only notices once the whole ring
                // has wedged; this fast check catches the first eroded
                // admission. Credits are still undecremented here.
                #[cfg(feature = "audit")]
                if let Some(a) = self.auditor.as_mut() {
                    let credits = store.outputs[req.out_port as usize].credits[req.out_vc as usize];
                    if credits < 2 * size {
                        a.record(crate::audit::AuditViolation::RingEnterNoBubble {
                            cycle: now,
                            router: ridx as u32,
                            port: req.out_port,
                            vc: req.out_vc,
                            credits,
                            required: 2 * size,
                        });
                    } else {
                        a.count(1);
                    }
                }
                pkt.set(FLAG_ON_RING);
                self.stats.ring_entries += 1;
            }
            RequestKind::RingAdvance => {
                debug_assert!(was_on_ring);
                self.stats.ring_advances += 1;
            }
            RequestKind::RingExit => {
                // `ring_exits_left` may already be 0 for an *emergency*
                // exit from a ring that died under the packet (§VII);
                // normal exits are budgeted by the policy.
                debug_assert!(was_on_ring);
                pkt.clear(FLAG_ON_RING);
                pkt.ring_exits_left = pkt.ring_exits_left.saturating_sub(1);
                self.stats.ring_exits += 1;
            }
        }

        let link = *self.fab.out_link(router, req.out_port as usize);
        match req.kind {
            RequestKind::Eject => {
                debug_assert_eq!(link.kind, PortKind::Node);
                debug_assert_eq!(
                    self.fab.topo().router_of_node(pkt.dst),
                    router,
                    "ejecting at the wrong router"
                );
                // §IV-A path-length ceiling: without escape-ring travel,
                // no mechanism exceeds 6 local + 2 global hops. (Each
                // ring exit restarts a minimal segment, so ring users
                // are exempt, and so is any network that has seen a
                // fault — routing around failures legally exceeds the
                // ceiling.)
                debug_assert!(
                    self.faults_ever
                        || pkt.ring_hops > 0
                        || (pkt.local_hops <= 6 && pkt.global_hops <= 2),
                    "canonical path too long: {} local / {} global hops (pkt {})",
                    pkt.local_hops,
                    pkt.global_hops,
                    pkt.id
                );
                let latency = now + u64::from(size) - pkt.injected_at;
                self.stats.delivered_packets += 1;
                self.stats.delivered_phits += u64::from(size);
                self.delivered_per_src[pkt.src.idx()] += 1;
                self.stats.latency_sum += latency;
                self.stats.hop_sum += u64::from(pkt.local_hops)
                    + u64::from(pkt.global_hops)
                    + u64::from(pkt.ring_hops);
                self.stats.last_delivery = now;
                if was_on_ring {
                    self.stats.ring_deliveries += 1;
                }
                if self.delivered_log.is_some() {
                    // Deferred: pushed in route-phase shard order here,
                    // drained *sorted* into `delivered_log` by
                    // `commit_effects` — the log itself must not depend
                    // on the shard schedule.
                    self.delivered_now.push((pkt.injected_at, latency as u32));
                }
                // End-to-end exactly-once accounting: the link layer
                // dedups spurious retransmissions at every hop, so a
                // second ejection of one id means the protocol leaked.
                if let Some(llr) = self.llr.as_mut() {
                    // lint:allow(R001, mark_delivered touches the global exactly-once dedup set; keyed by packet id and mergeable as set union)
                    if llr.mark_delivered(pkt.id) {
                        self.stats.duplicate_deliveries += 1;
                        #[cfg(feature = "audit")]
                        if let Some(a) = self.auditor.as_mut() {
                            a.record(crate::audit::AuditViolation::DuplicateDelivery {
                                cycle: now,
                                router: ridx as u32,
                                packet: pkt.id,
                            });
                        }
                    } else {
                        #[cfg(feature = "audit")]
                        if let Some(a) = self.auditor.as_mut() {
                            a.count(1);
                        }
                    }
                }
            }
            RequestKind::RingEnter | RequestKind::RingAdvance => {
                // Ring hops do not advance the canonical hop ladder.
                pkt.ring_hops = pkt.ring_hops.saturating_add(1);
                let out = &mut store.outputs[req.out_port as usize];
                out.credits[req.out_vc as usize] -= size;
                if let Some(cm) = self.cm.as_mut() {
                    cm.free[ridx] -= u64::from(size);
                }
                self.transmit(ridx, req, link, pkt, now);
            }
            _ => {
                // Saturating: a packet trapped on the near side of a
                // partition can circulate far past the u8 range; the
                // §IV-A ceiling assert above still polices healthy runs.
                match link.kind {
                    PortKind::Local => pkt.local_hops = pkt.local_hops.saturating_add(1),
                    PortKind::Global => pkt.global_hops = pkt.global_hops.saturating_add(1),
                    PortKind::Node | PortKind::Ring => unreachable!("non-eject canonical grant"),
                }
                let out = &mut store.outputs[req.out_port as usize];
                out.credits[req.out_vc as usize] -= size;
                if let Some(cm) = self.cm.as_mut() {
                    cm.free[ridx] -= u64::from(size);
                }
                self.transmit(ridx, req, link, pkt, now);
            }
        }

        // Seeded race defect (`EngineMutation::CreditInstant`): the
        // credit lands on the upstream shard right now, mid-route-phase,
        // instead of riding the ledger. Whether the upstream router's
        // own allocation turn this cycle sees it depends on the shard
        // schedule — the divergence `ofar-race` exists to catch.
        #[cfg(feature = "mutate")]
        if desc.up_router != u32::MAX && !deferred {
            self.land_credit_instantly(desc.up_router, desc.up_port, vc as u8, size);
        }
    }

    /// Put a granted packet on the wire. Lossless path: defer the
    /// arrival. LLR path: sample the transfer's fate under the link's
    /// effective error rate (one-shot injected faults first), record the
    /// replay entry, and defer the arrival unless the wire ate it — a
    /// dropped transfer leaves only the replay copy, recovered by the
    /// retransmit timeout. The credit was already taken by the caller
    /// and is not taken again on retries.
    // lint:allow(P002, packet_size is validated at config build and fits u32) lint:allow(R001, sample_fate advances the one shared fate rng; the parallel plan splits it into per-link streams) lint:allow(R003, take_pending consumes one-shot transient fault injections; drained under the same serial order the fault plan fixes)
    fn transmit(
        &mut self,
        ridx: usize,
        req: Request,
        link: crate::fabric::OutLink,
        pkt: Packet,
        now: u64,
    ) {
        if let Some(llr) = self.llr.as_mut() {
            let size = self.fab.cfg().packet_size as u32;
            let (a, b) = (RouterId::from(ridx), RouterId::new(link.dst_router));
            let fate = match self.faults.take_pending(a, b) {
                Some(f) => f,
                None => {
                    let ber = self.faults.link_ber(a, b, self.fab.cfg().ber);
                    llr.sample_fate(ber, size)
                }
            };
            let (seq, wire_crc) =
                llr.record_send(ridx, req.out_port as usize, req.out_vc, pkt, now, fate);
            if fate == Fate::Drop {
                self.stats.llr_wire_drops += 1;
                return;
            }
            // The receive side only reads wire state when the arrival
            // lands (`now + latency`, next cycle at the earliest), so
            // the transfer is committed with the other cross-router
            // effects instead of written into the destination's queue
            // from this router's allocation turn.
            self.effects.push(Effect::Wire {
                router: link.dst_router,
                port: link.dst_port,
                seq,
                wire_crc,
            });
        }
        self.effects.push(Effect::Arrival {
            router: link.dst_router,
            port: link.dst_port,
            vc: req.out_vc,
            at: now + u64::from(link.latency),
            pkt,
        });
    }

    /// LLR timer phase (after event delivery, before injection and
    /// allocation): per directed link, process the acks and nacks that
    /// arrived this cycle, expire overdue transfers, and issue at most
    /// one retransmission per link per idle wire — or escalate a link
    /// whose oldest lost transfer has exhausted the retry budget to the
    /// §VII fail-stop path, where degraded routing takes over.
    // lint:allow(P002, packet_size is validated at config build and fits u32) lint:allow(H001, Vec::new does not allocate; pushes happen only on link-death events) lint:allow(P001, runs only when LLR is enabled; self.llr checked by the caller)
    fn llr_phase(&mut self, now: u64) {
        let size = self.fab.cfg().packet_size as u32;
        let slack = self.fab.cfg().llr_timeout_slack;
        let backoff_cap = self.fab.cfg().llr_backoff_cap;
        let budget = self.fab.cfg().llr_retry_budget;
        let n_out = self.fab.n_out();
        let mut escalate: Vec<(RouterId, RouterId)> = Vec::new();
        for ridx in 0..self.routers.len() {
            let rid = RouterId::from(ridx);
            for port in 0..n_out {
                let link = *self.fab.out_link(rid, port);
                if link.kind == PortKind::Node {
                    continue;
                }
                let llr = self.llr.as_mut().expect("caller checked");
                self.stats.llr_nacks += llr.drain_acks(ridx, port, now);
                if llr.tx_occupancy(ridx, port) == 0 {
                    continue;
                }
                self.stats.llr_timeouts += llr.expire(
                    ridx,
                    port,
                    now,
                    u64::from(link.latency),
                    u64::from(size),
                    slack,
                    backoff_cap,
                );
                if !self.faults.link_up(ridx, port) {
                    continue; // flushed on failure; nothing to replay
                }
                let Some((seq, retries)) = llr.next_retransmit(ridx, port) else {
                    continue;
                };
                if retries >= budget {
                    escalate.push((rid, RouterId::new(link.dst_router)));
                    continue;
                }
                let out = &mut self.routers[ridx].outputs[port];
                if out.busy_until > now {
                    continue; // the wire is streaming; retry next cycle
                }
                // Retransmissions occupy the wire ahead of new grants:
                // the allocator sees busy_until and naturally defers.
                out.busy_until = now + u64::from(size);
                let b = RouterId::new(link.dst_router);
                let fate = match self.faults.take_pending(rid, b) {
                    Some(f) => f,
                    None => {
                        let ber = self.faults.link_ber(rid, b, self.fab.cfg().ber);
                        llr.sample_fate(ber, size)
                    }
                };
                let (out_vc, pkt, wire_crc, fate) =
                    llr.record_retransmit(ridx, port, seq, now, fate);
                self.stats.llr_retransmits += 1;
                if let Some(util) = self.link_phits.as_mut() {
                    util[ridx * n_out + port] += u64::from(size);
                }
                if fate == Fate::Drop {
                    self.stats.llr_wire_drops += 1;
                    continue;
                }
                llr.push_wire(
                    link.dst_router as usize,
                    link.dst_port as usize,
                    seq,
                    wire_crc,
                );
                let at = now + u64::from(link.latency);
                let q = &mut self.routers[link.dst_router as usize].inputs[link.dst_port as usize]
                    .arrivals;
                debug_assert!(q.back().is_none_or(|&(t, _, _)| t <= at));
                q.push_back((at, out_vc, pkt));
            }
        }
        for (a, b) in escalate {
            // Failing one direction fails the full-duplex pair, so a
            // simultaneous escalation of the reverse direction is a
            // no-op by then.
            if self.faults.topo_link_up(a, b) {
                self.stats.llr_escalations += 1;
                self.apply_fault(FaultKind::FailLink(a, b));
            }
        }
    }

    // ----- invariants (used by the test suites) --------------------------

    /// Total phits currently inside the system (source queues, buffers
    /// and links). Delivered + inside must equal generated at all times
    /// (phit conservation).
    pub fn phits_in_system(&self) -> u64 {
        let size = self.fab.cfg().packet_size as u64;
        let src: u64 = self.src_q.iter().map(|q| q.len() as u64 * size).sum();
        let buffered: u64 = self.routers.iter().map(RouterStore::buffered_phits).sum();
        if let Some(llr) = &self.llr {
            // Under LLR, a copy in flight on a link is a phantom: the
            // canonical copy of a packet the receiver has not accepted
            // is its sender-side replay entry (counting both would
            // double-count every transfer, and a dropped transfer would
            // vanish). Accepted packets are counted by FIFO occupancy.
            return src + buffered + llr.undelivered_phits(&self.fab, size);
        }
        let inflight: u64 = self
            .routers
            .iter()
            .map(|r| r.inflight_phits(size as usize))
            .sum();
        src + buffered + inflight
    }

    /// Assert credit consistency: for every link, sender credits plus
    /// receiver occupancy plus in-flight packets and in-flight credits
    /// must equal the buffer capacity. Called from tests; O(network).
    pub fn check_credit_conservation(&self) {
        let size = self.fab.cfg().packet_size as u32;
        for ridx in 0..self.routers.len() {
            let router = RouterId::from(ridx);
            for port in 0..self.fab.n_out() {
                let link = self.fab.out_link(router, port);
                if link.kind == PortKind::Node {
                    continue;
                }
                let out = &self.routers[ridx].outputs[port];
                let din = &self.routers[link.dst_router as usize].inputs[link.dst_port as usize];
                for vc in 0..out.credits.len() {
                    // Under LLR the in-flight-packet term is replaced by
                    // the undelivered replay entries: a credit taken at
                    // first transmission stays reserved across drops,
                    // corruptions and retries until the receiver accepts
                    // the packet into its buffer.
                    let reserved = match &self.llr {
                        Some(l) => {
                            l.undelivered(
                                ridx,
                                port,
                                link.dst_router as usize,
                                link.dst_port as usize,
                            )
                            .filter(|e| e.out_vc as usize == vc)
                            .count() as u32
                                * size
                        }
                        None => {
                            din.arrivals
                                .iter()
                                .filter(|&&(_, v, _)| v as usize == vc)
                                .count() as u32
                                * size
                        }
                    };
                    let inflight_credits: u32 = out
                        .credit_events
                        .iter()
                        .filter(|&&(_, v, _)| v as usize == vc)
                        .map(|&(_, _, p)| p)
                        .sum();
                    let occ = din.vcs[vc].occupancy();
                    assert_eq!(
                        out.credits[vc] + occ + reserved + inflight_credits,
                        out.capacity[vc],
                        "credit leak on {router} out {port} vc {vc}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Checkpoint/restart (see crate::snapshot for the file format)
// ---------------------------------------------------------------------

use crate::snapshot::{self, decode_packet, encode_packet, Dec, Enc, SnapshotError};

/// Decode-time cap on per-node source queues and the delivery log: far
/// beyond any real run, far below an allocation bomb.
const SNAP_QUEUE_BOUND: usize = 1 << 24;

impl<P: Policy> Network<P> {
    /// Serialize the complete live state into a self-describing snapshot
    /// (see [`crate::snapshot`] for the format). Must be called at a
    /// step boundary — between [`Self::step`] calls — where the
    /// allocator's per-cycle scratch state is empty by construction.
    ///
    /// The returned bytes embed the configuration and mechanism name, so
    /// [`crate::snapshot::peek_header`] plus [`Self::restore_snapshot`]
    /// rebuild an identical network from the bytes alone. Restore is
    /// bit-exact: the resumed run produces the same statistics and
    /// delivery stream as an uninterrupted one.
    pub fn save_snapshot(&self) -> Vec<u8> {
        let config = snapshot::encode_config(self.fab.cfg(), self.policy.name());
        let mut policy = Vec::new();
        self.policy.save_state(&mut policy);
        let mut e = Enc::default();
        self.encode_state(&mut e);
        snapshot::frame(&config, &policy, &e.buf)
    }

    /// Restore a snapshot produced by [`Self::save_snapshot`] into this
    /// network. The network must have been built with the same
    /// configuration and mechanism (checked via the config fingerprint
    /// before anything is touched). On any error the network is left
    /// exactly as it was — decoding happens into temporaries and is
    /// committed only once the whole file has validated.
    pub fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let frame = snapshot::parse_frame(bytes)?;
        let own_config = snapshot::encode_config(self.fab.cfg(), self.policy.name());
        let expected = crate::llr::crc32(&own_config);
        if frame.fingerprint != expected || frame.config != own_config.as_slice() {
            // Name the more specific cause when only the mechanism
            // differs under an otherwise identical configuration.
            let (_, mech) = snapshot::decode_config(frame.config)?;
            if mech != self.policy.name() {
                return Err(SnapshotError::MechanismMismatch {
                    expected: self.policy.name().to_string(),
                    found: mech,
                });
            }
            return Err(SnapshotError::ConfigMismatch {
                expected,
                found: frame.fingerprint,
            });
        }
        let mut d = Dec::new(frame.state);
        let decoded = self.decode_state(&mut d)?;
        if !d.is_empty() {
            return Err(SnapshotError::Malformed("trailing bytes in STATE"));
        }
        self.policy
            .load_state(frame.policy)
            .map_err(SnapshotError::Policy)?;
        self.commit_state(decoded);
        Ok(())
    }

    fn encode_state(&self, e: &mut Enc) {
        // Snapshots are taken at cycle boundaries, where the per-cycle
        // delivery buffer has already been drained into `delivered_log`
        // by `commit_effects` — it carries no state of its own.
        debug_assert!(self.delivered_now.is_empty());
        e.u64(self.now);
        e.u64(self.next_id);
        e.u8(u8::from(self.faults_ever));
        e.usize(self.plan_cursor);
        self.plan.snap_encode(e);
        self.faults.snap_encode(e);
        for c in self.stats_counters() {
            e.u64(c);
        }
        e.usize(self.src_q.len());
        for q in &self.src_q {
            e.usize(q.len());
            for p in q {
                encode_packet(e, p);
            }
        }
        for &b in &self.inj_busy {
            e.u64(b);
        }
        for &g in &self.router_last_grant {
            e.u64(g);
        }
        match &self.delivered_log {
            None => e.u8(0),
            Some(log) => {
                e.u8(1);
                e.usize(log.len());
                for &(at, lat) in log {
                    e.u64(at);
                    e.u32(lat);
                }
            }
        }
        match &self.link_phits {
            None => e.u8(0),
            Some(counts) => {
                e.u8(1);
                e.usize(counts.len());
                for &c in counts {
                    e.u64(c);
                }
            }
        }
        for store in &self.routers {
            for input in &store.inputs {
                for fifo in &input.vcs {
                    e.usize(fifo.len());
                    for p in fifo.iter() {
                        encode_packet(e, p);
                    }
                }
                e.usize(input.arrivals.len());
                for &(at, vc, pkt) in &input.arrivals {
                    e.u64(at);
                    e.u8(vc);
                    encode_packet(e, &pkt);
                }
                e.u64(input.busy_until);
                for &t in &input.vc_served_at {
                    e.u64(t);
                }
            }
            for output in &store.outputs {
                for &c in &output.credits {
                    e.u32(c);
                }
                e.usize(output.credit_events.len());
                for &(at, vc, phits) in &output.credit_events {
                    e.u64(at);
                    e.u8(vc);
                    e.u32(phits);
                }
                e.u64(output.busy_until);
                for &t in &output.in_served_at {
                    e.u64(t);
                }
            }
        }
        match &self.llr {
            None => e.u8(0),
            Some(llr) => {
                e.u8(1);
                llr.snap_encode(e);
            }
        }
        // CM + fairness state (format v2). The presence tag must agree
        // with cfg.cm_enabled — it is written anyway so a corrupted file
        // fails closed instead of desynchronizing the stream.
        match &self.cm {
            None => e.u8(0),
            Some(cm) => {
                e.u8(1);
                for &t in &cm.tokens {
                    e.u32(t);
                }
                for &c in &cm.cong {
                    e.u32(c);
                }
                for &t in &cm.throttled {
                    e.u8(u8::from(t));
                }
            }
        }
        for &dps in &self.delivered_per_src {
            e.u64(dps);
        }
    }

    /// Decode the STATE section into temporaries without touching
    /// `self`; [`Self::commit_state`] applies them only after the whole
    /// section validated.
    fn decode_state(&self, d: &mut Dec<'_>) -> Result<DecodedState, SnapshotError> {
        let malformed = |what| Err(SnapshotError::Malformed(what));
        let now = d.u64()?;
        let next_id = d.u64()?;
        let faults_ever = d.u8()? != 0;
        let plan_cursor = d.usize()?;
        let plan = FaultPlan::snap_decode(d)?;
        if plan_cursor > plan.events().len() {
            return malformed("plan cursor past the end of the plan");
        }
        let faults = FaultState::snap_decode(d, &self.fab)?;
        let mut stats = Stats::default();
        let mut counters = [0u64; STATS_COUNTERS];
        for c in &mut counters {
            *c = d.u64()?;
        }
        stats.set_counters(&counters);
        let nodes = self.src_q.len();
        if d.len(nodes, "source-queue count")? != nodes {
            return malformed("source-queue count disagrees");
        }
        let mut src_q = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let n = d.len(SNAP_QUEUE_BOUND, "source queue size")?;
            let mut q = VecDeque::with_capacity(n);
            for _ in 0..n {
                q.push_back(decode_packet(d)?);
            }
            src_q.push(q);
        }
        let mut inj_busy = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            inj_busy.push(d.u64()?);
        }
        let nr = self.routers.len();
        let mut router_last_grant = Vec::with_capacity(nr);
        for _ in 0..nr {
            router_last_grant.push(d.u64()?);
        }
        let delivered_log = match d.u8()? {
            0 => None,
            1 => {
                let n = d.len(SNAP_QUEUE_BOUND, "delivery log size")?;
                let mut log = Vec::with_capacity(n);
                for _ in 0..n {
                    let at = d.u64()?;
                    let lat = d.u32()?;
                    log.push((at, lat));
                }
                Some(log)
            }
            _ => return malformed("bad Option tag for delivery log"),
        };
        let link_phits = match d.u8()? {
            0 => None,
            1 => {
                let want = nr * self.fab.n_out();
                if d.len(want, "link phit counter count")? != want {
                    return malformed("link phit counter count disagrees");
                }
                let mut counts = Vec::with_capacity(want);
                for _ in 0..want {
                    counts.push(d.u64()?);
                }
                Some(counts)
            }
            _ => return malformed("bad Option tag for link counters"),
        };
        let size = self.fab.cfg().packet_size as u32;
        let mut routers = Vec::with_capacity(nr);
        for r in 0..nr {
            let mut store = RouterStore::new(&self.fab, RouterId::from(r));
            for input in &mut store.inputs {
                for fifo in &mut input.vcs {
                    let n = d.len(SNAP_QUEUE_BOUND, "VC buffer size")?;
                    for _ in 0..n {
                        let pkt = decode_packet(d)?;
                        if !fifo.fits(size) {
                            return malformed("VC buffer overflows its capacity");
                        }
                        fifo.push(pkt, size);
                    }
                }
                let n = d.len(SNAP_QUEUE_BOUND, "arrival pipeline size")?;
                for _ in 0..n {
                    let at = d.u64()?;
                    let vc = d.u8()?;
                    let pkt = decode_packet(d)?;
                    if vc as usize >= input.vcs.len() {
                        return malformed("arrival targets a VC out of range");
                    }
                    input.arrivals.push_back((at, vc, pkt));
                }
                input.busy_until = d.u64()?;
                for t in &mut input.vc_served_at {
                    *t = d.u64()?;
                }
            }
            for output in &mut store.outputs {
                for vc in 0..output.credits.len() {
                    let c = d.u32()?;
                    if c > output.capacity[vc] {
                        return malformed("credits exceed downstream capacity");
                    }
                    output.credits[vc] = c;
                }
                let n = d.len(SNAP_QUEUE_BOUND, "credit pipeline size")?;
                for _ in 0..n {
                    let at = d.u64()?;
                    let vc = d.u8()?;
                    let phits = d.u32()?;
                    if vc as usize >= output.capacity.len() {
                        return malformed("credit event targets a VC out of range");
                    }
                    output.credit_events.push_back((at, vc, phits));
                }
                output.busy_until = d.u64()?;
                for t in &mut output.in_served_at {
                    *t = d.u64()?;
                }
            }
            routers.push(store);
        }
        let llr = match d.u8()? {
            0 => None,
            1 => Some(Llr::snap_decode(d, &self.fab)?),
            _ => return malformed("bad Option tag for LLR"),
        };
        let cm = match d.u8()? {
            0 => {
                if self.fab.cfg().cm_enabled {
                    return malformed("CM state missing for a cm_enabled config");
                }
                None
            }
            1 => {
                if !self.fab.cfg().cm_enabled {
                    return malformed("CM state present for a cm-disabled config");
                }
                let mut cm = CmState::new(self.fab.cfg(), nodes, nr);
                for t in &mut cm.tokens {
                    let v = d.u32()?;
                    if v > cm.cap {
                        return malformed("bucket level exceeds its capacity");
                    }
                    *t = v;
                }
                for c in &mut cm.cong {
                    let v = d.u32()?;
                    if v > CM_CONG_ONE {
                        return malformed("congestion estimate above 1.0");
                    }
                    *c = v;
                }
                for t in &mut cm.throttled {
                    *t = match d.u8()? {
                        0 => false,
                        1 => true,
                        _ => return malformed("bad throttled flag"),
                    };
                }
                // The incremental credit sums are derived state:
                // recompute them from the just-decoded router credits
                // rather than trusting (or carrying) them in the file.
                cm.rebuild_free(&routers);
                Some(cm)
            }
            _ => return malformed("bad Option tag for CM state"),
        };
        let mut delivered_per_src = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            delivered_per_src.push(d.u64()?);
        }
        Ok(DecodedState {
            now,
            next_id,
            faults_ever,
            plan_cursor,
            plan,
            faults,
            stats,
            src_q,
            inj_busy,
            router_last_grant,
            delivered_log,
            link_phits,
            routers,
            llr,
            cm,
            delivered_per_src,
        })
    }

    /// Map a byte offset inside a STATE section payload to the field
    /// whose encoding covers it, shard indices spelled out
    /// (`"router[7].output[2].credits[1]"`). The commutativity
    /// certifier uses this to turn a byte-level snapshot divergence
    /// ([`snapshot::diff_snapshots`]) into a structured witness. Only
    /// called on divergence, so clarity beats speed.
    pub fn locate_state_field(&self, state: &[u8], offset: usize) -> String {
        self.walk_state_to(state, offset)
            .unwrap_or_else(|e| format!("unmappable offset {offset}: {e}"))
    }

    /// Walk the STATE schema (mirroring [`Self::decode_state`]) until
    /// the decoder's position passes `offset`, returning the label of
    /// the field being decoded at that moment.
    fn walk_state_to(&self, state: &[u8], offset: usize) -> Result<String, SnapshotError> {
        let d = &mut Dec::new(state);
        macro_rules! field {
            ($decode:expr, $($label:tt)*) => {{
                $decode;
                if d.pos() > offset {
                    return Ok(format!($($label)*));
                }
            }};
        }
        field!(d.u64()?, "now");
        field!(d.u64()?, "next_id");
        field!(d.u8()?, "faults_ever");
        field!(d.usize()?, "plan_cursor");
        field!(FaultPlan::snap_decode(d)?, "fault plan");
        field!(FaultState::snap_decode(d, &self.fab)?, "fault state");
        for name in Stats::counter_names() {
            field!(d.u64()?, "stats.{name}");
        }
        let nodes = self.src_q.len();
        field!(d.usize()?, "source-queue count");
        for node in 0..nodes {
            let n = d.len(SNAP_QUEUE_BOUND, "source queue size")?;
            field!(
                for _ in 0..n {
                    decode_packet(d)?;
                },
                "src_q[{node}]"
            );
        }
        for node in 0..nodes {
            field!(d.u64()?, "inj_busy[{node}]");
        }
        let nr = self.routers.len();
        for r in 0..nr {
            field!(d.u64()?, "router_last_grant[{r}]");
        }
        field!(
            if d.u8()? == 1 {
                let n = d.len(SNAP_QUEUE_BOUND, "delivery log size")?;
                for _ in 0..n {
                    d.u64()?;
                    d.u32()?;
                }
            },
            "delivered_log"
        );
        field!(
            if d.u8()? == 1 {
                let n = d.len(nr * self.fab.n_out(), "link phit counter count")?;
                for _ in 0..n {
                    d.u64()?;
                }
            },
            "link_phits"
        );
        for r in 0..nr {
            // A fresh store of router `r`'s shape gives the per-port/VC
            // loop bounds the stream itself does not carry.
            let store = RouterStore::new(&self.fab, RouterId::from(r));
            for (pi, input) in store.inputs.iter().enumerate() {
                for vi in 0..input.vcs.len() {
                    let n = d.len(SNAP_QUEUE_BOUND, "VC buffer size")?;
                    field!(
                        for _ in 0..n {
                            decode_packet(d)?;
                        },
                        "router[{r}].input[{pi}].vc[{vi}].fifo"
                    );
                }
                let n = d.len(SNAP_QUEUE_BOUND, "arrival pipeline size")?;
                field!(
                    for _ in 0..n {
                        d.u64()?;
                        d.u8()?;
                        decode_packet(d)?;
                    },
                    "router[{r}].input[{pi}].arrivals"
                );
                field!(d.u64()?, "router[{r}].input[{pi}].busy_until");
                for vi in 0..input.vc_served_at.len() {
                    field!(d.u64()?, "router[{r}].input[{pi}].vc_served_at[{vi}]");
                }
            }
            for (po, output) in store.outputs.iter().enumerate() {
                for vi in 0..output.credits.len() {
                    field!(d.u32()?, "router[{r}].output[{po}].credits[{vi}]");
                }
                let n = d.len(SNAP_QUEUE_BOUND, "credit pipeline size")?;
                field!(
                    for _ in 0..n {
                        d.u64()?;
                        d.u8()?;
                        d.u32()?;
                    },
                    "router[{r}].output[{po}].credit_events"
                );
                field!(d.u64()?, "router[{r}].output[{po}].busy_until");
                for ii in 0..output.in_served_at.len() {
                    field!(d.u64()?, "router[{r}].output[{po}].in_served_at[{ii}]");
                }
            }
        }
        field!(
            if d.u8()? == 1 {
                Llr::snap_decode(d, &self.fab)?;
            },
            "llr"
        );
        let cm_present = d.u8()?;
        if d.pos() > offset {
            return Ok("cm presence tag".to_string());
        }
        if cm_present == 1 {
            for node in 0..nodes {
                field!(d.u32()?, "cm.tokens[{node}]");
            }
            for r in 0..nr {
                field!(d.u32()?, "cm.cong[{r}]");
            }
            for r in 0..nr {
                field!(d.u8()?, "cm.throttled[{r}]");
            }
        }
        for node in 0..nodes {
            field!(d.u64()?, "delivered_per_src[{node}]");
        }
        Ok("past the end of STATE".to_string())
    }

    /// Section-level diff of two snapshot files
    /// ([`snapshot::diff_snapshots`]), with a STATE divergence refined
    /// to a labeled field path via [`Self::locate_state_field`].
    /// `Ok(None)` means byte-identical sections.
    pub fn diff_snapshots_named(
        &self,
        a: &[u8],
        b: &[u8],
    ) -> Result<Option<(snapshot::SectionDiff, String)>, SnapshotError> {
        let Some(d) = snapshot::diff_snapshots(a, b)? else {
            return Ok(None);
        };
        let detail = match d.section {
            "state" => {
                let frame = snapshot::parse_frame(a)?;
                self.locate_state_field(frame.state, d.offset)
            }
            "policy" => format!("opaque policy bytes, offset {}", d.offset),
            _ => format!("section bytes, offset {}", d.offset),
        };
        Ok(Some((d, detail)))
    }

    fn commit_state(&mut self, s: DecodedState) {
        self.now = s.now;
        self.next_id = s.next_id;
        self.faults_ever = s.faults_ever;
        self.plan_cursor = s.plan_cursor;
        self.plan = s.plan;
        self.faults = s.faults;
        self.stats = s.stats;
        self.src_q = s.src_q;
        self.inj_busy = s.inj_busy;
        self.router_last_grant = s.router_last_grant;
        self.delivered_log = s.delivered_log;
        self.link_phits = s.link_phits;
        self.routers = s.routers;
        self.llr = s.llr;
        self.cm = s.cm;
        self.delivered_per_src = s.delivered_per_src;
        // Per-cycle scratch is empty at every step boundary; clear it so
        // a restore into a mid-turn network cannot leak stale requests.
        self.effects.clear();
        self.delivered_now.clear();
        self.reqs.clear();
        self.grants.clear();
    }

    /// The engine counters as a fixed-order array (the STATE section's
    /// stats layout; order is part of the format).
    fn stats_counters(&self) -> [u64; STATS_COUNTERS] {
        self.stats.counters()
    }
}

/// Number of `u64` counters in [`Stats`] (format constant).
const STATS_COUNTERS: usize = crate::stats::STATS_COUNTERS;

/// Fully decoded STATE section, held apart from the network until the
/// whole snapshot has validated.
struct DecodedState {
    now: u64,
    next_id: u64,
    faults_ever: bool,
    plan_cursor: usize,
    plan: FaultPlan,
    faults: FaultState,
    stats: Stats,
    src_q: Vec<VecDeque<Packet>>,
    inj_busy: Vec<u64>,
    router_last_grant: Vec<u64>,
    delivered_log: Option<Vec<(u64, u32)>>,
    link_phits: Option<Vec<u64>>,
    routers: Vec<RouterStore>,
    llr: Option<Llr>,
    cm: Option<CmState>,
    delivered_per_src: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::{cm_inv, CM_INV_SHIFT};

    /// The CM sensor's multiply-shift must agree with true integer
    /// division over the entire feasible operand range: every divisor
    /// below the `rebuild_free` bound (`cap_sum < 2^17`), numerators at
    /// the ends, middle, and around every multiple-of-`d` step where
    /// `floor` changes value.
    #[test]
    fn cm_reciprocal_division_is_exact() {
        assert_eq!(cm_inv(0), 0);
        for d in (1u64..1 << 17).chain([(1 << 17) - 1]) {
            let m = u128::from(cm_inv(d));
            for used in [
                0,
                1,
                2,
                d / 3,
                d / 2,
                d.saturating_sub(2),
                d.saturating_sub(1),
                d,
            ] {
                let n = used << 16;
                let exact = n / d;
                let magic = ((u128::from(n) * m) >> CM_INV_SHIFT) as u64;
                assert_eq!(magic, exact, "d={d} used={used}");
                // Off-by-one probes around the quotient step.
                for n in [n.saturating_sub(1), n + 1] {
                    let magic = ((u128::from(n) * m) >> CM_INV_SHIFT) as u64;
                    assert_eq!(magic, n / d, "d={d} n={n}");
                }
            }
        }
    }
}
