//! Flow-control fault seams for mutation testing (`feature = "mutate"`).
//!
//! The mutation harness (`crates/mutate`) must be able to seed the exact
//! class of defect the runtime auditor ([`crate::audit`]) claims to
//! catch: credit-accounting skew and bubble flow-control erosion. Those
//! defects live *inside* the engine's credit loop, so they cannot be
//! expressed as a wrapper around a [`crate::Policy`] — instead the
//! engine exposes, behind the `mutate` cargo feature, a small set of
//! runtime-selectable faults injected at the two seams that matter:
//!
//! * the **credit-landing loop** in `deliver_events`, where returned
//!   credits are added back to an output VC counter, and
//! * the **bubble condition** in grant eligibility, where ring entry
//!   requires space for two packets downstream (§IV-C).
//!
//! The seams are compiled out entirely without the feature; with it but
//! with no mutation installed, each costs one `Option` check per credit
//! event. Production builds never enable `mutate`.

/// A seeded engine-level defect, installed via
/// [`crate::Network::set_engine_mutation`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EngineMutation {
    /// Drop every `period`-th returned credit: the downstream buffer
    /// space exists but the upstream counter never learns. Conservation
    /// (`credits + occupancy + reserved + inflight`) drifts below the VC
    /// capacity — the auditor's deep `CreditLeak` check must fire.
    CreditLeak {
        /// Mutate every `period`-th credit event (1 = every event).
        period: u32,
    },
    /// Return every `period`-th credit twice: the classic double-free.
    /// The counter climbs past the downstream capacity, tripping the
    /// fast `CreditOverflow` check (or `CreditLeak` when in-flight
    /// packets mask the overflow at landing time).
    CreditDouble {
        /// Mutate every `period`-th credit event (1 = every event).
        period: u32,
    },
    /// Land every `period`-th credit on the *next* VC of the same port
    /// instead of the one it was issued for — an escape-VC
    /// misassignment. Both VCs' conservation sums drift (one leaks, one
    /// inflates), so the deep check reports two `CreditLeak`s.
    EscapeVcSkew {
        /// Mutate every `period`-th credit event (1 = every event).
        period: u32,
    },
    /// Weaken the §IV-C bubble condition: ring entry is granted with
    /// space for one packet downstream instead of two. The ring can then
    /// fill completely and deadlock — caught by the deep `BubbleLost`
    /// check (the ring no longer holds a free packet-sized bubble) or,
    /// dynamically, by the run watchdog.
    RingBubbleSkip,
    /// Ignore the congestion-management token bucket at injection: the
    /// NIC injects even when its bucket is short, debiting what it can
    /// (`saturating_sub`) while the consumption counter records the full
    /// price. Granted − consumed then drifts below the summed bucket
    /// levels — the deep `ThrottleTokenLaw` check must fire as soon as
    /// throttling actually engages.
    ThrottleBypass,
    /// Land returned credits on the upstream router *immediately* during
    /// the parallel `route` phase instead of deferring them through the
    /// effects ledger — a reintroduced direct foreign-shard write.
    /// Single-threaded behavior now depends on the shard schedule: the
    /// upstream router's same-cycle allocation sees the credit iff its
    /// shard runs after the granting router's. Invisible to every
    /// dynamic oracle under the identity schedule; only the
    /// commutativity certifier (`ofar-race`) can object.
    CreditInstant,
    /// Fold a non-commutative hash of the effects ledger's *push order*
    /// into an engine counter during `commit_effects`. The per-queue
    /// applied state is untouched (each queue still receives its one
    /// entry), but the fold value — and hence the snapshot — varies
    /// with the shard schedule that produced the ledger order. The
    /// defect class R006 forbids statically, seeded dynamically here.
    EffectOrderFold,
}

impl EngineMutation {
    /// Apply this mutation to one landing credit event `(vc, phits)`,
    /// the `tick`-th credit event since the mutation was installed, on a
    /// port with `vcs` virtual channels. Returns the (possibly skewed)
    /// `(vc, phits)` to actually land; `phits == 0` means the credit is
    /// dropped.
    pub(crate) fn skew_credit(self, vc: u8, phits: u32, tick: u64, vcs: usize) -> (u8, u32) {
        let hit = |period: u32| period > 0 && tick.is_multiple_of(u64::from(period.max(1)));
        match self {
            EngineMutation::CreditLeak { period } if hit(period) => (vc, 0),
            EngineMutation::CreditDouble { period } if hit(period) => (vc, phits * 2),
            EngineMutation::EscapeVcSkew { period } if hit(period) && vcs > 1 => {
                // lint:allow(P002, vc count bounded by config well below 256)
                (((vc as usize + 1) % vcs) as u8, phits)
            }
            _ => (vc, phits),
        }
    }

    /// The downstream space (in phits) required to grant a ring-entry
    /// request under this mutation, given the unmutated requirement of
    /// `2 * size` (the §IV-C bubble).
    pub(crate) fn ring_need(self, size: u32) -> u32 {
        match self {
            EngineMutation::RingBubbleSkip => size,
            _ => 2 * size,
        }
    }

    /// Whether the congestion-management injection gate is bypassed.
    pub(crate) fn bypass_throttle(self) -> bool {
        matches!(self, EngineMutation::ThrottleBypass)
    }

    /// Whether returned credits land on the upstream router directly
    /// from the parallel `route` phase (the reintroduced foreign write).
    pub(crate) fn instant_credits(self) -> bool {
        matches!(self, EngineMutation::CreditInstant)
    }

    /// Whether `commit_effects` folds the ledger's push order into an
    /// engine counter (the order-sensitive fold).
    pub(crate) fn folds_effect_order(self) -> bool {
        matches!(self, EngineMutation::EffectOrderFold)
    }

    /// Short stable name used in kill-matrix reports.
    pub fn name(self) -> &'static str {
        match self {
            EngineMutation::CreditLeak { .. } => "engine-credit-leak",
            EngineMutation::CreditDouble { .. } => "engine-credit-double",
            EngineMutation::EscapeVcSkew { .. } => "engine-escape-vc-skew",
            EngineMutation::RingBubbleSkip => "engine-ring-bubble-skip",
            EngineMutation::ThrottleBypass => "engine-throttle-bypass",
            EngineMutation::CreditInstant => "engine-credit-instant",
            EngineMutation::EffectOrderFold => "engine-effect-order-fold",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_credit_hits_only_on_period() {
        let m = EngineMutation::CreditLeak { period: 3 };
        assert_eq!(m.skew_credit(1, 4, 1, 2), (1, 4));
        assert_eq!(m.skew_credit(1, 4, 2, 2), (1, 4));
        assert_eq!(m.skew_credit(1, 4, 3, 2), (1, 0));
        let d = EngineMutation::CreditDouble { period: 1 };
        assert_eq!(d.skew_credit(0, 4, 7, 1), (0, 8));
        let s = EngineMutation::EscapeVcSkew { period: 1 };
        assert_eq!(s.skew_credit(1, 4, 7, 3), (2, 4));
        assert_eq!(s.skew_credit(2, 4, 7, 3), (0, 4));
        // single-VC ports cannot skew
        assert_eq!(s.skew_credit(0, 4, 7, 1), (0, 4));
    }

    #[test]
    fn ring_need_halves_only_for_bubble_skip() {
        assert_eq!(EngineMutation::RingBubbleSkip.ring_need(8), 8);
        assert_eq!(EngineMutation::CreditLeak { period: 1 }.ring_need(8), 16);
    }

    #[test]
    fn race_seams_are_scoped_and_inert_elsewhere() {
        assert!(EngineMutation::CreditInstant.instant_credits());
        assert!(!EngineMutation::CreditInstant.folds_effect_order());
        assert!(EngineMutation::EffectOrderFold.folds_effect_order());
        assert!(!EngineMutation::EffectOrderFold.instant_credits());
        // Neither race seam perturbs the credit-skew, bubble or
        // throttle seams.
        for m in [
            EngineMutation::CreditInstant,
            EngineMutation::EffectOrderFold,
        ] {
            assert_eq!(m.skew_credit(1, 4, 3, 2), (1, 4));
            assert_eq!(m.ring_need(8), 16);
            assert!(!m.bypass_throttle());
        }
    }

    #[test]
    fn throttle_bypass_is_scoped_to_its_seam() {
        assert!(EngineMutation::ThrottleBypass.bypass_throttle());
        assert!(!EngineMutation::RingBubbleSkip.bypass_throttle());
        // The bypass must not perturb the credit or bubble seams.
        assert_eq!(
            EngineMutation::ThrottleBypass.skew_credit(1, 4, 3, 2),
            (1, 4)
        );
        assert_eq!(EngineMutation::ThrottleBypass.ring_need(8), 16);
    }
}
