//! Simulator configuration.
//!
//! Defaults reproduce the methodology of §V of the paper: packets of
//! 8 phits, 3 VCs on local links and injection queues, 2 VCs on global
//! links, 32-phit local FIFOs, 256-phit global FIFOs, 10-cycle local and
//! 100-cycle global link latencies, and an iterative separable batch
//! allocator with three iterations.

use ofar_topology::DragonflyParams;
use std::fmt;

/// A violated configuration invariant, reported by
/// [`SimConfig::validate`]. Each variant carries enough context to print
/// an actionable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `packet_size == 0`.
    ZeroPacketSize,
    /// A canonical buffer cannot hold one whole packet (VCT requirement).
    BufferTooSmall {
        /// Which buffer (`buf_local`, `buf_global`, `buf_injection`).
        name: &'static str,
        /// Configured capacity in phits.
        cap: usize,
        /// Packet size in phits.
        packet: usize,
    },
    /// The ring buffer cannot hold two packets (bubble condition, §IV-C).
    RingBufferNoBubble {
        /// Configured `buf_ring` capacity in phits.
        cap: usize,
    },
    /// Some link class has zero virtual channels.
    NoVcs,
    /// The allocator was configured with zero iterations.
    ZeroAllocIters,
    /// `h < 2`: the Dragonfly degenerates (no meaningful global
    /// diversity, and the §VII multi-ring story needs `h ≥ 2`).
    RadixTooSmall {
        /// Configured `h`.
        h: usize,
    },
    /// An escape subnetwork was requested with zero rings.
    NoEscapeRing,
    /// More escape rings than the `h` edge-disjoint ones that exist.
    TooManyRings {
        /// Requested ring count.
        requested: usize,
        /// Configured `h` (the maximum).
        h: usize,
    },
    /// Multiple embedded rings need an even group size `a` (the Walecki
    /// decomposition used for rings beyond the first requires it).
    OddGroupMultiRing {
        /// Configured group size.
        a: usize,
    },
    /// An embedded escape ring needs at least two local VCs under the
    /// deadlock-avoidance ladder.
    EmbeddedRingTooFewVcs {
        /// Configured `vcs_local`.
        vcs_local: usize,
    },
    /// `ber` outside `[0, 1)` — a per-phit error probability of 1 or more
    /// can never deliver anything. (No payload: the offending `f64` would
    /// cost this enum its `Eq`.)
    BerOutOfRange,
    /// `llr_window` outside `1..=64` (the receiver tracks acceptance in a
    /// 64-bit selective-repeat bitmap).
    LlrWindowOutOfRange {
        /// Configured window, in packets.
        window: usize,
    },
    /// `llr_retry_budget == 0`: the link would escalate to fail-stop on
    /// its first wire error.
    ZeroLlrRetryBudget,
    /// `llr_timeout_slack == 0`: a retransmit timeout of exactly one
    /// round trip fires before the ack can possibly arrive, guaranteeing
    /// spurious retransmissions.
    ZeroLlrTimeoutSlack,
    /// `cm_target_occupancy` outside `(0, 1]` — the congestion sensor
    /// compares an occupancy *fraction* against it, so a target of 0
    /// throttles forever and a target above 1 never engages. (No
    /// payload: the offending `f64` would cost this enum its `Eq`.)
    CmTargetOutOfRange,
    /// `cm_hysteresis` outside `[0, cm_target_occupancy)` — the release
    /// threshold `target − hysteresis` must stay positive or a throttled
    /// NIC can never recover full rate.
    CmHysteresisOutOfRange,
    /// `cm_min_rate` outside `(0, 1]` — a floor of 0 would let the
    /// throttle block injection outright (starvation), and a floor above
    /// 1 is not a floor.
    CmMinRateOutOfRange,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::ZeroPacketSize => write!(f, "packet_size must be positive"),
            Self::BufferTooSmall { name, cap, packet } => write!(
                f,
                "{name} ({cap} phits) cannot hold one {packet}-phit packet \
                 (VCT needs whole-packet buffers)"
            ),
            Self::RingBufferNoBubble { cap } => write!(
                f,
                "buf_ring ({cap} phits) must hold two packets for the bubble condition"
            ),
            Self::NoVcs => write!(f, "every link class needs at least one VC"),
            Self::ZeroAllocIters => write!(f, "allocator needs at least one iteration"),
            Self::RadixTooSmall { h } => {
                write!(
                    f,
                    "h = {h} is below the minimum of 2 (degenerate Dragonfly)"
                )
            }
            Self::NoEscapeRing => write!(f, "an escape subnetwork needs at least one ring"),
            Self::TooManyRings { requested, h } => write!(
                f,
                "at most h = {h} edge-disjoint escape rings exist (requested {requested})"
            ),
            Self::OddGroupMultiRing { a } => write!(
                f,
                "multiple embedded rings need an even group size (a = {a} is odd)"
            ),
            Self::EmbeddedRingTooFewVcs { vcs_local } => write!(
                f,
                "an embedded escape ring needs vcs_local >= 2 (got {vcs_local})"
            ),
            Self::BerOutOfRange => write!(f, "ber must lie in [0, 1)"),
            Self::LlrWindowOutOfRange { window } => write!(
                f,
                "llr_window ({window}) must lie in 1..=64 (selective-repeat bitmap width)"
            ),
            Self::ZeroLlrRetryBudget => {
                write!(
                    f,
                    "llr_retry_budget must be positive (0 escalates on first error)"
                )
            }
            Self::ZeroLlrTimeoutSlack => write!(
                f,
                "llr_timeout_slack must be positive (a bare round-trip timeout is always spurious)"
            ),
            Self::CmTargetOutOfRange => {
                write!(f, "cm_target_occupancy must lie in (0, 1]")
            }
            Self::CmHysteresisOutOfRange => write!(
                f,
                "cm_hysteresis must lie in [0, cm_target_occupancy) so the \
                 release threshold stays positive"
            ),
            Self::CmMinRateOutOfRange => write!(
                f,
                "cm_min_rate must lie in (0, 1] (a zero floor starves injection)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// How the escape subnetwork is realized (§IV-C, §VII).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum RingMode {
    /// No escape ring. Only safe for routings that are deadlock-free by
    /// VC ordering (MIN, VAL, PB, PAR).
    #[default]
    None,
    /// A dedicated physical ring: two extra ports per router and one
    /// extra (uni-directional pair) wire per router.
    Physical,
    /// The ring embedded on the base topology: one extra *escape* virtual
    /// channel on each link that belongs to the Hamiltonian cycle.
    Embedded,
}

/// Full simulator configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Topology sizing.
    pub params: DragonflyParams,
    /// Packet size in phits (paper: 8).
    pub packet_size: usize,
    /// Virtual channels per local-link input (paper: 3).
    pub vcs_local: usize,
    /// Virtual channels per global-link input (paper: 2).
    pub vcs_global: usize,
    /// Virtual channels per injection queue (paper: 3).
    pub vcs_injection: usize,
    /// Virtual channels on the physical ring ports (paper: same as local,
    /// "for regularity").
    pub vcs_ring: usize,
    /// Capacity of each local-link VC FIFO, in phits (paper: 32).
    pub buf_local: usize,
    /// Capacity of each global-link VC FIFO, in phits (paper: 256).
    pub buf_global: usize,
    /// Capacity of each injection VC FIFO, in phits.
    pub buf_injection: usize,
    /// Capacity of each ring VC FIFO, in phits (physical and embedded).
    pub buf_ring: usize,
    /// Local link latency in cycles (paper: 10).
    pub lat_local: u64,
    /// Global link latency in cycles (paper: 100).
    pub lat_global: u64,
    /// Iterations of the separable batch allocator (paper: 3).
    pub alloc_iters: usize,
    /// Escape subnetwork model.
    pub ring: RingMode,
    /// Maximum number of times a packet may abandon the escape ring
    /// (livelock bound, §IV-C). Ejection never counts.
    pub max_ring_exits: u8,
    /// Number of escape rings to embed/attach (§VII fault-tolerance
    /// extension; up to `h` pairwise edge-disjoint rings exist).
    pub escape_rings: usize,
    /// RNG seed (packet destinations are chosen by the traffic layer; the
    /// engine RNG covers allocator and misroute tie-breaking).
    pub seed: u64,
    /// Per-phit Bernoulli bit-error rate of every network link, in
    /// `[0, 1)`. Nonzero enables the link-level retransmission layer;
    /// per-link overrides via [`crate::fault::FaultKind::SetLinkBer`].
    pub ber: f64,
    /// Sender replay-buffer depth per link, in packets (`1..=64`; the
    /// receiver tracks acceptance in a 64-bit selective-repeat bitmap).
    pub llr_window: usize,
    /// Extra cycles beyond one round trip before a retransmit timeout
    /// fires. Must exceed ack turnaround jitter (one allocator pass) or
    /// every timeout is spurious and produces duplicate transmissions.
    pub llr_timeout_slack: u64,
    /// Backoff cap: the timeout doubles per retry up to a factor of
    /// `2^llr_backoff_cap`.
    pub llr_backoff_cap: u32,
    /// Retries allowed per packet before the link is declared
    /// persistently failing and escalated to the §VII fail-stop path.
    pub llr_retry_budget: u32,
    /// Enable the congestion-management layer: per-NIC token-bucket
    /// injection throttling driven by per-router occupancy sensing, plus
    /// escape-ring admission protection in OFAR. Throttling only delays
    /// `on_inject`; packets already in flight are never slowed, so CDG
    /// certification and conformance envelopes are unchanged.
    pub cm_enabled: bool,
    /// Sensed-occupancy fraction at which a router's NICs throttle to
    /// `cm_min_rate`, in `(0, 1]`.
    pub cm_target_occupancy: f64,
    /// Hysteresis band: a throttled router returns to full rate only
    /// once sensed occupancy falls below `cm_target_occupancy −
    /// cm_hysteresis`. Must lie in `[0, cm_target_occupancy)`.
    pub cm_hysteresis: f64,
    /// Throttled injection rate floor as a fraction of full rate, in
    /// `(0, 1]`. Strictly positive so the throttle can never block
    /// injection outright.
    pub cm_min_rate: f64,
}

impl SimConfig {
    /// The paper's §V configuration for a balanced maximum-size Dragonfly
    /// with the given `h` (the paper evaluates `h = 6`).
    pub fn paper(h: usize) -> Self {
        Self {
            params: DragonflyParams::balanced(h),
            packet_size: 8,
            vcs_local: 3,
            vcs_global: 2,
            vcs_injection: 3,
            vcs_ring: 3,
            buf_local: 32,
            buf_global: 256,
            buf_injection: 32,
            buf_ring: 32,
            lat_local: 10,
            lat_global: 100,
            alloc_iters: 3,
            ring: RingMode::None,
            max_ring_exits: 4,
            escape_rings: 1,
            seed: 0xD5A6_0F17,
            ber: 0.0,
            llr_window: 8,
            llr_timeout_slack: 64,
            llr_backoff_cap: 6,
            llr_retry_budget: 16,
            cm_enabled: false,
            cm_target_occupancy: 0.55,
            cm_hysteresis: 0.15,
            cm_min_rate: 0.1,
        }
    }

    /// The reduced-resource configuration of Fig. 9: 2 VCs on local links
    /// and 1 on global links, embedded ring.
    pub fn reduced_vcs(h: usize) -> Self {
        Self {
            vcs_local: 2,
            vcs_global: 1,
            vcs_injection: 2,
            ring: RingMode::Embedded,
            ..Self::paper(h)
        }
    }

    /// Override the escape ring model.
    pub fn with_ring(mut self, ring: RingMode) -> Self {
        self.ring = ring;
        self
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the per-phit bit-error rate (nonzero enables LLR).
    pub fn with_ber(mut self, ber: f64) -> Self {
        self.ber = ber;
        self
    }

    /// Enable the congestion-management layer with the default tuning
    /// (target occupancy 0.55, hysteresis 0.15, rate floor 0.1).
    pub fn with_cm(mut self) -> Self {
        self.cm_enabled = true;
        self
    }

    /// Packet capacity (in whole packets) of a buffer of `phits` phits.
    #[inline]
    pub fn packets_in(&self, phits: usize) -> usize {
        phits / self.packet_size
    }

    /// Validate invariants the engine depends on.
    ///
    /// # Errors
    /// Returns the first violated constraint as a typed [`ConfigError`]
    /// (its `Display` impl yields a human-readable description).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.packet_size == 0 {
            return Err(ConfigError::ZeroPacketSize);
        }
        if self.params.h < 2 {
            return Err(ConfigError::RadixTooSmall { h: self.params.h });
        }
        for (name, cap) in [
            ("buf_local", self.buf_local),
            ("buf_global", self.buf_global),
            ("buf_injection", self.buf_injection),
        ] {
            if cap < self.packet_size {
                return Err(ConfigError::BufferTooSmall {
                    name,
                    cap,
                    packet: self.packet_size,
                });
            }
        }
        if self.ring != RingMode::None && self.buf_ring < 2 * self.packet_size {
            return Err(ConfigError::RingBufferNoBubble { cap: self.buf_ring });
        }
        if self.vcs_local == 0 || self.vcs_global == 0 || self.vcs_injection == 0 {
            return Err(ConfigError::NoVcs);
        }
        if self.ring == RingMode::Physical && self.vcs_ring == 0 {
            return Err(ConfigError::NoVcs);
        }
        if self.alloc_iters == 0 {
            return Err(ConfigError::ZeroAllocIters);
        }
        if self.ring != RingMode::None {
            if self.escape_rings == 0 {
                return Err(ConfigError::NoEscapeRing);
            }
            if self.escape_rings > self.params.h {
                return Err(ConfigError::TooManyRings {
                    requested: self.escape_rings,
                    h: self.params.h,
                });
            }
            if self.escape_rings > 1 && self.params.a % 2 == 1 {
                return Err(ConfigError::OddGroupMultiRing { a: self.params.a });
            }
            if self.ring == RingMode::Embedded && self.vcs_local < 2 {
                return Err(ConfigError::EmbeddedRingTooFewVcs {
                    vcs_local: self.vcs_local,
                });
            }
        }
        if !(0.0..1.0).contains(&self.ber) {
            return Err(ConfigError::BerOutOfRange);
        }
        if self.llr_window == 0 || self.llr_window > 64 {
            return Err(ConfigError::LlrWindowOutOfRange {
                window: self.llr_window,
            });
        }
        if self.llr_retry_budget == 0 {
            return Err(ConfigError::ZeroLlrRetryBudget);
        }
        if self.llr_timeout_slack == 0 {
            return Err(ConfigError::ZeroLlrTimeoutSlack);
        }
        if !(self.cm_target_occupancy > 0.0 && self.cm_target_occupancy <= 1.0) {
            return Err(ConfigError::CmTargetOutOfRange);
        }
        if !(self.cm_hysteresis >= 0.0 && self.cm_hysteresis < self.cm_target_occupancy) {
            return Err(ConfigError::CmHysteresisOutOfRange);
        }
        if !(self.cm_min_rate > 0.0 && self.cm_min_rate <= 1.0) {
            return Err(ConfigError::CmMinRateOutOfRange);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_methodology() {
        let c = SimConfig::paper(6);
        assert_eq!(c.packet_size, 8);
        assert_eq!((c.vcs_local, c.vcs_global, c.vcs_injection), (3, 2, 3));
        assert_eq!((c.buf_local, c.buf_global), (32, 256));
        assert_eq!((c.lat_local, c.lat_global), (10, 100));
        assert_eq!(c.alloc_iters, 3);
        assert_eq!(c.params.nodes(), 5256);
        c.validate().unwrap();
    }

    #[test]
    fn reduced_vc_config_matches_fig9() {
        let c = SimConfig::reduced_vcs(4);
        assert_eq!((c.vcs_local, c.vcs_global), (2, 1));
        assert_eq!(c.ring, RingMode::Embedded);
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_sub_packet_buffers() {
        let mut c = SimConfig::paper(2);
        c.buf_local = 4;
        let err = c.validate().unwrap_err();
        assert_eq!(
            err,
            ConfigError::BufferTooSmall {
                name: "buf_local",
                cap: 4,
                packet: 8
            }
        );
        assert!(err.to_string().contains("buf_local"));
    }

    #[test]
    fn validation_rejects_bubble_less_ring_buffers() {
        let mut c = SimConfig::paper(2).with_ring(RingMode::Embedded);
        c.buf_ring = 8;
        let err = c.validate().unwrap_err();
        assert_eq!(err, ConfigError::RingBufferNoBubble { cap: 8 });
        assert!(err.to_string().contains("bubble"));
    }

    #[test]
    fn validation_rejects_degenerate_radix() {
        let mut c = SimConfig::paper(2);
        c.params = DragonflyParams::balanced(1);
        assert_eq!(
            c.validate().unwrap_err(),
            ConfigError::RadixTooSmall { h: 1 }
        );
    }

    #[test]
    fn validation_rejects_zero_vcs_and_ring_excess() {
        let mut c = SimConfig::paper(2);
        c.vcs_global = 0;
        assert_eq!(c.validate().unwrap_err(), ConfigError::NoVcs);

        let mut c = SimConfig::paper(2).with_ring(RingMode::Embedded);
        c.escape_rings = 5;
        assert_eq!(
            c.validate().unwrap_err(),
            ConfigError::TooManyRings { requested: 5, h: 2 }
        );
    }

    #[test]
    fn validation_rejects_bad_llr_parameters() {
        let mut c = SimConfig::paper(2);
        c.ber = 1.0;
        assert_eq!(c.validate().unwrap_err(), ConfigError::BerOutOfRange);
        c.ber = -0.1;
        assert_eq!(c.validate().unwrap_err(), ConfigError::BerOutOfRange);
        c.ber = 0.1;
        c.validate().unwrap();

        c.llr_window = 0;
        assert_eq!(
            c.validate().unwrap_err(),
            ConfigError::LlrWindowOutOfRange { window: 0 }
        );
        c.llr_window = 65;
        assert_eq!(
            c.validate().unwrap_err(),
            ConfigError::LlrWindowOutOfRange { window: 65 }
        );
        c.llr_window = 64;
        c.validate().unwrap();

        c.llr_retry_budget = 0;
        assert_eq!(c.validate().unwrap_err(), ConfigError::ZeroLlrRetryBudget);
        c.llr_retry_budget = 1;
        c.llr_timeout_slack = 0;
        assert_eq!(c.validate().unwrap_err(), ConfigError::ZeroLlrTimeoutSlack);
    }

    #[test]
    fn validation_rejects_bad_cm_parameters() {
        let mut c = SimConfig::paper(2).with_cm();
        assert!(c.cm_enabled);
        c.validate().unwrap();

        c.cm_target_occupancy = 0.0;
        assert_eq!(c.validate().unwrap_err(), ConfigError::CmTargetOutOfRange);
        c.cm_target_occupancy = 1.5;
        assert_eq!(c.validate().unwrap_err(), ConfigError::CmTargetOutOfRange);
        c.cm_target_occupancy = f64::NAN;
        assert_eq!(c.validate().unwrap_err(), ConfigError::CmTargetOutOfRange);
        c.cm_target_occupancy = 1.0;
        c.validate().unwrap();

        c.cm_hysteresis = -0.1;
        assert_eq!(
            c.validate().unwrap_err(),
            ConfigError::CmHysteresisOutOfRange
        );
        c.cm_hysteresis = 1.0; // == target: release threshold hits zero
        assert_eq!(
            c.validate().unwrap_err(),
            ConfigError::CmHysteresisOutOfRange
        );
        c.cm_hysteresis = 0.0;
        c.validate().unwrap();

        c.cm_min_rate = 0.0;
        assert_eq!(c.validate().unwrap_err(), ConfigError::CmMinRateOutOfRange);
        c.cm_min_rate = 1.1;
        assert_eq!(c.validate().unwrap_err(), ConfigError::CmMinRateOutOfRange);
        c.cm_min_rate = 1.0;
        c.validate().unwrap();
    }

    #[test]
    fn cm_bounds_hold_even_when_disabled() {
        // The snapshot codec round-trips the cm fields regardless of
        // cm_enabled, so validate() polices them unconditionally.
        let mut c = SimConfig::paper(2);
        assert!(!c.cm_enabled);
        c.cm_min_rate = 0.0;
        assert_eq!(c.validate().unwrap_err(), ConfigError::CmMinRateOutOfRange);
    }

    #[test]
    fn validation_rejects_embedded_ring_with_single_local_vc() {
        let mut c = SimConfig::paper(2).with_ring(RingMode::Embedded);
        c.vcs_local = 1;
        assert_eq!(
            c.validate().unwrap_err(),
            ConfigError::EmbeddedRingTooFewVcs { vcs_local: 1 }
        );
    }
}
