//! Release-capable runtime invariant auditing.
//!
//! The engine polices itself with `debug_assert!`s on the hot path —
//! free in release builds, fatal in debug builds. This module promotes
//! those checks (and a set of whole-network conservation laws) into
//! **structured, non-fatal diagnostics** that can run in release builds:
//! instead of aborting, a violated invariant becomes an
//! [`AuditViolation`] in the cycle's [`AuditReport`], so a long fault
//! campaign can finish and report *every* anomaly with its router, port,
//! VC and cycle.
//!
//! The types here are always compiled (they appear in public result
//! structs); the hooks inside [`crate::network::Network`] only exist
//! under the `audit` cargo feature, and even then auditing is off until
//! `Network::enable_audit` is called. Two tiers keep
//! the cost low:
//!
//! * **fast checks** mirror the local `debug_assert!`s (credit overflow,
//!   ring-membership transitions, dead-port grants, injection VC range)
//!   and run on the events themselves;
//! * **deep checks** walk the whole network (phit conservation, credit
//!   conservation, occupancy ≤ capacity, escape-ring bubble) every
//!   `deep_interval` cycles.

use std::fmt;

/// One violated invariant, with everything needed to localize it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditViolation {
    /// A returning credit pushed a sender counter above the downstream
    /// buffer capacity (the release form of `network.rs`'s
    /// "credit overflow" debug assert).
    CreditOverflow {
        /// Cycle of the credit landing.
        cycle: u64,
        /// Router owning the output port.
        router: u32,
        /// Output port index.
        port: u16,
        /// Virtual channel.
        vc: u8,
        /// Credit counter after the landing.
        credits: u32,
        /// Downstream capacity in phits.
        capacity: u32,
    },
    /// A packet landed in a VC without room for it (flow control must
    /// have reserved the space — this is the arrival-side mirror of
    /// credit overflow).
    BufferOverflow {
        /// Cycle of the arrival.
        cycle: u64,
        /// Router owning the input port.
        router: u32,
        /// Input port index.
        port: u16,
        /// Virtual channel.
        vc: u8,
        /// Occupancy before the push, in phits.
        occupancy: u32,
        /// Capacity in phits.
        capacity: u32,
    },
    /// A ring transition was granted to a packet in the wrong membership
    /// state (enter while on the ring, advance/exit while off it) — the
    /// release form of the ring-membership debug asserts.
    RingMembership {
        /// Cycle of the grant.
        cycle: u64,
        /// Granting router.
        router: u32,
        /// `"enter"`, `"advance"` or `"exit"`.
        transition: &'static str,
        /// Packet id.
        packet: u64,
        /// Whether the packet carried the on-ring flag.
        on_ring: bool,
    },
    /// A grant targeted an output whose link is currently failed. Dead
    /// ports are filtered when requests are collected, so this firing
    /// means a fault transition raced past the filter.
    DeadPortGrant {
        /// Cycle of the grant.
        cycle: u64,
        /// Granting router.
        router: u32,
        /// Output port index.
        port: u16,
    },
    /// The policy picked an injection VC outside the injection buffer.
    InjectionVcRange {
        /// Cycle of the attempt.
        cycle: u64,
        /// Injecting node.
        node: u32,
        /// Chosen VC.
        vc: usize,
        /// Number of injection VCs that exist.
        vcs: usize,
    },
    /// Phit conservation failed: phits generated ≠ phits delivered +
    /// phits inside the system (source queues, buffers, links).
    PhitImbalance {
        /// Cycle of the deep check.
        cycle: u64,
        /// Phits generated since cycle 0.
        generated: u64,
        /// Phits delivered since cycle 0.
        delivered: u64,
        /// Phits currently inside the system.
        in_system: u64,
    },
    /// Credit conservation failed on a link VC: sender credits +
    /// receiver occupancy + in-flight packets + in-flight credits ≠
    /// capacity (the release form of `check_credit_conservation`).
    CreditLeak {
        /// Cycle of the deep check.
        cycle: u64,
        /// Router owning the output port.
        router: u32,
        /// Output port index.
        port: u16,
        /// Virtual channel.
        vc: u8,
        /// Sum of the four conserved terms.
        sum: u32,
        /// Capacity the sum must equal.
        capacity: u32,
    },
    /// A VC buffer reports more phits than its capacity.
    OccupancyOverCapacity {
        /// Cycle of the deep check.
        cycle: u64,
        /// Router owning the input port.
        router: u32,
        /// Input port index.
        port: u16,
        /// Virtual channel.
        vc: u8,
        /// Occupancy in phits.
        occupancy: u32,
        /// Capacity in phits.
        capacity: u32,
    },
    /// An escape ring has lost its bubble: the free space summed over
    /// the whole ring fell below one packet, so the ring can wedge
    /// (§IV-C requires at least one packet-sized hole at all times).
    BubbleLost {
        /// Cycle of the deep check.
        cycle: u64,
        /// Ring index.
        ring: usize,
        /// Free phits over the whole ring (credits + in-flight credits).
        free_phits: u64,
        /// Minimum free phits the bubble condition requires.
        required: u64,
    },
    /// A ring-entry grant fired without the §IV-C bubble: the entry's
    /// downstream VC held fewer than two packets of credit at grant
    /// time. Eligibility is supposed to demand the two-packet bubble for
    /// every `RingEnter`, so this firing means the admission check was
    /// eroded — the whole-ring [`Self::BubbleLost`] check only notices
    /// once the ring has actually wedged, while this one catches the
    /// first bad admission.
    RingEnterNoBubble {
        /// Cycle of the grant.
        cycle: u64,
        /// Granting router.
        router: u32,
        /// Output port index.
        port: u16,
        /// Virtual channel.
        vc: u8,
        /// Downstream credits at grant time, in phits.
        credits: u32,
        /// Credits the bubble condition requires (two packets).
        required: u32,
    },
    /// A packet was ejected to its node more than once. The link-level
    /// retransmission layer must deduplicate spurious retransmissions at
    /// the receiver, so a second ejection of the same id means the
    /// seq/ack protocol leaked a duplicate end to end.
    DuplicateDelivery {
        /// Cycle of the second ejection.
        cycle: u64,
        /// Ejecting router.
        router: u32,
        /// Packet id delivered twice.
        packet: u64,
    },
    /// A sender replay buffer holds more entries than the configured
    /// window. Grants to an output are supposed to be gated on replay
    /// room, so this means the window check was bypassed.
    ReplayOverflow {
        /// Cycle of the deep check.
        cycle: u64,
        /// Router owning the output port.
        router: u32,
        /// Output port index.
        port: u16,
        /// Entries in the replay buffer.
        occupancy: u32,
        /// Configured window, in packets.
        window: u32,
    },
    /// Token conservation failed in the congestion-management throttle:
    /// units granted to the buckets minus units consumed by injections
    /// must equal the sum of current bucket levels exactly (grants are
    /// cap-clamped at credit time, so the law is an identity, not an
    /// inequality). A firing means some injection bypassed the bucket
    /// debit or some refill escaped the accounting.
    ThrottleTokenLaw {
        /// Cycle of the deep check.
        cycle: u64,
        /// Token units granted since cycle 0 (cap-clamped).
        granted: u64,
        /// Token units consumed by injections since cycle 0.
        consumed: u64,
        /// Sum of all per-NIC bucket levels right now.
        levels: u64,
    },
    /// The congestion sensor's incrementally-maintained free-credit sum
    /// disagrees with a fresh scan of the router's output credits. The
    /// sensor is updated at every credit mutation site; drift means a
    /// credit moved through a path the sensor does not mirror, and every
    /// throttle decision after the divergence point is suspect.
    CmSensorDrift {
        /// Cycle of the deep check.
        cycle: u64,
        /// Router whose sums diverged.
        router: u32,
        /// The incrementally-tracked free-credit sum.
        tracked: u64,
        /// The freshly-scanned free-credit sum.
        actual: u64,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::CreditOverflow {
                cycle,
                router,
                port,
                vc,
                credits,
                capacity,
            } => write!(
                f,
                "cycle {cycle}: credit overflow at R{router} out {port} vc {vc}: \
                 {credits} > capacity {capacity}"
            ),
            Self::BufferOverflow {
                cycle,
                router,
                port,
                vc,
                occupancy,
                capacity,
            } => write!(
                f,
                "cycle {cycle}: buffer overflow at R{router} in {port} vc {vc}: \
                 occupancy {occupancy} has no room below capacity {capacity}"
            ),
            Self::RingMembership {
                cycle,
                router,
                transition,
                packet,
                on_ring,
            } => write!(
                f,
                "cycle {cycle}: ring {transition} granted at R{router} to packet \
                 {packet} with on_ring={on_ring}"
            ),
            Self::DeadPortGrant {
                cycle,
                router,
                port,
            } => write!(f, "cycle {cycle}: grant to dead output {port} at R{router}"),
            Self::InjectionVcRange {
                cycle,
                node,
                vc,
                vcs,
            } => write!(
                f,
                "cycle {cycle}: node {node} picked injection vc {vc} of {vcs}"
            ),
            Self::PhitImbalance {
                cycle,
                generated,
                delivered,
                in_system,
            } => write!(
                f,
                "cycle {cycle}: phit imbalance: generated {generated} != \
                 delivered {delivered} + in-system {in_system}"
            ),
            Self::CreditLeak {
                cycle,
                router,
                port,
                vc,
                sum,
                capacity,
            } => write!(
                f,
                "cycle {cycle}: credit leak at R{router} out {port} vc {vc}: \
                 conserved sum {sum} != capacity {capacity}"
            ),
            Self::OccupancyOverCapacity {
                cycle,
                router,
                port,
                vc,
                occupancy,
                capacity,
            } => write!(
                f,
                "cycle {cycle}: occupancy {occupancy} > capacity {capacity} at \
                 R{router} in {port} vc {vc}"
            ),
            Self::BubbleLost {
                cycle,
                ring,
                free_phits,
                required,
            } => write!(
                f,
                "cycle {cycle}: ring {ring} bubble lost: {free_phits} free phits \
                 < {required} required"
            ),
            Self::RingEnterNoBubble {
                cycle,
                router,
                port,
                vc,
                credits,
                required,
            } => write!(
                f,
                "cycle {cycle}: ring entry granted at R{router} out {port} vc {vc} \
                 with {credits} credits < {required} required (bubble eroded)"
            ),
            Self::DuplicateDelivery {
                cycle,
                router,
                packet,
            } => write!(
                f,
                "cycle {cycle}: packet {packet} delivered twice (second ejection at R{router})"
            ),
            Self::ReplayOverflow {
                cycle,
                router,
                port,
                occupancy,
                window,
            } => write!(
                f,
                "cycle {cycle}: replay buffer at R{router} out {port} holds \
                 {occupancy} entries > window {window}"
            ),
            Self::ThrottleTokenLaw {
                cycle,
                granted,
                consumed,
                levels,
            } => write!(
                f,
                "cycle {cycle}: throttle token law broken: granted {granted} - \
                 consumed {consumed} != bucket levels {levels}"
            ),
            Self::CmSensorDrift {
                cycle,
                router,
                tracked,
                actual,
            } => write!(
                f,
                "cycle {cycle}: congestion sensor drift at R{router}: tracked \
                 free credits {tracked} != scanned {actual}"
            ),
        }
    }
}

/// Cap on stored violations; past it only the count grows. A broken
/// invariant usually fires every cycle — the first few instances locate
/// the bug, the rest would just bloat the report.
const MAX_STORED: usize = 64;

/// The outcome of an audited run: how much was checked and what failed.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Individual invariant checks performed.
    pub checks: u64,
    /// Violations, in detection order (capped; see `dropped`).
    pub violations: Vec<AuditViolation>,
    /// Violations detected beyond the storage cap.
    pub dropped: u64,
}

impl AuditReport {
    /// True when every check passed.
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.dropped == 0
    }

    /// Total violations detected (stored + dropped).
    #[inline]
    pub fn total_violations(&self) -> u64 {
        self.violations.len() as u64 + self.dropped
    }

    fn merge(&mut self, other: AuditReport) {
        self.checks += other.checks;
        self.dropped += other.dropped;
        for v in other.violations {
            if self.violations.len() < MAX_STORED {
                self.violations.push(v);
            } else {
                self.dropped += 1;
            }
        }
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "audit clean ({} checks)", self.checks);
        }
        writeln!(
            f,
            "audit FAILED: {} violation(s) over {} checks",
            self.total_violations(),
            self.checks
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        if self.dropped > 0 {
            writeln!(f, "  … and {} more (not stored)", self.dropped)?;
        }
        Ok(())
    }
}

/// The auditor the network carries when auditing is enabled: accumulates
/// a report and decides when the deep (whole-network) checks run.
#[derive(Clone, Debug)]
pub struct Auditor {
    report: AuditReport,
    /// Deep checks run when `cycle % deep_interval == 0`.
    deep_interval: u64,
}

impl Auditor {
    /// Deep-check cadence balancing coverage against the O(network) walk
    /// (≈0.4% overhead at the default network sizes).
    pub const DEFAULT_DEEP_INTERVAL: u64 = 256;

    /// New auditor with the default deep-check cadence.
    pub fn new() -> Self {
        Self::with_deep_interval(Self::DEFAULT_DEEP_INTERVAL)
    }

    /// New auditor running the whole-network checks every `interval`
    /// cycles (0 disables them; 1 checks every cycle).
    pub fn with_deep_interval(interval: u64) -> Self {
        Self {
            report: AuditReport::default(),
            deep_interval: interval,
        }
    }

    /// Whether the deep checks are due this cycle.
    #[inline]
    pub fn deep_due(&self, cycle: u64) -> bool {
        self.deep_interval != 0 && cycle.is_multiple_of(self.deep_interval)
    }

    /// Count `n` passed-or-failed checks.
    #[inline]
    pub fn count(&mut self, n: u64) {
        self.report.checks += n;
    }

    /// Record a violation (counts as one check).
    pub fn record(&mut self, v: AuditViolation) {
        self.report.checks += 1;
        if self.report.violations.len() < MAX_STORED {
            self.report.violations.push(v);
        } else {
            self.report.dropped += 1;
        }
    }

    /// The report so far.
    #[inline]
    pub fn report(&self) -> &AuditReport {
        &self.report
    }

    /// Take the report, resetting the accumulator.
    pub fn take_report(&mut self) -> AuditReport {
        std::mem::take(&mut self.report)
    }

    /// Fold another report into this one (e.g. from a drained phase).
    pub fn absorb(&mut self, other: AuditReport) {
        self.report.merge(other);
    }
}

impl Default for Auditor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_caps_stored_violations() {
        let mut a = Auditor::new();
        for cycle in 0..(MAX_STORED as u64 + 10) {
            a.record(AuditViolation::DeadPortGrant {
                cycle,
                router: 0,
                port: 0,
            });
        }
        let r = a.take_report();
        assert_eq!(r.violations.len(), MAX_STORED);
        assert_eq!(r.dropped, 10);
        assert_eq!(r.total_violations(), MAX_STORED as u64 + 10);
        assert!(!r.is_clean());
        // taking resets
        assert!(a.report().is_clean());
    }

    #[test]
    fn deep_cadence() {
        let a = Auditor::with_deep_interval(8);
        assert!(a.deep_due(0));
        assert!(!a.deep_due(7));
        assert!(a.deep_due(16));
        assert!(!Auditor::with_deep_interval(0).deep_due(0));
    }

    #[test]
    fn display_formats_locate_the_offender() {
        let v = AuditViolation::CreditOverflow {
            cycle: 42,
            router: 7,
            port: 3,
            vc: 1,
            credits: 40,
            capacity: 32,
        };
        let s = v.to_string();
        assert!(s.contains("cycle 42") && s.contains("R7") && s.contains("vc 1"));
        let mut rep = AuditReport {
            checks: 5,
            ..AuditReport::default()
        };
        assert!(rep.to_string().contains("clean"));
        rep.violations.push(v);
        assert!(rep.to_string().contains("FAILED"));
    }
}
