//! Live fault injection: scheduled and runtime fail-stop failures of
//! links and routers, plus the derived per-port / per-ring liveness the
//! rest of the engine consults.
//!
//! Semantics (the paper's §VII fail-stop model, at packet granularity):
//!
//! * Failing the link between routers `a` and `b` kills **every** port
//!   pair between them, both directions — the canonical local/global
//!   link and any dedicated physical-ring wire riding the same cable.
//! * Failing a router kills all of its incident links. Its nodes keep
//!   their injection queues (traffic sourced there simply cannot leave),
//!   and ejection ports never fail.
//! * In-flight phits and credits on a failing link are *not* dropped:
//!   transfers already started complete (fail-stop at packet
//!   granularity), the allocator just never grants a dead output again.
//!   This keeps phit/credit conservation intact across failures.
//! * An escape ring survives iff every edge and every router along it is
//!   alive; packets never *enter* a dead ring, and packets caught on one
//!   exit through any live canonical port (see the routing crate).

use crate::fabric::{Fabric, PortKind};
use ofar_topology::{Dragonfly, HamiltonianRing, RouterId};
use std::collections::{BTreeMap, BTreeSet};

/// One kind of fault transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the full-duplex link(s) between two adjacent routers.
    FailLink(RouterId, RouterId),
    /// Restore a previously failed link.
    RestoreLink(RouterId, RouterId),
    /// Fail a router (all incident links).
    FailRouter(RouterId),
    /// Restore a previously failed router.
    RestoreRouter(RouterId),
    /// Transient: corrupt the payload of the *next* transfer crossing the
    /// link (either direction) — CRC-detected at the receiver, nacked and
    /// retransmitted by the LLR layer. One-shot; the link stays up.
    CorruptPhit(RouterId, RouterId),
    /// Transient: drop the *next* transfer crossing the link (either
    /// direction) on the wire — recovered by the LLR retransmit timeout.
    /// One-shot; the link stays up.
    DropPhit(RouterId, RouterId),
    /// Set a per-link Bernoulli bit-error-rate override, in parts per
    /// million per phit (`1_000_000` = every phit errors). Overrides
    /// [`crate::config::SimConfig::ber`] for this link until changed;
    /// ppm keeps the variant `Eq`/hashable where an `f64` payload could
    /// not be. `0` removes the override.
    SetLinkBer(RouterId, RouterId, u32),
}

impl FaultKind {
    /// Whether this kind needs the link-level retransmission layer (it
    /// models a wire error rather than a fail-stop transition).
    #[inline]
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            Self::CorruptPhit(..) | Self::DropPhit(..) | Self::SetLinkBer(..)
        )
    }
}

/// A scheduled fault transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the transition takes effect (applied at the top of
    /// `Network::step` for that cycle).
    pub at: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault transitions, consumed in time order
/// by `Network::step`. Build one up-front (seeded), hand it to
/// `Network::set_fault_plan`, and identical seeds reproduce identical
/// degraded runs.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule a link failure at cycle `at`.
    pub fn fail_link_at(mut self, at: u64, a: RouterId, b: RouterId) -> Self {
        self.push(FaultEvent {
            at,
            kind: FaultKind::FailLink(a, b),
        });
        self
    }

    /// Schedule a link restoration at cycle `at`.
    pub fn restore_link_at(mut self, at: u64, a: RouterId, b: RouterId) -> Self {
        self.push(FaultEvent {
            at,
            kind: FaultKind::RestoreLink(a, b),
        });
        self
    }

    /// Schedule a router failure at cycle `at`.
    pub fn fail_router_at(mut self, at: u64, r: RouterId) -> Self {
        self.push(FaultEvent {
            at,
            kind: FaultKind::FailRouter(r),
        });
        self
    }

    /// Schedule a router restoration at cycle `at`.
    pub fn restore_router_at(mut self, at: u64, r: RouterId) -> Self {
        self.push(FaultEvent {
            at,
            kind: FaultKind::RestoreRouter(r),
        });
        self
    }

    /// Schedule a transient link failure: down at `at`, back up at
    /// `at + down_for`.
    pub fn transient_link(self, at: u64, down_for: u64, a: RouterId, b: RouterId) -> Self {
        self.fail_link_at(at, a, b)
            .restore_link_at(at + down_for, a, b)
    }

    /// Schedule a one-shot payload corruption of the next transfer
    /// crossing the `a`–`b` link at or after cycle `at`.
    pub fn corrupt_phit_at(mut self, at: u64, a: RouterId, b: RouterId) -> Self {
        self.push(FaultEvent {
            at,
            kind: FaultKind::CorruptPhit(a, b),
        });
        self
    }

    /// Schedule a one-shot wire drop of the next transfer crossing the
    /// `a`–`b` link at or after cycle `at`.
    pub fn drop_phit_at(mut self, at: u64, a: RouterId, b: RouterId) -> Self {
        self.push(FaultEvent {
            at,
            kind: FaultKind::DropPhit(a, b),
        });
        self
    }

    /// Schedule a per-link BER override (parts per million per phit) on
    /// the `a`–`b` link from cycle `at`. `ppm = 0` clears the override.
    pub fn set_link_ber_at(mut self, at: u64, a: RouterId, b: RouterId, ppm: u32) -> Self {
        self.push(FaultEvent {
            at,
            kind: FaultKind::SetLinkBer(a, b, ppm),
        });
        self
    }

    /// Schedule a flapping link (a failing SerDes): `count` down/up
    /// cycles of the `a`–`b` link, first going down at `first_down`,
    /// staying down `down_for` cycles, repeating every `period` cycles.
    /// Composes with the fail-stop machinery — each flap is a
    /// `FailLink`/`RestoreLink` pair, so degraded routing kicks in while
    /// the link is down and the restore path heals it.
    pub fn flap_link(
        mut self,
        a: RouterId,
        b: RouterId,
        first_down: u64,
        down_for: u64,
        period: u64,
        count: usize,
    ) -> Self {
        assert!(
            down_for < period,
            "flap must come back up within its period"
        );
        for i in 0..count as u64 {
            let at = first_down + i * period;
            self = self.transient_link(at, down_for, a, b);
        }
        self
    }

    /// True when any event models a wire error (needs the LLR layer).
    pub fn has_transient(&self) -> bool {
        self.events.iter().any(|e| e.kind.is_transient())
    }

    /// Schedule `n` distinct random global-link failures at cycle `at`,
    /// chosen deterministically from `seed`.
    pub fn random_global_failures(topo: &Dragonfly, n: usize, at: u64, seed: u64) -> Self {
        let mut plan = Self::new();
        for (a, b) in random_global_links(topo, n, seed) {
            plan = plan.fail_link_at(at, a, b);
        }
        plan
    }

    fn push(&mut self, ev: FaultEvent) {
        self.events.push(ev);
        // Keep time order; stable so same-cycle events apply in insertion
        // order (deterministic).
        self.events.sort_by_key(|e| e.at);
    }

    /// The scheduled events, in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Pick `n` distinct global links (endpoint pairs) uniformly at random
/// from `seed`, deterministically. Panics if the topology has fewer than
/// `n` global links.
pub fn random_global_links(topo: &Dragonfly, n: usize, seed: u64) -> Vec<(RouterId, RouterId)> {
    let all: Vec<(RouterId, RouterId)> = topo.global_links().map(|l| (l.src, l.dst)).collect();
    assert!(
        n <= all.len(),
        "asked for {n} failures, only {} global links",
        all.len()
    );
    // Partial Fisher–Yates with an inline splitmix64 — the engine keeps
    // no RNG dependency, and this must be reproducible from the seed
    // alone.
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut pool = all;
    let mut picked = Vec::with_capacity(n);
    for _ in 0..n {
        let i = (next() % pool.len() as u64) as usize;
        picked.push(pool.swap_remove(i));
    }
    picked
}

/// Current liveness of every output port and escape ring, derived from
/// the set of failed links/routers. Cheap to query per cycle; recomputed
/// in full on each (rare) fault transition.
#[derive(Clone, Debug)]
pub struct FaultState {
    /// `[router × n_out]` output-port liveness.
    out_up: Vec<bool>, // lint:allow(S001, derived per-port liveness; recomputed from the fault sets on restore)
    /// Per-ring liveness.
    ring_up: Vec<bool>, // lint:allow(S001, derived per-ring liveness; recomputed from the fault sets on restore)
    /// Failed links, endpoints in canonical (sorted) order.
    failed_links: BTreeSet<(RouterId, RouterId)>,
    /// Failed routers.
    failed_routers: BTreeSet<RouterId>,
    n_out: usize, // lint:allow(S001, fabric constant; rebuilt from the topology on restore)
    /// Fast path: true when nothing has ever failed (or all is restored).
    /// Transient wire-error state deliberately does NOT clear this — a
    /// lossy link is still *routable*, so the allocator's zero-fault fast
    /// path stays valid.
    healthy: bool, // lint:allow(S001, derived fast-path flag; recomputed on restore)
    /// Pending one-shot payload corruptions, per canonical link pair.
    pending_corrupt: BTreeMap<(RouterId, RouterId), u32>,
    /// Pending one-shot wire drops, per canonical link pair.
    pending_drop: BTreeMap<(RouterId, RouterId), u32>,
    /// Per-link BER overrides in ppm per phit, canonical link pairs.
    link_ber_ppm: BTreeMap<(RouterId, RouterId), u32>,
}

impl FaultState {
    /// All-healthy state for a fabric.
    pub fn new(fab: &Fabric) -> Self {
        let nr = fab.topo().num_routers();
        Self {
            out_up: vec![true; nr * fab.n_out()],
            ring_up: vec![true; fab.rings().len()],
            failed_links: BTreeSet::new(),
            failed_routers: BTreeSet::new(),
            n_out: fab.n_out(),
            healthy: true,
            pending_corrupt: BTreeMap::new(),
            pending_drop: BTreeMap::new(),
            link_ber_ppm: BTreeMap::new(),
        }
    }

    /// True if any fault is currently active. The zero-fault fast path —
    /// routing and allocation skip all per-port checks when this is
    /// false.
    #[inline]
    pub fn any(&self) -> bool {
        !self.healthy
    }

    /// Liveness of output `port` of `router`.
    #[inline]
    pub fn link_up(&self, router: usize, port: usize) -> bool {
        self.healthy || self.out_up[router * self.n_out + port]
    }

    /// Liveness of escape ring `j`.
    #[inline]
    pub fn ring_up(&self, j: usize) -> bool {
        self.healthy || self.ring_up[j]
    }

    /// Liveness of the topology link between adjacent routers `a`/`b`.
    pub fn topo_link_up(&self, a: RouterId, b: RouterId) -> bool {
        self.router_up(a) && self.router_up(b) && !self.failed_links.contains(&canon(a, b))
    }

    /// Liveness of a router.
    #[inline]
    pub fn router_up(&self, r: RouterId) -> bool {
        self.healthy || !self.failed_routers.contains(&r)
    }

    /// Currently failed links (canonical endpoint order, ascending).
    pub fn failed_links(&self) -> impl Iterator<Item = (RouterId, RouterId)> + '_ {
        self.failed_links.iter().copied()
    }

    /// Currently failed routers.
    pub fn failed_routers(&self) -> impl Iterator<Item = RouterId> + '_ {
        self.failed_routers.iter().copied()
    }

    /// Apply one fault transition. Returns true if the fault set changed
    /// (a duplicate failure or redundant restore returns false; transient
    /// one-shots always register and always return false — they do not
    /// alter the fail-stop liveness state).
    pub fn apply(&mut self, kind: FaultKind, fab: &Fabric) -> bool {
        let changed = match kind {
            FaultKind::FailLink(a, b) => self.failed_links.insert(canon(a, b)),
            FaultKind::RestoreLink(a, b) => self.failed_links.remove(&canon(a, b)),
            FaultKind::FailRouter(r) => self.failed_routers.insert(r),
            FaultKind::RestoreRouter(r) => self.failed_routers.remove(&r),
            FaultKind::CorruptPhit(a, b) => {
                *self.pending_corrupt.entry(canon(a, b)).or_insert(0) += 1;
                false
            }
            FaultKind::DropPhit(a, b) => {
                *self.pending_drop.entry(canon(a, b)).or_insert(0) += 1;
                false
            }
            FaultKind::SetLinkBer(a, b, ppm) => {
                if ppm == 0 {
                    self.link_ber_ppm.remove(&canon(a, b));
                } else {
                    self.link_ber_ppm.insert(canon(a, b), ppm);
                }
                false
            }
        };
        if changed {
            self.recompute(fab);
        }
        changed
    }

    /// Effective per-phit error probability of the `a`–`b` link: the
    /// per-link override when one is set, else the global `default_ber`.
    #[inline]
    pub fn link_ber(&self, a: RouterId, b: RouterId, default_ber: f64) -> f64 {
        match self.link_ber_ppm.get(&canon(a, b)) {
            Some(&ppm) => f64::from(ppm) / 1e6,
            None => default_ber,
        }
    }

    /// Consume a pending one-shot wire fault on the `a`–`b` link, if any.
    /// Drops take precedence over corruptions (a lost header phit hides
    /// any payload damage).
    pub fn take_pending(&mut self, a: RouterId, b: RouterId) -> Option<crate::llr::Fate> {
        let key = canon(a, b);
        for (map, fate) in [
            (&mut self.pending_drop, crate::llr::Fate::Drop),
            (&mut self.pending_corrupt, crate::llr::Fate::Corrupt),
        ] {
            if let Some(n) = map.get_mut(&key) {
                *n -= 1;
                if *n == 0 {
                    map.remove(&key);
                }
                return Some(fate);
            }
        }
        None
    }

    /// True when any transient wire-error state is active (pending
    /// one-shots or BER overrides).
    pub fn any_transient(&self) -> bool {
        !self.pending_corrupt.is_empty()
            || !self.pending_drop.is_empty()
            || !self.link_ber_ppm.is_empty()
    }

    /// Rebuild the derived per-port and per-ring liveness from the fault
    /// sets.
    fn recompute(&mut self, fab: &Fabric) {
        self.healthy = self.failed_links.is_empty() && self.failed_routers.is_empty();
        let nr = fab.topo().num_routers();
        for r in 0..nr {
            let rid = RouterId::from(r);
            for port in 0..self.n_out {
                let link = fab.out_link(rid, port);
                let up = match link.kind {
                    // Ejection never fails; a dead router's nodes just
                    // cannot inject (no grants at a dead router's
                    // outputs would still allow ejection, but traffic
                    // cannot reach it anyway).
                    PortKind::Node => true,
                    _ => self.topo_link_up(rid, RouterId::new(link.dst_router)),
                };
                self.out_up[r * self.n_out + port] = up;
            }
        }
        let topo = fab.topo();
        for (j, ring) in fab.rings().iter().enumerate() {
            self.ring_up[j] = ring_alive(topo, ring, self);
        }
    }
}

// ---------------------------------------------------------------------
// Checkpoint codec (see crate::snapshot)
// ---------------------------------------------------------------------

use crate::snapshot::{Dec, Enc, SnapshotError};

/// Decode-time cap on fault-set sizes: generous for any real plan,
/// tight enough to refuse an allocation bomb in a corrupt file.
const SNAP_FAULT_BOUND: usize = 1 << 20;

fn encode_pair(e: &mut Enc, (a, b): (RouterId, RouterId)) {
    e.u32(a.0);
    e.u32(b.0);
}

fn decode_pair(d: &mut Dec<'_>) -> Result<(RouterId, RouterId), SnapshotError> {
    Ok((RouterId::new(d.u32()?), RouterId::new(d.u32()?)))
}

fn encode_kind(e: &mut Enc, kind: FaultKind) {
    match kind {
        FaultKind::FailLink(a, b) => {
            e.u8(0);
            encode_pair(e, (a, b));
        }
        FaultKind::RestoreLink(a, b) => {
            e.u8(1);
            encode_pair(e, (a, b));
        }
        FaultKind::FailRouter(r) => {
            e.u8(2);
            e.u32(r.0);
        }
        FaultKind::RestoreRouter(r) => {
            e.u8(3);
            e.u32(r.0);
        }
        FaultKind::CorruptPhit(a, b) => {
            e.u8(4);
            encode_pair(e, (a, b));
        }
        FaultKind::DropPhit(a, b) => {
            e.u8(5);
            encode_pair(e, (a, b));
        }
        FaultKind::SetLinkBer(a, b, ppm) => {
            e.u8(6);
            encode_pair(e, (a, b));
            e.u32(ppm);
        }
    }
}

fn decode_kind(d: &mut Dec<'_>) -> Result<FaultKind, SnapshotError> {
    Ok(match d.u8()? {
        0 => {
            let (a, b) = decode_pair(d)?;
            FaultKind::FailLink(a, b)
        }
        1 => {
            let (a, b) = decode_pair(d)?;
            FaultKind::RestoreLink(a, b)
        }
        2 => FaultKind::FailRouter(RouterId::new(d.u32()?)),
        3 => FaultKind::RestoreRouter(RouterId::new(d.u32()?)),
        4 => {
            let (a, b) = decode_pair(d)?;
            FaultKind::CorruptPhit(a, b)
        }
        5 => {
            let (a, b) = decode_pair(d)?;
            FaultKind::DropPhit(a, b)
        }
        6 => {
            let (a, b) = decode_pair(d)?;
            let ppm = d.u32()?;
            FaultKind::SetLinkBer(a, b, ppm)
        }
        _ => return Err(SnapshotError::Malformed("unknown fault kind")),
    })
}

impl FaultPlan {
    /// Append the remaining schedule to a checkpoint.
    pub(crate) fn snap_encode(&self, e: &mut Enc) {
        e.usize(self.events.len());
        for ev in &self.events {
            e.u64(ev.at);
            encode_kind(e, ev.kind);
        }
    }

    /// Rebuild a schedule written by [`FaultPlan::snap_encode`].
    pub(crate) fn snap_decode(d: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        let n = d.len(SNAP_FAULT_BOUND, "fault plan size")?;
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            let at = d.u64()?;
            let kind = decode_kind(d)?;
            events.push(FaultEvent { at, kind });
        }
        Ok(Self { events })
    }
}

impl FaultState {
    /// Append the live fault sets to a checkpoint. The derived per-port
    /// and per-ring liveness is *not* written — it is a pure function of
    /// the sets and is recomputed on restore — so the two can never
    /// disagree after a round-trip. The fault sets are ordered
    /// containers, so iteration is already sorted and the byte stream is
    /// deterministic by construction.
    pub(crate) fn snap_encode(&self, e: &mut Enc) {
        e.usize(self.failed_links.len());
        for &l in &self.failed_links {
            encode_pair(e, l);
        }
        e.usize(self.failed_routers.len());
        for r in &self.failed_routers {
            e.u32(r.0);
        }
        for map in [
            &self.pending_corrupt,
            &self.pending_drop,
            &self.link_ber_ppm,
        ] {
            e.usize(map.len());
            for (&k, &v) in map {
                encode_pair(e, k);
                e.u32(v);
            }
        }
    }

    /// Rebuild the fault state written by [`FaultState::snap_encode`],
    /// re-deriving port and ring liveness from the restored sets.
    pub(crate) fn snap_decode(d: &mut Dec<'_>, fab: &Fabric) -> Result<Self, SnapshotError> {
        let mut state = Self::new(fab);
        let n_links = d.len(SNAP_FAULT_BOUND, "failed-link set size")?;
        for _ in 0..n_links {
            state.failed_links.insert(decode_pair(d)?);
        }
        let n_routers = d.len(SNAP_FAULT_BOUND, "failed-router set size")?;
        for _ in 0..n_routers {
            state.failed_routers.insert(RouterId::new(d.u32()?));
        }
        for map_idx in 0..3 {
            let n = d.len(SNAP_FAULT_BOUND, "transient fault map size")?;
            for _ in 0..n {
                let k = decode_pair(d)?;
                let v = d.u32()?;
                match map_idx {
                    0 => state.pending_corrupt.insert(k, v),
                    1 => state.pending_drop.insert(k, v),
                    _ => state.link_ber_ppm.insert(k, v),
                };
            }
        }
        state.recompute(fab);
        Ok(state)
    }
}

fn ring_alive(topo: &Dragonfly, ring: &HamiltonianRing, faults: &FaultState) -> bool {
    ring.edges()
        .iter()
        .all(|e| faults.topo_link_up(e.from(), e.to(topo)))
}

#[inline]
fn canon(a: RouterId, b: RouterId) -> (RouterId, RouterId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn fab() -> Fabric {
        Fabric::new(SimConfig::paper(2))
    }

    #[test]
    fn healthy_state_reports_everything_up() {
        let f = fab();
        let s = FaultState::new(&f);
        assert!(!s.any());
        for port in 0..f.n_out() {
            assert!(s.link_up(0, port));
        }
        assert!(s.ring_up(0));
    }

    #[test]
    fn failing_a_link_kills_both_directions() {
        let f = fab();
        let mut s = FaultState::new(&f);
        let topo = *f.topo();
        let a = RouterId::new(0);
        let b = topo.local_neighbor(a, 0);
        assert!(s.apply(FaultKind::FailLink(a, b), &f));
        assert!(s.any());
        // The out port a→b is dead, and so is b→a.
        let pa = f.local_out(0);
        assert!(!s.link_up(a.idx(), pa));
        let back = topo.local_port_to(b, a);
        assert!(!s.link_up(b.idx(), f.local_out(back)));
        // Duplicate failure is a no-op; restore brings it back.
        assert!(!s.apply(FaultKind::FailLink(b, a), &f));
        assert!(s.apply(FaultKind::RestoreLink(a, b), &f));
        assert!(!s.any());
        assert!(s.link_up(a.idx(), pa));
    }

    #[test]
    fn router_failure_kills_incident_links_but_not_ejection() {
        let f = fab();
        let mut s = FaultState::new(&f);
        let r = RouterId::new(1);
        s.apply(FaultKind::FailRouter(r), &f);
        for port in 0..f.n_out() {
            let up = s.link_up(r.idx(), port);
            match f.out_kind(port) {
                PortKind::Node => assert!(up, "ejection must stay up"),
                _ => assert!(!up, "port {port} must be dead"),
            }
        }
        // Neighbours' links toward r are dead too.
        let topo = *f.topo();
        let n = topo.local_neighbor(r, 0);
        let toward = f.local_out(topo.local_port_to(n, r));
        assert!(!s.link_up(n.idx(), toward));
    }

    #[test]
    fn ring_dies_when_an_edge_fails() {
        let f = Fabric::new(SimConfig::paper(2).with_ring(crate::config::RingMode::Embedded));
        let mut s = FaultState::new(&f);
        let ring = f.ring().expect("paper config embeds a ring");
        let e = ring.edges()[0];
        s.apply(FaultKind::FailLink(e.from(), e.to(f.topo())), &f);
        assert!(!s.ring_up(0));
    }

    #[test]
    fn random_global_links_is_deterministic_and_distinct() {
        let topo = Dragonfly::new(SimConfig::paper(2).params);
        let a = random_global_links(&topo, 5, 42);
        let b = random_global_links(&topo, 5, 42);
        assert_eq!(a, b);
        let mut set: Vec<_> = a.iter().map(|&(x, y)| canon(x, y)).collect();
        set.sort();
        set.dedup();
        assert_eq!(set.len(), 5, "picks must be distinct");
        let c = random_global_links(&topo, 5, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn transient_kinds_do_not_flip_the_healthy_fast_path() {
        let f = fab();
        let mut s = FaultState::new(&f);
        let (a, b) = (
            RouterId::new(0),
            f.topo().local_neighbor(RouterId::new(0), 0),
        );
        assert!(!s.apply(FaultKind::CorruptPhit(a, b), &f));
        assert!(!s.apply(FaultKind::SetLinkBer(a, b, 1000), &f));
        assert!(
            !s.any(),
            "transient faults must keep the fail-stop fast path"
        );
        assert!(s.any_transient());
        assert!(s.link_up(a.idx(), f.local_out(0)));
        assert!(
            (s.link_ber(b, a, 0.0) - 1e-3).abs() < 1e-12,
            "canonical pair, either order"
        );
        assert!((s.link_ber(a, RouterId::new(99), 0.5) - 0.5).abs() < 1e-12);
        assert!(!s.apply(FaultKind::SetLinkBer(a, b, 0), &f));
        assert_eq!(s.link_ber(a, b, 0.25), 0.25, "ppm 0 clears the override");
    }

    #[test]
    fn pending_one_shots_are_consumed_drop_first() {
        let f = fab();
        let mut s = FaultState::new(&f);
        let (a, b) = (
            RouterId::new(0),
            f.topo().local_neighbor(RouterId::new(0), 0),
        );
        s.apply(FaultKind::CorruptPhit(a, b), &f);
        s.apply(FaultKind::DropPhit(b, a), &f);
        assert_eq!(s.take_pending(b, a), Some(crate::llr::Fate::Drop));
        assert_eq!(s.take_pending(a, b), Some(crate::llr::Fate::Corrupt));
        assert_eq!(s.take_pending(a, b), None);
        assert!(!s.any_transient());
    }

    #[test]
    fn flap_link_composes_fail_restore_pairs() {
        let p = FaultPlan::new().flap_link(RouterId::new(0), RouterId::new(1), 100, 20, 50, 3);
        let times: Vec<u64> = p.events().iter().map(|e| e.at).collect();
        assert_eq!(times, vec![100, 120, 150, 170, 200, 220]);
        assert!(matches!(p.events()[0].kind, FaultKind::FailLink(..)));
        assert!(matches!(p.events()[1].kind, FaultKind::RestoreLink(..)));
        assert!(!p.has_transient(), "flaps are fail-stop transitions");
        let q = FaultPlan::new().drop_phit_at(5, RouterId::new(0), RouterId::new(1));
        assert!(q.has_transient());
    }

    #[test]
    fn plan_events_stay_time_ordered() {
        let p = FaultPlan::new()
            .fail_link_at(50, RouterId::new(0), RouterId::new(1))
            .transient_link(10, 15, RouterId::new(2), RouterId::new(3));
        let times: Vec<u64> = p.events().iter().map(|e| e.at).collect();
        assert_eq!(times, vec![10, 25, 50]);
    }
}
