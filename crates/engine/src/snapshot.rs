//! Deterministic checkpoint/restart: a versioned binary codec for the
//! complete live state of a [`crate::network::Network`].
//!
//! ## Why hand-rolled
//!
//! The build is offline (no serde), and the format must be *stable and
//! checkable*: a snapshot written by one run is read back by a different
//! process, possibly after a crash, so every section carries its own
//! CRC-32 (reusing the LLR layer's [`crate::llr::crc32`]) and the whole
//! file is sealed by a trailing checksum. A corrupted, truncated or
//! mismatched file must fail closed with a typed [`SnapshotError`] —
//! never a panic, never a silently wrong resume.
//!
//! ## Layout
//!
//! All integers are little-endian.
//!
//! ```text
//! magic            8 B   b"OFARSNAP"
//! version          u32   SNAPSHOT_VERSION
//! fingerprint      u32   CRC-32 of the CONFIG section payload
//! section*               tag u8, len u32, crc u32, payload
//!   CONFIG (1)           canonical SimConfig + mechanism name
//!   POLICY (2)           opaque mechanism state (Policy::save_state)
//!   STATE  (3)           routers, queues, stats, faults, LLR, RNGs
//! file checksum    u32   CRC-32 of every preceding byte
//! ```
//!
//! The *fingerprint* is the identity of the simulated machine: restoring
//! into a network whose own canonical config/mechanism encoding hashes
//! differently is refused ([`SnapshotError::ConfigMismatch`]) before any
//! state is touched. Because the CONFIG section embeds the full
//! [`SimConfig`] and the mechanism name, a snapshot is also
//! *self-describing*: [`peek_header`] recovers enough to rebuild the
//! network from the file alone (`ofar-sim --replay`).
//!
//! ## Bit-exactness guarantee
//!
//! Restore is exact: running N+M cycles produces the same [`crate::stats::Stats`] and
//! delivery stream as running N cycles, snapshotting, restoring and
//! running M more. Everything with dynamics is captured — VC FIFOs,
//! link/credit pipelines, LLR replay buffers and seq/ack windows, fault
//! state and pending plan events, policy-internal RNGs and tables, and
//! the engine counters. Snapshots are taken at step boundaries, where
//! the per-cycle scratch state of the allocator is empty by construction.

use crate::config::{RingMode, SimConfig};
use crate::llr::crc32;
use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// File magic: the first eight bytes of every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"OFARSNAP";

/// Current format version. Bumped on any layout change; older readers
/// refuse newer files ([`SnapshotError::UnsupportedVersion`]).
///
/// v3: the POLICY section of the RNG-carrying mechanisms encodes a
/// *lane table* (one RNG stream per shard) instead of a single stream —
/// see `ofar-routing`'s `state::put_lanes`.
pub const SNAPSHOT_VERSION: u32 = 3;

/// Section tag: canonical configuration + mechanism name.
pub(crate) const SEC_CONFIG: u8 = 1;
/// Section tag: opaque policy state.
pub(crate) const SEC_POLICY: u8 = 2;
/// Section tag: engine state.
pub(crate) const SEC_STATE: u8 = 3;

/// Why a snapshot could not be written, read or restored. Every failure
/// mode of a foreign byte stream maps here; restore never panics on bad
/// input and never partially applies a bad file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file's format version is not one this build reads.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
    },
    /// The file was written for a different simulated machine: its
    /// config fingerprint does not match the restoring network's.
    ConfigMismatch {
        /// Fingerprint of the restoring network's configuration.
        expected: u32,
        /// Fingerprint recorded in the file.
        found: u32,
    },
    /// The file was written under a different routing mechanism.
    MechanismMismatch {
        /// Mechanism of the restoring network.
        expected: String,
        /// Mechanism recorded in the file.
        found: String,
    },
    /// The file ends before its declared length (or is shorter than the
    /// fixed header).
    Truncated,
    /// The whole-file checksum does not match: the file was corrupted
    /// after (or while) being written.
    FileChecksum,
    /// A section's CRC-32 does not match its payload.
    SectionChecksum {
        /// Tag of the corrupt section.
        tag: u8,
    },
    /// The bytes decode to a structurally impossible state (a length
    /// that disagrees with the configuration, an out-of-range enum tag,
    /// a buffer overflow…). The payload names the first inconsistency.
    Malformed(&'static str),
    /// The policy rejected its saved state.
    Policy(String),
    /// An I/O error while reading or writing a snapshot file.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            Self::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (this build reads {SNAPSHOT_VERSION})"
                )
            }
            Self::ConfigMismatch { expected, found } => write!(
                f,
                "snapshot is for a different configuration \
                 (fingerprint {found:#010x}, this network is {expected:#010x})"
            ),
            Self::MechanismMismatch { expected, found } => write!(
                f,
                "snapshot was taken under mechanism {found}, this network runs {expected}"
            ),
            Self::Truncated => write!(f, "snapshot file is truncated"),
            Self::FileChecksum => write!(f, "snapshot file checksum mismatch (corrupted file)"),
            Self::SectionChecksum { tag } => {
                write!(f, "snapshot section {tag} checksum mismatch")
            }
            Self::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            Self::Policy(why) => write!(f, "policy state rejected: {why}"),
            Self::Io(why) => write!(f, "snapshot I/O error: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        // lint:allow(H001, error conversion; runs once per failed restore, never on the cycle path)
        Self::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------
// Primitive encoder/decoder
// ---------------------------------------------------------------------

/// Little-endian byte sink used by every section encoder.
#[derive(Default)]
pub(crate) struct Enc {
    pub(crate) buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// `usize` travels as `u64` so the format is width-independent.
    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    /// `f64` travels as its IEEE-754 bit pattern (bit-exact round-trip).
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
    pub(crate) fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.bytes(v.as_bytes());
    }
}

/// Bounds-checked little-endian reader; every read can fail with
/// [`SnapshotError::Truncated`] instead of panicking.
pub(crate) struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Bytes consumed so far (offset labelling in snapshot diffs).
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.data.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        // lint:allow(P001, slice length fixed by take of 8 bytes; try_into is infallible)
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub(crate) fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Malformed("usize overflow"))
    }
    pub(crate) fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }
    pub(crate) fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| SnapshotError::Malformed("non-UTF-8 string"))
    }

    /// Read a length prefix and sanity-bound it: decoding must not
    /// allocate unbounded memory on a hostile length field.
    pub(crate) fn len(&mut self, bound: usize, what: &'static str) -> Result<usize, SnapshotError> {
        let n = self.usize()?;
        if n > bound {
            return Err(SnapshotError::Malformed(what));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------
// Packet codec (shared by the router, queue and LLR sections)
// ---------------------------------------------------------------------

/// Append the full wire image of one packet header.
pub(crate) fn encode_packet(e: &mut Enc, p: &crate::packet::Packet) {
    e.u64(p.id);
    e.u64(p.injected_at);
    e.u32(p.src.0);
    e.u32(p.dst.0);
    match p.intermediate {
        None => e.u8(0),
        Some(g) => {
            e.u8(1);
            e.u32(g.0);
        }
    }
    e.u8(p.flags);
    e.u8(p.ring_exits_left);
    e.u8(p.local_hops);
    e.u8(p.global_hops);
    e.u8(p.ring_hops);
    e.u8(p.wait);
    e.u32(p.cur_group.0);
}

/// Decode one packet header written by [`encode_packet`].
pub(crate) fn decode_packet(d: &mut Dec<'_>) -> Result<crate::packet::Packet, SnapshotError> {
    let id = d.u64()?;
    let injected_at = d.u64()?;
    let src = ofar_topology::NodeId::new(d.u32()?);
    let dst = ofar_topology::NodeId::new(d.u32()?);
    let intermediate = match d.u8()? {
        0 => None,
        1 => Some(ofar_topology::GroupId::new(d.u32()?)),
        _ => return Err(SnapshotError::Malformed("bad Option tag in packet")),
    };
    Ok(crate::packet::Packet {
        id,
        injected_at,
        src,
        dst,
        intermediate,
        flags: d.u8()?,
        ring_exits_left: d.u8()?,
        local_hops: d.u8()?,
        global_hops: d.u8()?,
        ring_hops: d.u8()?,
        wait: d.u8()?,
        cur_group: ofar_topology::GroupId::new(d.u32()?),
    })
}

// ---------------------------------------------------------------------
// Canonical configuration encoding (the machine identity)
// ---------------------------------------------------------------------

/// Canonical byte encoding of a configuration + mechanism name. The
/// CRC-32 of these bytes is the snapshot's *config fingerprint*.
pub(crate) fn encode_config(cfg: &SimConfig, mechanism: &str) -> Vec<u8> {
    let mut e = Enc::default();
    e.usize(cfg.params.p);
    e.usize(cfg.params.a);
    e.usize(cfg.params.h);
    e.usize(cfg.packet_size);
    e.usize(cfg.vcs_local);
    e.usize(cfg.vcs_global);
    e.usize(cfg.vcs_injection);
    e.usize(cfg.vcs_ring);
    e.usize(cfg.buf_local);
    e.usize(cfg.buf_global);
    e.usize(cfg.buf_injection);
    e.usize(cfg.buf_ring);
    e.u64(cfg.lat_local);
    e.u64(cfg.lat_global);
    e.usize(cfg.alloc_iters);
    e.u8(match cfg.ring {
        RingMode::None => 0,
        RingMode::Physical => 1,
        RingMode::Embedded => 2,
    });
    e.u8(cfg.max_ring_exits);
    e.usize(cfg.escape_rings);
    e.u64(cfg.seed);
    e.f64(cfg.ber);
    e.usize(cfg.llr_window);
    e.u64(cfg.llr_timeout_slack);
    e.u32(cfg.llr_backoff_cap);
    e.u32(cfg.llr_retry_budget);
    e.u8(u8::from(cfg.cm_enabled));
    e.f64(cfg.cm_target_occupancy);
    e.f64(cfg.cm_hysteresis);
    e.f64(cfg.cm_min_rate);
    e.str(mechanism);
    e.buf
}

/// Decode the CONFIG section back into a configuration + mechanism name.
pub(crate) fn decode_config(data: &[u8]) -> Result<(SimConfig, String), SnapshotError> {
    let mut d = Dec::new(data);
    let params = ofar_topology::DragonflyParams {
        p: d.usize()?,
        a: d.usize()?,
        h: d.usize()?,
    };
    let cfg = SimConfig {
        params,
        packet_size: d.usize()?,
        vcs_local: d.usize()?,
        vcs_global: d.usize()?,
        vcs_injection: d.usize()?,
        vcs_ring: d.usize()?,
        buf_local: d.usize()?,
        buf_global: d.usize()?,
        buf_injection: d.usize()?,
        buf_ring: d.usize()?,
        lat_local: d.u64()?,
        lat_global: d.u64()?,
        alloc_iters: d.usize()?,
        ring: match d.u8()? {
            0 => RingMode::None,
            1 => RingMode::Physical,
            2 => RingMode::Embedded,
            _ => return Err(SnapshotError::Malformed("unknown ring mode")),
        },
        max_ring_exits: d.u8()?,
        escape_rings: d.usize()?,
        seed: d.u64()?,
        ber: d.f64()?,
        llr_window: d.usize()?,
        llr_timeout_slack: d.u64()?,
        llr_backoff_cap: d.u32()?,
        llr_retry_budget: d.u32()?,
        cm_enabled: match d.u8()? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Malformed("unknown cm_enabled flag")),
        },
        cm_target_occupancy: d.f64()?,
        cm_hysteresis: d.f64()?,
        cm_min_rate: d.f64()?,
    };
    let mech = d.str()?;
    if !d.is_empty() {
        return Err(SnapshotError::Malformed("trailing bytes in CONFIG"));
    }
    cfg.validate()
        .map_err(|_| SnapshotError::Malformed("embedded configuration fails validation"))?;
    Ok((cfg, mech))
}

/// Config fingerprint: CRC-32 of the canonical configuration encoding.
pub fn config_fingerprint(cfg: &SimConfig, mechanism: &str) -> u32 {
    crc32(&encode_config(cfg, mechanism))
}

// ---------------------------------------------------------------------
// File framing
// ---------------------------------------------------------------------

/// Assemble a complete snapshot file from its three section payloads.
pub(crate) fn frame(config: &[u8], policy: &[u8], state: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + config.len() + policy.len() + state.len() + 32);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&crc32(config).to_le_bytes());
    for (tag, payload) in [
        (SEC_CONFIG, config),
        (SEC_POLICY, policy),
        (SEC_STATE, state),
    ] {
        out.push(tag);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
    }
    let file_crc = crc32(&out);
    out.extend_from_slice(&file_crc.to_le_bytes());
    out
}

/// The parsed frame of a validated snapshot: section payload slices.
#[derive(Debug)]
pub(crate) struct Frame<'a> {
    pub(crate) fingerprint: u32,
    pub(crate) config: &'a [u8],
    pub(crate) policy: &'a [u8],
    pub(crate) state: &'a [u8],
}

/// Validate the envelope (magic, version, per-section and whole-file
/// checksums) and split it into its sections. The state bytes are
/// untrusted until the caller decodes them, but they are at least the
/// bytes that were written.
pub(crate) fn parse_frame(bytes: &[u8]) -> Result<Frame<'_>, SnapshotError> {
    // Fixed header (16) + three empty sections (3 × 9) + trailer (4).
    if bytes.len() < 16 + 3 * 9 + 4 {
        return Err(SnapshotError::Truncated);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().unwrap());
    if crc32(body) != stored {
        // Distinguish "does not even look like a snapshot" for nicer
        // operator errors: magic is checked on the raw prefix first.
        if body[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        return Err(SnapshotError::FileChecksum);
    }
    if body[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(body[8..12].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let fingerprint = u32::from_le_bytes(body[12..16].try_into().unwrap());
    let mut sections: [Option<&[u8]>; 3] = [None, None, None];
    let mut pos = 16;
    while pos < body.len() {
        if pos + 9 > body.len() {
            return Err(SnapshotError::Truncated);
        }
        let tag = body[pos];
        let len = u32::from_le_bytes(body[pos + 1..pos + 5].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(body[pos + 5..pos + 9].try_into().unwrap());
        pos += 9;
        let end = pos.checked_add(len).ok_or(SnapshotError::Truncated)?;
        if end > body.len() {
            return Err(SnapshotError::Truncated);
        }
        let payload = &body[pos..end];
        if crc32(payload) != crc {
            return Err(SnapshotError::SectionChecksum { tag });
        }
        match tag {
            SEC_CONFIG => sections[0] = Some(payload),
            SEC_POLICY => sections[1] = Some(payload),
            SEC_STATE => sections[2] = Some(payload),
            _ => return Err(SnapshotError::Malformed("unknown section tag")),
        }
        pos = end;
    }
    match sections {
        [Some(config), Some(policy), Some(state)] => Ok(Frame {
            fingerprint,
            config,
            policy,
            state,
        }),
        _ => Err(SnapshotError::Malformed("missing section")),
    }
}

// ---------------------------------------------------------------------
// Snapshot diffing (commutativity certification)
// ---------------------------------------------------------------------

/// The first divergence between two snapshot files, named at section
/// granularity. `ofar-race` refines STATE divergences to a field path
/// via `Network::locate_state_field`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SectionDiff {
    /// Which section diverges first: `"config"`, `"policy"` or
    /// `"state"` (sections are compared in file order).
    pub section: &'static str,
    /// Byte offset of the first differing byte within that section's
    /// payload. When the payloads differ only in length, the offset is
    /// the shorter length.
    pub offset: usize,
    /// Payload lengths `(a, b)` of the diverging section.
    pub lens: (usize, usize),
}

impl fmt::Display for SectionDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} section diverges at byte {} (lens {} vs {})",
            self.section, self.offset, self.lens.0, self.lens.1
        )
    }
}

/// First differing byte offset of two slices, if any (length mismatch
/// with a common prefix reports the shorter length).
fn first_mismatch(a: &[u8], b: &[u8]) -> Option<usize> {
    let n = a.len().min(b.len());
    match a[..n].iter().zip(&b[..n]).position(|(x, y)| x != y) {
        Some(i) => Some(i),
        None if a.len() != b.len() => Some(n),
        None => None,
    }
}

/// Compare two snapshot files section by section and name the first
/// divergent section. `Ok(None)` means byte-identical payloads (the
/// commutativity certificate's pass condition). Either file failing to
/// parse is an error, not a diff.
pub fn diff_snapshots(a: &[u8], b: &[u8]) -> Result<Option<SectionDiff>, SnapshotError> {
    let fa = parse_frame(a)?;
    let fb = parse_frame(b)?;
    for (section, pa, pb) in [
        ("config", fa.config, fb.config),
        ("policy", fa.policy, fb.policy),
        ("state", fa.state, fb.state),
    ] {
        if let Some(offset) = first_mismatch(pa, pb) {
            return Ok(Some(SectionDiff {
                section,
                offset,
                lens: (pa.len(), pb.len()),
            }));
        }
    }
    Ok(None)
}

/// Everything needed to rebuild a network from a snapshot file alone:
/// the embedded configuration and mechanism name. Returned by
/// [`peek_header`] without decoding (or trusting) the state payload.
#[derive(Clone, Debug)]
pub struct SnapshotHeader {
    /// Format version of the file.
    pub version: u32,
    /// Config fingerprint recorded in the file.
    pub fingerprint: u32,
    /// The full simulated-machine configuration.
    pub config: SimConfig,
    /// Display name of the routing mechanism ("OFAR", "PB", …).
    pub mechanism: String,
}

/// Validate a snapshot's envelope and decode its self-describing header.
pub fn peek_header(bytes: &[u8]) -> Result<SnapshotHeader, SnapshotError> {
    let frame = parse_frame(bytes)?;
    let (config, mechanism) = decode_config(frame.config)?;
    Ok(SnapshotHeader {
        version: SNAPSHOT_VERSION,
        fingerprint: frame.fingerprint,
        config,
        mechanism,
    })
}

// ---------------------------------------------------------------------
// File I/O (atomic)
// ---------------------------------------------------------------------

/// Write `bytes` to `path` atomically: the full content lands in a
/// sibling temporary file which is then renamed over the target, so a
/// crash mid-write never leaves a half-written file under the final
/// name. (A truncated temporary can survive a crash; it fails the
/// checksum on read and is skipped.)
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    std::fs::create_dir_all(dir)?;
    let file_name = path
        .file_name()
        .ok_or_else(|| SnapshotError::Io("path has no file name".into()))?;
    let mut tmp = dir.join(file_name);
    tmp.set_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Read a snapshot file into memory. Does not validate — pair with
/// [`peek_header`] or `Network::restore_snapshot`, which do.
pub fn read_file(path: &Path) -> Result<Vec<u8>, SnapshotError> {
    Ok(std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_and_sections() {
        let f = frame(b"cfg", b"pol", b"state");
        let p = parse_frame(&f).unwrap();
        assert_eq!(p.config, b"cfg");
        assert_eq!(p.policy, b"pol");
        assert_eq!(p.state, b"state");
        assert_eq!(p.fingerprint, crc32(b"cfg"));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let f = frame(b"configuration", b"policy-bytes", b"state-bytes");
        for i in 0..f.len() {
            let mut bad = f.clone();
            bad[i] ^= 0x40;
            assert!(
                parse_frame(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let f = frame(b"cfg", b"", b"some state");
        for n in 0..f.len() {
            assert!(parse_frame(&f[..n]).is_err(), "truncation to {n} accepted");
        }
    }

    #[test]
    fn version_bump_is_refused() {
        let mut f = frame(b"c", b"p", b"s");
        // Patch the version field and re-seal the file checksum.
        f[8] = (SNAPSHOT_VERSION + 1) as u8;
        let n = f.len();
        let crc = crc32(&f[..n - 4]);
        f[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            parse_frame(&f).unwrap_err(),
            SnapshotError::UnsupportedVersion {
                found: SNAPSHOT_VERSION + 1
            }
        );
    }

    #[test]
    fn config_encoding_roundtrips() {
        let mut cfg = SimConfig::paper(3).with_seed(77);
        cfg.ber = 1e-5;
        let bytes = encode_config(&cfg, "OFAR");
        let (back, mech) = decode_config(&bytes).unwrap();
        assert_eq!(back, cfg);
        assert_eq!(mech, "OFAR");
        assert_eq!(config_fingerprint(&cfg, "OFAR"), crc32(&bytes));
        assert_ne!(
            config_fingerprint(&cfg, "OFAR"),
            config_fingerprint(&cfg, "MIN")
        );
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join("ofar-snap-test");
        let path = dir.join("t.snap");
        let f = frame(b"a", b"b", b"c");
        write_atomic(&path, &f).unwrap();
        assert_eq!(read_file(&path).unwrap(), f);
        std::fs::remove_dir_all(&dir).ok();
    }
}
