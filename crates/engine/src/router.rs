//! Per-router mutable state: input units, output units and their
//! flow-control bookkeeping.

use crate::buffer::VcFifo;
use crate::fabric::Fabric;
use crate::packet::Packet;
use ofar_topology::RouterId;
use std::collections::VecDeque;

/// An input port: its VC FIFOs, the in-flight arrival pipeline of the
/// attached link, and crossbar-side busy/arbitration state.
#[derive(Debug)]
pub struct InputPort {
    /// Virtual-channel FIFOs.
    pub vcs: Vec<VcFifo>,
    /// In-flight packets on the incoming link, ordered by arrival cycle.
    pub arrivals: VecDeque<(u64, u8, Packet)>,
    /// The crossbar input is occupied (transferring a packet) until this
    /// cycle (exclusive).
    pub busy_until: u64,
    /// Least-recently-served stamps per VC for the input arbiter.
    pub vc_served_at: Vec<u64>,
}

impl InputPort {
    fn new(fab: &Fabric, router: RouterId, port: usize) -> Self {
        let desc = fab.in_desc(router, port);
        let nvc = desc.vcs as usize;
        let vcs = (0..nvc)
            .map(|vc| VcFifo::new(fab.in_capacity(router, port, vc), fab.cfg().packet_size))
            .collect();
        Self {
            vcs,
            arrivals: VecDeque::new(),
            busy_until: 0,
            vc_served_at: vec![0; nvc],
        }
    }

    /// Total occupancy across VCs, in phits.
    pub fn occupancy(&self) -> u32 {
        self.vcs.iter().map(VcFifo::occupancy).sum()
    }
}

/// An output port: downstream credit state, the credit-return pipeline,
/// and crossbar-side busy/arbitration state.
#[derive(Debug)]
pub struct OutputPort {
    /// Available downstream space per VC, in phits. Ejection ports have
    /// an empty credit vector (the node is an infinite sink).
    pub credits: Vec<u32>,
    /// Per-VC capacity of the downstream buffer, in phits (mirror of the
    /// credit ceiling, kept here so occupancy estimates are O(1)).
    pub capacity: Vec<u32>,
    /// Credits in flight back to this port, ordered by arrival cycle.
    pub credit_events: VecDeque<(u64, u8, u32)>,
    /// The output link is transmitting until this cycle (exclusive).
    pub busy_until: u64,
    /// Least-recently-served stamps per input port for the output
    /// arbiter.
    pub in_served_at: Vec<u64>,
}

impl OutputPort {
    fn new(fab: &Fabric, router: RouterId, port: usize) -> Self {
        let link = fab.out_link(router, port);
        let (credits, capacity) = if link.kind == crate::fabric::PortKind::Node {
            (Vec::new(), Vec::new())
        } else {
            let dst = RouterId::new(link.dst_router);
            let caps: Vec<u32> = (0..link.vcs as usize)
                .map(|vc| fab.in_capacity(dst, link.dst_port as usize, vc) as u32)
                .collect();
            (caps.clone(), caps)
        };
        Self {
            credits,
            capacity,
            credit_events: VecDeque::new(),
            busy_until: 0,
            in_served_at: vec![0; fab.n_in()],
        }
    }

    /// Occupancy estimate of the downstream VC buffer as seen through
    /// credits, in [0, 1]. This is the `Q` of §IV-B.
    #[inline]
    pub fn occupancy_frac(&self, vc: usize) -> f64 {
        let cap = self.capacity[vc];
        if cap == 0 {
            return 0.0;
        }
        f64::from(cap - self.credits[vc]) / f64::from(cap)
    }
}

/// All mutable state of one router.
#[derive(Debug)]
pub struct RouterStore {
    /// Input units, one per input port.
    pub inputs: Vec<InputPort>,
    /// Output units, one per output port.
    pub outputs: Vec<OutputPort>,
}

impl RouterStore {
    /// Allocate the state for router `router` under the given wiring.
    pub fn new(fab: &Fabric, router: RouterId) -> Self {
        Self {
            inputs: (0..fab.n_in())
                .map(|p| InputPort::new(fab, router, p))
                .collect(),
            outputs: (0..fab.n_out())
                .map(|p| OutputPort::new(fab, router, p))
                .collect(),
        }
    }

    /// Phits buffered in this router (input VCs only; packets on the
    /// crossbar are accounted at their source buffer until popped).
    pub fn buffered_phits(&self) -> u64 {
        self.inputs.iter().map(|i| u64::from(i.occupancy())).sum()
    }

    /// Phits in flight on the incoming links of this router.
    pub fn inflight_phits(&self, packet_size: usize) -> u64 {
        self.inputs
            .iter()
            .map(|i| (i.arrivals.len() * packet_size) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RingMode, SimConfig};

    #[test]
    fn router_state_matches_fabric_shape() {
        let fab = Fabric::new(SimConfig::paper(2));
        let r = RouterStore::new(&fab, RouterId::new(3));
        assert_eq!(r.inputs.len(), fab.n_in());
        assert_eq!(r.outputs.len(), fab.n_out());
        // ejection outputs have no credits; link outputs mirror the
        // downstream VC count
        for port in 0..fab.n_out() {
            let link = fab.out_link(RouterId::new(3), port);
            if link.kind == crate::fabric::PortKind::Node {
                assert!(r.outputs[port].credits.is_empty());
            } else {
                assert_eq!(r.outputs[port].credits.len(), link.vcs as usize);
            }
        }
    }

    #[test]
    fn initial_credits_equal_capacity() {
        let fab = Fabric::new(SimConfig::paper(2).with_ring(RingMode::Embedded));
        for ridx in [0usize, 5, 17] {
            let r = RouterStore::new(&fab, RouterId::from(ridx));
            for out in &r.outputs {
                assert_eq!(out.credits, out.capacity);
                for vc in 0..out.credits.len() {
                    assert_eq!(out.occupancy_frac(vc), 0.0);
                }
            }
        }
    }
}
