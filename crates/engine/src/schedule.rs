//! Shard iteration schedules for the `parallel`-marked phases.
//!
//! The parallelization contract (`results/phase-contract.json`) claims
//! the three parallel phases of [`Network::step`](crate::Network::step)
//! — `deliver`, `inject`, `route` — touch disjoint per-shard state, so
//! the iteration order of their shard loops must be unobservable. This
//! module makes that claim *executable*: a [`ShardSchedule`] materializes
//! a permutation of the shard indices, the engine walks the loops in
//! that order, and the `ofar-race` certifier byte-compares snapshots
//! across schedules. [`ShardSchedule::Identity`] materializes to an
//! empty order vector, which the engine treats as the plain `0..n` loop
//! — the release path pays one `is_empty` branch per loop, nothing else.

/// Iteration order of the per-shard loops in the three `parallel`
/// phases of `Network::step` (`deliver` and `route` iterate routers,
/// `inject` iterates nodes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardSchedule {
    /// Natural order `0..n` — the default and the release fast path.
    Identity,
    /// Reverse order `n-1..=0`: maximally far from identity in rank
    /// order, catches "later shard sees earlier shard's write" races.
    Reversed,
    /// Rotation by `k`: shard `i` runs at position `(i + n - k % n) % n`,
    /// i.e. the loop starts at shard `k % n`. Catches races between a
    /// fixed pair of adjacent shards (e.g. a router and its upstream).
    Rotated(u32),
    /// Seeded Fisher–Yates permutation over a splitmix64 stream:
    /// arbitrary interleavings, different every seed.
    Seeded(u64),
}

impl ShardSchedule {
    /// Materialize the iteration order over `n` shards. Identity returns
    /// an **empty** vector — the engine's sentinel for "use the plain
    /// loop" — so the release path never indexes through a table.
    pub fn order(self, n: usize) -> Vec<u32> {
        debug_assert!(
            n <= u32::MAX as usize,
            "shard count exceeds u32 order encoding"
        );
        match self {
            ShardSchedule::Identity => Vec::new(),
            ShardSchedule::Reversed => (0..n as u32).rev().collect(),
            ShardSchedule::Rotated(k) => {
                if n == 0 {
                    return Vec::new();
                }
                let k = k % n as u32;
                (0..n as u32).map(|i| (i + k) % n as u32).collect()
            }
            ShardSchedule::Seeded(seed) => {
                let mut order: Vec<u32> = (0..n as u32).collect();
                // Fisher–Yates over a splitmix64 stream: every
                // permutation reachable, fully determined by `seed`.
                let mut state = seed;
                for i in (1..n).rev() {
                    let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
                    order.swap(i, j);
                }
                order
            }
        }
    }

    /// Stable human-readable label (witnesses, verdict artifacts).
    pub fn describe(self) -> String {
        match self {
            ShardSchedule::Identity => "identity".to_string(),
            ShardSchedule::Reversed => "reversed".to_string(),
            ShardSchedule::Rotated(k) => format!("rotated({k})"),
            ShardSchedule::Seeded(s) => format!("seeded({s:#x})"),
        }
    }

    /// The adversarial schedule set of size `k` used by the certifier:
    /// reversed, a prime rotation, then seeded permutations. Reversed
    /// and rotated are the structured extremes; the seeded tail explores
    /// arbitrary interleavings reproducibly.
    pub fn adversaries(k: usize) -> Vec<ShardSchedule> {
        let mut out = Vec::with_capacity(k);
        if k >= 1 {
            out.push(ShardSchedule::Reversed);
        }
        if k >= 2 {
            out.push(ShardSchedule::Rotated(7));
        }
        for i in 0..k.saturating_sub(2) {
            out.push(ShardSchedule::Seeded(
                0x0FA2_5EED_u64.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(i as u64)),
            ));
        }
        out
    }
}

/// The splitmix64 step — the standard seed-expansion mixer (Steele et
/// al., "Fast splittable pseudorandom number generators"). Used only to
/// derive permutations; simulation randomness stays in the policy RNGs.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(order: &[u32], n: usize) -> bool {
        let mut seen = vec![false; n];
        order.len() == n
            && order.iter().all(|&i| {
                let i = i as usize;
                i < n && !std::mem::replace(&mut seen[i], true)
            })
    }

    #[test]
    fn identity_is_the_empty_sentinel() {
        assert!(ShardSchedule::Identity.order(68).is_empty());
    }

    #[test]
    fn every_schedule_is_a_permutation() {
        for sched in [
            ShardSchedule::Reversed,
            ShardSchedule::Rotated(7),
            ShardSchedule::Rotated(1000),
            ShardSchedule::Seeded(1),
            ShardSchedule::Seeded(0xDEAD_BEEF),
        ] {
            for n in [1usize, 2, 17, 68, 136] {
                assert!(
                    is_permutation(&sched.order(n), n),
                    "{} over {n} shards is not a permutation",
                    sched.describe()
                );
            }
        }
    }

    #[test]
    fn seeded_orders_are_reproducible_and_seed_sensitive() {
        let a = ShardSchedule::Seeded(42).order(64);
        let b = ShardSchedule::Seeded(42).order(64);
        let c = ShardSchedule::Seeded(43).order(64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn adversary_set_has_requested_size_and_no_identity() {
        let advs = ShardSchedule::adversaries(4);
        assert_eq!(advs.len(), 4);
        assert!(advs.iter().all(|s| *s != ShardSchedule::Identity));
        // Distinct schedules: at 68 shards all four orders differ.
        let orders: Vec<_> = advs.iter().map(|s| s.order(68)).collect();
        for i in 0..orders.len() {
            for j in i + 1..orders.len() {
                assert_ne!(orders[i], orders[j], "schedules {i} and {j} coincide");
            }
        }
    }

    #[test]
    fn empty_and_single_shard_edge_cases() {
        assert!(ShardSchedule::Rotated(3).order(0).is_empty());
        assert_eq!(ShardSchedule::Seeded(9).order(1), vec![0]);
        assert_eq!(ShardSchedule::Reversed.order(1), vec![0]);
    }
}
