//! Property-based tests of the traffic generators.

use ofar_topology::{Dragonfly, NodeId};
use ofar_traffic::{Bernoulli, TrafficGen, TrafficPattern, TrafficSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn destinations_are_always_valid(
        h in 2usize..=4,
        seed in any::<u64>(),
        srcs in prop::collection::vec(any::<usize>(), 1..50),
    ) {
        let topo = Dragonfly::balanced(h);
        let mut gen = TrafficGen::new(&topo, TrafficSpec::uniform(), seed);
        for s in srcs {
            let src = NodeId::from(s % topo.num_nodes());
            let d = gen.destination(src);
            prop_assert!(d.idx() < topo.num_nodes());
            prop_assert_ne!(d, src);
        }
    }

    #[test]
    fn adversarial_offset_is_exact(
        h in 2usize..=4,
        offset_seed in any::<usize>(),
        seed in any::<u64>(),
        src_seed in any::<usize>(),
    ) {
        let topo = Dragonfly::balanced(h);
        let offset = 1 + offset_seed % (topo.num_groups() - 1);
        let mut gen = TrafficGen::new(&topo, TrafficSpec::adversarial(offset), seed);
        let src = NodeId::from(src_seed % topo.num_nodes());
        for _ in 0..32 {
            let d = gen.destination(src);
            let want = (topo.group_of_node(src).idx() + offset) % topo.num_groups();
            prop_assert_eq!(topo.group_of_node(d).idx(), want);
            prop_assert_ne!(d, src);
        }
    }

    #[test]
    fn mixes_only_produce_member_patterns(
        h in 2usize..=3,
        seed in any::<u64>(),
    ) {
        let topo = Dragonfly::balanced(h);
        // 50% ADV+1, 50% ADV+2: destinations only in those two groups
        let spec = TrafficSpec::mix(vec![
            (1.0, TrafficPattern::Adversarial { offset: 1 }),
            (1.0, TrafficPattern::Adversarial { offset: 2 }),
        ]);
        let mut gen = TrafficGen::new(&topo, spec, seed);
        let src = NodeId::new(0);
        for _ in 0..64 {
            let d = gen.destination(src);
            let rel = (topo.group_of_node(d).idx() + topo.num_groups()
                - topo.group_of_node(src).idx())
                % topo.num_groups();
            prop_assert!(rel == 1 || rel == 2, "unexpected offset {rel}");
        }
    }

    #[test]
    fn bernoulli_rate_is_statistically_close(load_milli in 1u32..800) {
        let load = f64::from(load_milli) / 1000.0;
        let mut b = Bernoulli::new(load, 8, 42);
        let nodes = 200;
        let cycles = 1_500;
        let mut count = 0u64;
        for _ in 0..cycles {
            b.cycle(nodes, |_| count += 1);
        }
        let measured = count as f64 / (nodes as f64 * cycles as f64);
        let expect = load / 8.0;
        // 5 sigma of a Bernoulli sum
        let sigma = (expect * (1.0 - expect) / (nodes as f64 * cycles as f64)).sqrt();
        prop_assert!(
            (measured - expect).abs() < 5.0 * sigma + 1e-9,
            "measured {measured}, expected {expect}"
        );
    }

    #[test]
    fn generators_are_deterministic(seed in any::<u64>()) {
        let topo = Dragonfly::balanced(2);
        let mut a = TrafficGen::new(&topo, TrafficSpec::mix2(2), seed);
        let mut b = TrafficGen::new(&topo, TrafficSpec::mix2(2), seed);
        for s in 0..40usize {
            let src = NodeId::from(s % topo.num_nodes());
            prop_assert_eq!(a.destination(src), b.destination(src));
        }
    }
}
