//! Traffic patterns and injection processes.

use ofar_topology::{Dragonfly, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A destination distribution (§V).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrafficPattern {
    /// UN: uniform over all nodes except the source itself.
    Uniform,
    /// ADV+N: uniform over the nodes of group `src_group + offset`.
    Adversarial {
        /// Group offset `N ∈ 1 .. groups`.
        offset: usize,
    },
}

impl TrafficPattern {
    /// Short display name matching the paper ("UN", "ADV+2", …).
    pub fn label(&self) -> String {
        match self {
            TrafficPattern::Uniform => "UN".to_string(),
            TrafficPattern::Adversarial { offset } => format!("ADV+{offset}"),
        }
    }
}

/// A weighted mixture of patterns. Weights need not be normalized.
#[derive(Clone, Debug)]
pub struct TrafficSpec {
    components: Vec<(f64, TrafficPattern)>,
    total: f64,
}

impl TrafficSpec {
    /// A single-pattern spec.
    pub fn pure(p: TrafficPattern) -> Self {
        Self::mix(vec![(1.0, p)])
    }

    /// Uniform traffic.
    pub fn uniform() -> Self {
        Self::pure(TrafficPattern::Uniform)
    }

    /// ADV+`offset` traffic.
    pub fn adversarial(offset: usize) -> Self {
        Self::pure(TrafficPattern::Adversarial { offset })
    }

    /// A weighted mixture.
    ///
    /// # Panics
    /// Panics if no component has positive weight.
    pub fn mix(components: Vec<(f64, TrafficPattern)>) -> Self {
        let total: f64 = components.iter().map(|&(w, _)| w).sum();
        assert!(total > 0.0, "mixture needs positive total weight");
        Self { components, total }
    }

    /// The paper's MIX1 (80% UN, 10% ADV+1, 10% ADV+h).
    pub fn mix1(h: usize) -> Self {
        Self::mix(vec![
            (0.8, TrafficPattern::Uniform),
            (0.1, TrafficPattern::Adversarial { offset: 1 }),
            (0.1, TrafficPattern::Adversarial { offset: h }),
        ])
    }

    /// The paper's MIX2 (60/20/20).
    pub fn mix2(h: usize) -> Self {
        Self::mix(vec![
            (0.6, TrafficPattern::Uniform),
            (0.2, TrafficPattern::Adversarial { offset: 1 }),
            (0.2, TrafficPattern::Adversarial { offset: h }),
        ])
    }

    /// The paper's MIX3 (20/40/40).
    pub fn mix3(h: usize) -> Self {
        Self::mix(vec![
            (0.2, TrafficPattern::Uniform),
            (0.4, TrafficPattern::Adversarial { offset: 1 }),
            (0.4, TrafficPattern::Adversarial { offset: h }),
        ])
    }

    /// Component view (weight, pattern).
    pub fn components(&self) -> &[(f64, TrafficPattern)] {
        &self.components
    }

    /// Display label ("UN", "ADV+6", "MIX(0.8 UN + …)").
    pub fn label(&self) -> String {
        if self.components.len() == 1 {
            return self.components[0].1.label();
        }
        let parts: Vec<String> = self
            .components
            .iter()
            .map(|(w, p)| format!("{:.0}% {}", 100.0 * w / self.total, p.label()))
            .collect();
        format!("MIX({})", parts.join(" + "))
    }
}

/// A seeded destination generator over a topology.
#[derive(Clone, Debug)]
pub struct TrafficGen {
    nodes: usize,
    nodes_per_group: usize,
    groups: usize,
    spec: TrafficSpec,
    rng: SmallRng,
}

impl TrafficGen {
    /// Build a generator for `topo` with mixture `spec`.
    pub fn new(topo: &Dragonfly, spec: TrafficSpec, seed: u64) -> Self {
        for &(_, p) in spec.components() {
            if let TrafficPattern::Adversarial { offset } = p {
                assert!(
                    offset >= 1 && offset < topo.num_groups(),
                    "ADV offset {offset} out of range (groups = {})",
                    topo.num_groups()
                );
            }
        }
        Self {
            nodes: topo.num_nodes(),
            nodes_per_group: topo.routers_per_group() * topo.nodes_per_router(),
            groups: topo.num_groups(),
            spec,
            rng: SmallRng::seed_from_u64(seed ^ 0x7EAFF1C), // "traffic"
        }
    }

    /// Swap the pattern mixture (transient experiments, Fig. 6), keeping
    /// the RNG stream.
    pub fn set_spec(&mut self, spec: TrafficSpec) {
        self.spec = spec;
    }

    /// Current mixture.
    pub fn spec(&self) -> &TrafficSpec {
        &self.spec
    }

    /// Raw RNG state, for checkpointing the generator mid-run.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restore an RNG state captured by [`TrafficGen::rng_state`]; the
    /// destination stream resumes exactly where it left off.
    pub fn set_rng_state(&mut self, state: [u64; 4]) {
        self.rng = SmallRng::from_state(state);
    }

    /// Sample a destination for a packet from `src`.
    pub fn destination(&mut self, src: NodeId) -> NodeId {
        let pattern = self.sample_pattern();
        match pattern {
            TrafficPattern::Uniform => loop {
                let d = self.rng.gen_range(0..self.nodes);
                if d != src.idx() {
                    return NodeId::from(d);
                }
            },
            TrafficPattern::Adversarial { offset } => {
                let src_group = src.idx() / self.nodes_per_group;
                let dst_group = (src_group + offset) % self.groups;
                let d =
                    dst_group * self.nodes_per_group + self.rng.gen_range(0..self.nodes_per_group);
                debug_assert_ne!(d, src.idx(), "ADV offset ≥ 1 never self-targets");
                NodeId::from(d)
            }
        }
    }

    fn sample_pattern(&mut self) -> TrafficPattern {
        let comps = &self.spec.components;
        if comps.len() == 1 {
            return comps[0].1;
        }
        let mut x = self.rng.gen_range(0.0..self.spec.total);
        for &(w, p) in comps {
            if x < w {
                return p;
            }
            x -= w;
        }
        comps.last().unwrap().1
    }
}

/// A Bernoulli injection process: every node generates a packet each
/// cycle with probability `load / packet_size` (`load` is in
/// phits/(node·cycle), the paper's offered-load unit).
#[derive(Clone, Debug)]
pub struct Bernoulli {
    prob: f64,
    rng: SmallRng,
}

impl Bernoulli {
    /// Build for an offered load and packet size.
    ///
    /// # Panics
    /// Panics if the implied packet probability exceeds 1.
    pub fn new(load_phits: f64, packet_size: usize, seed: u64) -> Self {
        let prob = load_phits / packet_size as f64;
        assert!(
            (0.0..=1.0).contains(&prob),
            "offered load {load_phits} phits/node/cycle exceeds 1 packet/cycle"
        );
        Self {
            prob,
            rng: SmallRng::seed_from_u64(seed ^ 0xBE2107111), // "bernoulli"
        }
    }

    /// Packet-generation probability per node per cycle.
    pub fn prob(&self) -> f64 {
        self.prob
    }

    /// Raw RNG state, for checkpointing the injection process mid-run.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restore an RNG state captured by [`Bernoulli::rng_state`]; the
    /// injection stream resumes exactly where it left off.
    pub fn set_rng_state(&mut self, state: [u64; 4]) {
        self.rng = SmallRng::from_state(state);
    }

    /// Run one cycle: calls `sink(src)` for every node that generates a
    /// packet this cycle.
    pub fn cycle(&mut self, nodes: usize, mut sink: impl FnMut(NodeId)) {
        if self.prob == 0.0 {
            return;
        }
        for n in 0..nodes {
            if self.rng.gen_bool(self.prob) {
                sink(NodeId::from(n));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Dragonfly {
        Dragonfly::balanced(3)
    }

    #[test]
    fn uniform_never_self_targets_and_covers_groups() {
        let topo = topo();
        let mut gen = TrafficGen::new(&topo, TrafficSpec::uniform(), 1);
        let src = NodeId::new(5);
        let mut group_seen = vec![false; topo.num_groups()];
        for _ in 0..20_000 {
            let d = gen.destination(src);
            assert_ne!(d, src);
            group_seen[topo.group_of_node(d).idx()] = true;
        }
        assert!(
            group_seen.iter().all(|&s| s),
            "uniform must reach all groups"
        );
    }

    #[test]
    fn adversarial_targets_exactly_offset_group() {
        let topo = topo();
        for offset in [1, 3, topo.num_groups() - 1] {
            let mut gen = TrafficGen::new(&topo, TrafficSpec::adversarial(offset), 2);
            for src in [0usize, 17, topo.num_nodes() - 1] {
                let src = NodeId::from(src);
                let want = (topo.group_of_node(src).idx() + offset) % topo.num_groups();
                for _ in 0..100 {
                    let d = gen.destination(src);
                    assert_eq!(topo.group_of_node(d).idx(), want);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn adversarial_offset_must_be_in_range() {
        let topo = topo();
        let groups = topo.num_groups();
        TrafficGen::new(&topo, TrafficSpec::adversarial(groups), 1);
    }

    #[test]
    fn mix_rates_are_respected() {
        let topo = topo();
        let mut gen = TrafficGen::new(&topo, TrafficSpec::mix1(3), 3);
        let src = NodeId::new(0);
        let src_group = topo.group_of_node(src).idx();
        let (mut adv1, mut adv3, mut other) = (0u32, 0u32, 0u32);
        let n = 30_000;
        for _ in 0..n {
            let d = gen.destination(src);
            let g = topo.group_of_node(d).idx();
            let g_rel = (g + topo.num_groups() - src_group) % topo.num_groups();
            match g_rel {
                1 => adv1 += 1,
                3 => adv3 += 1,
                _ => other += 1,
            }
        }
        // 80% UN spreads over 19 groups (~4.2% each to groups 1 and 3),
        // so adv1 ≈ adv3 ≈ 10% + 4.2% ≈ 14%, other ≈ 72%.
        let f = |c: u32| f64::from(c) / f64::from(n);
        assert!((0.10..0.20).contains(&f(adv1)), "adv1 {}", f(adv1));
        assert!((0.10..0.20).contains(&f(adv3)), "adv3 {}", f(adv3));
        assert!(f(other) > 0.6, "other {}", f(other));
    }

    #[test]
    fn bernoulli_rate_matches_load() {
        let mut b = Bernoulli::new(0.4, 8, 7); // 0.05 packets/node/cycle
        let mut count = 0u64;
        let nodes = 500;
        let cycles = 2000;
        for _ in 0..cycles {
            b.cycle(nodes, |_| count += 1);
        }
        let rate = count as f64 / (nodes as f64 * cycles as f64);
        assert!((rate - 0.05).abs() < 0.005, "rate {rate}");
    }

    #[test]
    fn zero_load_generates_nothing() {
        let mut b = Bernoulli::new(0.0, 8, 7);
        b.cycle(100, |_| panic!("no packets expected"));
    }

    #[test]
    #[should_panic(expected = "exceeds 1 packet/cycle")]
    fn overload_rejected() {
        Bernoulli::new(9.0, 8, 7);
    }

    #[test]
    fn labels_match_paper_nomenclature() {
        assert_eq!(TrafficSpec::uniform().label(), "UN");
        assert_eq!(TrafficSpec::adversarial(6).label(), "ADV+6");
        assert!(TrafficSpec::mix2(6).label().starts_with("MIX("));
    }
}
