//! Near-neighbor (halo-exchange) application traffic.
//!
//! The paper's motivation (§I, §III) is that "common HPC applications
//! with simple near-neighbor communications easily lead to hot-spots in
//! Dragonflies": ranks of a multi-dimensional domain decomposition
//! exchange halos with their grid neighbors, and with the default
//! sequential rank-to-node mapping those neighbors sit in the same or
//! the adjacent group — producing exactly the ADV-style concentration
//! on single local/global links that Bhatele et al. measured and that
//! OFAR's in-transit misrouting targets.
//!
//! [`StencilTraffic`] models a periodic 2-D/3-D Cartesian decomposition:
//! each rank repeatedly sends one packet to each of its `2·dims`
//! neighbors. Two rank-to-node mappings are provided:
//!
//! * [`TaskMapping::Sequential`] — rank `i` on node `i` (the default of
//!   every MPI launcher; the hot-spot case);
//! * [`TaskMapping::RandomizedNodes`] — a seeded random permutation of
//!   ranks over nodes, the mitigation Bhatele et al. propose (§III
//!   discusses why this trades locality for balance; OFAR's point is
//!   that the network should solve it instead).

use ofar_topology::{Dragonfly, NodeId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Rank-to-node placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TaskMapping {
    /// Rank `i` runs on node `i` (locality-preserving, hot-spot-prone).
    Sequential,
    /// Ranks are placed by a seeded random permutation of all nodes
    /// (destroys locality, balances links).
    RandomizedNodes,
}

/// A periodic Cartesian halo-exchange workload over all nodes.
#[derive(Clone, Debug)]
pub struct StencilTraffic {
    /// Grid extents; the product must equal the node count.
    dims: Vec<usize>,
    /// `perm[rank]` = node the rank runs on.
    perm: Vec<NodeId>,
    mapping: TaskMapping,
}

impl StencilTraffic {
    /// Build a stencil over every node of `topo`. `dims` must multiply
    /// to the node count (use [`Self::square_2d`]/[`Self::cube_3d`] for
    /// automatic factorizations).
    ///
    /// # Panics
    /// Panics if the grid does not tile the machine exactly.
    pub fn new(topo: &Dragonfly, dims: Vec<usize>, mapping: TaskMapping, seed: u64) -> Self {
        let nodes = topo.num_nodes();
        let cells: usize = dims.iter().product();
        assert_eq!(
            cells, nodes,
            "stencil grid {dims:?} must tile the {nodes}-node machine"
        );
        assert!(!dims.is_empty());
        let mut perm: Vec<NodeId> = (0..nodes).map(NodeId::from).collect();
        if mapping == TaskMapping::RandomizedNodes {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x57E7C11); // "stencil"
            perm.shuffle(&mut rng);
        }
        Self {
            dims,
            perm,
            mapping,
        }
    }

    /// The most square 2-D factorization of the node count.
    pub fn square_2d(topo: &Dragonfly, mapping: TaskMapping, seed: u64) -> Self {
        let n = topo.num_nodes();
        let mut best = (1, n);
        let mut d = 1;
        while d * d <= n {
            if n.is_multiple_of(d) {
                best = (d, n / d);
            }
            d += 1;
        }
        Self::new(topo, vec![best.0, best.1], mapping, seed)
    }

    /// A 3-D factorization of the node count, as cubic as divisors allow.
    pub fn cube_3d(topo: &Dragonfly, mapping: TaskMapping, seed: u64) -> Self {
        let n = topo.num_nodes();
        // best (a, b, c) with a·b·c = n minimizing max/min extent
        let mut best = vec![1, 1, n];
        let mut best_score = n;
        let mut a = 1;
        while a * a * a <= n {
            if n.is_multiple_of(a) {
                let m = n / a;
                let mut b = a;
                while b * b <= m {
                    if m.is_multiple_of(b) {
                        let c = m / b;
                        let score = c - a;
                        if score < best_score {
                            best_score = score;
                            best = vec![a, b, c];
                        }
                    }
                    b += 1;
                }
            }
            a += 1;
        }
        Self::new(topo, best, mapping, seed)
    }

    /// Grid extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The mapping in use.
    pub fn mapping(&self) -> TaskMapping {
        self.mapping
    }

    /// Node hosting `rank`.
    pub fn node_of_rank(&self, rank: usize) -> NodeId {
        self.perm[rank]
    }

    /// Grid coordinates of a rank.
    fn coords(&self, mut rank: usize) -> Vec<usize> {
        let mut c = Vec::with_capacity(self.dims.len());
        for &d in &self.dims {
            c.push(rank % d);
            rank /= d;
        }
        c
    }

    fn rank_of(&self, coords: &[usize]) -> usize {
        let mut rank = 0;
        for (i, &c) in coords.iter().enumerate().rev() {
            rank = rank * self.dims[i] + c;
        }
        rank
    }

    /// The `2·dims` halo neighbors of `rank` (periodic boundaries),
    /// deduplicated for degenerate extents.
    pub fn neighbors(&self, rank: usize) -> Vec<usize> {
        let coords = self.coords(rank);
        let mut out = Vec::with_capacity(2 * self.dims.len());
        for (axis, &extent) in self.dims.iter().enumerate() {
            if extent <= 1 {
                continue;
            }
            for step in [1usize, extent - 1] {
                let mut c = coords.clone();
                c[axis] = (c[axis] + step) % extent;
                let n = self.rank_of(&c);
                if n != rank && !out.contains(&n) {
                    out.push(n);
                }
            }
        }
        out
    }

    /// One full halo-exchange round: `sink(src_node, dst_node)` once per
    /// (rank, neighbor) pair — the burst a BSP application emits after a
    /// barrier.
    pub fn exchange_round(&self, mut sink: impl FnMut(NodeId, NodeId)) {
        for rank in 0..self.perm.len() {
            let src = self.node_of_rank(rank);
            for n in self.neighbors(rank) {
                let dst = self.node_of_rank(n);
                if src != dst {
                    sink(src, dst);
                }
            }
        }
    }

    /// Total messages per exchange round.
    pub fn messages_per_round(&self) -> usize {
        let mut count = 0;
        self.exchange_round(|_, _| count += 1);
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Dragonfly {
        Dragonfly::balanced(2) // 72 nodes
    }

    #[test]
    fn square_factorization_tiles_the_machine() {
        let t = topo();
        let s = StencilTraffic::square_2d(&t, TaskMapping::Sequential, 0);
        assert_eq!(s.dims().iter().product::<usize>(), t.num_nodes());
        assert_eq!(s.dims(), &[8, 9]);
        let c = StencilTraffic::cube_3d(&t, TaskMapping::Sequential, 0);
        assert_eq!(c.dims().iter().product::<usize>(), 72);
        assert_eq!(c.dims(), &[3, 4, 6]);
    }

    #[test]
    fn neighbors_are_symmetric_and_periodic() {
        let t = topo();
        let s = StencilTraffic::square_2d(&t, TaskMapping::Sequential, 0);
        for rank in 0..72 {
            let ns = s.neighbors(rank);
            assert!(ns.len() <= 4);
            for &n in &ns {
                assert!(
                    s.neighbors(n).contains(&rank),
                    "rank {rank} ↔ {n} not symmetric"
                );
            }
        }
        // corner rank wraps around
        let ns0 = s.neighbors(0);
        assert!(ns0.contains(&7), "x-periodicity"); // (7,0) is x-neighbor of (0,0)
    }

    #[test]
    fn sequential_mapping_is_identity() {
        let t = topo();
        let s = StencilTraffic::square_2d(&t, TaskMapping::Sequential, 0);
        for r in 0..72 {
            assert_eq!(s.node_of_rank(r).idx(), r);
        }
    }

    #[test]
    fn randomized_mapping_is_a_permutation() {
        let t = topo();
        let s = StencilTraffic::square_2d(&t, TaskMapping::RandomizedNodes, 9);
        let mut seen = [false; 72];
        let mut moved = 0;
        for r in 0..72 {
            let n = s.node_of_rank(r);
            assert!(!seen[n.idx()]);
            seen[n.idx()] = true;
            moved += usize::from(n.idx() != r);
        }
        assert!(moved > 36, "shuffle left most ranks in place");
        // deterministic per seed
        let s2 = StencilTraffic::square_2d(&t, TaskMapping::RandomizedNodes, 9);
        assert_eq!(s.node_of_rank(5), s2.node_of_rank(5));
    }

    #[test]
    fn exchange_round_has_expected_volume() {
        let t = topo();
        let s = StencilTraffic::square_2d(&t, TaskMapping::Sequential, 0);
        // 72 ranks × 4 neighbors on an 8×9 periodic grid
        assert_eq!(s.messages_per_round(), 72 * 4);
        let mut pairs = Vec::new();
        s.exchange_round(|a, b| pairs.push((a, b)));
        assert!(pairs.iter().all(|&(a, b)| a != b));
    }

    #[test]
    fn sequential_mapping_concentrates_on_few_groups() {
        // The §I/§III claim: with sequential mapping, a rank's neighbors
        // live in at most a couple of groups; randomized mapping spreads
        // them. Measure the mean number of *distinct destination groups*
        // per source group's outgoing halo traffic.
        let t = topo();
        let groups_touched = |mapping: TaskMapping| -> f64 {
            let s = StencilTraffic::square_2d(&t, mapping, 4);
            let g = t.num_groups();
            let per_group = t.num_nodes() / g;
            let mut touched = vec![std::collections::BTreeSet::new(); g];
            s.exchange_round(|a, b| {
                let ga = a.idx() / per_group;
                let gb = b.idx() / per_group;
                if ga != gb {
                    touched[ga].insert(gb);
                }
            });
            touched.iter().map(|s| s.len() as f64).sum::<f64>() / g as f64
        };
        let seq = groups_touched(TaskMapping::Sequential);
        let rnd = groups_touched(TaskMapping::RandomizedNodes);
        assert!(
            seq < rnd,
            "sequential ({seq:.2} groups) must be more concentrated than randomized ({rnd:.2})"
        );
    }
}
