//! # ofar-traffic
//!
//! Synthetic traffic generation for the OFAR evaluation (§V):
//!
//! * **UN** — uniform random: destination uniform over all nodes
//!   (including the source group, excluding the source node itself);
//! * **ADV+N** — adversarial: destination uniform over the nodes of
//!   group `i + N` for a source in group `i`. `ADV+1` stresses local
//!   links least; `ADV+n·h` concentrates the Valiant `l₂` hop on single
//!   local links and is the worst case of §III;
//! * **mixes** — weighted combinations (the paper's MIX1/2/3 blend UN,
//!   ADV+1 and ADV+h at 80/10/10, 60/20/20 and 20/40/40);
//! * **Bernoulli injection** at a configurable load in
//!   phits/(node·cycle), and fixed-size **bursts** (§VI-C);
//! * **halo-exchange stencils** with sequential or randomized task
//!   mapping — the near-neighbor application workload the paper's
//!   introduction motivates with (Bhatele et al.).
//!
//! The crate is engine-agnostic: generators yield `(src, dst)` pairs and
//! the experiment harness feeds them to the simulator.

#![warn(missing_docs)]

pub mod pattern;
pub mod stencil;

pub use pattern::{Bernoulli, TrafficGen, TrafficPattern, TrafficSpec};
pub use stencil::{StencilTraffic, TaskMapping};
