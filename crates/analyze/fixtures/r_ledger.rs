// R006 fixture: a commit phase drains the effect ledger and folds the
// drain order into state through a position-weighting accumulator — a
// polynomial hash of the push order, which the shard schedule
// permutes. The commutative reduction above it and the sort-then-drain
// idiom below it must stay silent: they pin the precision of the rule,
// not just its recall.

impl Network {
    pub fn step(&mut self) {
        // ofar-lint: phase(route, parallel)
        for ridx in 0..self.routers.len() {
            self.free[ridx] -= 1;
        }
        // ofar-lint: phase(effect_commit, commit)
        self.commit_effects();
    }

    fn commit_effects(&mut self) {
        let mut sum = 0u64;
        let mut sig = 0u64;
        for e in self.effects.drain(..) {
            sum = sum.wrapping_add(e.phits);
            sig = sig.wrapping_mul(31).wrapping_add(e.phits); // lint:expect(R006)
            self.apply(e);
        }
        self.watermark = sum;
        self.order_probe = sig;
        self.delivered_now.sort_unstable();
        for d in self.delivered_now.drain(..) {
            self.watermark = self.watermark.wrapping_add(d);
        }
    }

    fn apply(&mut self, e: Effect) {}
}
