// D004 fixture: pointer values used as data in the deterministic core.

fn router_key(r: &Router) -> usize {
    let p = r as *const Router; // lint:expect(D004)
    p as usize
}

fn stable_id(x: &u32) -> usize {
    let q = addr_of!(*x); // lint:expect(D004)
    q as usize
}
