// R004 fixture: phase-coverage defects — a statement that precedes the
// first phase marker (belongs to no declared phase), and a phase
// marker outside the body of the phase root.

impl Network {
    pub fn step(&mut self) {
        self.cycle += 1; // lint:expect(R004)
        // ofar-lint: phase(route, parallel)
        for ridx in 0..self.routers.len() {
            self.free[ridx] -= 1;
        }
    }

    // lint:expect(R004)
    // ofar-lint: phase(stray, commit)
    fn other(&mut self) {
        self.cycle += 1;
    }
}
