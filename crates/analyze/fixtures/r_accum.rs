// R003 fixture: a shared accumulator mutated from a parallel phase
// without going through a reduction-safe sink. The same counter bumped
// from the commit phase must stay silent.

impl Network {
    pub fn step(&mut self) {
        // ofar-lint: phase(route, parallel)
        for ridx in 0..self.routers.len() {
            self.route_one(ridx);
        }
        // ofar-lint: phase(settle, commit)
        self.cycle += 1;
    }

    fn route_one(&mut self, ridx: usize) {
        self.free[ridx] -= 1;
        self.total_grants += 1; // lint:expect(R003)
    }
}
