// P001 fixture: panicking calls reachable from Network::step.

impl Network {
    pub fn step(&mut self) {
        // ofar-lint: phase(all, commit)
        let head = self.queue.pop().unwrap(); // lint:expect(P001)
        if head == 0 {
            panic!("empty queue"); // lint:expect(P001)
        }
    }
}
