// P002 fixture: truncating cast in a function reachable from
// Network::step through a method call.

impl Network {
    pub fn step(&mut self) {
        // ofar-lint: phase(all, commit)
        let route = self.compress(self.cycle);
        let _ = route;
    }

    fn compress(&self, cycle: u64) -> u32 {
        cycle as u32 // lint:expect(P002)
    }
}
