// R005 fixture: an iteration-order-sensitive fold over a sharded
// collection inside a commit phase — exactly the reduction that stops
// being reproducible once sharding changes enumeration order.

impl Network {
    pub fn step(&mut self) {
        // ofar-lint: phase(route, parallel)
        for ridx in 0..self.routers.len() {
            self.free[ridx] -= 1;
        }
        // ofar-lint: phase(settle, commit)
        self.settle();
    }

    fn settle(&mut self) {
        let sum = self.routers.iter().fold(0u64, |acc, r| acc + r.load); // lint:expect(R005)
        self.watermark = sum;
    }
}
