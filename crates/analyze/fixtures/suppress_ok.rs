// Suppression fixture: every finding here is claimed by a well-formed
// lint:allow, so the file must come out with ZERO open findings — and
// zero unused-suppression reports.

use std::collections::HashMap; // lint:allow(D001, membership-only map in a cold diagnostic path)

// lint:allow(D001, scratch map rebuilt and drained in sorted order)
fn collect_ids() -> HashMap<u32, u32> {
    HashMap::new()
}
