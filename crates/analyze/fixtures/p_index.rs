// P003 fixture: panicking indexing inside the conservation counters.

struct Stats {
    slots: Vec<u64>,
}

impl Stats {
    fn read(&self, i: usize) -> u64 {
        self.slots[i] // lint:expect(P003)
    }
}
