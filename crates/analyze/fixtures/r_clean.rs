// R-family clean fixture: a correctly phased cycle loop. Parallel
// phases touch only their own shard plus reduction-safe sinks; the
// cross-router settlement runs in the commit phase. Pins precision:
// no R rule may fire anywhere in this file.

impl Network {
    pub fn step(&mut self) {
        // ofar-lint: phase(route, parallel)
        for ridx in 0..self.routers.len() {
            self.route_one(ridx);
        }
        // ofar-lint: phase(settle, commit)
        self.settle();
    }

    fn route_one(&mut self, ridx: usize) {
        self.free[ridx] -= 1;
        self.stats.grants += 1;
    }

    fn settle(&mut self) {
        for e in 0..self.pending.len() {
            let dst_r = self.pending[e];
            self.free[dst_r] += 1;
        }
        self.cycle += 1;
    }
}
