// A-rule fixture: the suppression machinery polices itself.
// A reason-less allow is malformed (A001) and does NOT suppress; a
// well-formed allow that claims nothing is unused (A002).

fn nothing() {} // lint:allow(D001) lint:expect(A001)

fn empty() {} // lint:allow(H001, reason present but nothing fires here) lint:expect(A002)
