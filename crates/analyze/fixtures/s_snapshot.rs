// S001 fixture: the codec visits credits and inflight but not
// last_eject — the seeded missing-field mutant CI must catch.

struct LinkState {
    credits: u32,
    inflight: u32,
    last_eject: u32, // lint:expect(S001)
}

impl LinkState {
    fn snap_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.credits.to_le_bytes());
        out.extend_from_slice(&self.inflight.to_le_bytes());
    }
}
