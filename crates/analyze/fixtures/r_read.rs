// R002 fixture: a parallel phase reads a foreign router's copy of a
// field the same phase writes locally — the classic read-after-write
// race a per-router fan-out would expose.

impl Network {
    pub fn step(&mut self) {
        // ofar-lint: phase(route, parallel)
        for ridx in 0..self.routers.len() {
            self.route_one(ridx);
        }
    }

    fn route_one(&mut self, ridx: usize) {
        let up_r = ridx + 1;
        let spare = self.free[up_r]; // lint:expect(R002)
        self.free[ridx] = spare;
    }
}
