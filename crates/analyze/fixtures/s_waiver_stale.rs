// S002 fixture (stale): the contract still waives an R001 on the
// write below, but the violation was fixed — the write is now
// home-indexed, so no finding exists for the waiver to claim and the
// stale-waiver rule must say so.

impl Network {
    pub fn step(&mut self) {
        // ofar-lint: phase(route, parallel)
        for ridx in 0..self.routers.len() {
            self.route_one(ridx);
        }
    }

    fn route_one(&mut self, ridx: usize) {
        self.free[ridx] += 1; // lint:expect(S002)
    }
}
