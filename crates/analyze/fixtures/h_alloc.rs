// H001 fixture: heap allocation reachable from Network::step. The
// cold_reset function is NOT reachable from step, so its allocation
// must stay silent — this pins the call-graph precision.

impl Network {
    pub fn step(&mut self) {
        // ofar-lint: phase(all, commit)
        self.advance();
    }

    fn advance(&mut self) {
        let scratch: Vec<u32> = Vec::new(); // lint:expect(H001)
        let label = format!("cycle"); // lint:expect(H001)
        let copy = self.routes.clone(); // lint:expect(H001)
        let _ = (scratch, label, copy);
    }

    fn cold_reset(&mut self) {
        let big = vec![0u8; 4096];
        let _ = big;
    }
}
