// D002 fixture: wall-clock time sources in the deterministic core.

fn cycle_now() -> u64 {
    let t = std::time::SystemTime::now(); // lint:expect(D002)
    let _ = t;
    0
}

fn measure() {
    let started = Instant::now(); // lint:expect(D002)
    let _ = started;
}
