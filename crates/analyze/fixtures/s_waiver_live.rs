// S002 fixture (live): the contract waives the R001 below, and the
// violation still exists as a suppressed finding — the waiver is
// earning its keep, so S002 must stay silent. The fixture has no
// expectations on purpose: it pins the *absence* of a stale-waiver
// finding when the waiver still matches.

impl Network {
    pub fn step(&mut self) {
        // ofar-lint: phase(route, parallel)
        for ridx in 0..self.routers.len() {
            self.route_one(ridx);
        }
    }

    fn route_one(&mut self, ridx: usize) {
        let dst_r = self.next_of(ridx);
        // lint:allow(R001, neighbor handoff serialized by the ring guard)
        self.free[dst_r] += 1;
    }

    fn next_of(&self, ridx: usize) -> usize {
        ridx + 1
    }
}
