// D001 fixture: order-sensitive hash containers in a deterministic-core
// crate. Every HashMap/HashSet mention must fire, one finding per line.

use std::collections::HashMap; // lint:expect(D001)
use std::collections::HashSet; // lint:expect(D001)

struct Table {
    map: HashMap<u32, u32>, // lint:expect(D001)
}

fn build() -> HashSet<u32> { // lint:expect(D001)
    HashSet::new() // lint:expect(D001)
}
