// R001 fixture: a parallel phase writes another router's shard. The
// home-indexed write on the line above it must stay silent — this pins
// the index classification, not just the write detection.

impl Network {
    pub fn step(&mut self) {
        // ofar-lint: phase(route, parallel)
        for ridx in 0..self.routers.len() {
            self.route_one(ridx);
        }
    }

    fn route_one(&mut self, ridx: usize) {
        let dst_r = self.next_of(ridx);
        self.free[ridx] -= 1;
        self.free[dst_r] += 1; // lint:expect(R001)
    }

    fn next_of(&self, ridx: usize) -> usize {
        ridx + 1
    }
}
