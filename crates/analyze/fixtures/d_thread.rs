// D003 fixture: thread identity / thread-local RNG in the
// deterministic core.

fn entropy() -> u64 {
    let r = thread_rng(); // lint:expect(D003)
    let _ = r;
    let id = std::thread::current(); // lint:expect(D003)
    let _ = id;
    0
}
