// D005 fixture: floating-point accumulation into deterministic state.
// Integer accumulation on the same struct must stay silent.

struct Gauge {
    mean_latency: f64,
    samples: u64,
}

impl Gauge {
    fn record(&mut self, lat: f64) {
        self.mean_latency += lat; // lint:expect(D005)
        self.samples += 1;
    }
}
