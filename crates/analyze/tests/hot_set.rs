//! The hot-set staleness fix: H/P crate scoping is a *cold* denylist.
//!
//! The analyzer used to carry a hand-kept allowlist of "hot" crates;
//! a new crate joining the cycle loop was silently unchecked until
//! someone remembered to add it. The list is now inverted: crates are
//! hot by default and only the named driver/tooling crates are cold,
//! so the stale-list failure mode is visible noise, never silence.
//! These tests pin both directions of that contract.

use ofar_analyze::{analyze_sources, collect_sources, LintConfig, SourceFile};
use std::path::Path;

/// A hot-path allocation reachable from `Network::step`, used to probe
/// whether a given crate name is subject to the H rules.
const PROBE: &str = r#"
impl Network {
    pub fn step(&mut self) {
        // ofar-lint: phase(all, commit)
        self.advance();
    }

    fn advance(&mut self) {
        let scratch: Vec<u32> = Vec::new();
        let _ = scratch;
    }
}
"#;

fn h_findings_for_crate(crate_name: &str) -> usize {
    let sf = SourceFile {
        path: format!("{crate_name}/probe.rs"),
        crate_name: crate_name.to_string(),
        text: PROBE.to_string(),
    };
    let a = analyze_sources(&[sf], &LintConfig::default(), None);
    a.open().filter(|f| f.rule == "H001").count()
}

/// A crate name the config has never heard of is checked by default:
/// this is the fail-closed property the inversion buys. Under the old
/// allowlist this exact probe was silently skipped.
#[test]
fn unknown_crate_is_hot_by_default() {
    assert_eq!(
        h_findings_for_crate("future_parallel_engine"),
        1,
        "a crate absent from cold_crates must get H001 coverage"
    );
}

/// The named cold crates are still exempt — the denylist keeps the
/// protection against name-collision fan-out (a driver-level `apply`
/// or `clone` sharing a name with an engine method is not hot).
#[test]
fn cold_crates_stay_exempt() {
    for cold in &LintConfig::default().cold_crates {
        assert_eq!(
            h_findings_for_crate(cold),
            0,
            "cold crate `{cold}` must not get H findings"
        );
    }
}

/// Every cold_crates entry names a crate that actually exists in the
/// workspace — a typo or a removed crate would otherwise silently
/// widen the hot set for a crate that was meant to be exempt (noisy)
/// or keep exempting a ghost (stale).
#[test]
fn cold_list_names_real_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let sources = collect_sources(&root).expect("workspace sources");
    let crates: std::collections::BTreeSet<&str> =
        sources.iter().map(|s| s.crate_name.as_str()).collect();
    for cold in &LintConfig::default().cold_crates {
        assert!(
            crates.contains(cold.as_str()),
            "cold_crates entry `{cold}` does not name a workspace crate \
             (known: {crates:?})"
        );
    }
}

/// The whole workspace stays clean under the inverted scoping: the
/// crates that became hot-by-default (none today — every workspace
/// crate is either previously-hot or named cold) introduce no new
/// open findings.
#[test]
fn workspace_is_clean_under_denylist_scoping() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let sources = collect_sources(&root).expect("workspace sources");
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.json")).ok();
    let baseline = baseline_text
        .as_deref()
        .map(|t| ofar_analyze::Baseline::parse(t).expect("baseline parses"));
    let a = analyze_sources(&sources, &LintConfig::default(), baseline.as_ref());
    let open: Vec<_> = a.open().collect();
    assert!(
        open.is_empty(),
        "workspace must be lint-clean, found: {:#?}",
        open.iter()
            .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
    );
}
