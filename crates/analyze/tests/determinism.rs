//! Determinism of the analyzer's CI artifacts.
//!
//! The JSON report and the phase contract are checked-in, CI-diffed
//! artifacts, so any run-to-run wobble — map iteration order, wall
//! clock leaking into output, filesystem enumeration order — would
//! surface as phantom drift. Two runs over the same sources must agree
//! to the byte, and the checked-in contract must match a fresh one.

use ofar_analyze::{analyze_sources, collect_sources, report, Baseline, LintConfig};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn report_and_contract_are_byte_identical_across_runs() {
    let sources = collect_sources(&workspace_root()).expect("workspace sources");
    assert!(!sources.is_empty());
    let cfg = LintConfig::default();
    let a = analyze_sources(&sources, &cfg, None);
    let b = analyze_sources(&sources, &cfg, None);
    assert_eq!(
        report::json(&a.findings, a.files_scanned),
        report::json(&b.findings, b.files_scanned),
        "lint report must be deterministic"
    );
    let ca = a.contract.expect("workspace has a phase root");
    let cb = b.contract.expect("workspace has a phase root");
    assert_eq!(ca, cb, "phase contract must be deterministic");
    ofar_analyze::json::parse(&ca).expect("contract is valid JSON");
}

#[test]
fn checked_in_contract_matches_fresh() {
    let root = workspace_root();
    let sources = collect_sources(&root).expect("workspace sources");
    // Mirror the ofar-lint binary: the checked-in baseline participates
    // in suppression claiming, and thus in the contract's waiver list.
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.json")).ok();
    let baseline = baseline_text
        .as_deref()
        .map(|t| Baseline::parse(t).expect("baseline parses"));
    let a = analyze_sources(&sources, &LintConfig::default(), baseline.as_ref());
    let fresh = a.contract.expect("workspace has a phase root");
    let checked_in = std::fs::read_to_string(root.join("results/phase-contract.json"))
        .expect("results/phase-contract.json is checked in");
    assert_eq!(
        checked_in, fresh,
        "checked-in phase contract drifted — regenerate with \
         `ofar-lint --root . --emit-contract results/phase-contract.json`"
    );
}
