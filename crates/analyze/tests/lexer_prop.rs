//! Property tests: the lexer is total and its spans are sound.
//!
//! The analyzer's soundness leans on `lex` never panicking and never
//! reporting a span outside the source — everything downstream (parser,
//! suppression scanner, snippet extraction) slices `src` by token spans.

use ofar_analyze::lexer::{lex, TokKind};
use proptest::prelude::*;

/// Check every structural invariant of one lexed stream.
fn check_stream(src: &str) {
    let toks = lex(src);
    let lines = 1 + src.bytes().filter(|&b| b == b'\n').count() as u32;
    let mut prev_end = 0usize;
    let mut prev_line = 1u32;
    for t in &toks {
        assert!(
            t.start < t.end,
            "empty or inverted span {}..{}",
            t.start,
            t.end
        );
        assert!(
            t.end <= src.len(),
            "span {}..{} past end {}",
            t.start,
            t.end,
            src.len()
        );
        assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
        assert!(t.start >= prev_end, "tokens overlap at byte {}", t.start);
        assert!(t.line >= prev_line, "line numbers went backwards");
        assert!(t.line <= lines, "line {} beyond {} lines", t.line, lines);
        // Slicing by span must not panic and must be non-empty.
        assert!(!t.text(src).is_empty());
        prev_end = t.end;
        prev_line = t.line;
    }
}

/// Rust-ish fragments: these hit the interesting lexer paths (raw
/// strings, nested and unterminated comments, lifetimes vs chars, radix
/// ints, stray quotes) far more often than uniform byte noise does.
const FRAGMENTS: [&str; 16] = [
    "fn step",
    "'a",
    "'x'",
    "r#\"raw \" inside\"#",
    "b\"bytes\"",
    "/* /* nested */",
    "*/",
    "// line comment",
    "0xFF_u32",
    "1.5e-3",
    "\"unterminated",
    "::<>",
    "\n",
    " ",
    "r#match",
    "b'\\n'",
];

proptest! {
    /// Arbitrary bytes pushed through lossy UTF-8 conversion — exactly
    /// how a hostile or truncated source file would reach the tool.
    #[test]
    fn lexes_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        check_stream(&src);
    }

    /// ASCII soup: printable characters plus controls and quotes.
    #[test]
    fn lexes_ascii_soup(bytes in proptest::collection::vec(9u8..127, 0..256)) {
        let src = String::from_utf8(bytes).expect("range is valid ASCII");
        check_stream(&src);
    }

    /// Streams assembled from Rust-ish fragments.
    #[test]
    fn lexes_token_soup(picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..64)) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        check_stream(&src);
    }

    /// Comments survive lexing with exact spans: whatever we embed in a
    /// line comment comes back verbatim via `text` (the suppression
    /// scanner depends on this).
    #[test]
    fn line_comment_roundtrip(picks in proptest::collection::vec(0usize..16, 1..32)) {
        const CHARSET: [char; 16] = [
            'a', 'b', 'z', 'A', 'Z', '0', '9', '_', ' ', ',', '(', ')', ':', ';', '.', '-',
        ];
        let body: String = picks.iter().map(|&i| CHARSET[i]).collect();
        let src = format!("let x = 1; // {}\n", body.trim());
        let toks = lex(&src);
        let comment = toks
            .iter()
            .rev()
            .find(|t| t.kind == TokKind::LineComment)
            .expect("comment token present");
        let expected = format!("// {}", body.trim());
        prop_assert_eq!(comment.text(&src), expected.trim_end());
    }
}
