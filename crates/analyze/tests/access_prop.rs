//! Property tests for the access classifier — the index inference the
//! R-family race rules (and therefore the parallelization contract)
//! stand on.
//!
//! Two properties pin the classifier's conservatism:
//!
//! 1. *Renaming invariance* — user-chosen identifiers (aliases, loop
//!    binders, scalar locals) carry no classification weight of their
//!    own, so renaming them must not change any access's field, class,
//!    index or operation.
//! 2. *Unknown never means home* — an index expression the classifier
//!    cannot tie to the evaluating shard's own id must degrade to
//!    `Unknown` (or prove `Foreign` from naming), never to `Home`: a
//!    spurious race report is acceptable, a silently blessed race is
//!    not.

use ofar_analyze::access::{scan_fn, Access, Axis, Class, Index, Op};
use ofar_analyze::{lexer, parse};
use proptest::prelude::*;

fn accesses(body: &str) -> Vec<Access> {
    let src = format!("impl Network {{ fn f(&mut self, ridx: usize, now: u64) {{ {body} }} }}");
    let file = parse::parse("t.rs", "engine", &src, lexer::lex(&src));
    scan_fn(&file, &file.fns[0], &|_| false)
}

/// Shape of one access, stripped of line numbers: what a renaming must
/// preserve.
fn shape(a: &Access) -> (String, Class, Index, Op, bool) {
    (a.field.clone(), a.class, a.index, a.op, a.write)
}

/// An identifier that cannot collide with the classifier's name tables:
/// nothing in the root/intra/scratch/sink tables, `HOME_IDENTS`, or the
/// `up_`/`dst_` foreign prefixes starts with `zz`.
fn fresh(raw: u64, tag: char) -> String {
    format!("zz{raw:x}{tag}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Renaming a `&mut` alias of a home-indexed router must keep the
    /// write home-classified on the same field, whatever the alias is
    /// called.
    #[test]
    fn alias_rename_preserves_home_write(raw in 0u64..u64::MAX) {
        let name = fresh(raw, 'a');
        let body = format!(
            "let {name} = &mut self.routers[ridx]; {name}.outputs[p].credits[v] -= s;"
        );
        let got: Vec<_> = accesses(&body).iter().map(shape).collect();
        prop_assert_eq!(
            got,
            vec![(
                "credits".to_string(),
                Class::Sharded(Axis::Router),
                Index::Home,
                Op::Compound,
                true
            )]
        );
    }

    /// Renaming both binders of an `iter_mut().enumerate()` sweep must
    /// keep the access a sweep: the binder names are the user's choice,
    /// the sweep classification comes from the iteration shape.
    #[test]
    fn sweep_binder_rename_preserves_sweep(raw in 0u64..u64::MAX) {
        let (idx, row) = (fresh(raw, 'a'), fresh(raw, 'b'));
        let body = format!(
            "for ({idx}, {row}) in self.routers.iter_mut().enumerate() \
             {{ {row}.inputs[p].arrivals.pop_front(); }}"
        );
        let got: Vec<_> = accesses(&body).iter().map(shape).collect();
        prop_assert_eq!(
            got,
            vec![(
                "arrivals".to_string(),
                Class::Sharded(Axis::Router),
                Index::Sweep,
                Op::Method,
                true
            )]
        );
    }

    /// A range-`for` binder is the shard's own id whatever it is named:
    /// `for <x> in 0..n { self.src_q[<x>]… }` stays home-indexed.
    #[test]
    fn range_for_binder_rename_preserves_home(raw in 0u64..u64::MAX) {
        let name = fresh(raw, 'a');
        let body = format!("for {name} in 0..n {{ self.src_q[{name}].pop_front(); }}");
        let got: Vec<_> = accesses(&body).iter().map(shape).collect();
        prop_assert_eq!(
            got,
            vec![(
                "src_q".to_string(),
                Class::Sharded(Axis::Node),
                Index::Home,
                Op::Method,
                true
            )]
        );
    }

    /// Renaming an `Option` alias bound through `as_mut()` must keep
    /// the downstream sharded access classified identically.
    #[test]
    fn option_alias_rename_preserves_classification(raw in 0u64..u64::MAX) {
        let name = fresh(raw, 'a');
        let body = format!(
            "let Some({name}) = self.cm.as_mut() else {{ return }}; {name}.free[ridx] += x;"
        );
        let got: Vec<_> = accesses(&body).iter().map(shape).collect();
        prop_assert_eq!(
            got,
            vec![(
                "free".to_string(),
                Class::Sharded(Axis::Router),
                Index::Home,
                Op::Compound,
                true
            )]
        );
    }

    /// An arbitrary unknown identifier in a shard bracket must never
    /// classify as `Home` — the fallback is `Unknown`, which the
    /// parallel-phase rules treat exactly like foreign.
    #[test]
    fn unknown_index_never_classifies_home(raw in 0u64..u64::MAX) {
        let name = fresh(raw, 'a');
        for body in [
            format!("self.routers[{name}].outputs[p].credits[v] -= s;"),
            format!("self.src_q[{name}].pop_front();"),
            format!("self.free[{name} + 1] += x;"),
            format!("let q = &mut self.routers[{name}]; q.inputs[p].arrivals.pop_front();"),
        ] {
            let got = accesses(&body);
            prop_assert_eq!(got.len(), 1, "one access in {}: {:?}", body, got);
            prop_assert!(
                got[0].class.is_sharded(),
                "sharded access expected in {}",
                body
            );
            prop_assert_eq!(
                got[0].index,
                Index::Unknown,
                "unproven index must degrade to Unknown in {}",
                body
            );
        }
    }

    /// Foreign naming stays foreign under suffix renaming, and mixing a
    /// foreign-named id into an otherwise-home bracket keeps the access
    /// foreign: the pessimistic reading wins.
    #[test]
    fn foreign_prefix_dominates(raw in 0u64..u64::MAX) {
        let suffix = format!("{raw:x}");
        let one = accesses(&format!(
            "self.routers[up_{suffix}].outputs[p].credit_events.push_back(x);"
        ));
        prop_assert_eq!(one.len(), 1);
        prop_assert_eq!(one[0].index, Index::Foreign);

        let mixed = accesses(&format!("self.free[ridx + up_{suffix}] += x;"));
        prop_assert_eq!(mixed.len(), 1);
        prop_assert_eq!(mixed[0].index, Index::Foreign);
    }
}
