//! `ofar-analyze` — workspace-specific static analysis for the OFAR
//! simulator, exposed through the `ofar-lint` binary.
//!
//! The analyzer gates the planned group-parallel engine rewrite
//! (ROADMAP item 1) on five mechanically-checked contracts:
//! determinism (D rules), hot-path allocation freedom (H rules),
//! snapshot completeness (S rules), release-panic freedom (P rules)
//! and phase discipline (R rules — the cycle loop of `Network::step`
//! is segmented into declared phases and each parallel phase is proved
//! free of cross-router writes). The R family additionally emits the
//! parallelization contract (`results/phase-contract.json`) the
//! parallel engine consumes; see [`contract`]. See [`rules::CATALOG`]
//! for the full rule list and DESIGN.md §13/§15 for the rationale and
//! suppression workflow.
//!
//! The pipeline is entirely hand-rolled — the build environment vendors
//! no parsing or serialization crates:
//!
//! 1. [`lexer`]: total Rust lexer (never panics, degrades to punct
//!    tokens on junk);
//! 2. [`parse`]: lightweight item parser — functions with call lists,
//!    structs with fields, `#[cfg(test)]` tracking;
//! 3. [`graph`]: conservative name-based call graph, hot-path
//!    reachability from `Network::step`;
//! 4. [`rules`]: the rule passes;
//! 5. [`suppress`] + [`baseline`]: `// lint:allow(rule, reason)`
//!    comments and the checked-in `lint-baseline.json`, both
//!    self-policing (malformed, unused or stale suppressions are
//!    findings too);
//! 6. [`report`]: human-readable text and the JSON artifact CI uploads.

#![warn(missing_docs)]

pub mod access;
pub mod baseline;
pub mod contract;
pub mod corpus;
pub mod graph;
pub mod json;
pub mod lexer;
pub mod parse;
pub mod phases;
pub mod race;
pub mod report;
pub mod rules;
pub mod suppress;

pub use baseline::Baseline;
pub use rules::{Finding, LintConfig};

use graph::CallGraph;
use rules::Suppression;
use std::io;
use std::path::Path;
use suppress::MarkerKind;

/// One source file to analyze.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// Crate the file belongs to (directory name under `crates/`).
    pub crate_name: String,
    /// File contents.
    pub text: String,
}

/// Result of an analyzer run.
#[derive(Debug)]
pub struct Analysis {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// All findings, suppressed ones included, sorted by
    /// (file, line, rule).
    pub findings: Vec<Finding>,
    /// The rendered parallelization contract, when the workspace has a
    /// phase root (`None` for corpora without a `Network::step`).
    pub contract: Option<String>,
}

impl Analysis {
    /// Findings no suppression claimed — the ones that fail the build.
    pub fn open(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }
}

/// Run the full analysis over in-memory sources.
pub fn analyze_sources(
    sources: &[SourceFile],
    cfg: &LintConfig,
    baseline: Option<&Baseline>,
) -> Analysis {
    let files: Vec<parse::File> = sources
        .iter()
        .map(|s| parse::parse(&s.path, &s.crate_name, &s.text, lexer::lex(&s.text)))
        .collect();
    let graph = CallGraph::build(&files);
    let reachable = graph.reachable(&files, &cfg.hot_roots);
    let mut findings = rules::run(&files, cfg, &reachable);
    let (rfinds, phase_info) = phases::analyze(&files, &graph, cfg);
    findings.extend(rfinds);
    let mut extra = Vec::new();

    // Inline suppressions: a well-formed `lint:allow` claims matching
    // findings inside its scope; malformed or unused markers are
    // findings themselves.
    for file in &files {
        let markers = suppress::scan(file);
        let mut used = vec![false; markers.len()];
        for f in findings.iter_mut() {
            if f.file != file.path || f.suppressed.is_some() {
                continue;
            }
            let hit = markers.iter().enumerate().find(|(_, m)| {
                m.kind == MarkerKind::Allow
                    && m.rule == f.rule
                    && !m.reason.trim().is_empty()
                    && f.line >= m.scope.0
                    && f.line <= m.scope.1
            });
            if let Some((i, m)) = hit {
                used[i] = true;
                f.suppressed = Some(Suppression {
                    via: "inline",
                    reason: m.reason.clone(),
                });
            }
        }
        for (i, m) in markers.iter().enumerate() {
            let malformed = m.rule.is_empty()
                || !rules::known_rule(&m.rule)
                || (m.kind == MarkerKind::Allow && m.reason.trim().is_empty());
            if malformed {
                extra.push(Finding {
                    rule: rules::RULE_BAD_SUPPRESSION,
                    file: file.path.clone(),
                    line: m.line,
                    message: if m.rule.is_empty() || !rules::known_rule(&m.rule) {
                        format!(
                            "malformed suppression: `{}` is not a rule id (see \
                             ofar-lint --list-rules)",
                            m.rule
                        )
                    } else {
                        "suppression without a reason: write \
                         lint:allow(RULE, why this is acceptable)"
                            .to_string()
                    },
                    snippet: snippet_of(&file.src, m.line),
                    suppressed: None,
                });
            } else if m.kind == MarkerKind::Allow && !used[i] {
                extra.push(Finding {
                    rule: rules::RULE_UNUSED_SUPPRESSION,
                    file: file.path.clone(),
                    line: m.line,
                    message: format!("lint:allow({}) suppresses nothing — remove it", m.rule),
                    snippet: snippet_of(&file.src, m.line),
                    suppressed: None,
                });
            }
        }
    }

    // Stale-waiver hygiene (S002): every waiver the checked-in contract
    // carries must still match a live *suppressed* R finding. A waiver
    // whose violation was fixed (or drifted to another line) is a hole
    // the next violation could hide in — the dynamic certifier
    // cross-references witnesses against this same list, so it must
    // stay exact.
    if let Some(text) = &cfg.contract {
        match race::load_waivers(text) {
            Ok(waivers) => {
                for w in &waivers {
                    let live = findings.iter().any(|f| {
                        f.suppressed.is_some()
                            && f.rule == w.rule
                            && f.file == w.file
                            && u64::from(f.line) == w.line
                    });
                    if !live {
                        let snippet = files
                            .iter()
                            .find(|f| f.path == w.file)
                            .map(|f| snippet_of(&f.src, w.line as u32))
                            .unwrap_or_default();
                        extra.push(Finding {
                            rule: rules::RULE_STALE_WAIVER,
                            file: w.file.clone(),
                            line: w.line as u32,
                            message: format!(
                                "stale contract waiver: {} at {}:{} matches no live \
                                 suppressed finding — regenerate the contract \
                                 (ofar-lint --emit-contract)",
                                w.rule, w.file, w.line
                            ),
                            snippet,
                            suppressed: None,
                        });
                    }
                }
            }
            Err(e) => extra.push(Finding {
                rule: rules::RULE_STALE_WAIVER,
                file: "results/phase-contract.json".to_string(),
                line: 0,
                message: format!("contract waiver list unreadable: {e}"),
                snippet: String::new(),
                suppressed: None,
            }),
        }
    }

    if let Some(b) = baseline {
        extra.extend(b.apply(&mut findings));
    }
    findings.extend(extra);
    findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
    let contract = phase_info.map(|info| contract::render(&info, &findings));
    Analysis {
        files_scanned: files.len(),
        findings,
        contract,
    }
}

fn snippet_of(src: &str, line: u32) -> String {
    src.lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or("")
        .trim()
        .to_string()
}

/// Collect the workspace's own sources: `src/` of the root package and
/// of every crate under `crates/`. The vendored stand-ins under
/// `vendor/` and the analyzer's violation fixtures are deliberately out
/// of scope.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    push_tree(&root.join("src"), "ofar", root, &mut out)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<_> = std::fs::read_dir(&crates)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            push_tree(&dir.join("src"), &name, root, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

fn push_tree(
    dir: &Path,
    crate_name: &str,
    root: &Path,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            push_tree(&p, crate_name, root, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                path: rel,
                crate_name: crate_name.to_string(),
                text: std::fs::read_to_string(&p)?,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Analysis {
        let sf = SourceFile {
            path: "crates/engine/src/t.rs".to_string(),
            crate_name: "engine".to_string(),
            text: src.to_string(),
        };
        analyze_sources(&[sf], &LintConfig::default(), None)
    }

    #[test]
    fn inline_allow_claims_finding() {
        let a = one("use std::collections::HashMap; // lint:allow(D001, membership-only)\n");
        assert_eq!(a.open().count(), 0);
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].suppressed.as_ref().unwrap().via, "inline");
    }

    #[test]
    fn allow_without_reason_is_reported_and_does_not_suppress() {
        let a = one("use std::collections::HashMap; // lint:allow(D001)\n");
        let rules_open: Vec<&str> = a.open().map(|f| f.rule).collect();
        assert!(rules_open.contains(&rules::RULE_HASH_CONTAINER));
        assert!(rules_open.contains(&rules::RULE_BAD_SUPPRESSION));
    }

    #[test]
    fn unused_allow_is_reported() {
        let a = one("// lint:allow(H001, nothing here allocates)\nfn f() {}\n");
        let rules_open: Vec<&str> = a.open().map(|f| f.rule).collect();
        assert_eq!(rules_open, vec![rules::RULE_UNUSED_SUPPRESSION]);
    }

    #[test]
    fn unknown_rule_is_reported() {
        let a = one("// lint:allow(Z999, bogus)\nfn f() {}\n");
        let rules_open: Vec<&str> = a.open().map(|f| f.rule).collect();
        assert_eq!(rules_open, vec![rules::RULE_BAD_SUPPRESSION]);
    }

    #[test]
    fn baseline_claims_finding() {
        let sf = SourceFile {
            path: "crates/engine/src/t.rs".to_string(),
            crate_name: "engine".to_string(),
            text: "use std::collections::HashMap;\n".to_string(),
        };
        let b = Baseline::parse(
            r#"{"version": 1, "entries": [{"rule": "D001",
                "file": "crates/engine/src/t.rs",
                "snippet": "use std::collections::HashMap;",
                "reason": "legacy, tracked"}]}"#,
        )
        .unwrap();
        let a = analyze_sources(&[sf], &LintConfig::default(), Some(&b));
        assert_eq!(a.open().count(), 0);
        assert_eq!(a.findings[0].suppressed.as_ref().unwrap().via, "baseline");
    }
}
