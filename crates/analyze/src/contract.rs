//! The parallelization-contract artifact (`results/phase-contract.json`).
//!
//! Rendered from the phase analysis after suppression claiming, the
//! contract is the machine-readable spec the parallel engine rewrite
//! consumes: the declared phases in execution order, each phase's
//! read/write footprint over classified engine state, the disjointness
//! verdict for the parallel phases, and every waived R finding with
//! its mandatory reason. The artifact is deterministic (all sets are
//! ordered, no timestamps) and checked in; CI regenerates it and fails
//! on drift, exactly like `lint-baseline.json`.

use crate::json::escape;
use crate::phases::PhaseInfo;
use crate::rules::{Finding, RULE_PHASE_ACCUM, RULE_PHASE_CROSS_WRITE, RULE_PHASE_READ_RACE};
use std::fmt::Write as _;

/// Format version of the contract artifact.
pub const CONTRACT_VERSION: u32 = 1;

/// Render the contract. `findings` is the final (post-suppression)
/// finding list of the same analysis run.
pub fn render(info: &PhaseInfo, findings: &[Finding]) -> String {
    let is_race_rule =
        |r: &str| r == RULE_PHASE_CROSS_WRITE || r == RULE_PHASE_READ_RACE || r == RULE_PHASE_ACCUM;
    let open_violations = findings
        .iter()
        .filter(|f| is_race_rule(f.rule) && f.suppressed.is_none())
        .count();
    let coverage_gaps = findings
        .iter()
        .filter(|f| f.rule == "R004" && f.suppressed.is_none())
        .count();
    let waivers: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule.starts_with('R') && f.suppressed.is_some())
        .collect();

    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"tool\": \"ofar-lint\",");
    let _ = writeln!(s, "  \"contract_version\": {CONTRACT_VERSION},");
    let _ = writeln!(s, "  \"root\": \"{}\",", escape(&info.root));
    let _ = writeln!(s, "  \"root_file\": \"{}\",", escape(&info.root_file));
    s.push_str("  \"phases\": [");
    for (i, p) in info.phases.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {\n");
        let _ = writeln!(s, "      \"name\": \"{}\",", escape(&p.name));
        let _ = writeln!(s, "      \"kind\": \"{}\",", p.kind.name());
        let _ = writeln!(s, "      \"order\": {i},");
        s.push_str("      \"functions\": [");
        for (j, f) in p.functions.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\"", escape(f));
        }
        s.push_str("],\n");
        s.push_str("      \"footprint\": [");
        for (j, (field, foot)) in p.footprint.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str("\n        {");
            let _ = write!(
                s,
                "\"field\": \"{}\", \"class\": \"{}\", ",
                escape(field),
                foot.class.map_or("unknown", |c| c.name())
            );
            let list = |items: Vec<String>| {
                let mut t = String::from("[");
                for (k, it) in items.iter().enumerate() {
                    if k > 0 {
                        t.push_str(", ");
                    }
                    let _ = write!(t, "\"{}\"", escape(it));
                }
                t.push(']');
                t
            };
            let _ = write!(
                s,
                "\"reads\": {}, \"writes\": {}, \"write_ops\": {}",
                list(foot.read_idx.iter().map(|x| x.to_string()).collect()),
                list(foot.write_idx.iter().map(|x| x.to_string()).collect()),
                list(foot.write_ops.iter().cloned().collect()),
            );
            s.push('}');
        }
        if !p.footprint.is_empty() {
            s.push_str("\n      ");
        }
        s.push_str("]\n    }");
    }
    if !info.phases.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n");
    s.push_str("  \"disjointness\": {\n");
    let _ = writeln!(
        s,
        "    \"verdict\": \"{}\",",
        if open_violations == 0 && coverage_gaps == 0 {
            "disjoint"
        } else {
            "violated"
        }
    );
    let _ = writeln!(s, "    \"open_violations\": {open_violations},");
    let _ = writeln!(s, "    \"coverage_gaps\": {coverage_gaps},");
    let _ = writeln!(s, "    \"waived\": {}", waivers.len());
    s.push_str("  },\n");
    s.push_str("  \"waivers\": [");
    for (i, w) in waivers.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let reason = w.suppressed.as_ref().map_or("", |x| x.reason.as_str());
        let _ = write!(
            s,
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
            w.rule,
            escape(&w.file),
            w.line,
            escape(reason)
        );
    }
    if !waivers.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json as j;
    use crate::phases::{FieldFoot, PhaseKind, PhaseSummary};
    use crate::rules::Suppression;

    fn sample_info() -> PhaseInfo {
        let mut foot = FieldFoot {
            class: Some(crate::access::Class::Sharded(crate::access::Axis::Router)),
            ..FieldFoot::default()
        };
        foot.read_idx.insert("home");
        foot.write_idx.insert("home");
        foot.write_ops.insert("compound".to_string());
        PhaseInfo {
            root: "Network::step".to_string(),
            root_file: "crates/engine/src/network.rs".to_string(),
            phases: vec![PhaseSummary {
                name: "route".to_string(),
                kind: PhaseKind::Parallel,
                line: 10,
                functions: ["Network::route_and_allocate".to_string()].into(),
                footprint: [("credits".to_string(), foot)].into(),
            }],
        }
    }

    #[test]
    fn contract_is_valid_json_with_verdict() {
        let out = render(&sample_info(), &[]);
        let v = j::parse(&out).expect("contract must parse");
        assert_eq!(
            v.get("disjointness").unwrap().get("verdict"),
            Some(&j::Value::Str("disjoint".to_string()))
        );
        let phases = v.get("phases").unwrap().as_arr().unwrap();
        assert_eq!(phases.len(), 1);
        assert_eq!(
            phases[0].get("kind"),
            Some(&j::Value::Str("parallel".to_string()))
        );
    }

    #[test]
    fn open_violation_flips_verdict_and_waiver_is_listed() {
        let open = Finding {
            rule: crate::rules::RULE_PHASE_CROSS_WRITE,
            file: "a.rs".to_string(),
            line: 5,
            message: String::new(),
            snippet: String::new(),
            suppressed: None,
        };
        let out = render(&sample_info(), std::slice::from_ref(&open));
        let v = j::parse(&out).unwrap();
        assert_eq!(
            v.get("disjointness").unwrap().get("verdict"),
            Some(&j::Value::Str("violated".to_string()))
        );

        let mut waived = open;
        waived.suppressed = Some(Suppression {
            via: "inline",
            reason: "shared fate RNG, serialized in PR-10".to_string(),
        });
        let out = render(&sample_info(), &[waived]);
        let v = j::parse(&out).unwrap();
        assert_eq!(
            v.get("disjointness").unwrap().get("verdict"),
            Some(&j::Value::Str("disjoint".to_string()))
        );
        let ws = v.get("waivers").unwrap().as_arr().unwrap();
        assert_eq!(ws.len(), 1);
        assert!(ws[0].get("reason").is_some());
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = render(&sample_info(), &[]);
        let b = render(&sample_info(), &[]);
        assert_eq!(a, b);
    }
}
