//! Inline suppression comments.
//!
//! Syntax (inside any `//` comment):
//!
//! ```text
//! // lint:allow(H001, reason the finding is acceptable)
//! // lint:expect(H001)            — fixture corpus annotation
//! ```
//!
//! Scope of an `allow`:
//!
//! * the **same line** as the finding, or the **line directly above** it;
//! * when the comment sits on (or directly above) a `fn` signature, the
//!   whole function body;
//! * when it sits on (or directly above) a `struct` keyword, the whole
//!   field list (for the snapshot-completeness rule).
//!
//! The reason is mandatory: an `allow` without one is itself reported
//! ([`crate::rules::RULE_BAD_SUPPRESSION`]), and so is an `allow` that
//! suppresses nothing ([`crate::rules::RULE_UNUSED_SUPPRESSION`]) — the
//! suppression set can only shrink.

use crate::parse::File;

/// One parsed `lint:allow` / `lint:expect` marker.
#[derive(Clone, Debug)]
pub struct Marker {
    /// `allow` or `expect`.
    pub kind: MarkerKind,
    /// Rule id the marker names (`H001`).
    pub rule: String,
    /// Justification (empty for `expect`, mandatory for `allow`).
    pub reason: String,
    /// Line the comment starts on.
    pub line: u32,
    /// Line range `[lo, hi]` the marker covers (computed from scope).
    pub scope: (u32, u32),
}

/// Whether a marker suppresses or expects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MarkerKind {
    /// `lint:allow` — suppresses matching findings within scope.
    Allow,
    /// `lint:expect` — fixture annotation: a finding must fire here.
    Expect,
}

/// Scan one parsed file for markers, resolving scopes against its items.
///
/// Doc comments (`///`, `//!`, `/**`, `/*!`) are exempt: they describe
/// the syntax rather than use it, and suppressions belong on plain
/// comments next to the code they justify. A `lint:allow` not directly
/// followed by `(` is likewise treated as prose — an actual mistyped
/// suppression reveals itself anyway, because the finding it meant to
/// claim stays open.
pub fn scan(file: &File) -> Vec<Marker> {
    let mut out = Vec::new();
    for tok in &file.comments {
        let text = tok.text(&file.src);
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/*!")
            || (text.starts_with("/**") && !text.starts_with("/**/"))
        {
            continue;
        }
        let mut rest = text;
        while let Some(at) = rest.find("lint:") {
            rest = &rest[at + 5..];
            let kind = if let Some(r) = rest.strip_prefix("allow") {
                rest = r;
                MarkerKind::Allow
            } else if let Some(r) = rest.strip_prefix("expect") {
                rest = r;
                MarkerKind::Expect
            } else {
                continue;
            };
            let Some(body) = rest.strip_prefix('(') else {
                continue;
            };
            let Some(close) = body.find(')') else {
                out.push(Marker {
                    kind,
                    rule: String::new(),
                    reason: String::new(),
                    line: tok.line,
                    scope: (tok.line, tok.line + 1),
                });
                rest = body;
                continue;
            };
            let inner = &body[..close];
            rest = &body[close + 1..];
            let (rule, reason) = match inner.split_once(',') {
                Some((r, why)) => (r.trim().to_string(), why.trim().to_string()),
                None => (inner.trim().to_string(), String::new()),
            };
            let scope = scope_of(file, tok.line);
            out.push(Marker {
                kind,
                rule,
                reason,
                line: tok.line,
                scope,
            });
        }
    }
    out
}

/// A marker at `line` covers `[line, line + 1]` by default; sitting on
/// (or directly above) an item signature widens it to the item.
fn scope_of(file: &File, line: u32) -> (u32, u32) {
    for f in &file.fns {
        if f.line == line || f.line == line + 1 {
            return (line, f.end_line);
        }
    }
    for s in &file.structs {
        if s.line == line || s.line == line + 1 {
            let hi = s.fields.iter().map(|fl| fl.line).max().unwrap_or(s.line);
            return (line, hi);
        }
    }
    (line, line + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn scan_src(src: &str) -> (Vec<Marker>, File) {
        let f = parse("t.rs", "engine", src, lex(src));
        (scan(&f), f)
    }

    #[test]
    fn parses_rule_and_reason() {
        let (m, _) = scan_src("// lint:allow(H001, cold path, runs once per fault)\nlet x = 1;");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].rule, "H001");
        assert_eq!(m[0].reason, "cold path, runs once per fault");
        assert_eq!(m[0].scope, (1, 2));
    }

    #[test]
    fn fn_scope_covers_whole_body() {
        let (m, _) = scan_src(
            "// lint:allow(P002, indices bounded by radix)\nfn f() {\n  let a = 1;\n  let b = 2;\n}\n",
        );
        assert_eq!(m[0].scope, (1, 5));
    }

    #[test]
    fn missing_reason_is_empty() {
        let (m, _) = scan_src("// lint:allow(D001)\nlet x = 1;");
        assert_eq!(m[0].rule, "D001");
        assert!(m[0].reason.is_empty());
    }

    #[test]
    fn expect_markers() {
        let (m, _) = scan_src("let v = vec![]; // lint:expect(H001)");
        assert_eq!(m[0].kind, MarkerKind::Expect);
        assert_eq!(m[0].rule, "H001");
    }
}
