//! A minimal JSON reader/writer.
//!
//! The workspace vendors no serialization crates, so the analyzer
//! carries its own ~150-line JSON subset: objects, arrays, strings,
//! integers, booleans and null — exactly what the baseline file and the
//! report format need. The parser is total (returns `Err`, never
//! panics) and rejects trailing garbage.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Numbers are kept as `i64`: the analyzer's
/// formats only contain line numbers and counts.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (the only number form the analyzer emits).
    Int(i64),
    /// String (escapes resolved).
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object. `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Field of an object, if this is an object and the field exists.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document.
pub fn parse(src: &str) -> Result<Value, String> {
    let b = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut m = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(m));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let v = parse_value(b, pos)?;
                m.insert(key, v);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(m));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut v = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(v));
            }
            loop {
                v.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(v));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            if b[*pos] == b'-' {
                *pos += 1;
            }
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Value::Int)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}", pos = *pos)),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_string()),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // boundaries are valid).
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let s = std::str::from_utf8(&b[*pos..*pos + len]).map_err(|e| e.to_string())?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

/// Escape a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_baseline_shape() {
        let src = r#"{
            "version": 1,
            "entries": [
                {"rule": "S001", "file": "a.rs", "line": 3, "ok": true, "none": null}
            ]
        }"#;
        let v = parse(src).unwrap();
        let entries = v.get("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries[0].get("rule").unwrap().as_str(), Some("S001"));
        assert_eq!(entries[0].get("line"), Some(&Value::Int(3)));
        assert_eq!(entries[0].get("ok"), Some(&Value::Bool(true)));
        assert_eq!(entries[0].get("none"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escapes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let v = parse(&format!("\"{}\"", escape("a\"b\\c\nd"))).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd"));
    }
}
