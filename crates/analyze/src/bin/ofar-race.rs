//! `ofar-race` — the schedule-adversarial commutativity certifier.
//!
//! ```text
//! ofar-race [--root DIR] [--emit FILE] [--verify FILE] [--full]
//! ```
//!
//! Executes the parallelization contract: every mechanism × traffic
//! pattern is driven under the identity shard schedule and under K
//! adversarial schedules, byte-comparing snapshots at every epoch.
//! Divergences are bisected to the first divergent cycle and reported
//! as structured witnesses cross-referenced against the contract's
//! waiver list (`results/phase-contract.json`, auto-loaded from the
//! root when present).
//!
//! Exit status: 0 when every cell commutes, 1 on any divergence, 2 on
//! usage or I/O errors. `--emit` writes the verdict artifact
//! (`results/commutativity.json`, atomically); `--verify` byte-compares
//! a checked-in artifact against the fresh one and fails on drift.
//! `--full` (or `OFAR_FULL=1`) runs the nightly sweep: h=4, longer
//! runs, six schedules, plus the congestion-managed overload cell.
//! The artifact is always rendered from the smoke configuration, so
//! `--emit`/`--verify` reject `--full`.

use ofar_analyze::race::{
    certify_mechanism, full_patterns, load_waivers, render, smoke_patterns, RaceConfig, Verdict,
};
use ofar_routing::MechanismKind;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    emit: Option<PathBuf>,
    verify: Option<PathBuf>,
    full: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        emit: None,
        verify: None,
        full: std::env::var("OFAR_FULL").is_ok_and(|v| v == "1"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--root" => args.root = value("--root")?,
            "--emit" => args.emit = Some(value("--emit")?),
            "--verify" => args.verify = Some(value("--verify")?),
            "--full" => args.full = true,
            "--help" | "-h" => {
                return Err(
                    "usage: ofar-race [--root DIR] [--emit FILE] [--verify FILE] [--full]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if args.full && (args.emit.is_some() || args.verify.is_some()) {
        return Err(
            "--full cannot be combined with --emit/--verify: the checked-in artifact \
             is generated from the smoke configuration"
                .to_string(),
        );
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let rc = if args.full {
        RaceConfig::full()
    } else {
        RaceConfig::smoke()
    };
    let patterns = if args.full {
        full_patterns()
    } else {
        smoke_patterns()
    };

    // Waiver cross-reference: auto-load the checked-in contract.
    let contract_path = args.root.join("results/phase-contract.json");
    let waivers = match std::fs::read_to_string(&contract_path) {
        Ok(text) => match load_waivers(&text) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("ofar-race: {}: {e}", contract_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => {
            eprintln!(
                "ofar-race: no contract at {} — witnesses will not be cross-referenced",
                contract_path.display()
            );
            Vec::new()
        }
    };

    println!(
        "ofar-race: h={} cycles={} epoch={} schedules={} ({} mechanisms × {} patterns)",
        rc.h,
        rc.cycles,
        rc.epoch,
        rc.schedules,
        MechanismKind::paper_set().len(),
        patterns.len()
    );

    let mut verdicts: Vec<Verdict> = Vec::new();
    let mut diverged = false;
    for kind in MechanismKind::paper_set() {
        for cell in &patterns {
            let v = match certify_mechanism(kind, cell, &rc, &waivers) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("ofar-race: {kind}/{}: {e}", cell.label);
                    return ExitCode::from(2);
                }
            };
            match &v.witness {
                None => println!("  {kind}/{}: commutes", cell.label),
                Some(w) => {
                    diverged = true;
                    println!("  DIVERGES  {w}");
                    for waiver in &w.related_waivers {
                        println!(
                            "            refuted waiver: {} at {}:{} — {}",
                            waiver.rule, waiver.file, waiver.line, waiver.reason
                        );
                    }
                }
            }
            verdicts.push(v);
        }
    }

    let artifact = render(&rc, &verdicts, waivers.len());
    if let Some(p) = &args.emit {
        // tmp + rename: CI never sees a torn artifact.
        let tmp = p.with_extension("json.tmp");
        let write = std::fs::write(&tmp, &artifact).and_then(|()| std::fs::rename(&tmp, p));
        if let Err(e) = write {
            eprintln!("ofar-race: {}: {e}", p.display());
            return ExitCode::from(2);
        }
        println!("ofar-race: wrote verdicts to {}", p.display());
    }
    if let Some(p) = &args.verify {
        let checked_in = match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ofar-race: {}: {e}", p.display());
                return ExitCode::from(2);
            }
        };
        if checked_in != artifact {
            eprintln!(
                "ofar-race: {} drifted from the fresh verdicts — \
                 regenerate with --emit and commit the diff",
                p.display()
            );
            return ExitCode::FAILURE;
        }
        println!("ofar-race: verdicts verified: {}", p.display());
    }

    if diverged {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
