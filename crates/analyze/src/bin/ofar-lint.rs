//! `ofar-lint` — the workspace determinism & hot-path gate.
//!
//! ```text
//! ofar-lint [--root DIR] [--json FILE] [--baseline FILE]
//!           [--update-baseline] [--selftest] [--list-rules]
//!           [--emit-contract FILE] [--verify-contract FILE]
//! ```
//!
//! Deny by default: exits 1 when any unsuppressed finding remains, 0 on
//! a clean run, 2 on usage or I/O errors. `--selftest` runs the
//! embedded violation-fixture corpus instead of scanning the workspace.
//! `--emit-contract` writes the parallelization contract the R-family
//! phase analysis produced (atomically, tmp + rename);
//! `--verify-contract` byte-compares a checked-in contract against the
//! fresh one and fails on drift.

use ofar_analyze::{analyze_sources, collect_sources, corpus, report, rules, Baseline, LintConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json_out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    selftest: bool,
    list_rules: bool,
    emit_contract: Option<PathBuf>,
    verify_contract: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json_out: None,
        baseline: None,
        update_baseline: false,
        selftest: false,
        list_rules: false,
        emit_contract: None,
        verify_contract: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(PathBuf::from)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--root" => args.root = value("--root")?,
            "--json" => args.json_out = Some(value("--json")?),
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--update-baseline" => args.update_baseline = true,
            "--selftest" => args.selftest = true,
            "--list-rules" => args.list_rules = true,
            "--emit-contract" => args.emit_contract = Some(value("--emit-contract")?),
            "--verify-contract" => args.verify_contract = Some(value("--verify-contract")?),
            "--help" | "-h" => {
                return Err(
                    "usage: ofar-lint [--root DIR] [--json FILE] [--baseline FILE] \
                            [--update-baseline] [--selftest] [--list-rules] \
                            [--emit-contract FILE] [--verify-contract FILE]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for (id, desc) in rules::CATALOG {
            println!("{id}  {desc}");
        }
        return ExitCode::SUCCESS;
    }

    if args.selftest {
        return match corpus::selftest() {
            Ok(summary) => {
                println!("{summary}");
                ExitCode::SUCCESS
            }
            Err(errors) => {
                for e in errors {
                    eprintln!("{e}");
                }
                ExitCode::FAILURE
            }
        };
    }

    let sources = match collect_sources(&args.root) {
        Ok(s) if !s.is_empty() => s,
        Ok(_) => {
            eprintln!("ofar-lint: no sources under {}", args.root.display());
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("ofar-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut cfg = LintConfig::default();
    // Stale-waiver hygiene (S002): whenever the checked-in contract
    // exists, every one of its waivers must still match a live
    // suppressed finding.
    if let Ok(text) = std::fs::read_to_string(args.root.join("results/phase-contract.json")) {
        cfg.contract = Some(text);
    }

    // Default baseline: lint-baseline.json at the root, when present.
    let baseline_path = args.baseline.clone().or_else(|| {
        let p = args.root.join("lint-baseline.json");
        p.is_file().then_some(p)
    });
    let baseline = match &baseline_path {
        Some(p) if !args.update_baseline => match std::fs::read_to_string(p) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("ofar-lint: {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("ofar-lint: {}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
        _ => None,
    };

    let analysis = analyze_sources(&sources, &cfg, baseline.as_ref());

    if args.update_baseline {
        let out = baseline_path.unwrap_or_else(|| args.root.join("lint-baseline.json"));
        let b = Baseline::from_findings(&analysis.findings);
        if let Err(e) = std::fs::write(&out, b.to_json()) {
            eprintln!("ofar-lint: {}: {e}", out.display());
            return ExitCode::from(2);
        }
        println!(
            "ofar-lint: wrote {} entr{} to {}",
            b.entries.len(),
            if b.entries.len() == 1 { "y" } else { "ies" },
            out.display()
        );
        return ExitCode::SUCCESS;
    }

    if let Some(p) = &args.json_out {
        if let Err(e) = std::fs::write(p, report::json(&analysis.findings, analysis.files_scanned))
        {
            eprintln!("ofar-lint: {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }

    if args.emit_contract.is_some() || args.verify_contract.is_some() {
        let Some(contract) = &analysis.contract else {
            eprintln!("ofar-lint: no phase root found — cannot produce a contract");
            return ExitCode::from(2);
        };
        if let Some(p) = &args.emit_contract {
            // tmp + rename: CI never sees a torn artifact.
            let tmp = p.with_extension("json.tmp");
            let write = std::fs::write(&tmp, contract).and_then(|()| std::fs::rename(&tmp, p));
            if let Err(e) = write {
                eprintln!("ofar-lint: {}: {e}", p.display());
                return ExitCode::from(2);
            }
            println!("ofar-lint: wrote contract to {}", p.display());
        }
        if let Some(p) = &args.verify_contract {
            let checked_in = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("ofar-lint: {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            };
            if checked_in != *contract {
                eprintln!(
                    "ofar-lint: {} drifted from the fresh contract — \
                     regenerate with --emit-contract and commit the diff",
                    p.display()
                );
                return ExitCode::FAILURE;
            }
            println!("ofar-lint: contract verified: {}", p.display());
        }
    }

    print!(
        "{}",
        report::text(&analysis.findings, analysis.files_scanned)
    );
    if analysis.open().next().is_some() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
