//! A lightweight item parser over the lexer's token stream.
//!
//! This is **not** a Rust parser: it recovers exactly the shape the
//! rules need — functions (name, enclosing `impl` type, body token
//! range, test-ness), struct fields (name, type text, line) and the
//! calls made inside each function body — and is total on arbitrary
//! token streams (it only ever advances, and gives up gracefully on
//! anything it does not recognize).

use crate::lexer::{TokKind, Token};

/// One parsed source file.
#[derive(Debug)]
pub struct File {
    /// Workspace-relative path (display + suppression key).
    pub path: String,
    /// Directory name of the owning crate (`engine`, `topology`, …).
    pub crate_name: String,
    /// Full source text.
    pub src: String,
    /// Code tokens (comments stripped) — item/rule passes read these.
    pub tokens: Vec<Token>,
    /// Comment tokens, in source order — the suppression scanner reads
    /// these.
    pub comments: Vec<Token>,
    /// Functions found in this file.
    pub fns: Vec<FnItem>,
    /// Structs (with named fields) found in this file.
    pub structs: Vec<StructItem>,
}

/// A function item.
#[derive(Debug)]
pub struct FnItem {
    /// Bare name (`step`).
    pub name: String,
    /// Enclosing `impl` type, if any (`Network`).
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Line of the closing brace of the body.
    pub end_line: u32,
    /// Token index range of the body, **excluding** the outer braces.
    pub body: (usize, usize),
    /// True when the receiver is `&mut self` / `mut self` (or
    /// `self: &mut Self`) — the callee may mutate its owner, which the
    /// R-family access analysis charges to the call site.
    pub mut_self: bool,
    /// True inside a `#[cfg(test)]` module or under `#[test]`.
    pub is_test: bool,
    /// Calls appearing in the body.
    pub calls: Vec<Call>,
}

impl FnItem {
    /// `Type::name` when in an impl, else the bare name.
    pub fn qname(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A call site inside a function body.
#[derive(Debug)]
pub struct Call {
    /// Callee name (`push_ack`, `collect`, or `vec!` for macros).
    pub name: String,
    /// `Some("Llr")` for `Llr::push_ack(…)`-style qualified calls.
    pub qualifier: Option<String>,
    /// True for `.name(…)` method calls.
    pub is_method: bool,
    /// Line of the call.
    pub line: u32,
}

/// A struct with named fields.
#[derive(Debug)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// Declared named fields in order.
    pub fields: Vec<FieldItem>,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// True inside a `#[cfg(test)]` module.
    pub is_test: bool,
}

/// One named struct field.
#[derive(Debug)]
pub struct FieldItem {
    /// Field name.
    pub name: String,
    /// Source text of the type, tokens joined by spaces.
    pub ty: String,
    /// 1-based line of the field name.
    pub line: u32,
}

/// Parse one source file. `tokens` must come from [`crate::lexer::lex`]
/// on `src`.
pub fn parse(path: &str, crate_name: &str, src: &str, tokens: Vec<Token>) -> File {
    // Comments are parsed out-of-band (suppressions); the item walker
    // works over code tokens, with a map back to original indices so
    // body ranges refer to the filtered stream.
    let (comments, code): (Vec<Token>, Vec<Token>) = tokens
        .iter()
        .copied()
        .partition(|t| matches!(t.kind, TokKind::LineComment | TokKind::BlockComment));
    let mut p = Parser {
        src,
        toks: &code,
        i: 0,
        fns: Vec::new(),
        structs: Vec::new(),
    };
    p.block(None, false, usize::MAX);
    let fns = std::mem::take(&mut p.fns);
    let structs = std::mem::take(&mut p.structs);
    let mut file = File {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
        src: src.to_string(),
        tokens: code,
        comments,
        fns,
        structs,
    };
    for f in &mut file.fns {
        f.calls = extract_calls(&file.src, &file.tokens, f.body);
    }
    file
}

struct Parser<'s> {
    src: &'s str,
    toks: &'s [Token],
    i: usize,
    fns: Vec<FnItem>,
    structs: Vec<StructItem>,
}

impl<'s> Parser<'s> {
    fn text(&self, i: usize) -> &'s str {
        self.toks[i].text(self.src)
    }

    fn is(&self, i: usize, s: &str) -> bool {
        i < self.toks.len() && self.text(i) == s
    }

    fn kind(&self, i: usize) -> Option<TokKind> {
        self.toks.get(i).map(|t| t.kind)
    }

    /// Skip a balanced `(…)`, `[…]`, `{…}` or `<…>` starting at `self.i`
    /// (which must sit on the opener). Always advances at least one.
    fn skip_balanced(&mut self) {
        let (open, close) = match self.toks.get(self.i).map(|t| t.text(self.src)) {
            Some("(") => ("(", ")"),
            Some("[") => ("[", "]"),
            Some("{") => ("{", "}"),
            Some("<") => ("<", ">"),
            _ => {
                self.i += 1;
                return;
            }
        };
        let mut depth = 0i64;
        while self.i < self.toks.len() {
            let t = self.text(self.i);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Skip an attribute `#[…]` / `#![…]`; `self.i` sits on `#`.
    /// Returns true when the attribute mentions `test` (covers both
    /// `#[test]` and `#[cfg(test)]`).
    fn skip_attr(&mut self) -> bool {
        self.i += 1; // '#'
        if self.is(self.i, "!") {
            self.i += 1;
        }
        if !self.is(self.i, "[") {
            return false;
        }
        let start = self.i;
        self.skip_balanced();
        (start..self.i).any(|j| self.kind(j) == Some(TokKind::Ident) && self.text(j) == "test")
    }

    /// Read a path (`a::b::C`) at `self.i`, returning its last segment.
    fn path_last_segment(&mut self) -> Option<String> {
        let mut last = None;
        loop {
            if self.kind(self.i) == Some(TokKind::Ident) {
                last = Some(self.text(self.i).to_string());
                self.i += 1;
                if self.is(self.i, ":") && self.is(self.i + 1, ":") {
                    self.i += 2;
                    continue;
                }
            }
            return last;
        }
    }

    /// Walk one brace-delimited region (or the whole file when `limit ==
    /// usize::MAX`), collecting items. `impl_type` names the enclosing
    /// impl; `in_test` marks `#[cfg(test)]` regions.
    fn block(&mut self, impl_type: Option<&str>, in_test: bool, limit: usize) {
        let mut pending_test = false;
        while self.i < self.toks.len() && self.i < limit {
            let t = self.text(self.i);
            match t {
                "#" => {
                    pending_test |= self.skip_attr();
                }
                "}" => {
                    self.i += 1;
                    return;
                }
                "mod" => {
                    let test = std::mem::take(&mut pending_test);
                    self.i += 1;
                    if self.kind(self.i) == Some(TokKind::Ident) {
                        self.i += 1;
                    }
                    if self.is(self.i, "{") {
                        self.i += 1;
                        self.block(None, in_test || test, limit);
                    } else if self.is(self.i, ";") {
                        self.i += 1;
                    }
                }
                "struct" => {
                    let test = std::mem::take(&mut pending_test);
                    self.struct_item(in_test || test);
                }
                "impl" => {
                    pending_test = false;
                    self.impl_item(in_test);
                }
                "trait" => {
                    pending_test = false;
                    // Default methods inside traits are functions too.
                    self.i += 1;
                    while self.i < self.toks.len() && !self.is(self.i, "{") && !self.is(self.i, ";")
                    {
                        if self.is(self.i, "<") {
                            self.skip_balanced();
                        } else {
                            self.i += 1;
                        }
                    }
                    if self.is(self.i, "{") {
                        self.i += 1;
                        self.block(None, in_test, limit);
                    } else {
                        self.i += 1;
                    }
                }
                "fn" => {
                    let test = std::mem::take(&mut pending_test);
                    self.fn_item(impl_type, in_test || test);
                }
                "macro_rules" => {
                    pending_test = false;
                    self.i += 1; // name comes after `!`
                    if self.is(self.i, "!") {
                        self.i += 1;
                    }
                    if self.kind(self.i) == Some(TokKind::Ident) {
                        self.i += 1;
                    }
                    self.skip_balanced();
                }
                "enum" | "union" => {
                    pending_test = false;
                    self.i += 1;
                    while self.i < self.toks.len() && !self.is(self.i, "{") && !self.is(self.i, ";")
                    {
                        if self.is(self.i, "<") {
                            self.skip_balanced();
                        } else {
                            self.i += 1;
                        }
                    }
                    self.skip_balanced();
                }
                "{" => {
                    // An unexpected block (unsafe, const block, …): walk
                    // it with the same context so nested items surface.
                    self.i += 1;
                    self.block(impl_type, in_test, limit);
                }
                _ => {
                    pending_test = false;
                    self.i += 1;
                }
            }
        }
    }

    fn struct_item(&mut self, is_test: bool) {
        let line = self.toks[self.i].line;
        self.i += 1; // `struct`
        let name = match self.kind(self.i) {
            Some(TokKind::Ident) => {
                let n = self.text(self.i).to_string();
                self.i += 1;
                n
            }
            _ => return,
        };
        if self.is(self.i, "<") {
            self.skip_balanced();
        }
        // `where` clause before the body.
        while self.i < self.toks.len()
            && !self.is(self.i, "{")
            && !self.is(self.i, ";")
            && !self.is(self.i, "(")
        {
            if self.is(self.i, "<") {
                self.skip_balanced();
            } else {
                self.i += 1;
            }
        }
        if self.is(self.i, "(") {
            // Tuple struct: skip to the `;`.
            self.skip_balanced();
            if self.is(self.i, ";") {
                self.i += 1;
            }
            return;
        }
        if !self.is(self.i, "{") {
            if self.is(self.i, ";") {
                self.i += 1;
            }
            return;
        }
        self.i += 1; // `{`
        let mut fields = Vec::new();
        // Field grammar at depth 0 of the body: attrs, optional
        // visibility, `name : type ,`.
        loop {
            while self.is(self.i, "#") {
                self.skip_attr();
            }
            if self.is(self.i, "pub") {
                self.i += 1;
                if self.is(self.i, "(") {
                    self.skip_balanced();
                }
            }
            if self.is(self.i, "}") {
                self.i += 1;
                break;
            }
            if self.kind(self.i) != Some(TokKind::Ident) || !self.is(self.i + 1, ":") {
                // Lost sync — bail out of the struct body.
                let mut depth = 1i64;
                while self.i < self.toks.len() && depth > 0 {
                    let t = self.text(self.i);
                    if t == "{" {
                        depth += 1;
                    } else if t == "}" {
                        depth -= 1;
                    }
                    self.i += 1;
                }
                break;
            }
            let fname = self.text(self.i).to_string();
            let fline = self.toks[self.i].line;
            self.i += 2; // name, ':'
            let ty_start = self.i;
            // Type runs to the next `,` or `}` at depth 0.
            let mut depth = 0i64;
            while self.i < self.toks.len() {
                let t = self.text(self.i);
                match t {
                    "<" | "(" | "[" => depth += 1,
                    ">" | ")" | "]" => depth -= 1,
                    "," if depth <= 0 => break,
                    "}" if depth <= 0 => break,
                    _ => {}
                }
                self.i += 1;
            }
            let ty = (ty_start..self.i)
                .map(|j| self.text(j))
                .collect::<Vec<_>>()
                .join(" ");
            fields.push(FieldItem {
                name: fname,
                ty,
                line: fline,
            });
            if self.is(self.i, ",") {
                self.i += 1;
            }
        }
        self.structs.push(StructItem {
            name,
            fields,
            line,
            is_test,
        });
    }

    fn impl_item(&mut self, in_test: bool) {
        self.i += 1; // `impl`
        if self.is(self.i, "<") {
            self.skip_balanced();
        }
        // Header runs to `{`; the implemented type is the path after the
        // last top-level `for` (trait impls), else the first path.
        let mut ty: Option<String> = None;
        let mut after_for = false;
        while self.i < self.toks.len() && !self.is(self.i, "{") && !self.is(self.i, ";") {
            if self.is(self.i, "for") {
                after_for = true;
                ty = None;
                self.i += 1;
                continue;
            }
            if self.is(self.i, "where") {
                // Type already read; skip the clause.
                while self.i < self.toks.len() && !self.is(self.i, "{") && !self.is(self.i, ";") {
                    if self.is(self.i, "<") {
                        self.skip_balanced();
                    } else {
                        self.i += 1;
                    }
                }
                break;
            }
            if self.kind(self.i) == Some(TokKind::Ident) && ty.is_none() {
                ty = self.path_last_segment();
                continue;
            }
            if self.is(self.i, "<") {
                self.skip_balanced();
                continue;
            }
            self.i += 1;
        }
        let _ = after_for;
        if self.is(self.i, "{") {
            self.i += 1;
            let ty = ty.unwrap_or_default();
            self.block(Some(&ty), in_test, usize::MAX);
        } else if self.is(self.i, ";") {
            self.i += 1;
        }
    }

    fn fn_item(&mut self, impl_type: Option<&str>, is_test: bool) {
        let line = self.toks[self.i].line;
        self.i += 1; // `fn`
        let name = match self.kind(self.i) {
            Some(TokKind::Ident) => {
                let n = self.text(self.i).to_string();
                self.i += 1;
                n
            }
            _ => return,
        };
        // Signature runs to the body `{` or a trait-decl `;`. Balanced
        // regions are skipped so `where` bounds and argument types never
        // confuse the scan. The first `(` group is the argument list:
        // the tokens before its first `,` are the receiver, and a
        // receiver containing both `mut` and `self` (covers `&mut
        // self`, `&'a mut self`, `mut self`, `self: &mut Self`) marks
        // the function as self-mutating.
        let mut mut_self = false;
        let mut seen_args = false;
        while self.i < self.toks.len() && !self.is(self.i, "{") && !self.is(self.i, ";") {
            match self.text(self.i) {
                "(" if !seen_args => {
                    seen_args = true;
                    let start = self.i;
                    self.skip_balanced();
                    let mut has_self = false;
                    let mut has_mut = false;
                    for j in start + 1..self.i.saturating_sub(1) {
                        match self.text(j) {
                            "," => break,
                            "self" => has_self = true,
                            "mut" => has_mut = true,
                            _ => {}
                        }
                    }
                    mut_self = has_self && has_mut;
                }
                "(" | "<" | "[" => self.skip_balanced(),
                _ => self.i += 1,
            }
        }
        if !self.is(self.i, "{") {
            if self.is(self.i, ";") {
                self.i += 1;
            }
            return;
        }
        let body_open = self.i;
        self.skip_balanced();
        let body = (body_open + 1, self.i.saturating_sub(1));
        let end_line = self
            .toks
            .get(self.i.saturating_sub(1))
            .map_or(line, |t| t.line);
        self.fns.push(FnItem {
            name,
            impl_type: impl_type.map(str::to_string),
            line,
            end_line,
            body,
            mut_self,
            is_test,
            calls: Vec::new(),
        });
    }
}

/// Rust keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "else", "move", "ref",
    "mut", "fn", "use", "pub", "where", "impl", "dyn", "box", "await", "unsafe",
];

/// Extract call sites from a function-body token range.
fn extract_calls(src: &str, toks: &[Token], body: (usize, usize)) -> Vec<Call> {
    let mut out = Vec::new();
    let (lo, hi) = body;
    let hi = hi.min(toks.len());
    let text = |i: usize| toks[i].text(src);
    let mut i = lo;
    while i < hi {
        if toks[i].kind == TokKind::Ident {
            let name = text(i);
            if !NON_CALL_KEYWORDS.contains(&name) {
                // Macro call: ident '!' ( ( | [ | { )
                if i + 2 < hi
                    && text(i + 1) == "!"
                    && matches!(text(i + 2), "(" | "[" | "{")
                    && toks[i].end == toks[i + 1].start
                {
                    out.push(Call {
                        name: format!("{name}!"),
                        qualifier: None,
                        is_method: false,
                        line: toks[i].line,
                    });
                    i += 2;
                    continue;
                }
                if i + 1 < hi && text(i + 1) == "(" {
                    let is_method = i > lo && text(i - 1) == ".";
                    let qualifier = if !is_method
                        && i >= lo + 3
                        && text(i - 1) == ":"
                        && text(i - 2) == ":"
                        && toks[i - 3].kind == TokKind::Ident
                    {
                        Some(text(i - 3).to_string())
                    } else {
                        None
                    };
                    out.push(Call {
                        name: name.to_string(),
                        qualifier,
                        is_method,
                        line: toks[i].line,
                    });
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> File {
        parse("test.rs", "engine", src, lex(src))
    }

    #[test]
    fn finds_fns_and_impl_types() {
        let f = parse_src(
            r#"
            struct Network { now: u64, q: Vec<u8> }
            impl Network {
                pub fn step(&mut self) { self.tick(); helper(); }
                fn tick(&mut self) {}
            }
            fn helper() { other::call(); }
            "#,
        );
        let names: Vec<_> = f.fns.iter().map(|x| x.qname()).collect();
        assert_eq!(names, vec!["Network::step", "Network::tick", "helper"]);
        assert!(f.fns[0].mut_self);
        assert!(!f.fns[2].mut_self);
        let step = &f.fns[0];
        assert!(step.calls.iter().any(|c| c.name == "tick" && c.is_method));
        assert!(step
            .calls
            .iter()
            .any(|c| c.name == "helper" && !c.is_method));
        let helper = &f.fns[2];
        assert_eq!(helper.calls[0].qualifier.as_deref(), Some("other"));
    }

    #[test]
    fn trait_impls_attribute_to_the_type() {
        let f = parse_src(
            r#"
            impl<P: Policy> Policy for Wrapper<P> {
                fn route(&mut self) { self.inner.route(); }
            }
            impl fmt::Display for Error {
                fn fmt(&self) {}
            }
            "#,
        );
        assert_eq!(f.fns[0].qname(), "Wrapper::route");
        assert_eq!(f.fns[1].qname(), "Error::fmt");
    }

    #[test]
    fn struct_fields_with_types() {
        let f = parse_src(
            r#"
            /// Docs.
            pub struct FaultState {
                /// docs
                out_up: Vec<bool>,
                pending: HashMap<(RouterId, RouterId), u32>,
                pub healthy: bool,
            }
            "#,
        );
        let s = &f.structs[0];
        assert_eq!(s.name, "FaultState");
        let names: Vec<_> = s.fields.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["out_up", "pending", "healthy"]);
        assert!(s.fields[1].ty.contains("HashMap"));
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let f = parse_src(
            r#"
            fn prod() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { prod(); }
            }
            "#,
        );
        assert!(!f.fns[0].is_test);
        assert!(f.fns[1].is_test);
    }

    #[test]
    fn macro_calls_are_named() {
        let f = parse_src("fn a() { let v = vec![1]; let s = format!(\"x\"); }");
        let names: Vec<_> = f.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"vec!"));
        assert!(names.contains(&"format!"));
    }

    #[test]
    fn mut_self_receivers() {
        let f = parse_src(
            r#"
            impl T {
                fn a(&self, mut x: u32) {}
                fn b(&mut self) {}
                fn c<'x>(&'x mut self) {}
                fn d(self: &mut Self) {}
                fn e(x: &mut u32) {}
            }
            "#,
        );
        let flags: Vec<_> = f.fns.iter().map(|x| x.mut_self).collect();
        assert_eq!(flags, vec![false, true, true, true, false]);
    }

    #[test]
    fn totality_on_junk_tokens() {
        for junk in [
            "impl",
            "struct {",
            "fn",
            "fn f(",
            "mod m { struct X",
            "} } }",
        ] {
            let _ = parse_src(junk);
        }
    }
}
