//! The schedule-adversarial commutativity certifier (`ofar-race`).
//!
//! The R-family static rules prove the three `parallel`-marked phases of
//! `Network::step` free of cross-shard writes *syntactically*, and the
//! parallelization contract (`results/phase-contract.json`) records that
//! claim. This module closes the loop **dynamically**: it executes the
//! contract. If the parallel phases really touch disjoint per-shard
//! state, then the iteration order of their shard loops is unobservable
//! — running the same workload under a permuted
//! [`ShardSchedule`] must produce
//! byte-identical snapshots at every epoch. Any divergence is a
//! commutativity violation the static analysis missed (or waived), and
//! the certifier bisects it to the first divergent cycle and names the
//! diverging snapshot field.
//!
//! The protocol, per mechanism × traffic pattern:
//!
//! 1. run the workload under the **identity** schedule, saving a
//!    snapshot at every epoch boundary (the reference trace);
//! 2. for each adversarial schedule, run the identical workload and
//!    byte-compare the snapshot at each boundary against the reference;
//! 3. on the first divergent boundary, **bisect**: replay both runs from
//!    scratch (the simulator is deterministic, so a replay is exact) up
//!    to the last agreeing boundary, then step-and-compare every cycle
//!    to find the first divergent cycle;
//! 4. refine the diff through `Network::diff_snapshots_named` into a
//!    structured [`Witness`] — section, field, attributed phase, shard
//!    index — and cross-reference it against the contract's waiver list.
//!
//! The verdict artifact (`results/commutativity.json`) is deterministic
//! and checked in; CI regenerates it and fails on drift, like the
//! parallelization contract itself.

use crate::json;
use ofar_engine::{diff_snapshots, Network, Policy, ShardSchedule, SimConfig};
use ofar_routing::MechanismKind;
use ofar_topology::Dragonfly;
use ofar_traffic::{Bernoulli, TrafficGen, TrafficSpec};
use std::fmt::Write as _;

/// Format version of the verdict artifact.
pub const RACE_VERSION: u32 = 1;

/// Parameters of one certification sweep.
#[derive(Clone, Copy, Debug)]
pub struct RaceConfig {
    /// Dragonfly scale parameter (`SimConfig::paper(h)`).
    pub h: usize,
    /// Cycles to drive each run.
    pub cycles: u64,
    /// Snapshot-comparison period in cycles.
    pub epoch: u64,
    /// Number of adversarial schedules
    /// ([`ShardSchedule::adversaries`]).
    pub schedules: usize,
    /// Base seed for policy and traffic streams.
    pub seed: u64,
}

impl RaceConfig {
    /// The PR-time smoke configuration: paper scale h=2 (68 routers),
    /// short runs, the four canonical adversaries. This is the
    /// configuration `results/commutativity.json` is generated under.
    pub fn smoke() -> Self {
        Self {
            h: 2,
            cycles: 400,
            epoch: 50,
            schedules: 4,
            seed: 0xC0117,
        }
    }

    /// The nightly configuration (`OFAR_FULL=1`): paper scale h=4
    /// (264 routers), longer runs, six adversaries.
    pub fn full() -> Self {
        Self {
            h: 4,
            cycles: 600,
            epoch: 100,
            schedules: 6,
            seed: 0xC0117,
        }
    }
}

/// A raw schedule divergence found by [`certify`], before phase
/// attribution and waiver cross-referencing.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The adversarial schedule that exposed the divergence.
    pub schedule: ShardSchedule,
    /// First cycle whose end-of-cycle snapshot differs from the
    /// identity run's.
    pub cycle: u64,
    /// Diverging snapshot section (`config`, `policy` or `state`).
    pub section: String,
    /// Diverging field, resolved by the snapshot schema walker (for the
    /// `state` section) or an opaque byte offset (for `policy`).
    pub field: String,
}

/// Outcome of certifying one (mechanism, pattern) cell.
#[derive(Clone, Debug)]
pub enum CertifyOutcome {
    /// Every adversarial schedule produced byte-identical snapshots at
    /// every epoch boundary.
    Commutes,
    /// A schedule diverged; the bisected witness is attached.
    Diverges(Divergence),
}

/// Per-cycle traffic injection, called once before each `step`.
pub type InjectFn<P> = Box<dyn FnMut(&mut Network<P>, u64)>;

/// Execute the phase contract under permuted shard orders.
///
/// `build` must construct an identically-seeded run every call: a fresh
/// network plus its per-cycle traffic-injection closure. The certifier
/// relies on replays being exact (the workspace determinism contract,
/// D rules) to bisect without checkpointing traffic state.
///
/// Returns `Ok(Commutes)` when all `schedules` adversaries match the
/// identity run at every `epoch` boundary over `cycles` cycles;
/// `Ok(Diverges(_))` with the first divergent cycle otherwise. `Err` is
/// reserved for internal snapshot-codec failures.
pub fn certify<P, B>(
    mut build: B,
    schedules: &[ShardSchedule],
    cycles: u64,
    epoch: u64,
) -> Result<CertifyOutcome, String>
where
    P: Policy,
    B: FnMut() -> (Network<P>, InjectFn<P>),
{
    assert!(epoch > 0, "epoch must be positive");
    // Reference trace: identity schedule, snapshot at every boundary.
    let boundaries: Vec<u64> = (1..=cycles)
        .filter(|c| c % epoch == 0 || *c == cycles)
        .collect();
    let (mut net, mut inject) = build();
    let mut reference: Vec<(u64, Vec<u8>)> = Vec::with_capacity(boundaries.len());
    for c in 0..cycles {
        inject(&mut net, c);
        net.step();
        if boundaries.contains(&(c + 1)) {
            reference.push((c + 1, net.save_snapshot()));
        }
    }
    drop(net);

    for &sched in schedules {
        let (mut adv, mut inject) = build();
        adv.set_shard_schedule(sched);
        let mut last_good = 0u64;
        let mut bad: Option<(u64, u64)> = None; // (agreeing boundary, divergent boundary)
        'scan: for c in 0..cycles {
            inject(&mut adv, c);
            adv.step();
            if let Some((cyc, snap)) = reference.iter().find(|(b, _)| *b == c + 1) {
                let mine = adv.save_snapshot();
                match diff_snapshots(snap, &mine).map_err(|e| format!("snapshot diff: {e}"))? {
                    None => last_good = *cyc,
                    Some(_) => {
                        bad = Some((last_good, *cyc));
                        break 'scan;
                    }
                }
            }
        }
        drop(adv);
        if let Some((lo, hi)) = bad {
            return Ok(CertifyOutcome::Diverges(bisect(&mut build, sched, lo, hi)?));
        }
    }
    Ok(CertifyOutcome::Commutes)
}

/// Replay the identity and adversarial runs from scratch to cycle `lo`
/// (known byte-identical), then step both in lockstep comparing every
/// end-of-cycle snapshot, returning the first divergent cycle in
/// `lo..=hi` with the diff refined to a named field.
fn bisect<P, B>(build: &mut B, sched: ShardSchedule, lo: u64, hi: u64) -> Result<Divergence, String>
where
    P: Policy,
    B: FnMut() -> (Network<P>, InjectFn<P>),
{
    let (mut ident, mut inj_i) = build();
    let (mut adv, mut inj_a) = build();
    adv.set_shard_schedule(sched);
    for c in 0..hi {
        inj_i(&mut ident, c);
        ident.step();
        inj_a(&mut adv, c);
        adv.step();
        if c < lo {
            continue;
        }
        let a = ident.save_snapshot();
        let b = adv.save_snapshot();
        if let Some((diff, field)) = ident
            .diff_snapshots_named(&a, &b)
            .map_err(|e| format!("snapshot diff at cycle {}: {e}", c + 1))?
        {
            return Ok(Divergence {
                schedule: sched,
                cycle: c + 1,
                section: diff.section.to_string(),
                field,
            });
        }
    }
    Err(format!(
        "divergence between cycles {lo} and {hi} under {} did not reproduce on replay — \
         the workload builder is not deterministic",
        sched.describe()
    ))
}

/// Attribute a diverging snapshot location to the `Network::step` phase
/// that owns the field, per the phase footprints of the parallelization
/// contract. Conservative and name-based, like the analyzer itself.
pub fn attribute_phase(section: &str, field: &str) -> &'static str {
    if section == "config" {
        return "static (configuration)";
    }
    if section == "policy" {
        return "inject/route (policy draws)";
    }
    let f = field;
    if f.starts_with("src_q") || f.starts_with("inj_busy") || f.starts_with("cm.tokens") {
        "inject"
    } else if f.contains(".input[") || f.starts_with("llr") {
        "deliver"
    } else if f.contains(".output[") || f.starts_with("router_last_grant") {
        "route"
    } else if f.starts_with("cm.") {
        "cm_sense"
    } else if f.starts_with("stats.")
        || f.starts_with("delivered_log")
        || f.starts_with("delivered_per_src")
        || f.starts_with("link_phits")
    {
        "effect_commit"
    } else if f.starts_with("fault") || f.starts_with("plan") {
        "fault_apply"
    } else {
        "unknown"
    }
}

/// Extract the shard index a diverging field belongs to, with its axis
/// (`router` or `node`), when the field is per-shard state.
pub fn shard_of(field: &str) -> Option<(&'static str, u64)> {
    let axis = if field.starts_with("router")
        || field.starts_with("cm.cong")
        || field.starts_with("cm.throttled")
    {
        "router"
    } else if field.starts_with("src_q")
        || field.starts_with("inj_busy")
        || field.starts_with("cm.tokens")
        || field.starts_with("delivered_per_src")
    {
        "node"
    } else {
        return None;
    };
    let open = field.find('[')?;
    let close = field[open..].find(']')? + open;
    field[open + 1..close].parse().ok().map(|i| (axis, i))
}

/// One waiver from the parallelization contract.
#[derive(Clone, Debug, PartialEq)]
pub struct Waiver {
    /// Waived rule (e.g. `R003`, `R006`).
    pub rule: String,
    /// File the waived finding lives in.
    pub file: String,
    /// Line of the waived finding.
    pub line: u64,
    /// Mandatory justification from the `lint:allow` marker.
    pub reason: String,
}

/// Parse the waiver list out of a `phase-contract.json` document.
pub fn load_waivers(contract_json: &str) -> Result<Vec<Waiver>, String> {
    let v = json::parse(contract_json)?;
    let arr = v
        .get("waivers")
        .and_then(|w| w.as_arr())
        .ok_or("contract has no waivers array")?;
    let mut out = Vec::with_capacity(arr.len());
    for w in arr {
        let s = |key: &str| {
            w.get(key)
                .and_then(|x| x.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("waiver missing {key}"))
        };
        let line = match w.get("line") {
            Some(json::Value::Int(n)) => *n as u64,
            _ => return Err("waiver missing line".into()),
        };
        out.push(Waiver {
            rule: s("rule")?,
            file: s("file")?,
            line,
            reason: s("reason")?,
        });
    }
    Ok(out)
}

/// A fully-attributed commutativity violation.
#[derive(Clone, Debug)]
pub struct Witness {
    /// Mechanism under test.
    pub mechanism: String,
    /// Traffic pattern label.
    pub pattern: String,
    /// Schedule that exposed the divergence.
    pub schedule: String,
    /// First divergent cycle (bisected).
    pub cycle: u64,
    /// Diverging snapshot section.
    pub section: String,
    /// Diverging field (schema-resolved).
    pub field: String,
    /// Attributed `Network::step` phase.
    pub phase: String,
    /// Shard axis and index of the diverging field, when per-shard.
    pub shard: Option<(&'static str, u64)>,
    /// Contract waivers whose rule family covers the attributed phase
    /// kind — a non-empty list means the static analyzer *knew* about an
    /// order hazard here and it was waived; the waiver is now refuted
    /// by execution and must be revisited.
    pub related_waivers: Vec<Waiver>,
}

impl Witness {
    /// Build a witness from a raw divergence: attribute the phase,
    /// extract the shard, and cross-reference the contract waivers.
    /// Divergences in the parallel phases correspond to the R001–R003
    /// defect class; divergences surfacing at commit time (serialized
    /// accumulators) to R006.
    pub fn from_divergence(
        mechanism: &str,
        pattern: &str,
        d: &Divergence,
        waivers: &[Waiver],
    ) -> Self {
        let phase = attribute_phase(&d.section, &d.field);
        let families: &[&str] = match phase {
            "deliver" | "inject" | "route" | "inject/route (policy draws)" => {
                &["R001", "R002", "R003"]
            }
            "effect_commit" => &["R006"],
            _ => &[],
        };
        let related = waivers
            .iter()
            .filter(|w| families.contains(&w.rule.as_str()))
            .cloned()
            .collect();
        Witness {
            mechanism: mechanism.to_string(),
            pattern: pattern.to_string(),
            schedule: d.schedule.describe(),
            cycle: d.cycle,
            section: d.section.clone(),
            field: d.field.clone(),
            phase: phase.to_string(),
            shard: shard_of(&d.field),
            related_waivers: related,
        }
    }
}

impl std::fmt::Display for Witness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: schedule {} diverges at cycle {} — {} section, field {}, phase {}",
            self.mechanism,
            self.pattern,
            self.schedule,
            self.cycle,
            self.section,
            self.field,
            self.phase
        )?;
        if let Some((axis, idx)) = self.shard {
            write!(f, " ({axis} shard {idx})")?;
        }
        if !self.related_waivers.is_empty() {
            write!(
                f,
                " [{} related contract waiver(s) refuted]",
                self.related_waivers.len()
            )?;
        }
        Ok(())
    }
}

/// Verdict for one (mechanism, pattern) cell.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// Mechanism under test.
    pub mechanism: String,
    /// Traffic pattern label.
    pub pattern: String,
    /// Whether every adversarial schedule matched the identity run.
    pub commutes: bool,
    /// The bisected witness when `commutes` is false.
    pub witness: Option<Witness>,
}

/// One traffic pattern cell of the sweep.
#[derive(Clone, Debug)]
pub struct PatternCell {
    /// Stable label (artifact key).
    pub label: &'static str,
    /// Traffic spec to drive.
    pub spec: TrafficSpec,
    /// Offered load in phits/node/cycle.
    pub load: f64,
    /// Whether the congestion-management layer is enabled.
    pub cm: bool,
}

/// The smoke-sweep pattern set: uniform random plus the paper's ADV+1
/// adversary, both without CM (the CM layer joins in the full sweep).
pub fn smoke_patterns() -> Vec<PatternCell> {
    vec![
        PatternCell {
            label: "uniform",
            spec: TrafficSpec::uniform(),
            load: 0.5,
            cm: false,
        },
        PatternCell {
            label: "adv+1",
            spec: TrafficSpec::adversarial(1),
            load: 0.7,
            cm: false,
        },
    ]
}

/// The full-sweep pattern set: the smoke patterns plus an overloaded
/// ADV+1 cell with congestion management engaged, certifying the CM
/// sense/throttle layers as schedule-invariant too.
pub fn full_patterns() -> Vec<PatternCell> {
    let mut v = smoke_patterns();
    v.push(PatternCell {
        label: "adv+1+cm",
        spec: TrafficSpec::adversarial(1),
        load: 0.8,
        cm: true,
    });
    v
}

/// Certify one mechanism under one traffic pattern.
pub fn certify_mechanism(
    kind: MechanismKind,
    cell: &PatternCell,
    rc: &RaceConfig,
    waivers: &[Waiver],
) -> Result<Verdict, String> {
    let mut cfg = SimConfig::paper(rc.h).with_seed(rc.seed);
    if cell.cm {
        cfg = cfg.with_cm();
    }
    let cfg = kind.adapt_config(cfg);
    let topo = Dragonfly::new(cfg.params);
    let seed = rc.seed;
    let spec = cell.spec.clone();
    let load = cell.load;
    let build = move || {
        let net = Network::new(cfg, kind.build(&cfg, seed));
        let mut gen = TrafficGen::new(&topo, spec.clone(), seed + 1);
        let mut bern = Bernoulli::new(load, cfg.packet_size, seed + 2);
        let nodes = net.num_nodes();
        let inject: InjectFn<ofar_routing::Mechanism> = Box::new(move |net, _cycle| {
            bern.cycle(nodes, |src| {
                let dst = gen.destination(src);
                net.generate(src, dst);
            });
        });
        (net, inject)
    };
    let schedules = ShardSchedule::adversaries(rc.schedules);
    let outcome = certify(build, &schedules, rc.cycles, rc.epoch)?;
    Ok(match outcome {
        CertifyOutcome::Commutes => Verdict {
            mechanism: kind.name().to_string(),
            pattern: cell.label.to_string(),
            commutes: true,
            witness: None,
        },
        CertifyOutcome::Diverges(d) => Verdict {
            mechanism: kind.name().to_string(),
            pattern: cell.label.to_string(),
            commutes: false,
            witness: Some(Witness::from_divergence(
                kind.name(),
                cell.label,
                &d,
                waivers,
            )),
        },
    })
}

/// Render the verdict artifact (`results/commutativity.json`).
/// Deterministic: ordered cells, no timestamps.
pub fn render(rc: &RaceConfig, verdicts: &[Verdict], contract_waivers: usize) -> String {
    let schedules = ShardSchedule::adversaries(rc.schedules);
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"tool\": \"ofar-race\",");
    let _ = writeln!(s, "  \"race_version\": {RACE_VERSION},");
    let _ = writeln!(s, "  \"h\": {},", rc.h);
    let _ = writeln!(s, "  \"cycles\": {},", rc.cycles);
    let _ = writeln!(s, "  \"epoch\": {},", rc.epoch);
    let _ = writeln!(s, "  \"seed\": {},", rc.seed);
    s.push_str("  \"schedules\": [");
    for (i, sched) in schedules.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{}\"", json::escape(&sched.describe()));
    }
    s.push_str("],\n");
    let _ = writeln!(s, "  \"contract_waivers\": {contract_waivers},");
    s.push_str("  \"verdicts\": [");
    for (i, v) in verdicts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        let _ = write!(
            s,
            "\"mechanism\": \"{}\", \"pattern\": \"{}\", \"status\": \"{}\"",
            json::escape(&v.mechanism),
            json::escape(&v.pattern),
            if v.commutes { "commutes" } else { "diverges" }
        );
        if let Some(w) = &v.witness {
            let _ = write!(
                s,
                ", \"witness\": {{\"schedule\": \"{}\", \"cycle\": {}, \"section\": \"{}\", \
                 \"field\": \"{}\", \"phase\": \"{}\"",
                json::escape(&w.schedule),
                w.cycle,
                json::escape(&w.section),
                json::escape(&w.field),
                json::escape(&w.phase)
            );
            if let Some((axis, idx)) = w.shard {
                let _ = write!(s, ", \"shard_axis\": \"{axis}\", \"shard\": {idx}");
            }
            let _ = write!(s, ", \"related_waivers\": {}", w.related_waivers.len());
            s.push('}');
        }
        s.push('}');
    }
    if !verdicts.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_covers_the_snapshot_schema() {
        assert_eq!(attribute_phase("state", "src_q[3]"), "inject");
        assert_eq!(
            attribute_phase("state", "router[7].input[2].vc[1].fifo"),
            "deliver"
        );
        assert_eq!(
            attribute_phase("state", "router[7].output[2].credits[1]"),
            "route"
        );
        assert_eq!(
            attribute_phase("state", "stats.latency_sum"),
            "effect_commit"
        );
        assert_eq!(attribute_phase("state", "cm.cong[4]"), "cm_sense");
        assert_eq!(attribute_phase("state", "cm.tokens[9]"), "inject");
        assert_eq!(
            attribute_phase("policy", "opaque policy bytes, offset 40"),
            "inject/route (policy draws)"
        );
    }

    #[test]
    fn shard_extraction_reads_axis_and_index() {
        assert_eq!(
            shard_of("router[7].output[2].credits[1]"),
            Some(("router", 7))
        );
        assert_eq!(shard_of("src_q[12]"), Some(("node", 12)));
        assert_eq!(shard_of("cm.tokens[135]"), Some(("node", 135)));
        assert_eq!(shard_of("stats.latency_sum"), None);
    }

    #[test]
    fn waivers_parse_from_contract_json() {
        let doc = r#"{
            "waivers": [
                {"rule": "R003", "file": "crates/engine/src/network.rs", "line": 10, "reason": "x"},
                {"rule": "R006", "file": "crates/engine/src/network.rs", "line": 20, "reason": "y"}
            ]
        }"#;
        let ws = load_waivers(doc).unwrap();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].rule, "R003");
        assert_eq!(ws[1].line, 20);
    }

    #[test]
    fn witness_cross_references_waiver_families() {
        let waivers = vec![
            Waiver {
                rule: "R003".into(),
                file: "f".into(),
                line: 1,
                reason: "shared".into(),
            },
            Waiver {
                rule: "R006".into(),
                file: "f".into(),
                line: 2,
                reason: "fold".into(),
            },
        ];
        let parallel = Divergence {
            schedule: ShardSchedule::Reversed,
            cycle: 42,
            section: "state".into(),
            field: "router[3].output[1].credits[0]".into(),
        };
        let w = Witness::from_divergence("OFAR", "adv+1", &parallel, &waivers);
        assert_eq!(w.phase, "route");
        assert_eq!(w.related_waivers.len(), 1);
        assert_eq!(w.related_waivers[0].rule, "R003");
        assert_eq!(w.shard, Some(("router", 3)));

        let commit = Divergence {
            schedule: ShardSchedule::Rotated(7),
            cycle: 50,
            section: "state".into(),
            field: "stats.latency_sum".into(),
        };
        let w = Witness::from_divergence("OFAR", "adv+1", &commit, &waivers);
        assert_eq!(w.phase, "effect_commit");
        assert_eq!(w.related_waivers.len(), 1);
        assert_eq!(w.related_waivers[0].rule, "R006");
    }

    #[test]
    fn render_is_deterministic_and_parses() {
        let rc = RaceConfig::smoke();
        let verdicts = vec![
            Verdict {
                mechanism: "MIN".into(),
                pattern: "uniform".into(),
                commutes: true,
                witness: None,
            },
            Verdict {
                mechanism: "OFAR".into(),
                pattern: "adv+1".into(),
                commutes: false,
                witness: Some(Witness {
                    mechanism: "OFAR".into(),
                    pattern: "adv+1".into(),
                    schedule: "reversed".into(),
                    cycle: 7,
                    section: "state".into(),
                    field: "router[1].output[0].credits[0]".into(),
                    phase: "route".into(),
                    shard: Some(("router", 1)),
                    related_waivers: vec![],
                }),
            },
        ];
        let a = render(&rc, &verdicts, 7);
        let b = render(&rc, &verdicts, 7);
        assert_eq!(a, b);
        let v = json::parse(&a).expect("artifact must parse");
        let arr = v.get("verdicts").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(
            arr[1].get("status"),
            Some(&json::Value::Str("diverges".to_string()))
        );
        assert!(arr[1].get("witness").is_some());
    }

    /// End-to-end on the real engine at a tiny scale: MIN (stateless,
    /// no RNG) must certify clean over one reversed schedule quickly.
    #[test]
    fn min_commutes_at_tiny_scale() {
        let rc = RaceConfig {
            h: 2,
            cycles: 60,
            epoch: 20,
            schedules: 1,
            seed: 11,
        };
        let v = certify_mechanism(MechanismKind::Min, &smoke_patterns()[0], &rc, &[]).unwrap();
        assert!(v.commutes, "MIN diverged: {:?}", v.witness);
    }
}
