//! A hand-rolled lexer for (a pragmatic superset of) Rust source text.
//!
//! The analyzer never needs full fidelity — it needs identifiers,
//! literals, punctuation and comments with **exact byte spans and line
//! numbers**, and it must be *total*: any byte sequence lexes to a token
//! stream without panicking (the proptests in `tests/lexer_prop.rs` feed
//! it arbitrary bytes). Unknown or malformed input degrades to
//! single-character [`TokKind::Punct`] tokens rather than failing.
//!
//! Handled: line/block comments (nested), string literals (plain, raw
//! `r#"…"#`, byte `b"…"`, raw-byte), char literals vs. lifetimes,
//! numeric literals (int/float, radix prefixes, `_` separators,
//! suffixes), identifiers (including raw `r#ident`) and one-byte
//! punctuation. Multi-character operators (`::`, `+=`, `->`) are left as
//! adjacent `Punct` tokens; consumers test adjacency via spans.

/// The kind of one lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#type`).
    Ident,
    /// Lifetime (`'a`) — *not* a char literal.
    Lifetime,
    /// Integer literal (`42`, `0xFF_u32`).
    Int,
    /// Float literal (`1.5`, `2e-3`).
    Float,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// One punctuation character.
    Punct,
    /// `// …` comment (including doc comments), newline excluded.
    LineComment,
    /// `/* … */` comment (nesting honored; may be unterminated).
    BlockComment,
}

/// One token: kind plus the byte span and 1-based line of its start.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// What was lexed.
    pub kind: TokKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// Lex `src` into a complete token stream. Whitespace is dropped;
/// comments are kept (the suppression scanner reads them).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Self {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advance one byte, tracking lines. For multi-byte UTF-8 the
    /// continuation bytes pass through here too — they can never equal
    /// `\n`, so line accounting stays exact.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32) {
        self.out.push(Token {
            kind,
            start,
            end: self.pos,
            line,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.push(TokKind::LineComment, start, line);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.bump();
                    self.bump();
                    let mut depth = 1u32;
                    while self.pos < self.bytes.len() && depth > 0 {
                        if self.peek(0) == b'/' && self.peek(1) == b'*' {
                            depth += 1;
                            self.bump();
                            self.bump();
                        } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                            depth -= 1;
                            self.bump();
                            self.bump();
                        } else {
                            self.bump();
                        }
                    }
                    self.push(TokKind::BlockComment, start, line);
                }
                b'"' => self.string(start, line),
                b'\'' => self.char_or_lifetime(start, line),
                b'r' | b'b' if self.raw_or_byte_literal(start, line) => {}
                c if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => {
                    self.ident(start, line);
                }
                c if c.is_ascii_digit() => self.number(start, line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, start, line);
                }
            }
        }
        self.out
    }

    /// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, `r#ident`.
    /// Returns false (consuming nothing) when the prefix is a plain
    /// identifier start after all.
    fn raw_or_byte_literal(&mut self, start: usize, line: u32) -> bool {
        let c0 = self.peek(0);
        let (mut at, mut raw) = (1, c0 == b'r');
        if c0 == b'b' && self.peek(1) == b'r' {
            at = 2;
            raw = true;
        }
        match self.peek(at) {
            b'"' if !raw => {
                // b"…": plain string with a b prefix.
                self.bump();
                self.string(start, line);
                true
            }
            b'\'' if !raw => {
                // b'…': byte literal.
                self.bump();
                self.char_or_lifetime(start, line);
                true
            }
            b'"' | b'#' if raw => {
                for _ in 0..at {
                    self.bump();
                }
                let mut hashes = 0usize;
                while self.peek(0) == b'#' {
                    hashes += 1;
                    self.bump();
                }
                if self.peek(0) != b'"' {
                    // `r#ident` (raw identifier) or stray hashes: treat
                    // the rest as an identifier continuation.
                    self.ident(start, line);
                    return true;
                }
                self.bump();
                // Scan for `"` followed by `hashes` hash marks.
                'outer: while self.pos < self.bytes.len() {
                    if self.peek(0) == b'"' {
                        for h in 0..hashes {
                            if self.peek(1 + h) != b'#' {
                                self.bump();
                                continue 'outer;
                            }
                        }
                        for _ in 0..=hashes {
                            self.bump();
                        }
                        break;
                    }
                    self.bump();
                }
                self.push(TokKind::Str, start, line);
                true
            }
            _ => {
                self.ident(start, line);
                true
            }
        }
    }

    fn ident(&mut self, start: usize, line: u32) {
        while self.pos < self.bytes.len() {
            let c = self.peek(0);
            if c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            // Defensive: never emit an empty token.
            self.bump();
        }
        self.push(TokKind::Ident, start, line);
    }

    fn string(&mut self, start: usize, line: u32) {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    if self.pos < self.bytes.len() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        self.push(TokKind::Str, start, line);
    }

    /// Disambiguate `'a'` (char) from `'a` (lifetime) from `'\n'`.
    fn char_or_lifetime(&mut self, start: usize, line: u32) {
        self.bump(); // the quote
        if self.peek(0) == b'\\' {
            // Escaped char literal.
            self.bump();
            while self.pos < self.bytes.len() && self.peek(0) != b'\'' {
                self.bump();
            }
            if self.pos < self.bytes.len() {
                self.bump();
            }
            self.push(TokKind::Char, start, line);
            return;
        }
        // Consume one identifier-ish run (or a single other char).
        let run_start = self.pos;
        while self.pos < self.bytes.len() {
            let c = self.peek(0);
            if c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == run_start && self.pos < self.bytes.len() && self.peek(0) != b'\'' {
            // A single non-ident char such as `'+'`.
            self.bump();
        }
        if self.peek(0) == b'\'' {
            self.bump();
            self.push(TokKind::Char, start, line);
        } else {
            self.push(TokKind::Lifetime, start, line);
        }
    }

    fn number(&mut self, start: usize, line: u32) {
        let mut float = false;
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'b' | b'o') {
            self.bump();
            self.bump();
            while matches!(self.peek(0), b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F' | b'_') {
                self.bump();
            }
        } else {
            while matches!(self.peek(0), b'0'..=b'9' | b'_') {
                self.bump();
            }
            // Fractional part: a dot followed by a digit (so `0..n` and
            // `x.method()` stay punctuation/ident).
            if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
                float = true;
                self.bump();
                while matches!(self.peek(0), b'0'..=b'9' | b'_') {
                    self.bump();
                }
            }
            if matches!(self.peek(0), b'e' | b'E')
                && (self.peek(1).is_ascii_digit()
                    || (matches!(self.peek(1), b'+' | b'-') && self.peek(2).is_ascii_digit()))
            {
                float = true;
                self.bump();
                self.bump();
                while matches!(self.peek(0), b'0'..=b'9' | b'_') {
                    self.bump();
                }
            }
        }
        // Type suffix (`u32`, `f64`, `usize`…) rides along.
        while self.peek(0) == b'_' || self.peek(0).is_ascii_alphanumeric() {
            if matches!(self.peek(0), b'e' | b'E') && !float {
                // Already handled above; a trailing `e` here is a suffix
                // letter (hex digits were consumed in the radix arm).
            }
            self.bump();
        }
        let kind = if float { TokKind::Float } else { TokKind::Int };
        self.push(kind, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn basic_stream() {
        let ks = kinds("fn foo(a: u32) -> f64 { a as f64 + 1.5 }");
        assert_eq!(ks[0], (TokKind::Ident, "fn".into()));
        assert_eq!(ks[1], (TokKind::Ident, "foo".into()));
        assert!(ks.contains(&(TokKind::Float, "1.5".into())));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ks = kinds("impl<'a> X<'a> { fn c() -> char { 'x' } }");
        assert!(ks.contains(&(TokKind::Lifetime, "'a".into())));
        assert!(ks.contains(&(TokKind::Char, "'x'".into())));
        let ks = kinds(r"let c = '\n';");
        assert!(ks.iter().any(|(k, _)| *k == TokKind::Char));
    }

    #[test]
    fn strings_and_raw_strings() {
        let ks = kinds(r####"let s = r#"has "quotes" inside"#; let t = "x\"y";"####);
        let strs: Vec<_> = ks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[0].1.contains("quotes"));
    }

    #[test]
    fn comments_keep_lines() {
        let src = "a\n// c1\n/* c2\nc3 */\nb";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].kind, TokKind::LineComment);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].kind, TokKind::BlockComment);
        assert_eq!(toks[3].line, 5);
        assert_eq!(toks[3].text(src), "b");
    }

    #[test]
    fn range_is_not_a_float() {
        let ks = kinds("for i in 0..10 {}");
        assert!(ks.contains(&(TokKind::Int, "0".into())));
        assert!(ks.contains(&(TokKind::Int, "10".into())));
        assert!(!ks.iter().any(|(k, _)| *k == TokKind::Float));
    }

    #[test]
    fn totality_on_junk() {
        for junk in [
            "'",
            "\"",
            "r#",
            "b'",
            "/*",
            "0x",
            "r#\"never closed",
            "\u{1F600}\u{1F600}",
        ] {
            let toks = lex(junk);
            for t in &toks {
                assert!(t.start < t.end && t.end <= junk.len());
            }
        }
    }
}
