//! Phase segmentation of the engine cycle loop and the R (race/phase)
//! rule family.
//!
//! `Network::step` is segmented into declared *phases* by lightweight
//! region markers in ordinary comments:
//!
//! ```text
//! // ofar-lint: phase(deliver)            — parallel phase (default)
//! // ofar-lint: phase(commit_effects, commit)
//! ```
//!
//! A marker opens a region that runs to the next marker (or the end of
//! the function). Calls made from a region pull their transitive
//! call-graph closure into the phase; every classified state access of
//! every member `Network` method (see [`crate::access`]) lands in the
//! phase's read/write footprint. The rules then enforce the
//! partitionability contract the parallel engine needs:
//!
//! - **R001** — cross-shard write outside a commit phase.
//! - **R002** — read of foreign-shard state that races a same-phase
//!   local write to the same field.
//! - **R003** — shared-accumulator mutation not routed through a
//!   reduction-safe sink operation.
//! - **R004** — phase-marker coverage gap (no markers, statements
//!   before the first marker, malformed or misplaced markers).
//! - **R005** — iteration-order-sensitive fold over sharded state in a
//!   commit phase.
//! - **R006** — position-weighting accumulation over an effect-ledger
//!   drain in a commit phase.
//!
//! Commit phases run serially in declaration order, so R001–R003 do
//! not apply there; R005 and R006 apply only there. R005 catches
//! order-sensitive reductions over shard *collections*; R006 catches
//! the subtler leak through the effect *ledger*: the ledger's element
//! order is the parallel phases' push order, which the shard schedule
//! permutes, so a commit-phase drain must combine elements
//! commutatively (or canonicalize first — a sort before the fold is
//! the sanctioned fix, as `commit_effects` does for `delivered_now`).

use crate::access::{self, Access, Class, Op};
use crate::graph::{CallGraph, FnRef};
use crate::lexer::{TokKind, Token};
use crate::parse::File;
use crate::rules::{
    line_snippet, Finding, LintConfig, RULE_LEDGER_FOLD, RULE_PHASE_ACCUM, RULE_PHASE_CROSS_WRITE,
    RULE_PHASE_FOLD, RULE_PHASE_GAP, RULE_PHASE_READ_RACE,
};
use std::collections::{BTreeMap, BTreeSet};

/// How a phase executes in the parallel engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseKind {
    /// Evaluated concurrently over shards — the race rules apply.
    Parallel,
    /// Evaluated serially, in declaration order — may touch any shard.
    Commit,
}

impl PhaseKind {
    /// Stable lower-case name used in messages and the contract.
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::Parallel => "parallel",
            PhaseKind::Commit => "commit",
        }
    }
}

/// One parsed `// ofar-lint: phase(…)` marker.
#[derive(Clone, Debug)]
struct Marker {
    name: String,
    kind: PhaseKind,
    line: u32,
}

/// Read/write footprint of one field within one phase.
#[derive(Clone, Debug, Default)]
pub struct FieldFoot {
    /// State class of the field (stable across accesses by table).
    pub class: Option<Class>,
    /// Index kinds observed on reads.
    pub read_idx: BTreeSet<&'static str>,
    /// Index kinds observed on writes.
    pub write_idx: BTreeSet<&'static str>,
    /// Write operations observed (op name or method name).
    pub write_ops: BTreeSet<String>,
}

/// One declared phase with its resolved membership and footprint.
#[derive(Clone, Debug)]
pub struct PhaseSummary {
    /// Declared phase name.
    pub name: String,
    /// Parallel or commit.
    pub kind: PhaseKind,
    /// Marker line in the phase-root file.
    pub line: u32,
    /// Qualified names of member `Network` methods with ≥ 1 access.
    pub functions: BTreeSet<String>,
    /// Per-field footprint, keyed by classified field name.
    pub footprint: BTreeMap<String, FieldFoot>,
}

/// The analyzed phase structure — input to the contract artifact.
#[derive(Clone, Debug)]
pub struct PhaseInfo {
    /// Qualified name of the phase root (`Network::step`).
    pub root: String,
    /// Workspace-relative path of the file declaring the root.
    pub root_file: String,
    /// Declared phases in source order.
    pub phases: Vec<PhaseSummary>,
}

/// Run the phase analysis over the parsed workspace. Returns the R
/// findings plus, when a phase root with markers exists, the phase
/// structure for the contract artifact.
pub fn analyze(
    files: &[File],
    graph: &CallGraph,
    cfg: &LintConfig,
) -> (Vec<Finding>, Option<PhaseInfo>) {
    let mut findings = Findings::default();

    // Locate the phase root.
    let root = files.iter().enumerate().find_map(|(fi, file)| {
        file.fns
            .iter()
            .enumerate()
            .find(|(_, f)| !f.is_test && f.qname() == cfg.phase_root)
            .map(|(gi, _)| (fi, gi))
    });

    // Collect phase markers everywhere (misplaced ones are findings).
    let mut root_markers: Vec<Marker> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for c in &file.comments {
            let Some(res) = parse_marker(c, &file.src) else {
                continue;
            };
            let m = match res {
                Ok(m) => m,
                Err(msg) => {
                    findings.push(
                        RULE_PHASE_GAP,
                        file,
                        c.line,
                        format!("malformed phase marker: {msg}"),
                    );
                    continue;
                }
            };
            let in_root = root.is_some_and(|(rfi, rgi)| {
                rfi == fi && {
                    let f = &files[rfi].fns[rgi];
                    m.line >= f.line && m.line <= f.end_line
                }
            });
            if in_root {
                root_markers.push(m);
            } else {
                findings.push(
                    RULE_PHASE_GAP,
                    file,
                    c.line,
                    format!(
                        "phase marker `{}` outside the body of the phase root `{}`",
                        m.name, cfg.phase_root
                    ),
                );
            }
        }
    }

    let Some((rfi, rgi)) = root else {
        return (findings.into_vec(), None);
    };
    let root_file = &files[rfi];
    let root_fn = &root_file.fns[rgi];

    if root_markers.is_empty() {
        findings.push(
            RULE_PHASE_GAP,
            root_file,
            root_fn.line,
            format!(
                "phase root `{}` declares no phase markers; every per-cycle \
                 statement must belong to a declared phase",
                cfg.phase_root
            ),
        );
        return (findings.into_vec(), None);
    }
    root_markers.sort_by_key(|m| m.line);

    // Coverage gap: code before the first marker belongs to no phase.
    let first = root_markers[0].line;
    let gap = root_file.tokens[root_fn.body.0..root_fn.body.1.min(root_file.tokens.len())]
        .iter()
        .map(|t| t.line)
        .find(|&l| l > root_fn.line && l < first);
    if let Some(l) = gap {
        findings.push(
            RULE_PHASE_GAP,
            root_file,
            l,
            format!(
                "statement precedes the first phase marker of `{}` — it belongs \
                 to no declared phase",
                cfg.phase_root
            ),
        );
    }

    // Access cache over `Network` methods, resolved through the graph.
    let is_mut_method = |name: &str| {
        graph
            .resolve_call(name, None)
            .iter()
            .any(|&(fi, gi)| files[fi].fns[gi].mut_self)
    };
    let mut cache: BTreeMap<FnRef, Vec<Access>> = BTreeMap::new();
    let mut accesses_of = |fref: FnRef| -> Vec<Access> {
        cache
            .entry(fref)
            .or_insert_with(|| {
                let f = &files[fref.0].fns[fref.1];
                if f.impl_type.as_deref() == Some("Network") {
                    access::scan_fn(&files[fref.0], f, &is_mut_method)
                } else {
                    Vec::new()
                }
            })
            .clone()
    };

    let root_accesses = access::scan_fn(root_file, root_fn, &is_mut_method);

    let mut phases = Vec::new();
    for (k, m) in root_markers.iter().enumerate() {
        let lo = m.line;
        let hi = root_markers
            .get(k + 1)
            .map_or(root_fn.end_line, |n| n.line.saturating_sub(1));

        // Transitive closure seeded from the region's calls.
        let mut members: BTreeSet<FnRef> = BTreeSet::new();
        let mut stack: Vec<FnRef> = Vec::new();
        let seed = |calls: &[crate::parse::Call],
                    impl_type: Option<&str>,
                    members: &mut BTreeSet<FnRef>,
                    stack: &mut Vec<FnRef>,
                    region: Option<(u32, u32)>| {
            for call in calls {
                if let Some((lo, hi)) = region {
                    if call.line < lo || call.line > hi {
                        continue;
                    }
                }
                let name = call.name.strip_suffix('!').unwrap_or(&call.name);
                let q = match call.qualifier.as_deref() {
                    Some("Self") => impl_type,
                    other => other,
                };
                for &tgt in graph.resolve_call(name, q) {
                    if tgt != (rfi, rgi) && members.insert(tgt) {
                        stack.push(tgt);
                    }
                }
            }
        };
        seed(
            &root_fn.calls,
            root_fn.impl_type.as_deref(),
            &mut members,
            &mut stack,
            Some((lo, hi)),
        );
        while let Some(fref) = stack.pop() {
            let f = &files[fref.0].fns[fref.1];
            seed(
                &f.calls,
                f.impl_type.as_deref(),
                &mut members,
                &mut stack,
                None,
            );
        }

        // Phase access set: root-region accesses + member accesses.
        let mut phase_acc: Vec<(usize, Access)> = root_accesses
            .iter()
            .filter(|a| a.line >= lo && a.line <= hi)
            .map(|a| (rfi, a.clone()))
            .collect();
        let mut functions = BTreeSet::new();
        for &fref in &members {
            let acc = accesses_of(fref);
            if !acc.is_empty() {
                functions.insert(files[fref.0].fns[fref.1].qname());
            }
            phase_acc.extend(acc.into_iter().map(|a| (fref.0, a)));
        }

        check_phase(m, &phase_acc, files, &mut findings);
        if m.kind == PhaseKind::Commit {
            r006_ledger_folds(
                root_file,
                root_fn.body,
                Some((lo, hi)),
                &m.name,
                &mut findings,
            );
            for &fref in &members {
                let f = &files[fref.0].fns[fref.1];
                if !f.is_test {
                    r006_ledger_folds(&files[fref.0], f.body, None, &m.name, &mut findings);
                }
            }
        }

        let mut footprint: BTreeMap<String, FieldFoot> = BTreeMap::new();
        for (_, a) in &phase_acc {
            if a.class == Class::Scratch {
                continue;
            }
            let foot = footprint.entry(a.field.clone()).or_default();
            foot.class = Some(a.class);
            if a.write {
                foot.write_idx.insert(a.index.name());
                foot.write_ops
                    .insert(a.method.clone().unwrap_or_else(|| a.op.name().to_string()));
            } else {
                foot.read_idx.insert(a.index.name());
            }
        }
        phases.push(PhaseSummary {
            name: m.name.clone(),
            kind: m.kind,
            line: m.line,
            functions,
            footprint,
        });
    }

    let info = PhaseInfo {
        root: cfg.phase_root.to_string(),
        root_file: root_file.path.clone(),
        phases,
    };
    (findings.into_vec(), Some(info))
}

/// Evaluate R001/R002/R003/R005 over one phase's access set.
fn check_phase(m: &Marker, phase_acc: &[(usize, Access)], files: &[File], findings: &mut Findings) {
    match m.kind {
        PhaseKind::Parallel => {
            // Fields this phase writes shard-locally (for R002).
            let local_written: BTreeSet<&str> = phase_acc
                .iter()
                .filter(|(_, a)| a.class.is_sharded() && a.write && a.index.is_local())
                .map(|(_, a)| a.field.as_str())
                .collect();
            for (fi, a) in phase_acc {
                let file = &files[*fi];
                match a.class {
                    Class::Sharded(axis) => {
                        if a.write && !a.index.is_local() {
                            findings.push(
                                RULE_PHASE_CROSS_WRITE,
                                file,
                                a.line,
                                format!(
                                    "cross-shard write in parallel phase `{}`: \
                                     {}-sharded `{}` written with {} index",
                                    m.name,
                                    axis.name(),
                                    a.field,
                                    a.index.name()
                                ),
                            );
                        } else if !a.write
                            && !a.index.is_local()
                            && local_written.contains(a.field.as_str())
                        {
                            findings.push(
                                RULE_PHASE_READ_RACE,
                                file,
                                a.line,
                                format!(
                                    "read of foreign-shard `{}` in parallel phase `{}` \
                                     races the phase's local writes to the same field",
                                    a.field, m.name
                                ),
                            );
                        }
                    }
                    Class::Global | Class::Static if a.write => {
                        findings.push(
                            RULE_PHASE_ACCUM,
                            file,
                            a.line,
                            format!(
                                "unsharded state `{}` mutated in parallel phase `{}` \
                                 outside any reduction-safe sink",
                                a.field, m.name
                            ),
                        );
                    }
                    Class::Sink if a.write && !sink_write_ok(a) => {
                        findings.push(
                            RULE_PHASE_ACCUM,
                            file,
                            a.line,
                            format!(
                                "sink `{}` mutated through non-reduction-safe \
                                 operation `{}` in parallel phase `{}`",
                                a.field,
                                a.method.as_deref().unwrap_or(a.op.name()),
                                m.name
                            ),
                        );
                    }
                    _ => {}
                }
            }
        }
        PhaseKind::Commit => {
            for (fi, a) in phase_acc {
                let order_sensitive = a
                    .method
                    .as_deref()
                    .is_some_and(|mn| access::ORDER_SENSITIVE.contains(&mn));
                if a.class.is_sharded() && order_sensitive {
                    findings.push(
                        RULE_PHASE_FOLD,
                        &files[*fi],
                        a.line,
                        format!(
                            "iteration-order-sensitive `{}` over sharded `{}` in \
                             commit phase `{}` — result depends on shard enumeration \
                             order",
                            a.method.as_deref().unwrap_or(""),
                            a.field,
                            m.name
                        ),
                    );
                }
            }
        }
    }
}

/// R006: scan one function body (optionally restricted to a line
/// region, for the phase-root segments) for loops draining an effect
/// ledger whose accumulator updates weight elements by position.
///
/// The detected shape is a loop-carried scalar update inside a
/// `for … in …<ledger>…` loop where the accumulator is combined through
/// a position-weighting operation: `acc = acc.wrapping_mul(…)…`,
/// `acc = acc * k + …`, `acc *= …`, or a shift. Commutative reductions
/// (`+=`, `^=`, `wrapping_add`, `max`) stay silent, and so does the
/// canonicalizing `sort_unstable()`-then-append idiom — sorting *is*
/// the sanctioned way to make a drain order-insensitive.
fn r006_ledger_folds(
    file: &File,
    body: (usize, usize),
    region: Option<(u32, u32)>,
    phase: &str,
    findings: &mut Findings,
) {
    let toks = &file.tokens;
    let hi = body.1.min(toks.len());
    let text = |i: usize| toks[i].text(&file.src);
    let is_ident = |i: usize| i < hi && toks[i].kind == TokKind::Ident;
    let adj = |i: usize, j: usize| j < hi && toks[i].end == toks[j].start;
    let skip_group = |at: usize| -> usize {
        let mut depth = 0i64;
        let mut j = at;
        while j < hi {
            match text(j) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        hi
    };
    // A dotted path that stops *before* a call segment, so the first
    // combinator method stays outside the path text.
    let read_path = |at: usize| -> (usize, String) {
        let mut repr = text(at).to_string();
        let mut e = at + 1;
        while e + 1 < hi && text(e) == "." && is_ident(e + 1) && !(e + 2 < hi && text(e + 2) == "(")
        {
            repr.push('.');
            repr.push_str(text(e + 1));
            e += 2;
        }
        (e, repr)
    };
    let weighting_at = |e: usize| -> bool {
        if matches!(text(e), "*" | "/" | "%") {
            return true;
        }
        if (text(e) == "<" && e + 1 < hi && text(e + 1) == "<" && adj(e, e + 1))
            || (text(e) == ">" && e + 1 < hi && text(e + 1) == ">" && adj(e, e + 1))
        {
            return true;
        }
        text(e) == "."
            && is_ident(e + 1)
            && access::ORDER_WEIGHTING.contains(&text(e + 1))
            && e + 2 < hi
            && text(e + 2) == "("
    };

    let mut i = body.0;
    while i < hi {
        if text(i) != "for" || region.is_some_and(|(l, h)| toks[i].line < l || toks[i].line > h) {
            i += 1;
            continue;
        }
        // Top-level `in`, then the header expression up to the body `{`.
        let mut j = i + 1;
        let mut depth = 0i64;
        while j < hi && !(depth == 0 && text(j) == "in") && text(j) != "{" {
            match text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        if j >= hi || text(j) != "in" {
            i = j.max(i + 1);
            continue;
        }
        let mut k = j + 1;
        let mut depth = 0i64;
        let mut ledger: Option<&str> = None;
        while k < hi {
            let t = text(k);
            match t {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                _ => {
                    if is_ident(k) && access::LEDGERS.contains(&t) {
                        ledger = Some(t);
                    }
                }
            }
            k += 1;
        }
        if k >= hi {
            break;
        }
        let body_end = skip_group(k);
        let Some(ledger) = ledger else {
            i = k + 1; // descend into the loop body: ledger loops nest
            continue;
        };
        let mut flag = |at: usize, path: &str| {
            findings.push(
                RULE_LEDGER_FOLD,
                file,
                toks[at].line,
                format!(
                    "position-weighting accumulation over the `{ledger}` ledger drain \
                     in commit phase `{phase}`: `{path}` weights elements by ledger \
                     position, which the shard schedule permutes — reduce \
                     commutatively or sort the drained elements first"
                ),
            );
        };
        let mut p = k + 1;
        while p + 1 < body_end {
            if !is_ident(p) || (p > 0 && text(p - 1) == ".") {
                p += 1;
                continue;
            }
            let (e, path) = read_path(p);
            if e >= body_end {
                break;
            }
            // `acc *= …`, `acc <<= …` — compound weighting assignment.
            let compound = (matches!(text(e), "*" | "/" | "%")
                && e + 1 < hi
                && text(e + 1) == "="
                && adj(e, e + 1))
                || (matches!(text(e), "<" | ">")
                    && e + 2 < hi
                    && text(e + 1) == text(e)
                    && adj(e, e + 1)
                    && text(e + 2) == "="
                    && adj(e + 1, e + 2));
            if compound {
                flag(p, &path);
                p = e + 2;
                continue;
            }
            // `acc = acc <weighting> …` — self-assignment through a
            // position-weighting first combinator.
            if text(e) == "=" && !(e + 1 < hi && text(e + 1) == "=" && adj(e, e + 1)) {
                let rhs = e + 1;
                if is_ident(rhs) {
                    let (re, rpath) = read_path(rhs);
                    if rpath == path && re < body_end && weighting_at(re) {
                        flag(p, &path);
                    }
                }
            }
            p = e.max(p + 1);
        }
        i = body_end;
    }
}

/// Is this sink mutation one of the sink's declared reduction-safe
/// operations?
fn sink_write_ok(a: &Access) -> bool {
    let Some(policy) = access::sink_policy(&a.field) else {
        return false;
    };
    match a.op {
        Op::Compound => policy.allow_compound,
        Op::Method => match policy.methods {
            access::SinkMethods::Any => true,
            access::SinkMethods::Only(list) => {
                a.method.as_deref().is_some_and(|m| list.contains(&m))
            }
        },
        _ => false,
    }
}

/// Parse one comment token as a phase marker. `None` when the comment
/// is not a phase marker at all; `Some(Err)` when it tries to be one
/// and fails.
fn parse_marker(c: &Token, src: &str) -> Option<Result<Marker, String>> {
    let text = c.text(src);
    // Doc comments host examples, not directives.
    for doc in ["///", "//!", "/*!", "/**"] {
        if text.starts_with(doc) {
            return None;
        }
    }
    let rest = text
        .trim_start_matches('/')
        .trim_start_matches('*')
        .trim_start();
    let rest = rest.strip_prefix("ofar-lint:")?.trim_start();
    let rest = rest.strip_prefix("phase")?;
    let Some(inner) = rest
        .trim_start()
        .strip_prefix('(')
        .and_then(|r| r.split_once(')'))
        .map(|(inner, _)| inner)
    else {
        return Some(Err("expected `phase(<name>[, parallel|commit])`".into()));
    };
    let mut parts = inner.split(',').map(str::trim);
    let name = parts.next().unwrap_or("");
    if name.is_empty()
        || !name
            .chars()
            .all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '_')
    {
        return Some(Err(format!(
            "phase name `{name}` must be a snake_case identifier"
        )));
    }
    let kind = match parts.next() {
        None => PhaseKind::Parallel,
        Some("parallel") => PhaseKind::Parallel,
        Some("commit") => PhaseKind::Commit,
        Some(other) => {
            return Some(Err(format!(
                "phase kind `{other}` must be `parallel` or `commit`"
            )))
        }
    };
    if parts.next().is_some() {
        return Some(Err("too many arguments in phase marker".into()));
    }
    Some(Ok(Marker {
        name: name.to_string(),
        kind,
        line: c.line,
    }))
}

/// Finding accumulator deduplicating on (rule, file, line): a member
/// function shared by several phases reports each defect once.
#[derive(Default)]
struct Findings {
    seen: BTreeSet<(&'static str, String, u32)>,
    out: Vec<Finding>,
}

impl Findings {
    fn push(&mut self, rule: &'static str, file: &File, line: u32, message: String) {
        if !self.seen.insert((rule, file.path.clone(), line)) {
            return;
        }
        self.out.push(Finding {
            rule,
            file: file.path.clone(),
            line,
            message,
            snippet: line_snippet(file, line),
            suppressed: None,
        });
    }

    fn into_vec(self) -> Vec<Finding> {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn run(src: &str) -> (Vec<Finding>, Option<PhaseInfo>) {
        let files = vec![parse("engine/src/network.rs", "engine", src, lex(src))];
        let graph = CallGraph::build(&files);
        analyze(&files, &graph, &LintConfig::default())
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn clean_phased_step_has_no_findings() {
        let (f, info) = run(r#"
            impl Network {
                pub fn step(&mut self, now: u64) {
                    // ofar-lint: phase(route)
                    for r in 0..n {
                        self.route(r, now);
                    }
                    // ofar-lint: phase(commit_effects, commit)
                    self.commit_effects(now);
                }
                fn route(&mut self, ridx: usize, now: u64) {
                    self.routers[ridx].outputs[p].credits[v] -= s;
                    self.stats.delivered += 1;
                }
                fn commit_effects(&mut self, now: u64) {
                    self.routers[up_r].outputs[up_p].credits[v] += s;
                }
            }
        "#);
        assert!(f.is_empty(), "{f:?}");
        let info = info.expect("phase info");
        assert_eq!(info.phases.len(), 2);
        assert_eq!(info.phases[0].kind, PhaseKind::Parallel);
        assert!(info.phases[0].functions.contains("Network::route"));
        assert!(info.phases[0].footprint.contains_key("credits"));
    }

    #[test]
    fn cross_shard_write_in_parallel_phase_is_r001() {
        let (f, _) = run(r#"
            impl Network {
                pub fn step(&mut self, now: u64) {
                    // ofar-lint: phase(route)
                    self.route(now);
                }
                fn route(&mut self, now: u64) {
                    self.routers[desc.up_router as usize].outputs[p].credit_events.push_back(x);
                }
            }
        "#);
        assert_eq!(rules_of(&f), vec![RULE_PHASE_CROSS_WRITE]);
    }

    #[test]
    fn foreign_read_racing_local_write_is_r002() {
        let (f, _) = run(r#"
            impl Network {
                pub fn step(&mut self, now: u64) {
                    // ofar-lint: phase(route)
                    self.route(ridx, now);
                }
                fn route(&mut self, ridx: usize, now: u64) {
                    self.routers[ridx].outputs[p].credits[v] -= s;
                    let free = self.routers[up_r].outputs[up_p].credits[v];
                }
            }
        "#);
        assert_eq!(rules_of(&f), vec![RULE_PHASE_READ_RACE]);
    }

    #[test]
    fn global_write_in_parallel_phase_is_r003() {
        let (f, _) = run(r#"
            impl Network {
                pub fn step(&mut self, now: u64) {
                    // ofar-lint: phase(inject)
                    self.inject(now);
                }
                fn inject(&mut self, now: u64) {
                    self.next_id += 1;
                }
            }
        "#);
        assert_eq!(rules_of(&f), vec![RULE_PHASE_ACCUM]);
    }

    #[test]
    fn sink_plain_assign_is_r003_but_compound_is_not() {
        let (f, _) = run(r#"
            impl Network {
                pub fn step(&mut self, now: u64) {
                    // ofar-lint: phase(route)
                    self.route(now);
                }
                fn route(&mut self, now: u64) {
                    self.stats.delivered += 1;
                    self.stats.last_grant = now;
                }
            }
        "#);
        assert_eq!(rules_of(&f), vec![RULE_PHASE_ACCUM]);
        assert!(f[0].message.contains("assign"));
    }

    #[test]
    fn missing_markers_and_leading_gap_are_r004() {
        let (f, info) = run(r#"
            impl Network {
                pub fn step(&mut self, now: u64) {
                    self.route(now);
                }
                fn route(&mut self, now: u64) {}
            }
        "#);
        assert_eq!(rules_of(&f), vec![RULE_PHASE_GAP]);
        assert!(info.is_none());

        let (f, _) = run(r#"
            impl Network {
                pub fn step(&mut self, now: u64) {
                    self.before(now);
                    // ofar-lint: phase(route)
                    self.route(now);
                }
                fn before(&mut self, now: u64) {}
                fn route(&mut self, now: u64) {}
            }
        "#);
        assert_eq!(rules_of(&f), vec![RULE_PHASE_GAP]);
    }

    #[test]
    fn order_sensitive_fold_in_commit_phase_is_r005() {
        let (f, _) = run(r#"
            impl Network {
                pub fn step(&mut self, now: u64) {
                    // ofar-lint: phase(audit, commit)
                    self.audit(now);
                }
                fn audit(&mut self, now: u64) {
                    let t = self.routers.iter().fold(0u64, |a, r| a ^ h(r));
                }
            }
        "#);
        assert_eq!(rules_of(&f), vec![RULE_PHASE_FOLD]);
    }

    #[test]
    fn malformed_and_misplaced_markers_are_r004() {
        let (f, _) = run(r#"
            // ofar-lint: phase(BadName)
            impl Network {
                pub fn step(&mut self, now: u64) {
                    // ofar-lint: phase(route, sideways)
                    self.route(now);
                }
                fn route(&mut self, now: u64) {}
            }
        "#);
        // One malformed (BadName outside + bad case) and one bad kind,
        // plus the no-valid-marker finding on the root.
        assert!(f.iter().all(|x| x.rule == RULE_PHASE_GAP));
        assert!(f.len() >= 2, "{f:?}");
    }
}
