//! Conservative workspace call graph and hot-path reachability.
//!
//! Calls are resolved **by name**: a call `foo(…)` may reach every
//! workspace function named `foo`; a qualified call `Llr::foo(…)` is
//! narrowed to impls of `Llr` when any exist. This over-approximates
//! (trait dispatch, shadowing and std methods all collapse onto one
//! name), which is exactly what a safety gate wants: the hot-path rules
//! may flag a function that is not truly reachable from
//! `Network::step`, but they can never silently miss one that is.

use crate::parse::File;
use std::collections::{BTreeMap, BTreeSet};

/// A function's global identity: (file index, fn index within file).
pub type FnRef = (usize, usize);

/// The workspace call graph.
pub struct CallGraph {
    /// name → functions carrying that name (test fns excluded).
    by_name: BTreeMap<String, Vec<FnRef>>,
    /// `Type::name` → functions, for qualified-call narrowing.
    by_qname: BTreeMap<String, Vec<FnRef>>,
}

impl CallGraph {
    /// Index every non-test function of the parsed workspace.
    pub fn build(files: &[File]) -> Self {
        let mut by_name: BTreeMap<String, Vec<FnRef>> = BTreeMap::new();
        let mut by_qname: BTreeMap<String, Vec<FnRef>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                by_name.entry(f.name.clone()).or_default().push((fi, gi));
                by_qname.entry(f.qname()).or_default().push((fi, gi));
            }
        }
        Self { by_name, by_qname }
    }

    /// Functions a call may resolve to — the public entry the R-family
    /// phase analysis uses to walk per-phase closures. `qualifier` is
    /// the `Llr` of `Llr::foo(…)`; callers should substitute `Self`
    /// with the enclosing impl type before resolving.
    pub fn resolve_call(&self, name: &str, qualifier: Option<&str>) -> &[FnRef] {
        self.resolve(name, qualifier)
    }

    /// Functions a call may resolve to.
    fn resolve(&self, name: &str, qualifier: Option<&str>) -> &[FnRef] {
        if let Some(q) = qualifier {
            let qn = format!("{q}::{name}");
            if let Some(v) = self.by_qname.get(&qn) {
                return v;
            }
            // Unmatched CamelCase qualifiers are foreign types
            // (`Vec::new`, `RouterId::from`): resolving them by bare
            // name would drag every workspace `new` into the hot set.
            // Primitive qualifiers (`u64::from`) are foreign too.
            // snake_case qualifiers are module paths (`llr::crc32`) —
            // those do resolve by name.
            const PRIMITIVES: &[&str] = &[
                "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
                "isize", "f32", "f64", "bool", "char", "str",
            ];
            if q.starts_with(|c: char| c.is_ascii_uppercase()) || PRIMITIVES.contains(&q) {
                return &[];
            }
            return self.by_name.get(name).map_or(&[], Vec::as_slice);
        }
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// All functions reachable from the functions whose qualified name
    /// matches one of `roots` (exact `Type::name` or bare-name match).
    pub fn reachable(&self, files: &[File], roots: &[String]) -> BTreeSet<FnRef> {
        let mut seen: BTreeSet<FnRef> = BTreeSet::new();
        let mut stack: Vec<FnRef> = Vec::new();
        for root in roots {
            let hits = self
                .by_qname
                .get(root)
                .or_else(|| self.by_name.get(root))
                .map_or(&[][..], Vec::as_slice);
            for &r in hits {
                if seen.insert(r) {
                    stack.push(r);
                }
            }
        }
        while let Some((fi, gi)) = stack.pop() {
            let f = &files[fi].fns[gi];
            for call in &f.calls {
                // `Vec::new`-style std constructors resolve nowhere;
                // workspace calls fan out over every name match.
                let name = call.name.strip_suffix('!').unwrap_or(&call.name);
                for &tgt in self.resolve(name, call.qualifier.as_deref()) {
                    if seen.insert(tgt) {
                        stack.push(tgt);
                    }
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn files(srcs: &[&str]) -> Vec<File> {
        srcs.iter()
            .enumerate()
            .map(|(i, s)| parse(&format!("f{i}.rs"), "engine", s, lex(s)))
            .collect()
    }

    #[test]
    fn reaches_through_methods_and_names() {
        let fs = files(&[
            r#"
            impl Network {
                pub fn step(&mut self) { self.inject(); helper(); }
                fn inject(&mut self) { self.policy.route(); }
            }
            fn helper() {}
            fn unrelated() {}
            "#,
            r#"
            impl MinPolicy { fn route(&mut self) { leaf(); } }
            fn leaf() {}
            "#,
        ]);
        let g = CallGraph::build(&fs);
        let reach = g.reachable(&fs, &["Network::step".to_string()]);
        let names: Vec<String> = reach
            .iter()
            .map(|&(fi, gi)| fs[fi].fns[gi].qname())
            .collect();
        assert!(names.contains(&"Network::inject".to_string()));
        assert!(names.contains(&"helper".to_string()));
        assert!(names.contains(&"MinPolicy::route".to_string()));
        assert!(names.contains(&"leaf".to_string()));
        assert!(!names.contains(&"unrelated".to_string()));
    }

    #[test]
    fn qualified_calls_do_not_fan_out_over_std_types() {
        let fs = files(&[r#"
            impl Network { pub fn step(&mut self) { let v = Vec::new(); } }
            impl Pool { fn new() { expensive(); } }
            fn expensive() {}
            "#]);
        let g = CallGraph::build(&fs);
        let reach = g.reachable(&fs, &["Network::step".to_string()]);
        let names: Vec<String> = reach
            .iter()
            .map(|&(fi, gi)| fs[fi].fns[gi].qname())
            .collect();
        assert!(
            !names.contains(&"Pool::new".to_string()),
            "Vec::new must not reach Pool::new"
        );
    }
}
