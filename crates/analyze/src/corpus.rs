//! The seeded violation-fixture corpus.
//!
//! Each fixture under `crates/analyze/fixtures/` violates exactly one
//! rule family and annotates every line that must fire with
//! `// lint:expect(RULE)`. [`selftest`] runs the full analyzer over
//! each fixture and checks the expectation set **bidirectionally**:
//! every expectation must be met by an open finding, and every open
//! finding must be expected — so the corpus pins both recall (the rule
//! fires) and precision (it fires only where seeded). The
//! `s_snapshot.rs` fixture is the seeded missing-field snapshot mutant
//! CI proves the analyzer catches.
//!
//! Fixtures are embedded with `include_str!`, so `ofar-lint --selftest`
//! needs no filesystem layout at run time.

use crate::suppress::{self, MarkerKind};
use crate::{analyze_sources, lexer, parse, LintConfig, SourceFile};

/// One embedded fixture.
pub struct Fixture {
    /// File name (for messages).
    pub name: &'static str,
    /// Source text.
    pub src: &'static str,
}

/// The full corpus: every rule family is represented.
pub const FIXTURES: &[Fixture] = &[
    Fixture {
        name: "d_hash.rs",
        src: include_str!("../fixtures/d_hash.rs"),
    },
    Fixture {
        name: "d_time.rs",
        src: include_str!("../fixtures/d_time.rs"),
    },
    Fixture {
        name: "d_thread.rs",
        src: include_str!("../fixtures/d_thread.rs"),
    },
    Fixture {
        name: "d_ptr.rs",
        src: include_str!("../fixtures/d_ptr.rs"),
    },
    Fixture {
        name: "d_float.rs",
        src: include_str!("../fixtures/d_float.rs"),
    },
    Fixture {
        name: "h_alloc.rs",
        src: include_str!("../fixtures/h_alloc.rs"),
    },
    Fixture {
        name: "s_snapshot.rs",
        src: include_str!("../fixtures/s_snapshot.rs"),
    },
    Fixture {
        name: "p_panic.rs",
        src: include_str!("../fixtures/p_panic.rs"),
    },
    Fixture {
        name: "p_cast.rs",
        src: include_str!("../fixtures/p_cast.rs"),
    },
    Fixture {
        name: "p_index.rs",
        src: include_str!("../fixtures/p_index.rs"),
    },
    Fixture {
        name: "r_clean.rs",
        src: include_str!("../fixtures/r_clean.rs"),
    },
    Fixture {
        name: "r_cross.rs",
        src: include_str!("../fixtures/r_cross.rs"),
    },
    Fixture {
        name: "r_read.rs",
        src: include_str!("../fixtures/r_read.rs"),
    },
    Fixture {
        name: "r_accum.rs",
        src: include_str!("../fixtures/r_accum.rs"),
    },
    Fixture {
        name: "r_gap.rs",
        src: include_str!("../fixtures/r_gap.rs"),
    },
    Fixture {
        name: "r_fold.rs",
        src: include_str!("../fixtures/r_fold.rs"),
    },
    Fixture {
        name: "r_ledger.rs",
        src: include_str!("../fixtures/r_ledger.rs"),
    },
    Fixture {
        name: "s_waiver_live.rs",
        src: include_str!("../fixtures/s_waiver_live.rs"),
    },
    Fixture {
        name: "s_waiver_stale.rs",
        src: include_str!("../fixtures/s_waiver_stale.rs"),
    },
    Fixture {
        name: "suppress_ok.rs",
        src: include_str!("../fixtures/suppress_ok.rs"),
    },
    Fixture {
        name: "suppress_bad.rs",
        src: include_str!("../fixtures/suppress_bad.rs"),
    },
];

/// Companion contract artifacts for the waiver-hygiene fixtures: S002
/// audits a checked-in contract, so those fixtures carry one (a live
/// waiver that must stay silent, a stale one that must fire).
fn fixture_contract(name: &str) -> Option<&'static str> {
    match name {
        "s_waiver_live.rs" => Some(include_str!("../fixtures/s_waiver_live.contract.json")),
        "s_waiver_stale.rs" => Some(include_str!("../fixtures/s_waiver_stale.contract.json")),
        _ => None,
    }
}

/// Run the analyzer over every fixture and verify the expectation sets.
/// Returns a one-line summary, or the list of mismatches.
pub fn selftest() -> Result<String, Vec<String>> {
    let mut errors = Vec::new();
    let mut expectations = 0usize;
    for fx in FIXTURES {
        let cfg = LintConfig {
            contract: fixture_contract(fx.name).map(str::to_string),
            ..LintConfig::default()
        };
        let sf = SourceFile {
            path: fx.name.to_string(),
            crate_name: "engine".to_string(),
            text: fx.src.to_string(),
        };
        let analysis = analyze_sources(std::slice::from_ref(&sf), &cfg, None);
        let parsed = parse::parse(fx.name, "engine", fx.src, lexer::lex(fx.src));
        let expects: Vec<_> = suppress::scan(&parsed)
            .into_iter()
            .filter(|m| m.kind == MarkerKind::Expect)
            .collect();
        expectations += expects.len();
        let open: Vec<_> = analysis.open().collect();
        for m in &expects {
            let hit = open
                .iter()
                .any(|f| f.rule == m.rule && f.line >= m.scope.0 && f.line <= m.scope.1);
            if !hit {
                errors.push(format!(
                    "{}:{}: expected {} to fire, but it did not",
                    fx.name, m.line, m.rule
                ));
            }
        }
        for f in &open {
            let expected = expects
                .iter()
                .any(|m| m.rule == f.rule && f.line >= m.scope.0 && f.line <= m.scope.1);
            if !expected {
                errors.push(format!(
                    "{}:{}: unexpected open finding [{}] {}",
                    fx.name, f.line, f.rule, f.message
                ));
            }
        }
    }
    if errors.is_empty() {
        Ok(format!(
            "selftest ok: {} fixtures, {} expectations verified bidirectionally",
            FIXTURES.len(),
            expectations
        ))
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The corpus proof: every rule fires where seeded and nowhere else.
    #[test]
    fn corpus_expectations_hold() {
        if let Err(errors) = selftest() {
            panic!("corpus selftest failed:\n{}", errors.join("\n"));
        }
    }

    /// The seeded snapshot mutant specifically (the CI acceptance
    /// criterion): the codec misses `last_eject` and S001 must say so.
    #[test]
    fn snapshot_mutant_is_caught() {
        let fx = FIXTURES.iter().find(|f| f.name == "s_snapshot.rs").unwrap();
        let sf = SourceFile {
            path: fx.name.to_string(),
            crate_name: "engine".to_string(),
            text: fx.src.to_string(),
        };
        let a = analyze_sources(&[sf], &LintConfig::default(), None);
        assert!(
            a.open()
                .any(|f| f.rule == crate::rules::RULE_SNAPSHOT_FIELD
                    && f.message.contains("last_eject")),
            "S001 must flag the unserialized field"
        );
    }
}
