//! The checked-in findings baseline.
//!
//! Findings the team has accepted live in `lint-baseline.json` at the
//! workspace root. Entries are matched by `(rule, file, snippet)` — the
//! snippet (trimmed source line) rather than the line number, so
//! unrelated edits above a finding don't invalidate the baseline. Every
//! entry carries a mandatory reason; entries that match no current
//! finding are themselves reported ([`rules::RULE_STALE_BASELINE`]) so
//! the baseline can only shrink.

use crate::json::{self, Value};
use crate::rules::{self, Finding, Suppression};

/// One accepted finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// Trimmed source line the finding anchors to.
    pub snippet: String,
    /// Mandatory justification.
    pub reason: String,
}

/// A parsed baseline file.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// Accepted findings.
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// Parse the baseline JSON document.
    pub fn parse(src: &str) -> Result<Self, String> {
        let v = json::parse(src)?;
        if v.get("version") != Some(&Value::Int(1)) {
            return Err("baseline: missing or unsupported \"version\" (want 1)".to_string());
        }
        let entries = v
            .get("entries")
            .and_then(Value::as_arr)
            .ok_or("baseline: missing \"entries\" array")?;
        let mut out = Vec::new();
        for (i, e) in entries.iter().enumerate() {
            let field = |k: &str| -> Result<String, String> {
                e.get(k)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline entry {i}: missing string field \"{k}\""))
            };
            out.push(Entry {
                rule: field("rule")?,
                file: field("file")?,
                snippet: field("snippet")?,
                reason: field("reason")?,
            });
        }
        Ok(Self { entries: out })
    }

    /// Serialize to the canonical on-disk form.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"version\": 1,\n  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\n      \"rule\": \"{}\",\n      \"file\": \"{}\",\n      \
                 \"snippet\": \"{}\",\n      \"reason\": \"{}\"\n    }}",
                json::escape(&e.rule),
                json::escape(&e.file),
                json::escape(&e.snippet),
                json::escape(&e.reason)
            ));
        }
        if !self.entries.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Build a baseline accepting every currently-unsuppressed finding.
    /// (`--update-baseline`; A-family findings are never baselined.)
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut entries: Vec<Entry> = findings
            .iter()
            .filter(|f| f.suppressed.is_none() && !f.rule.starts_with('A'))
            .map(|f| Entry {
                rule: f.rule.to_string(),
                file: f.file.clone(),
                snippet: f.snippet.clone(),
                reason: "baselined pending fix".to_string(),
            })
            .collect();
        entries.dedup();
        Self { entries }
    }

    /// Mark findings matched by a baseline entry as suppressed, and
    /// report entries that matched nothing (stale) or carry no reason
    /// (malformed). Returns the extra A-family findings.
    pub fn apply(&self, findings: &mut [Finding]) -> Vec<Finding> {
        let mut used = vec![false; self.entries.len()];
        for f in findings.iter_mut() {
            if f.suppressed.is_some() || f.rule.starts_with('A') {
                continue;
            }
            if let Some(i) = self
                .entries
                .iter()
                .position(|e| e.rule == f.rule && e.file == f.file && e.snippet == f.snippet)
            {
                used[i] = true;
                f.suppressed = Some(Suppression {
                    via: "baseline",
                    reason: self.entries[i].reason.clone(),
                });
            }
        }
        let mut extra = Vec::new();
        for (i, e) in self.entries.iter().enumerate() {
            if e.reason.trim().is_empty() {
                extra.push(Finding {
                    rule: rules::RULE_BAD_SUPPRESSION,
                    file: e.file.clone(),
                    line: 0,
                    message: format!(
                        "baseline entry for {} in {} has no reason — every accepted \
                         finding must be justified",
                        e.rule, e.file
                    ),
                    snippet: e.snippet.clone(),
                    suppressed: None,
                });
            }
            if !used[i] {
                extra.push(Finding {
                    rule: rules::RULE_STALE_BASELINE,
                    file: e.file.clone(),
                    line: 0,
                    message: format!(
                        "stale baseline entry: no current {} finding in {} matches \
                         snippet `{}` — remove it",
                        e.rule, e.file, e.snippet
                    ),
                    snippet: e.snippet.clone(),
                    suppressed: None,
                });
            }
        }
        extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 7,
            message: "m".to_string(),
            snippet: snippet.to_string(),
            suppressed: None,
        }
    }

    #[test]
    fn round_trip() {
        let b = Baseline {
            entries: vec![Entry {
                rule: "D001".to_string(),
                file: "a.rs".to_string(),
                snippet: "let m = HashMap::new();".to_string(),
                reason: "membership-only".to_string(),
            }],
        };
        let b2 = Baseline::parse(&b.to_json()).unwrap();
        assert_eq!(b.entries, b2.entries);
    }

    #[test]
    fn apply_suppresses_and_flags_stale() {
        let b = Baseline {
            entries: vec![
                Entry {
                    rule: "D001".to_string(),
                    file: "a.rs".to_string(),
                    snippet: "x".to_string(),
                    reason: "ok".to_string(),
                },
                Entry {
                    rule: "D001".to_string(),
                    file: "gone.rs".to_string(),
                    snippet: "y".to_string(),
                    reason: "ok".to_string(),
                },
            ],
        };
        let mut fs = vec![finding(rules::RULE_HASH_CONTAINER, "a.rs", "x")];
        let extra = b.apply(&mut fs);
        assert!(fs[0].suppressed.is_some());
        assert_eq!(extra.len(), 1);
        assert_eq!(extra[0].rule, rules::RULE_STALE_BASELINE);
    }

    #[test]
    fn empty_reason_is_flagged() {
        let b = Baseline {
            entries: vec![Entry {
                rule: "D001".to_string(),
                file: "a.rs".to_string(),
                snippet: "x".to_string(),
                reason: " ".to_string(),
            }],
        };
        let mut fs = vec![finding(rules::RULE_HASH_CONTAINER, "a.rs", "x")];
        let extra = b.apply(&mut fs);
        assert!(extra.iter().any(|f| f.rule == rules::RULE_BAD_SUPPRESSION));
    }
}
