//! Field-access classification for the R (race/phase) rule family.
//!
//! Walks `self.`-rooted paths (and locally bound aliases of them) in
//! `impl Network` function bodies and classifies every access by the
//! *shard axis* it belongs to (router / NIC / link), the *index kind*
//! used to reach the shard (home, sweep, foreign, unknown) and the
//! operation performed. The phase analysis ([`crate::phases`]) folds
//! these accesses into per-phase read/write footprints and enforces
//! the partitionability rules R001–R005.
//!
//! The classifier is deliberately name-based and conservative, in the
//! same spirit as the call graph: an access it cannot prove home-
//! indexed degrades to `Unknown`, which the parallel-phase rules treat
//! exactly like a foreign access. It can report a spurious race; it
//! cannot silently bless a real one on the fields it models.

use crate::lexer::{TokKind, Token};
use crate::parse::{File, FnItem};
use std::collections::{BTreeMap, BTreeSet};

/// The shard axis a piece of engine state is partitioned over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Axis {
    /// Partitioned per router (`routers`, CM per-router sensing, …).
    Router,
    /// Partitioned per NIC/source node (`src_q`, token buckets, …).
    Node,
    /// Partitioned per directed link (`llr` replay/rx state).
    Link,
}

impl Axis {
    /// Stable lower-case name used in messages and the contract.
    pub fn name(self) -> &'static str {
        match self {
            Axis::Router => "router",
            Axis::Node => "node",
            Axis::Link => "link",
        }
    }
}

/// What kind of state an access touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Class {
    /// Indexed per-shard state on the given axis.
    Sharded(Axis),
    /// Allocation-grade per-call scratch (`reqs`, `grants`, …): the
    /// parallel engine gives each worker its own copy, so accesses are
    /// exempt from the race rules.
    Scratch,
    /// A reduction-safe accumulator (`stats`, `effects`, …): mutation
    /// is allowed from parallel phases only through the sink's declared
    /// commutative operations.
    Sink,
    /// Immutable-after-construction topology (`fab`).
    Static,
    /// Everything else reached from `self`: unsharded engine state
    /// (`now`, `policy`, `faults`, …). Writable only in commit phases.
    Global,
}

impl Class {
    /// Stable lower-case name used in messages and the contract.
    pub fn name(self) -> &'static str {
        match self {
            Class::Sharded(a) => a.name(),
            Class::Scratch => "scratch",
            Class::Sink => "sink",
            Class::Static => "static",
            Class::Global => "global",
        }
    }

    /// True for per-shard state.
    pub fn is_sharded(self) -> bool {
        matches!(self, Class::Sharded(_))
    }
}

/// How the shard a sharded access touches relates to the shard the
/// surrounding code is evaluating.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Index {
    /// Indexed by the shard's own id (`ridx`, `node`, …).
    Home,
    /// Reached through a per-shard sweep (`iter_mut().enumerate()`).
    Sweep,
    /// Provably another shard's state (`up_*` / `dst_*` naming).
    Foreign,
    /// The analyzer could not prove the index — treated like foreign
    /// by the parallel-phase rules.
    Unknown,
}

impl Index {
    /// Stable lower-case name used in messages and the contract.
    pub fn name(self) -> &'static str {
        match self {
            Index::Home => "home",
            Index::Sweep => "sweep",
            Index::Foreign => "foreign",
            Index::Unknown => "unknown",
        }
    }

    /// Home or sweep — the access stays inside the evaluating shard.
    pub fn is_local(self) -> bool {
        matches!(self, Index::Home | Index::Sweep)
    }
}

/// The operation an access performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Op {
    /// Plain read.
    Read,
    /// `=` assignment.
    Assign,
    /// `+=`-style compound assignment.
    Compound,
    /// `&mut` borrow of the path.
    MutBorrow,
    /// Terminal method call on the path (name in [`Access::method`]).
    Method,
}

impl Op {
    /// Stable lower-case name used in messages and the contract.
    pub fn name(self) -> &'static str {
        match self {
            Op::Read => "read",
            Op::Assign => "assign",
            Op::Compound => "compound",
            Op::MutBorrow => "mut-borrow",
            Op::Method => "method",
        }
    }
}

/// One classified state access inside a `Network` method.
#[derive(Clone, Debug)]
pub struct Access {
    /// The classified field (deepest table-matched path segment; the
    /// first segment for global state).
    pub field: String,
    /// State class.
    pub class: Class,
    /// Index kind (meaningful for sharded state only).
    pub index: Index,
    /// Operation.
    pub op: Op,
    /// Terminal method name when `op == Method`.
    pub method: Option<String>,
    /// True when the access can mutate the state.
    pub write: bool,
    /// 1-based source line of the access base.
    pub line: u32,
}

/// Fields indexed per router: the bracket group (or sweep) directly
/// after them names the shard.
const ROUTER_ROOTS: &[&str] = &[
    "routers",
    "cong",
    "throttled",
    "free",
    "cap",
    "cap_sum",
    "inv",
    "router_last_grant",
];

/// Fields indexed per NIC/source node.
const NODE_ROOTS: &[&str] = &["src_q", "inj_busy", "tokens"];

/// Fields holding per-directed-link state. `llr` exposes no direct
/// bracket: the shard id comes from the terminal method's arguments.
const LINK_ROOTS: &[&str] = &["llr"];

/// Router-interior fields: their own brackets select ports/VCs inside
/// one shard, so they inherit the index of the path that reached the
/// router (`store.inputs[p]` stays home).
const ROUTER_INTRA: &[&str] = &[
    "inputs",
    "outputs",
    "vcs",
    "credits",
    "capacity",
    "arrivals",
    "credit_events",
    "busy_until",
    "vc_served_at",
    "in_served_at",
];

/// Per-call allocation scratch — the parallel engine clones these per
/// worker, so the race rules ignore them.
const SCRATCH: &[&str] = &["reqs", "grants", "matched_in", "matched_out", "best_out"];

/// Immutable-after-construction state. The shard-schedule tables are
/// set once per run by the race harness (never from inside `step`), so
/// phase code only ever reads them.
const STATIC_FIELDS: &[&str] = &["fab", "order_nodes", "order_routers"];

/// Which mutations a sink accepts from parallel phases.
#[derive(Clone, Copy, Debug)]
pub enum SinkMethods {
    /// Any method call is treated as reduction-safe (diagnostic sinks
    /// the parallel engine serializes or shards wholesale).
    Any,
    /// Only the listed methods are reduction-safe.
    Only(&'static [&'static str]),
}

/// Reduction policy for one sink field.
#[derive(Clone, Copy, Debug)]
pub struct SinkPolicy {
    /// Field name.
    pub name: &'static str,
    /// `+=`-style compound assignment is commutative and allowed.
    pub allow_compound: bool,
    /// Allowed mutating methods.
    pub methods: SinkMethods,
}

/// Declared reduction-safe sinks. `stats` and the per-source delivery
/// counters merge by addition; `effects` / `delivered_log` are append
/// logs the commit phase drains or that only ever grow; the auditor
/// and mutation seams are diagnostic instrumentation the parallel
/// engine runs serialized.
pub const SINKS: &[SinkPolicy] = &[
    SinkPolicy {
        name: "auditor",
        allow_compound: false,
        methods: SinkMethods::Any,
    },
    SinkPolicy {
        name: "delivered_log",
        allow_compound: false,
        methods: SinkMethods::Only(&["push"]),
    },
    SinkPolicy {
        name: "delivered_now",
        allow_compound: false,
        methods: SinkMethods::Only(&["push"]),
    },
    SinkPolicy {
        name: "delivered_per_src",
        allow_compound: true,
        methods: SinkMethods::Only(&[]),
    },
    SinkPolicy {
        name: "effects",
        allow_compound: false,
        methods: SinkMethods::Only(&["push"]),
    },
    SinkPolicy {
        name: "link_phits",
        allow_compound: true,
        methods: SinkMethods::Only(&[]),
    },
    SinkPolicy {
        name: "mutation",
        allow_compound: true,
        methods: SinkMethods::Any,
    },
    SinkPolicy {
        name: "mutation_ticks",
        allow_compound: true,
        methods: SinkMethods::Only(&[]),
    },
    SinkPolicy {
        name: "stats",
        allow_compound: true,
        methods: SinkMethods::Only(&[]),
    },
];

/// Look up the reduction policy of a sink field.
pub fn sink_policy(field: &str) -> Option<&'static SinkPolicy> {
    SINKS.iter().find(|s| s.name == field)
}

/// Methods that continue a path chain without changing what it points
/// at (`self.cm.as_mut().unwrap().tokens` classifies like `cm.tokens`).
const TRANSPARENT: &[&str] = &["as_mut", "as_ref", "enumerate", "expect", "iter", "unwrap"];

/// Shape reads (`len`, `is_empty`) carry no shard data — skipped.
const SHAPE: &[&str] = &["is_empty", "len"];

/// Methods whose return borrows into the receiver: a `let` binding of
/// one is an alias of the receiver's state, not a fresh value.
const REF_METHODS: &[&str] = &[
    "back",
    "back_mut",
    "first",
    "first_mut",
    "front",
    "front_mut",
    "get",
    "get_mut",
    "head_mut",
    "last",
    "last_mut",
];

/// Sweep producers in `for` headers: the loop variable visits each
/// element of the swept collection exactly once.
const SWEEP_METHODS: &[&str] = &["chunks", "chunks_mut", "iter", "iter_mut", "windows"];

/// Std-style mutating methods (workspace methods add to this via the
/// `is_mut_method` callback and `FnItem::mut_self`).
const MUT_METHODS: &[&str] = &[
    "as_mut",
    "back_mut",
    "chunks_mut",
    "clear",
    "drain",
    "extend",
    "first_mut",
    "front_mut",
    "get_mut",
    "head_mut",
    "insert",
    "iter_mut",
    "last_mut",
    "pop",
    "pop_back",
    "pop_front",
    "push",
    "push_back",
    "push_front",
    "remove",
    "replace",
    "resize",
    "retain",
    "sort",
    "sort_unstable",
    "split_at_mut",
    "take",
    "truncate",
];

/// Iteration-order-sensitive combinators — R005 flags these over
/// sharded collections in commit phases.
pub const ORDER_SENSITIVE: &[&str] = &[
    "fold",
    "reduce",
    "rev",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
];

/// Effect ledgers: sinks whose element order reflects parallel-phase
/// push order, which the shard schedule permutes. A commit-phase loop
/// draining one of these must combine elements commutatively (R006) —
/// or canonicalize first, as `commit_effects` does by sorting
/// `delivered_now` before the append.
pub const LEDGERS: &[&str] = &["delivered_log", "delivered_now", "effects"];

/// Accumulator combinators that weight an element's contribution by its
/// position in the iteration (polynomial/rolling-hash shapes). R006
/// flags an accumulator updated through one of these inside a ledger
/// drain; order-insensitive reductions (`wrapping_add`, `^=`, `max`)
/// stay silent.
pub const ORDER_WEIGHTING: &[&str] = &[
    "pow",
    "rotate_left",
    "rotate_right",
    "wrapping_mul",
    "wrapping_pow",
    "wrapping_shl",
    "wrapping_shr",
];

/// Identifiers that conventionally hold the evaluating shard's own id.
const HOME_IDENTS: &[&str] = &["node", "r", "rid", "ridx", "router"];

/// Identifier prefixes that conventionally name another shard.
const FOREIGN_PREFIXES: &[&str] = &["dst_", "up_"];

/// Scan one `impl Network` function and classify its state accesses.
/// `is_mut_method` reports whether a workspace method of that name may
/// mutate its receiver (resolved through the call graph).
pub fn scan_fn(file: &File, f: &FnItem, is_mut_method: &dyn Fn(&str) -> bool) -> Vec<Access> {
    let mut s = Scanner {
        src: &file.src,
        toks: &file.tokens,
        lo: f.body.0,
        hi: f.body.1.min(file.tokens.len()),
        aliases: BTreeMap::new(),
        home: HOME_IDENTS.iter().map(|s| s.to_string()).collect(),
        suppressed: BTreeSet::new(),
        out: Vec::new(),
    };
    s.bind_pass();
    s.record_pass(is_mut_method);
    s.out
}

/// Where an alias points: the classification cursor at its binding.
#[derive(Clone, Debug)]
struct AliasInfo {
    class: Option<Class>,
    index: Index,
    field: String,
}

/// Result of walking one access path.
struct PathEnd {
    class: Option<Class>,
    index: Index,
    field: String,
    /// Terminal method name, if the path ends in a call.
    method: Option<String>,
    /// First token index past the path (past terminal args).
    end: usize,
    /// True when no field segment was seen (bare `self` receiver).
    bare: bool,
    /// The chain passed through `as_ref`/`as_mut` — its end product
    /// borrows into the receiver.
    saw_ref: bool,
}

struct Scanner<'a> {
    src: &'a str,
    toks: &'a [Token],
    lo: usize,
    hi: usize,
    aliases: BTreeMap<String, AliasInfo>,
    home: BTreeSet<String>,
    /// Token positions the record pass skips (pattern binders and the
    /// base of alias-binding right-hand sides).
    suppressed: BTreeSet<usize>,
    out: Vec<Access>,
}

impl<'a> Scanner<'a> {
    fn text(&self, i: usize) -> &'a str {
        self.toks[i].text(self.src)
    }

    fn is(&self, i: usize, s: &str) -> bool {
        i < self.hi && self.text(i) == s
    }

    fn kind(&self, i: usize) -> Option<TokKind> {
        (i < self.hi).then(|| self.toks[i].kind)
    }

    fn adj(&self, i: usize, j: usize) -> bool {
        j < self.hi && self.toks[i].end == self.toks[j].start
    }

    /// Skip a balanced group whose opener sits at `i`; returns the
    /// index one past the closer.
    fn skip_group(&self, i: usize) -> usize {
        let (open, close) = match self.text(i) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return i + 1,
        };
        let mut depth = 0i64;
        let mut j = i;
        while j < self.hi {
            let t = self.text(j);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        self.hi
    }

    /// Classify the identifiers of a bracket/argument group:
    /// foreign naming wins over home naming wins over unknown.
    fn classify_group(&self, i: usize) -> Index {
        let end = self.skip_group(i);
        let mut idx = Index::Unknown;
        for j in i + 1..end.saturating_sub(1) {
            if self.kind(j) != Some(TokKind::Ident) {
                continue;
            }
            let t = self.text(j);
            if FOREIGN_PREFIXES.iter().any(|p| t.starts_with(p)) {
                return Index::Foreign;
            }
            if self.home.contains(t) {
                idx = Index::Home;
            }
        }
        idx
    }

    /// Walk one access path starting at the base token (`self` or an
    /// alias identifier) at `i`.
    fn walk_path(&self, mut i: usize) -> PathEnd {
        let mut class: Option<Class> = None;
        let mut index = Index::Unknown;
        let mut field = String::new();
        let mut bare = true;
        if self.text(i) == "self" {
            i += 1;
        } else {
            if let Some(a) = self.aliases.get(self.text(i)) {
                class = a.class;
                index = a.index;
                field = a.field.clone();
                bare = false;
            }
            i += 1;
            // A bracket directly on a sharded alias selects the shard.
            if self.is(i, "[") {
                if matches!(class, Some(Class::Sharded(_))) && index == Index::Unknown {
                    index = self.classify_group(i);
                }
                i = self.skip_group(i);
            }
        }
        let mut method = None;
        let mut saw_ref = false;
        while self.is(i, ".") && self.kind(i + 1) == Some(TokKind::Ident) {
            let name = self.text(i + 1);
            if i + 2 < self.hi && self.is(i + 2, "(") {
                if TRANSPARENT.contains(&name) {
                    saw_ref |= matches!(name, "as_mut" | "as_ref");
                    i = self.skip_group(i + 2);
                    continue;
                }
                // Terminal method: a sharded path without a proven
                // index takes it from the argument group (covers
                // `llr.push_ack(up_r, …)` / `l.tx_has_room(ridx, …)`).
                if matches!(class, Some(Class::Sharded(_))) && index == Index::Unknown {
                    index = self.classify_group(i + 2);
                }
                method = Some(name.to_string());
                i = self.skip_group(i + 2);
                break;
            }
            // Field segment.
            bare = false;
            let mut shard_root = false;
            if let Some(axis) = root_axis(name) {
                class = Some(Class::Sharded(axis));
                index = Index::Unknown;
                field = name.to_string();
                shard_root = axis != Axis::Link;
            } else if ROUTER_INTRA.contains(&name) {
                // Keep the index that reached the router.
                class = Some(Class::Sharded(Axis::Router));
                field = name.to_string();
            } else if SCRATCH.contains(&name) {
                class = Some(Class::Scratch);
                field = name.to_string();
            } else if STATIC_FIELDS.contains(&name) {
                class = Some(Class::Static);
                field = name.to_string();
            } else if sink_policy(name).is_some() {
                class = Some(Class::Sink);
                field = name.to_string();
            } else if class.is_none() {
                class = Some(Class::Global);
                field = name.to_string();
            }
            i += 2;
            let mut first_bracket = true;
            while self.is(i, "[") {
                if shard_root && first_bracket {
                    index = self.classify_group(i);
                }
                first_bracket = false;
                i = self.skip_group(i);
            }
        }
        PathEnd {
            class,
            index,
            field,
            method,
            end: i,
            bare,
            saw_ref,
        }
    }

    /// Pass 1: bind aliases and home identifiers, and mark binder /
    /// alias-base token positions the record pass must skip.
    fn bind_pass(&mut self) {
        let mut i = self.lo;
        while i < self.hi {
            match self.text(i) {
                "for" => i = self.bind_for(i),
                "let" => i = self.bind_let(i),
                _ => i += 1,
            }
        }
    }

    /// `for PATTERN in EXPR {`: range-fors bind a home id; sweep
    /// methods bind a sweep alias; `enumerate()` binds both.
    fn bind_for(&mut self, at: usize) -> usize {
        // Pattern runs to the top-level `in`.
        let mut i = at + 1;
        let mut depth = 0i64;
        let mut binders: Vec<(usize, String)> = Vec::new();
        while i < self.hi {
            let t = self.text(i);
            match t {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "in" if depth == 0 => break,
                "{" => return i, // lost sync
                _ => {
                    if self.kind(i) == Some(TokKind::Ident) && !matches!(t, "mut" | "ref" | "_") {
                        binders.push((i, t.to_string()));
                    }
                }
            }
            i += 1;
        }
        if !self.is(i, "in") {
            return i;
        }
        for (pos, _) in &binders {
            self.suppressed.insert(*pos);
        }
        let expr = i + 1;
        // Find the loop-body `{` at depth 0 to bound the expression.
        let mut j = expr;
        let mut depth = 0i64;
        let mut is_range = false;
        while j < self.hi {
            let t = self.text(j);
            match t {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                "." if depth == 0 && self.is(j + 1, ".") && self.adj(j, j + 1) => is_range = true,
                _ => {}
            }
            j += 1;
        }
        if is_range {
            // `for node in 0..n`: the binder is the shard's own id.
            if let [(_, name)] = binders.as_slice() {
                self.home.insert(name.clone());
            }
            return j;
        }
        // Sweep: EXPR is a path chain ending in a sweep method.
        let base = expr;
        let is_base = self.kind(base) == Some(TokKind::Ident)
            && (self.text(base) == "self" || self.aliases.contains_key(self.text(base)));
        if !is_base {
            return j;
        }
        let pe = self.walk_path(base);
        let Some(m) = pe.method.as_deref() else {
            return j;
        };
        if !SWEEP_METHODS.contains(&m) {
            return j;
        }
        let enumerated = self.is(pe.end, ".") && self.is(pe.end + 1, "enumerate");
        let info = AliasInfo {
            class: pe.class,
            index: Index::Sweep,
            field: pe.field,
        };
        match (binders.as_slice(), enumerated) {
            ([(_, a), (_, b)], true) => {
                self.home.insert(a.clone());
                self.aliases.insert(b.clone(), info);
                self.suppressed.insert(base);
            }
            ([(_, a)], false) => {
                self.aliases.insert(a.clone(), info);
                self.suppressed.insert(base);
            }
            _ => {}
        }
        j
    }

    /// `let PATTERN = RHS` (covers `if let` / `while let` / `let …
    /// else`): a borrow or ref-method RHS rooted at `self`/an alias
    /// binds an alias; all pattern binders are suppressed.
    fn bind_let(&mut self, at: usize) -> usize {
        let mut i = at + 1;
        let mut depth = 0i64;
        let mut binders: Vec<(usize, String)> = Vec::new();
        while i < self.hi {
            let t = self.text(i);
            match t {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                "=" if depth == 0 => break,
                ";" | "{" => return i, // `let x;` or lost sync
                _ => {
                    if self.kind(i) == Some(TokKind::Ident)
                        && !matches!(t, "mut" | "ref" | "_" | "Some" | "Ok" | "Err" | "None")
                    {
                        binders.push((i, t.to_string()));
                    }
                }
            }
            i += 1;
        }
        if !self.is(i, "=") || (self.is(i + 1, "=") && self.adj(i, i + 1)) {
            return i;
        }
        for (pos, _) in &binders {
            self.suppressed.insert(*pos);
        }
        let rhs = i + 1;
        if self.is(rhs, "(") && binders.len() > 1 {
            // Pairwise tuple binding: `let (a, b) = (&mut x, &y);`.
            let end = self.skip_group(rhs);
            let mut depth = 0i64;
            let mut starts = vec![rhs + 1];
            let mut j = rhs + 1;
            while j + 1 < end {
                match self.text(j) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "," if depth == 0 => starts.push(j + 1),
                    _ => {}
                }
                j += 1;
            }
            if starts.len() == binders.len() {
                for (k, start) in starts.iter().enumerate() {
                    self.bind_one(binders[k].1.clone(), *start);
                }
            }
            return end;
        }
        if binders.len() == 1 {
            self.bind_one(binders[0].1.clone(), rhs);
        }
        i + 1
    }

    /// Try to bind `name` as an alias of the path starting at `rhs`
    /// (after an optional `&` / `&mut`). A value copy (`let x =
    /// self.foo[i];` with no borrow and no ref-producing method) is
    /// *not* an alias — the record pass reports it as a read.
    fn bind_one(&mut self, name: String, mut rhs: usize) {
        let mut borrowed = false;
        if self.is(rhs, "&") {
            borrowed = true;
            rhs += 1;
            if self.is(rhs, "mut") {
                rhs += 1;
            }
        }
        if self.kind(rhs) != Some(TokKind::Ident) {
            return;
        }
        let base = self.text(rhs);
        if base != "self" && !self.aliases.contains_key(base) {
            return;
        }
        let pe = self.walk_path(rhs);
        let aliasing = match pe.method.as_deref() {
            None => borrowed || pe.saw_ref,
            Some(m) => REF_METHODS.contains(&m),
        };
        if !aliasing || pe.bare {
            return;
        }
        self.suppressed.insert(rhs);
        self.aliases.insert(
            name,
            AliasInfo {
                class: pe.class,
                index: pe.index,
                field: pe.field,
            },
        );
    }

    /// Pass 2: record every classified access.
    fn record_pass(&mut self, is_mut_method: &dyn Fn(&str) -> bool) {
        let mut i = self.lo;
        while i < self.hi {
            if self.kind(i) == Some(TokKind::Ident) && !self.suppressed.contains(&i) {
                let t = self.text(i);
                let is_base =
                    t == "self" || (self.aliases.contains_key(t) && !self.is_nontrigger(i));
                let after_dot = i > self.lo && self.text(i - 1) == ".";
                if is_base && !after_dot && !self.is_struct_field(i) {
                    self.record_at(i, is_mut_method);
                }
            }
            i += 1;
        }
    }

    /// Alias names are common words; skip positions that are clearly
    /// not expression bases (path qualifiers `router::x`).
    fn is_nontrigger(&self, i: usize) -> bool {
        self.is(i + 1, ":") && self.is(i + 2, ":") && self.adj(i + 1, i + 2)
    }

    /// `Effect::Ack { router: … }`-style struct-literal field names
    /// collide with alias names; a single following `:` marks them.
    fn is_struct_field(&self, i: usize) -> bool {
        self.is(i + 1, ":") && !(self.is(i + 2, ":") && self.adj(i + 1, i + 2))
    }

    fn record_at(&mut self, i: usize, is_mut_method: &dyn Fn(&str) -> bool) {
        let pe = self.walk_path(i);
        if pe.bare {
            // `self.deliver_events(now)` — the callee is charged via
            // the phase closure, and a bare `self` carries no field.
            return;
        }
        let Some(class) = pe.class else { return };
        let line = self.toks[i].line;
        let (op, write) = if let Some(m) = pe.method.as_deref() {
            let write = MUT_METHODS.contains(&m) || is_mut_method(m);
            if !write && SHAPE.contains(&m) {
                return; // `self.src_q.len()` carries no shard state
            }
            (Op::Method, write)
        } else if i >= self.lo + 2 && self.text(i - 1) == "mut" && self.text(i - 2) == "&" {
            (Op::MutBorrow, true)
        } else {
            let j = pe.end;
            let compound = j + 1 < self.hi
                && matches!(self.text(j), "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^")
                && self.is(j + 1, "=")
                && self.adj(j, j + 1)
                && !(self.is(j + 2, "=") && self.adj(j + 1, j + 2));
            if compound {
                (Op::Compound, true)
            } else if self.is(j, "=") && !(self.is(j + 1, "=") && self.adj(j, j + 1)) {
                (Op::Assign, true)
            } else {
                (Op::Read, false)
            }
        };
        self.out.push(Access {
            field: pe.field,
            class,
            index: pe.index,
            op,
            method: pe.method,
            write,
            line,
        });
    }
}

/// Shard axis of a root field, if any.
fn root_axis(name: &str) -> Option<Axis> {
    if ROUTER_ROOTS.contains(&name) {
        Some(Axis::Router)
    } else if NODE_ROOTS.contains(&name) {
        Some(Axis::Node)
    } else if LINK_ROOTS.contains(&name) {
        Some(Axis::Link)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn accesses(body: &str) -> Vec<Access> {
        let src = format!("impl Network {{ fn f(&mut self, ridx: usize, now: u64) {{ {body} }} }}");
        let file = parse("t.rs", "engine", &src, lex(&src));
        let f = &file.fns[0];
        scan_fn(&file, f, &|m| m == "ws_mut")
    }

    fn one(body: &str) -> Access {
        let a = accesses(body);
        assert_eq!(a.len(), 1, "expected one access in {body:?}: {a:?}");
        a.into_iter().next().unwrap()
    }

    #[test]
    fn home_indexed_write_through_alias() {
        let a = accesses("let store = &mut self.routers[ridx]; store.outputs[p].credits[v] -= s;");
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].field, "credits");
        assert_eq!(a[0].class, Class::Sharded(Axis::Router));
        assert_eq!(a[0].index, Index::Home);
        assert_eq!(a[0].op, Op::Compound);
        assert!(a[0].write);
    }

    #[test]
    fn foreign_write_by_naming_convention() {
        let a = one("self.routers[up_r].outputs[up_p].credit_events.push_back(x);");
        assert_eq!(a.index, Index::Foreign);
        assert!(a.write);
        assert_eq!(a.field, "credit_events");
    }

    #[test]
    fn sweep_alias_from_enumerate() {
        let a = accesses(
            "for (ridx, router) in self.routers.iter_mut().enumerate() \
             { router.inputs[p].arrivals.pop_front(); }",
        );
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].index, Index::Sweep);
        assert_eq!(a[0].field, "arrivals");
        assert!(a[0].write);
    }

    #[test]
    fn link_terminal_method_takes_index_from_args() {
        let home = accesses("let llr = &mut self.llr; llr.push_back(ridx, p);");
        assert_eq!(home.len(), 1);
        assert_eq!(home[0].class, Class::Sharded(Axis::Link));
        assert_eq!(home[0].index, Index::Home);
        assert!(home[0].write);
        let foreign = accesses("let llr = &mut self.llr; llr.push_back(up_r, up_p);");
        assert_eq!(foreign[0].index, Index::Foreign);
    }

    #[test]
    fn global_and_sink_classification() {
        let g = one("self.now = now + 1;");
        assert_eq!(g.class, Class::Global);
        assert_eq!(g.op, Op::Assign);
        let s = one("self.stats.delivered += 1;");
        assert_eq!(s.class, Class::Sink);
        assert_eq!(s.field, "stats");
        assert_eq!(s.op, Op::Compound);
        let e = one("self.effects.push(x);");
        assert_eq!(e.class, Class::Sink);
        assert_eq!(e.method.as_deref(), Some("push"));
    }

    #[test]
    fn shape_reads_and_bare_self_calls_are_skipped() {
        assert!(accesses("for node in 0..self.src_q.len() { }").is_empty());
        assert!(accesses("self.deliver_events(now);").is_empty());
    }

    #[test]
    fn range_for_binds_home_ident() {
        let a = accesses("for node in 0..n { self.src_q[node].pop_front(); }");
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].class, Class::Sharded(Axis::Node));
        assert_eq!(a[0].index, Index::Home);
    }

    #[test]
    fn option_alias_chain_reclassifies() {
        let a = accesses("let Some(cm) = self.cm.as_mut() else { return }; cm.free[ridx] += x;");
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].field, "free");
        assert_eq!(a[0].class, Class::Sharded(Axis::Router));
        assert_eq!(a[0].index, Index::Home);
    }

    #[test]
    fn workspace_mut_method_counts_as_write() {
        let a = one("self.policy.ws_mut(v);");
        assert_eq!(a.class, Class::Global);
        assert!(a.write);
        let r = one("self.policy.peek(v);");
        assert!(!r.write);
    }

    #[test]
    fn struct_literal_field_names_do_not_trigger_aliases() {
        let a = accesses("let router = &mut self.routers[ridx]; take(E { router: up, port: p });");
        // Only the struct-literal value idents appear; `router:` is a
        // field name, not the alias.
        assert!(a.is_empty(), "{a:?}");
    }

    #[test]
    fn scratch_is_classified() {
        let a = one("self.reqs.clear();");
        assert_eq!(a.class, Class::Scratch);
    }

    #[test]
    fn alias_passed_as_argument_is_a_read() {
        let a = accesses("let store = &self.routers[ridx]; eligible(store, req);");
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].op, Op::Read);
        assert_eq!(a[0].index, Index::Home);
    }
}
