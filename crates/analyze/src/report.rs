//! Report rendering: human-readable text and the structured JSON
//! artifact CI uploads.

use crate::json::escape;
use crate::rules::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Counts by rule for the summary block.
fn by_rule(findings: &[Finding]) -> BTreeMap<&'static str, (usize, usize)> {
    let mut m: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
    for f in findings {
        let e = m.entry(f.rule).or_default();
        if f.suppressed.is_some() {
            e.1 += 1;
        } else {
            e.0 += 1;
        }
    }
    m
}

/// Render the human-readable report.
pub fn text(findings: &[Finding], files_scanned: usize) -> String {
    let mut s = String::new();
    for f in findings.iter().filter(|f| f.suppressed.is_none()) {
        let _ = writeln!(s, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        if !f.snippet.is_empty() {
            let _ = writeln!(s, "    | {}", f.snippet);
        }
    }
    let open = findings.iter().filter(|f| f.suppressed.is_none()).count();
    let supp = findings.len() - open;
    let _ = writeln!(
        s,
        "ofar-lint: {files_scanned} files scanned, {open} open finding(s), \
         {supp} suppressed"
    );
    for (rule, (o, sp)) in by_rule(findings) {
        let _ = writeln!(s, "  {rule}: {o} open, {sp} suppressed");
    }
    s
}

/// Render the JSON report artifact.
pub fn json(findings: &[Finding], files_scanned: usize) -> String {
    let open = findings.iter().filter(|f| f.suppressed.is_none()).count();
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"tool\": \"ofar-lint\",");
    let _ = writeln!(s, "  \"version\": 1,");
    let _ = writeln!(s, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(s, "  \"open\": {open},");
    let _ = writeln!(s, "  \"suppressed\": {},", findings.len() - open);
    s.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        let _ = write!(
            s,
            "\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \
             \"snippet\": \"{}\"",
            f.rule,
            escape(&f.file),
            f.line,
            escape(&f.message),
            escape(&f.snippet)
        );
        match &f.suppressed {
            Some(sup) => {
                let _ = write!(
                    s,
                    ", \"suppressed\": {{\"via\": \"{}\", \"reason\": \"{}\"}}",
                    sup.via,
                    escape(&sup.reason)
                );
            }
            None => s.push_str(", \"suppressed\": null"),
        }
        s.push('}');
    }
    if !findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json as j;
    use crate::rules::{Suppression, RULE_HASH_CONTAINER, RULE_HOT_ALLOC};

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                rule: RULE_HASH_CONTAINER,
                file: "a.rs".to_string(),
                line: 3,
                message: "msg \"quoted\"".to_string(),
                snippet: "let m = HashMap::new();".to_string(),
                suppressed: None,
            },
            Finding {
                rule: RULE_HOT_ALLOC,
                file: "b.rs".to_string(),
                line: 9,
                message: "alloc".to_string(),
                snippet: "v.clone()".to_string(),
                suppressed: Some(Suppression {
                    via: "inline",
                    reason: "probe-only path".to_string(),
                }),
            },
        ]
    }

    #[test]
    fn json_report_is_valid_json() {
        let out = json(&sample(), 12);
        let v = j::parse(&out).expect("report must parse");
        assert_eq!(v.get("open"), Some(&j::Value::Int(1)));
        assert_eq!(v.get("suppressed"), Some(&j::Value::Int(1)));
        let fs = v.get("findings").unwrap().as_arr().unwrap();
        assert_eq!(fs.len(), 2);
        assert!(fs[1].get("suppressed").unwrap().get("reason").is_some());
    }

    #[test]
    fn text_report_lists_open_only() {
        let out = text(&sample(), 12);
        assert!(out.contains("a.rs:3: [D001]"));
        assert!(!out.contains("b.rs:9: [H001]"));
        assert!(out.contains("1 open finding(s), 1 suppressed"));
    }
}
