//! The `ofar-lint` rule catalog.
//!
//! Four families, each guarding one precondition of the group-parallel
//! engine rewrite (ROADMAP item 1):
//!
//! * **D — determinism.** The simulation must be a pure function of
//!   `(config, seed)`: no hash-order iteration in simulation state, no
//!   wall-clock or thread identity in the deterministic core, no float
//!   accumulation feeding determinism signatures.
//! * **H — hot-path heap allocation.** `Network::step` and everything
//!   conservatively reachable from it must not allocate per cycle.
//! * **S — snapshot completeness.** Every field of a struct with a
//!   checkpoint codec must be visited by that codec: "added a field,
//!   forgot to snapshot it" breaks the build, not bit-exact restart.
//! * **P — release panics.** No `unwrap`/`expect`/panicking macro or
//!   truncating `as` cast in the hot path; no panicking indexing in the
//!   conservation counters.
//!
//! Plus the **A** family: meta-rules keeping the suppression machinery
//! honest (malformed/unused suppressions, stale baseline entries).

use crate::graph::FnRef;
use crate::lexer::{TokKind, Token};
use crate::parse::File;
use std::collections::{BTreeMap, BTreeSet};

/// D001: order-sensitive hash container in a deterministic-core crate.
pub const RULE_HASH_CONTAINER: &str = "D001";
/// D002: wall-clock time source in the deterministic core.
pub const RULE_WALL_CLOCK: &str = "D002";
/// D003: thread identity / thread-local RNG in the deterministic core.
pub const RULE_THREAD_IDENTITY: &str = "D003";
/// D004: pointer value used as data in the deterministic core.
pub const RULE_POINTER_AS_ID: &str = "D004";
/// D005: floating-point accumulation into deterministic state.
pub const RULE_FLOAT_ACCUM: &str = "D005";
/// H001: heap allocation reachable from `Network::step`.
pub const RULE_HOT_ALLOC: &str = "H001";
/// S001: struct field missing from its snapshot/checkpoint codec.
pub const RULE_SNAPSHOT_FIELD: &str = "S001";
/// P001: panicking call in the release hot path.
pub const RULE_HOT_PANIC: &str = "P001";
/// P002: truncating `as` cast in the release hot path.
pub const RULE_TRUNCATING_CAST: &str = "P002";
/// P003: panicking indexing in the conservation counters.
pub const RULE_COUNTER_INDEXING: &str = "P003";
/// R001: cross-shard write outside a commit phase.
pub const RULE_PHASE_CROSS_WRITE: &str = "R001";
/// R002: foreign-shard read racing a same-phase local write.
pub const RULE_PHASE_READ_RACE: &str = "R002";
/// R003: shared-accumulator mutation outside a reduction-safe sink.
pub const RULE_PHASE_ACCUM: &str = "R003";
/// R004: phase-marker coverage gap in the phase root.
pub const RULE_PHASE_GAP: &str = "R004";
/// R005: order-sensitive fold over sharded state in a commit phase.
pub const RULE_PHASE_FOLD: &str = "R005";
/// R006: position-weighting fold over an effect-ledger drain in a
/// commit phase.
pub const RULE_LEDGER_FOLD: &str = "R006";
/// S002: contract waiver matching no live suppressed finding.
pub const RULE_STALE_WAIVER: &str = "S002";
/// A001: malformed suppression (missing rule or reason).
pub const RULE_BAD_SUPPRESSION: &str = "A001";
/// A002: suppression that suppresses nothing.
pub const RULE_UNUSED_SUPPRESSION: &str = "A002";
/// A003: baseline entry matching no finding.
pub const RULE_STALE_BASELINE: &str = "A003";

/// The full catalog: `(id, one-line description)`.
pub const CATALOG: &[(&str, &str)] = &[
    (
        RULE_HASH_CONTAINER,
        "HashMap/HashSet in a deterministic-core crate: iteration order \
         varies across runs and toolchains; use BTreeMap/BTreeSet or a \
         sorted Vec",
    ),
    (
        RULE_WALL_CLOCK,
        "std::time/Instant/SystemTime in the deterministic core: \
         simulated time must come from the cycle counter",
    ),
    (
        RULE_THREAD_IDENTITY,
        "thread identity or thread-local RNG in the deterministic core: \
         behavior must not depend on scheduling",
    ),
    (
        RULE_POINTER_AS_ID,
        "pointer value used as data in the deterministic core: \
         addresses vary per run (ASLR) and per allocator",
    ),
    (
        RULE_FLOAT_ACCUM,
        "floating-point accumulation into deterministic state: \
         reassociation under the parallel engine changes the result",
    ),
    (
        RULE_HOT_ALLOC,
        "heap allocation reachable from Network::step: per-cycle \
         allocation defeats the arena/SoA hot-path rewrite",
    ),
    (
        RULE_SNAPSHOT_FIELD,
        "struct field not visited by its snapshot codec: silently \
         breaks bit-exact checkpoint/restart",
    ),
    (
        RULE_HOT_PANIC,
        "panicking call reachable from Network::step: release hot paths \
         must fail via typed errors or audited counters",
    ),
    (
        RULE_TRUNCATING_CAST,
        "truncating `as` cast reachable from Network::step: silent \
         wraparound corrupts conservation accounting",
    ),
    (
        RULE_COUNTER_INDEXING,
        "panicking indexing in the conservation counters: counter \
         readout must be total",
    ),
    (
        RULE_PHASE_CROSS_WRITE,
        "cross-shard write in a parallel phase: another shard's state is \
         mutated outside a declared commit phase, so sharded evaluation \
         would race",
    ),
    (
        RULE_PHASE_READ_RACE,
        "foreign-shard read in a parallel phase of a field the same \
         phase writes locally: the value observed depends on shard \
         scheduling",
    ),
    (
        RULE_PHASE_ACCUM,
        "shared-accumulator mutation in a parallel phase not routed \
         through a reduction-safe sink operation",
    ),
    (
        RULE_PHASE_GAP,
        "phase-marker coverage gap: per-cycle statements must belong to \
         a declared `// ofar-lint: phase(…)` region of the phase root",
    ),
    (
        RULE_PHASE_FOLD,
        "iteration-order-sensitive fold over router/link collections in \
         a commit phase: the result changes when sharding changes \
         enumeration order",
    ),
    (
        RULE_LEDGER_FOLD,
        "position-weighting accumulation over an effect-ledger drain in \
         a commit phase: the ledger's push order is shard-schedule \
         dependent, so a non-commutative fold leaks the schedule into \
         state — reduce commutatively or sort before folding",
    ),
    (
        RULE_STALE_WAIVER,
        "contract waiver matching no live suppressed finding — the \
         waived violation no longer exists; regenerate the contract so \
         the waiver list only shrinks",
    ),
    (
        RULE_BAD_SUPPRESSION,
        "malformed lint:allow — every suppression names a rule and \
         carries a non-empty reason",
    ),
    (
        RULE_UNUSED_SUPPRESSION,
        "lint:allow that suppresses nothing — remove it so the \
         suppression set only shrinks",
    ),
    (
        RULE_STALE_BASELINE,
        "baseline entry matching no current finding — remove it so the \
         baseline only shrinks",
    ),
];

/// True when `id` names a shipped rule.
pub fn known_rule(id: &str) -> bool {
    CATALOG.iter().any(|&(r, _)| r == id)
}

/// What the analyzer reports.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule id (`D001`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (0 for file-level findings).
    pub line: u32,
    /// Human-readable message.
    pub message: String,
    /// Trimmed text of the offending line (baseline fingerprint).
    pub snippet: String,
    /// `Some` once a suppression claimed this finding.
    pub suppressed: Option<Suppression>,
}

/// How a finding was suppressed.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// `"inline"` or `"baseline"`.
    pub via: &'static str,
    /// The mandatory justification.
    pub reason: String,
}

/// Analyzer configuration.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// Crates forming the deterministic core (D rules).
    pub det_crates: Vec<String>,
    /// Hot-path roots, as `Type::name` or bare names (H/P rules).
    pub hot_roots: Vec<String>,
    /// Crates that do **not** participate in the per-cycle loop. The
    /// conservative name-based call graph fans out across the whole
    /// workspace, so without this filter a driver-level `apply` or
    /// `push` in a tooling crate would count as hot merely for sharing
    /// a name with an engine method. This is a denylist rather than a
    /// hot allowlist on purpose: a future crate that joins the cycle
    /// loop is checked by default, and misclassifying a crate as hot
    /// surfaces as visible findings — the stale-list failure mode is
    /// noise, never silence. H/P findings are suppressed only in the
    /// crates named here.
    pub cold_crates: Vec<String>,
    /// Impl types forming the conservation counters (P003).
    pub counter_types: Vec<String>,
    /// Qualified name of the cycle-loop root the R-family phase
    /// analysis segments (`Network::step`).
    pub phase_root: &'static str,
    /// Checked-in parallelization contract (JSON text), when available.
    /// Each of its waivers must still match a live suppressed R finding
    /// or S002 fires: a waiver that outlived its violation is a hole in
    /// the contract the next violation could hide in.
    pub contract: Option<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        Self {
            det_crates: ["topology", "engine", "routing", "traffic", "verify"]
                .map(str::to_string)
                .to_vec(),
            hot_roots: vec!["Network::step".to_string()],
            cold_crates: ["analyze", "bench", "core", "verify", "ofar"]
                .map(str::to_string)
                .to_vec(),
            counter_types: vec!["Stats".to_string(), "StatsWindow".to_string()],
            phase_root: "Network::step",
            contract: None,
        }
    }
}

/// Run every rule over the parsed workspace. `reachable` is the hot-path
/// set from [`crate::graph::CallGraph::reachable`].
pub fn run(files: &[File], cfg: &LintConfig, reachable: &BTreeSet<FnRef>) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        let det = cfg.det_crates.iter().any(|c| c == &file.crate_name);
        let hot_crate = !cfg.cold_crates.iter().any(|c| c == &file.crate_name);
        if det {
            d001_hash_containers(file, &mut out);
        }
        for (gi, f) in file.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            if det {
                d00x_body_scans(file, f.body, &mut out);
            }
            if hot_crate && reachable.contains(&(fi, gi)) {
                h001_allocations(file, f, &mut out);
                p001_panics(file, f, &mut out);
                p002_truncating_casts(file, f.body, &mut out);
            }
            if f.impl_type
                .as_deref()
                .is_some_and(|t| cfg.counter_types.iter().any(|c| c == t))
            {
                p003_indexing(file, f.body, &mut out);
            }
        }
    }
    d005_float_accumulation(files, cfg, &mut out);
    s001_snapshot_completeness(files, &mut out);
    out
}

fn code_toks(file: &File) -> &[Token] {
    &file.tokens
}

pub(crate) fn line_snippet(file: &File, line: u32) -> String {
    file.src
        .lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or("")
        .trim()
        .to_string()
}

fn push(out: &mut Vec<Finding>, rule: &'static str, file: &File, line: u32, message: String) {
    out.push(Finding {
        rule,
        file: file.path.clone(),
        line,
        message,
        snippet: line_snippet(file, line),
        suppressed: None,
    });
}

/// Adjacent tokens (no whitespace between): multi-char operator test.
fn adj(a: &Token, b: &Token) -> bool {
    a.end == b.start
}

// ---------------------------------------------------------------------
// D family
// ---------------------------------------------------------------------

fn d001_hash_containers(file: &File, out: &mut Vec<Finding>) {
    let mut seen_lines = BTreeSet::new();
    for t in code_toks(file) {
        if t.kind == TokKind::Ident {
            let s = t.text(&file.src);
            if (s == "HashMap" || s == "HashSet") && seen_lines.insert(t.line) {
                push(
                    out,
                    RULE_HASH_CONTAINER,
                    file,
                    t.line,
                    format!(
                        "{s} in deterministic-core crate `{}`: iteration order is \
                         unspecified; use BTreeMap/BTreeSet or a sorted Vec",
                        file.crate_name
                    ),
                );
            }
        }
    }
}

/// D002/D003/D004 scans over one non-test function body.
#[allow(clippy::needless_range_loop)] // lookback over `i - 1 ..= i - 3` needs the index
fn d00x_body_scans(file: &File, body: (usize, usize), out: &mut Vec<Finding>) {
    let toks = code_toks(file);
    let (lo, hi) = (body.0, body.1.min(toks.len()));
    let text = |i: usize| toks[i].text(&file.src);
    for i in lo..hi {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let s = text(i);
        match s {
            "Instant" | "SystemTime" => push(
                out,
                RULE_WALL_CLOCK,
                file,
                toks[i].line,
                format!("{s} in the deterministic core: derive time from the cycle counter"),
            ),
            "time"
                if i >= lo + 3
                    && text(i - 1) == ":"
                    && text(i - 2) == ":"
                    && text(i - 3) == "std" =>
            {
                push(
                    out,
                    RULE_WALL_CLOCK,
                    file,
                    toks[i].line,
                    "std::time in the deterministic core: derive time from the cycle counter"
                        .to_string(),
                )
            }
            "thread_rng" | "ThreadId" => push(
                out,
                RULE_THREAD_IDENTITY,
                file,
                toks[i].line,
                format!("{s} in the deterministic core: seed RNGs explicitly from the config"),
            ),
            "current"
                if i >= lo + 3
                    && text(i - 1) == ":"
                    && text(i - 2) == ":"
                    && text(i - 3) == "thread" =>
            {
                push(
                    out,
                    RULE_THREAD_IDENTITY,
                    file,
                    toks[i].line,
                    "thread::current in the deterministic core: behavior must not depend on \
                     scheduling"
                        .to_string(),
                )
            }
            "addr_of" | "addr_of_mut" => push(
                out,
                RULE_POINTER_AS_ID,
                file,
                toks[i].line,
                format!("{s} in the deterministic core: addresses vary per run"),
            ),
            "as" if i + 1 < hi && text(i + 1) == "*" => push(
                out,
                RULE_POINTER_AS_ID,
                file,
                toks[i].line,
                "pointer cast in the deterministic core: pointer values are not stable \
                 identities"
                    .to_string(),
            ),
            _ => {}
        }
    }
}

/// D005: `.field op= …` where `field` is a float-typed field of any
/// deterministic-core struct.
fn d005_float_accumulation(files: &[File], cfg: &LintConfig, out: &mut Vec<Finding>) {
    let mut float_fields: BTreeSet<&str> = BTreeSet::new();
    for file in files {
        if !cfg.det_crates.iter().any(|c| c == &file.crate_name) {
            continue;
        }
        for s in &file.structs {
            if s.is_test {
                continue;
            }
            for fld in &s.fields {
                if fld
                    .ty
                    .split(|c: char| !c.is_alphanumeric())
                    .any(|w| w == "f64" || w == "f32")
                {
                    float_fields.insert(&fld.name);
                }
            }
        }
    }
    if float_fields.is_empty() {
        return;
    }
    for file in files {
        if !cfg.det_crates.iter().any(|c| c == &file.crate_name) {
            continue;
        }
        let toks = code_toks(file);
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            let (lo, hi) = (f.body.0, f.body.1.min(toks.len()));
            for i in lo..hi {
                // `. field += ` / `-=` / `*=`
                if toks[i].kind == TokKind::Ident
                    && i > lo
                    && toks[i - 1].text(&file.src) == "."
                    && float_fields.contains(toks[i].text(&file.src))
                    && i + 2 < hi
                    && matches!(toks[i + 1].text(&file.src), "+" | "-" | "*")
                    && toks[i + 2].text(&file.src) == "="
                    && adj(&toks[i + 1], &toks[i + 2])
                {
                    push(
                        out,
                        RULE_FLOAT_ACCUM,
                        file,
                        toks[i].line,
                        format!(
                            "float accumulation into field `{}`: reassociation under a \
                             parallel engine changes the value; accumulate integers and \
                             divide at readout",
                            toks[i].text(&file.src)
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// H family
// ---------------------------------------------------------------------

const ALLOC_MACROS: &[&str] = &["vec!", "format!"];
const ALLOC_METHODS: &[&str] = &["clone", "collect", "to_string", "to_vec", "to_owned"];
const ALLOC_TYPES: &[&str] = &[
    "Vec", "String", "Box", "VecDeque", "BTreeMap", "BTreeSet", "HashMap", "HashSet", "Rc", "Arc",
];
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

fn h001_allocations(file: &File, f: &crate::parse::FnItem, out: &mut Vec<Finding>) {
    for c in &f.calls {
        let construct = if ALLOC_MACROS.contains(&c.name.as_str()) {
            Some(c.name.clone())
        } else if c.is_method && ALLOC_METHODS.contains(&c.name.as_str()) {
            Some(format!(".{}()", c.name))
        } else if let Some(q) = &c.qualifier {
            if ALLOC_TYPES.contains(&q.as_str()) && ALLOC_CTORS.contains(&c.name.as_str()) {
                Some(format!("{q}::{}", c.name))
            } else {
                None
            }
        } else {
            None
        };
        if let Some(what) = construct {
            push(
                out,
                RULE_HOT_ALLOC,
                file,
                c.line,
                format!(
                    "{what} in `{}`, reachable from a hot-path root: per-cycle heap \
                     allocation defeats the parallel-engine rewrite",
                    f.qname()
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// P family
// ---------------------------------------------------------------------

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &[
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
];

fn p001_panics(file: &File, f: &crate::parse::FnItem, out: &mut Vec<Finding>) {
    for c in &f.calls {
        let what = if c.is_method && PANIC_METHODS.contains(&c.name.as_str()) {
            Some(format!(".{}()", c.name))
        } else if PANIC_MACROS.contains(&c.name.as_str()) {
            Some(c.name.clone())
        } else {
            None
        };
        if let Some(what) = what {
            push(
                out,
                RULE_HOT_PANIC,
                file,
                c.line,
                format!(
                    "{what} in `{}`, reachable from a hot-path root: release hot paths \
                     must not panic",
                    f.qname()
                ),
            );
        }
    }
}

const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

fn p002_truncating_casts(file: &File, body: (usize, usize), out: &mut Vec<Finding>) {
    let toks = code_toks(file);
    let (lo, hi) = (body.0, body.1.min(toks.len()));
    for i in lo..hi.saturating_sub(1) {
        if toks[i].kind == TokKind::Ident
            && toks[i].text(&file.src) == "as"
            && toks[i + 1].kind == TokKind::Ident
            && NARROW_TARGETS.contains(&toks[i + 1].text(&file.src))
        {
            push(
                out,
                RULE_TRUNCATING_CAST,
                file,
                toks[i].line,
                format!(
                    "`as {}` in the hot path: truncating cast wraps silently; use \
                     try_from or prove the range at the call site",
                    toks[i + 1].text(&file.src)
                ),
            );
        }
    }
}

fn p003_indexing(file: &File, body: (usize, usize), out: &mut Vec<Finding>) {
    let toks = code_toks(file);
    let (lo, hi) = (body.0, body.1.min(toks.len()));
    for i in lo.max(1)..hi {
        if toks[i].text(&file.src) == "["
            && matches!(
                (toks[i - 1].kind, toks[i - 1].text(&file.src)),
                (TokKind::Ident, _) | (TokKind::Punct, ")") | (TokKind::Punct, "]")
            )
        {
            push(
                out,
                RULE_COUNTER_INDEXING,
                file,
                toks[i].line,
                "panicking indexing in the conservation counters: use get/iterators so \
                 counter readout is total"
                    .to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------
// S family
// ---------------------------------------------------------------------

/// Verb stems marking a checkpoint-codec function. Matched on a word
/// boundary: `save`, `load_state` and `snap_encode` qualify, but
/// `loads` (offered-load list) or `loader` do not.
const SERIALIZER_STEMS: &[&str] = &[
    "snap", "encode", "decode", "save", "load", "restore", "commit",
];

fn is_serializer_name(name: &str) -> bool {
    SERIALIZER_STEMS
        .iter()
        .any(|stem| name == *stem || name.starts_with(&format!("{stem}_")))
        || name.contains("counters")
}

/// S001: for every struct with a checkpoint codec, each declared field
/// must appear (as an identifier) in the union of its codec bodies.
fn s001_snapshot_completeness(files: &[File], out: &mut Vec<Finding>) {
    // (crate, struct) → union of idents in its serializer-fn bodies.
    let mut codec_idents: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    for file in files {
        let toks = code_toks(file);
        let body_idents = |body: (usize, usize)| -> BTreeSet<String> {
            let (lo, hi) = (body.0, body.1.min(toks.len()));
            (lo..hi)
                .filter(|&i| toks[i].kind == TokKind::Ident)
                .map(|i| toks[i].text(&file.src).to_string())
                .collect()
        };
        for f in &file.fns {
            if f.is_test || !is_serializer_name(&f.name) {
                continue;
            }
            match &f.impl_type {
                Some(ty) => {
                    codec_idents
                        .entry((file.crate_name.clone(), ty.clone()))
                        .or_default()
                        .extend(body_idents(f.body));
                }
                None => {
                    // Free `encode_x`/`decode_x`: associate with a
                    // same-crate struct whose lowercased name ends with
                    // the suffix (`encode_packet` → `Packet`,
                    // `encode_config` → `SimConfig`).
                    let Some(suffix) = f
                        .name
                        .strip_prefix("encode_")
                        .or_else(|| f.name.strip_prefix("decode_"))
                    else {
                        continue;
                    };
                    for other in files.iter().filter(|o| o.crate_name == file.crate_name) {
                        for s in &other.structs {
                            if !s.is_test && s.name.to_lowercase().ends_with(suffix) {
                                codec_idents
                                    .entry((file.crate_name.clone(), s.name.clone()))
                                    .or_default()
                                    .extend(body_idents(f.body));
                            }
                        }
                    }
                }
            }
        }
    }
    for file in files {
        for s in &file.structs {
            if s.is_test {
                continue;
            }
            let Some(idents) = codec_idents.get(&(file.crate_name.clone(), s.name.clone())) else {
                continue;
            };
            for fld in &s.fields {
                if !idents.contains(&fld.name) {
                    push(
                        out,
                        RULE_SNAPSHOT_FIELD,
                        file,
                        fld.line,
                        format!(
                            "field `{}::{}` is not visited by the struct's checkpoint \
                             codec: snapshot/restore will silently drop it",
                            s.name, fld.name
                        ),
                    );
                }
            }
        }
    }
}
