//! Escape-ring specifications and their well-formedness proof.
//!
//! The verifier never trusts [`HamiltonianRing`]'s own constructor: a
//! ring arrives as a bag of directed `(from, to)` router pairs and is
//! re-proven to be a single spanning cycle over real links. That is what
//! makes the escape subgraph's only cycle the bubble-protected ring
//! itself, which is the acyclicity half of the Duato argument.

use crate::report::VerifyError;
use ofar_topology::{Dragonfly, HamiltonianRing, RouterId};

/// A directed escape ring as raw successor pairs. Build one from a real
/// [`HamiltonianRing`] with [`RingSpec::from_ring`], or by hand to feed
/// the verifier a deliberately broken ring in tests.
#[derive(Clone, Debug)]
pub struct RingSpec {
    /// Ring index (for reports).
    pub index: usize,
    /// Directed `(from, to)` pairs, one per ring hop, in any order.
    pub edges: Vec<(RouterId, RouterId)>,
}

impl RingSpec {
    /// Export a built ring for verification.
    pub fn from_ring(topo: &Dragonfly, ring: &HamiltonianRing) -> Self {
        Self {
            index: ring.index(),
            edges: ring.successor_pairs(topo),
        }
    }

    /// Prove this is a single directed cycle that visits every router of
    /// `topo` exactly once using only physical links. Any defect is
    /// returned as a [`VerifyError::MalformedRing`] naming the routers
    /// involved.
    pub fn check(&self, topo: &Dragonfly) -> Result<(), VerifyError> {
        let nr = topo.num_routers();
        let fail = |detail: String, witness: Vec<RouterId>| {
            Err(VerifyError::MalformedRing {
                ring: self.index,
                detail,
                witness,
            })
        };
        if self.edges.len() != nr {
            return fail(
                format!(
                    "{} ring edges for {nr} routers (must be Hamiltonian)",
                    self.edges.len()
                ),
                Vec::new(),
            );
        }
        let mut succ: Vec<Option<RouterId>> = vec![None; nr];
        let mut pred_seen = vec![false; nr];
        for &(from, to) in &self.edges {
            if from.idx() >= nr || to.idx() >= nr {
                return fail(
                    format!("edge {from}->{to} names a router outside the topology"),
                    vec![from, to],
                );
            }
            if topo.link_between(from, to).is_none() {
                return fail(
                    format!("edge {from}->{to} is not a physical link"),
                    vec![from, to],
                );
            }
            if succ[from.idx()].is_some() {
                return fail(format!("router {from} has two ring successors"), vec![from]);
            }
            succ[from.idx()] = Some(to);
            if pred_seen[to.idx()] {
                return fail(format!("router {to} has two ring predecessors"), vec![to]);
            }
            pred_seen[to.idx()] = true;
        }
        // Degrees are all exactly one now; follow the cycle and require
        // it to close only after visiting every router.
        let start = self.edges[0].0;
        let mut at = start;
        let mut walked: Vec<RouterId> = Vec::new();
        for _ in 0..nr {
            walked.push(at);
            at = succ[at.idx()].expect("out-degree proven above");
            if at == start && walked.len() < nr {
                walked.truncate(12);
                return fail(
                    format!(
                        "ring closes after {} of {nr} routers (not a single spanning cycle)",
                        walked.len()
                    ),
                    walked,
                );
            }
        }
        debug_assert_eq!(at, start, "degree-1 functional graph closed elsewhere");
        Ok(())
    }
}
