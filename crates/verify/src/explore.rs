//! The conformance model checker: exhaustive exploration of a routing
//! implementation's decision space.
//!
//! [`certify`](crate::certify) proves deadlock freedom of a mechanism's
//! *declared* channel-dependency graph; nothing there guarantees the
//! `route`/`on_inject` code actually stays inside that declaration. This
//! module closes the gap: it drives the real policy over every reachable
//! abstract packet state of a concrete topology, crossed with a small
//! lattice of credit/occupancy scenarios, and proves that
//!
//! 1. every transition the code emits is **contained** in the declared
//!    edge set (else [`ConformanceError::UndeclaredTransition`] with the
//!    concrete witness decision);
//! 2. every decision **strictly decreases** the mechanism's well-founded
//!    ranking ([`RankingKind`]) — livelock freedom — making the maximum
//!    ranking over reachable states a proven static hop bound;
//! 3. the tighter **observed** graph re-certifies under the same CDG
//!    obligations as the declaration.
//!
//! # Abstraction (soundness notes)
//!
//! * **Group symmetry.** The palmtree arrangement is rotationally
//!   symmetric in the group index, so injections are explored from the
//!   routers of group 0 only; every (source-position, destination-
//!   position) shape is covered up to rotation. Destinations are
//!   restricted to three whole groups plus one far group — every
//!   distance/host relation a policy can distinguish.
//! * **Decisions are recorded on *request***, before allocation — the
//!   same "waits-for" semantics the CDG models — and grants are applied
//!   optimistically, so the explored transition set is a superset of
//!   anything a real run can do.
//! * **Denied heads** are modelled by a `patient` state bit (head-blocked
//!   past the ring-patience threshold). For escape mechanisms every
//!   off-ring state spawns a patient twin, over-approximating arbitrary
//!   wait growth.
//! * **Ring-exit budget** is abstracted to `{positive, zero}`; an exit
//!   from a positive budget enqueues both successors, covering every
//!   concrete `max_ring_exits`. Ranking checks on ring moves are the
//!   component inequalities of `Φ_total = C·exits + (N + Φ_can | ring
//!   distance)` with `C = N + 9 > N + max Φ_can`, so they hold for any
//!   budget.
//! * **Random choices** (Valiant intermediates, adaptive candidate
//!   picks) are enumerated through the [`ProbePin`] hook instead of
//!   sampled: the policy reports what it would have sampled and the
//!   explorer replays the decision once per possible choice. Intermediate
//!   groups are capped at six evenly-spread representatives when a
//!   topology offers more — the class graph cannot distinguish beyond
//!   host/non-host/destination-relative positions, which the spread
//!   preserves.

use crate::ranking::{ring_dist, RankingKind};
use crate::report::{ConformanceError, ConformanceReport, TransitionWitness};
use crate::ring_spec::RingSpec;
use ofar_engine::{
    InputCtx, Packet, PortKind, PortLoad, Request, RequestKind, SimConfig, ViewProbe,
};
use ofar_routing::common::current_minimal_hop;
use ofar_routing::{ClassEdge, ClassId, EdgeWhy, EnumerablePolicy, MechanismDeps, ProbePin};
use ofar_topology::{GroupId, MinimalHop, NodeId, RouterId};
use std::collections::{HashSet, VecDeque}; // lint:allow(D001, membership-only sets; never iterated)

/// The credit/occupancy lattice applied to the probed router. Each point
/// shapes the availability and occupancy signals a policy can read;
/// together they reach every branch of the paper mechanisms: minimal
/// grants, threshold-admitted misroutes, threshold-rejected waits,
/// patience-driven ring entries, ring exits and bubble-blocked advances.
const SCENARIOS: [&str; 8] = [
    "empty",
    "congested",
    "locals-congested",
    "globals-congested",
    "bubble-blocked",
    "busy",
    "min-congested",
    "min-bubble",
];

/// Abstract ring-exit budget: only `> 0` is observable by a policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Exits {
    /// At least one voluntary ring exit left.
    Pos,
    /// Budget exhausted.
    Zero,
}

/// One abstract packet state: everything a policy's decision can depend
/// on, quotiented by group symmetry (sources live in group 0) and with
/// the wait counter reduced to the `patient` bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct AbsState {
    /// Router whose input queue holds the packet.
    router: RouterId,
    /// Channel class the packet occupies.
    class: ClassId,
    /// Destination router.
    dst: RouterId,
    /// Pending Valiant intermediate group.
    intermediate: Option<GroupId>,
    /// Header flags (misroute/ring bits).
    flags: u8,
    /// Abstract ring-exit budget.
    exits: Exits,
    /// Source-group local hops taken (capped at the ladder budget — the
    /// only thing the VC choice can depend on).
    local_hops: u8,
    /// Whether the head has been blocked past the patience threshold.
    patient: bool,
}

/// Run the conformance exploration of one policy against one declaration
/// and ranking over the topology of `cfg`.
pub(crate) fn conformance_with<P: EnumerablePolicy>(
    cfg: &SimConfig,
    policy: P,
    decl: MechanismDeps,
    rank: RankingKind,
) -> Result<ConformanceReport, ConformanceError> {
    Explorer::new(cfg, policy, decl, rank).run()
}

struct Explorer<P> {
    cfg: SimConfig,
    probe: ViewProbe,
    policy: P,
    decl: MechanismDeps,
    declared: HashSet<(ClassId, ClassId)>, // lint:allow(D001, membership-only; BFS order comes from the VecDeque, never from set iteration)
    rank: RankingKind,
    visited: HashSet<AbsState>, // lint:allow(D001, membership-only; BFS order comes from the VecDeque, never from set iteration)
    queue: VecDeque<AbsState>,
    observed: Vec<ClassEdge>,
    observed_set: HashSet<(ClassId, ClassId)>, // lint:allow(D001, membership-only; BFS order comes from the VecDeque, never from set iteration)
    decisions: usize,
    hop_bound: u64,
    /// Node standing in for every source (all sources share group 0 and
    /// no policy reads more than the source's group).
    canonical_src: NodeId,
    /// Cap for the abstract `local_hops` counter (`ladder budget − 1`).
    hop_cap: u8,
}

impl<P: EnumerablePolicy> Explorer<P> {
    fn new(cfg: &SimConfig, policy: P, decl: MechanismDeps, rank: RankingKind) -> Self {
        let probe = ViewProbe::new(*cfg);
        let canonical_src = probe
            .fab()
            .topo()
            .first_node_of(probe.fab().topo().router_at(GroupId::new(0), 0));
        let declared = decl.edges.iter().map(|e| (e.from, e.to)).collect();
        let hop_cap = (cfg.vcs_local.saturating_sub(2).max(1) - 1) as u8;
        Self {
            cfg: *cfg,
            probe,
            policy,
            decl,
            declared,
            rank,
            visited: HashSet::new(), // lint:allow(D001, membership-only; never iterated)
            queue: VecDeque::new(),
            observed: Vec::new(),
            observed_set: HashSet::new(), // lint:allow(D001, membership-only; never iterated)
            decisions: 0,
            hop_bound: 0,
            canonical_src,
            hop_cap,
        }
    }

    fn run(mut self) -> Result<ConformanceReport, ConformanceError> {
        self.seed();
        while let Some(s) = self.queue.pop_front() {
            self.expand(s)?;
        }
        let fab = self.probe.fab();
        let topo = fab.topo();
        let dead: Vec<ClassEdge> = self
            .decl
            .edges
            .iter()
            .filter(|e| !self.observed_set.contains(&(e.from, e.to)))
            .copied()
            .collect();
        let observed_deps = MechanismDeps {
            mechanism: self.decl.mechanism,
            uses_escape: self.decl.uses_escape,
            edges: self.observed.clone(),
        };
        let rings: Vec<RingSpec> = fab
            .rings()
            .iter()
            .map(|r| RingSpec::from_ring(topo, r))
            .collect();
        let observed_certificate = crate::verify_decl(topo, &self.cfg, &observed_deps, &rings)
            .map_err(|error| ConformanceError::ObservedGraphRejected {
                mechanism: self.decl.mechanism,
                error,
            })?;
        let ring_bound = fab.rings().first().and_then(|r| {
            self.rank
                .ring_bound(r.len(), self.cfg.max_ring_exits, self.hop_bound)
        });
        Ok(ConformanceReport {
            mechanism: self.decl.mechanism,
            states: self.visited.len(),
            decisions: self.decisions,
            observed: self.observed,
            dead,
            hop_bound: self.hop_bound,
            paper_bound: self.rank.paper_bound(),
            ring_bound,
            observed_certificate,
        })
    }

    /// Initial states: drive `on_inject` for every (source router of
    /// group 0, destination, injection id) across the scenario lattice,
    /// enumerating pinned intermediate choices.
    fn seed(&mut self) {
        let topo = self.probe.fab().topo();
        let a = topo.params().a;
        let srcs: Vec<RouterId> = (0..a).map(|i| topo.router_at(GroupId::new(0), i)).collect();
        let dsts = dst_set(topo);
        for &src in &srcs {
            self.probe.set_router(src);
            let src_node = self.probe.fab().topo().first_node_of(src);
            for &dst in &dsts {
                if dst == src {
                    continue;
                }
                let inters = self.pin_intermediates(dst);
                for iv in 0..self.cfg.vcs_injection as u64 {
                    let base = Packet {
                        id: iv,
                        injected_at: 0,
                        src: src_node,
                        dst: self.probe.fab().topo().first_node_of(dst),
                        intermediate: None,
                        flags: 0,
                        ring_exits_left: self.cfg.max_ring_exits,
                        local_hops: 0,
                        global_hops: 0,
                        ring_hops: 0,
                        wait: 0,
                        cur_group: GroupId::new(0),
                    };
                    for scenario in SCENARIOS {
                        let min_port = self.min_out_port(&base);
                        self.apply_scenario(scenario, min_port);
                        let mut outs: Vec<(usize, Packet)> = Vec::new();
                        {
                            let view = self.probe.view();
                            self.policy.set_probe(Some(ProbePin {
                                intermediate: inters[0],
                                candidate: 0,
                            }));
                            let mut pkt = base;
                            let _ = self.policy.on_inject(&view, &mut pkt);
                            let fb = self.policy.probe_feedback();
                            let pins: &[GroupId] = if fb.intermediate_sampled {
                                &inters
                            } else {
                                &inters[..1]
                            };
                            for &ig in pins {
                                for cand in 0..fb.candidates.max(1) {
                                    self.policy.set_probe(Some(ProbePin {
                                        intermediate: ig,
                                        candidate: cand as usize,
                                    }));
                                    let mut pkt = base;
                                    let vc = self.policy.on_inject(&view, &mut pkt);
                                    outs.push((vc, pkt));
                                }
                            }
                        }
                        for (vc, pkt) in outs {
                            self.decisions += 1;
                            self.push(AbsState {
                                router: src,
                                class: ClassId::Inject { vc: vc as u8 },
                                dst,
                                intermediate: pkt.intermediate,
                                flags: pkt.flags,
                                exits: Exits::Pos,
                                local_hops: 0,
                                patient: false,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Explore every decision of one abstract state: per scenario, one
    /// discovery call to learn what the policy would sample, then one
    /// replay per pinned choice.
    fn expand(&mut self, s: AbsState) -> Result<(), ConformanceError> {
        self.probe.set_router(s.router);
        let ctx = self.input_ctx(&s);
        let base = self.materialize(&s);
        let min_port = self.min_out_port(&base);
        let inters = self.pin_intermediates(s.dst);
        for scenario in SCENARIOS {
            self.apply_scenario(scenario, min_port);
            let mut outs: Vec<(Option<Request>, Packet)> = Vec::new();
            {
                let view = self.probe.view();
                self.policy.set_probe(Some(ProbePin {
                    intermediate: inters[0],
                    candidate: 0,
                }));
                let mut pkt = base;
                let _ = self.policy.route(&view, ctx, &mut pkt);
                let fb = self.policy.probe_feedback();
                let pins: &[GroupId] = if fb.intermediate_sampled {
                    &inters
                } else {
                    &inters[..1]
                };
                for &ig in pins {
                    for cand in 0..fb.candidates.max(1) {
                        self.policy.set_probe(Some(ProbePin {
                            intermediate: ig,
                            candidate: cand as usize,
                        }));
                        let mut pkt = base;
                        let req = self.policy.route(&view, ctx, &mut pkt);
                        outs.push((req, pkt));
                    }
                }
            }
            for (req, pkt) in outs {
                self.record(&s, scenario, req, &base, pkt)?;
            }
        }
        Ok(())
    }

    /// Process one decision: classify the request, check containment and
    /// ranking, mirror the engine's grant/landing bookkeeping, enqueue
    /// the successor.
    fn record(
        &mut self,
        s: &AbsState,
        scenario: &'static str,
        req: Option<Request>,
        pre: &Packet,
        mut pkt: Packet,
    ) -> Result<(), ConformanceError> {
        self.decisions += 1;
        let Some(req) = req else {
            // Denied head: the packet keeps waiting. Ladder mechanisms
            // never return `None` on a healthy network; for escape
            // mechanisms the patient twin covers the grown wait counter.
            if self.decl.uses_escape && s.class != ClassId::Escape {
                self.push(AbsState {
                    intermediate: pkt.intermediate,
                    flags: pkt.flags,
                    patient: true,
                    ..*s
                });
            }
            return Ok(());
        };
        if req.kind == RequestKind::Eject {
            return Ok(()); // delivery — not a channel dependency
        }
        let fab = self.probe.fab();
        let topo = fab.topo();
        let link = fab.out_link(s.router, req.out_port as usize);
        if link.kind == PortKind::Node {
            return Ok(()); // non-Eject request at an ejection port: terminal
        }
        let next_router = RouterId::new(link.dst_router);
        let to = if fab
            .ring_of_input(next_router, link.dst_port as usize, req.out_vc as usize)
            .is_some()
            || link.kind == PortKind::Ring
        {
            ClassId::Escape
        } else {
            match link.kind {
                PortKind::Local => ClassId::Local { vc: req.out_vc },
                PortKind::Global => ClassId::Global { vc: req.out_vc },
                PortKind::Ring | PortKind::Node => unreachable!("handled above"),
            }
        };
        let witness = TransitionWitness {
            router: s.router,
            dst: s.dst,
            from: s.class,
            to,
            why: req.kind,
            flags: pre.flags,
            intermediate: pre.intermediate,
            patient: s.patient,
            scenario,
        };
        // (1) containment: the decision must be a declared dependency.
        if !self.declared.contains(&(s.class, to)) {
            return Err(ConformanceError::UndeclaredTransition {
                mechanism: self.decl.mechanism,
                witness,
            });
        }
        if self.observed_set.insert((s.class, to)) {
            let why = match (s.class, req.kind) {
                (ClassId::Inject { .. }, RequestKind::Minimal) => EdgeWhy::Inject,
                _ => kind_to_why(req.kind),
            };
            self.observed.push(ClassEdge {
                from: s.class,
                to,
                why,
            });
        }
        // Mirror the engine's grant bookkeeping…
        pkt.wait = 0;
        match req.kind {
            RequestKind::MisrouteLocal => pkt.set(ofar_engine::FLAG_LOCAL_MISROUTED),
            RequestKind::MisrouteGlobal => pkt.set(ofar_engine::FLAG_GLOBAL_MISROUTED),
            RequestKind::RingEnter => pkt.set(ofar_engine::FLAG_ON_RING),
            RequestKind::RingExit => {
                pkt.clear(ofar_engine::FLAG_ON_RING);
                pkt.ring_exits_left = pkt.ring_exits_left.saturating_sub(1);
            }
            RequestKind::Eject | RequestKind::Minimal | RequestKind::RingAdvance => {}
        }
        match req.kind {
            RequestKind::RingEnter | RequestKind::RingAdvance => {
                pkt.ring_hops = pkt.ring_hops.saturating_add(1);
            }
            _ => match link.kind {
                PortKind::Local => pkt.local_hops = pkt.local_hops.saturating_add(1),
                PortKind::Global => pkt.global_hops = pkt.global_hops.saturating_add(1),
                PortKind::Ring | PortKind::Node => {}
            },
        }
        // …and the landing bookkeeping on group change.
        let next_group = topo.group_of(next_router);
        if pkt.cur_group != next_group {
            pkt.cur_group = next_group;
            pkt.clear(ofar_engine::FLAG_LOCAL_MISROUTED);
            if pkt.intermediate == Some(next_group) {
                pkt.intermediate = None;
            }
        }
        // (2) livelock ranking: the decision must strictly decrease
        // Φ_total. The exit budget enters symbolically: an exit spends
        // one unit whatever the concrete budget was.
        let e_pre = u64::from(s.exits == Exits::Pos);
        let e_post = if req.kind == RequestKind::RingExit {
            e_pre.saturating_sub(1)
        } else {
            e_pre
        };
        let before = self.phi_total(s.class, pre, s.router, s.dst, e_pre);
        let after = self.phi_total(to, &pkt, next_router, s.dst, e_post);
        if after >= before {
            return Err(ConformanceError::RankingViolation {
                mechanism: self.decl.mechanism,
                witness,
                before,
                after,
            });
        }
        // Successor(s): an exit from a positive budget covers both the
        // still-positive and the exhausted concretization.
        let succ_exits: &[Exits] = match (req.kind, s.exits) {
            (RequestKind::RingExit, Exits::Pos) => &[Exits::Pos, Exits::Zero],
            (_, Exits::Pos) => &[Exits::Pos],
            (_, Exits::Zero) => &[Exits::Zero],
        };
        let (intermediate, flags, local_hops) = (
            pkt.intermediate,
            pkt.flags,
            pkt.local_hops.min(self.hop_cap),
        );
        for &exits in succ_exits {
            self.push(AbsState {
                router: next_router,
                class: to,
                dst: s.dst,
                intermediate,
                flags,
                exits,
                local_hops,
                patient: false,
            });
        }
        Ok(())
    }

    /// `Φ_total` of a state form: `C·exits + ring-distance` on the ring,
    /// `C·exits + N + Φ_can` off it, with `C = N + 9 > N + max Φ_can`.
    fn phi_total(
        &self,
        class: ClassId,
        pkt: &Packet,
        router: RouterId,
        dst: RouterId,
        e: u64,
    ) -> u64 {
        let fab = self.probe.fab();
        let n = fab.rings().first().map_or(0, |r| r.len() as u64);
        let c = n + 9;
        if class == ClassId::Escape {
            let ring = fab.rings().first().expect("escape class without a ring");
            c * e + ring_dist(ring, router, dst)
        } else {
            let inject = matches!(class, ClassId::Inject { .. });
            c * e + n + self.rank.phi(fab.topo(), pkt, router, inject)
        }
    }

    /// Enqueue a state if unseen; for escape mechanisms also its patient
    /// twin (any off-ring head can be blocked past the patience window).
    fn push(&mut self, s: AbsState) {
        if self.visited.insert(s) {
            if s.class != ClassId::Escape {
                let pkt = self.materialize(&s);
                let inject = matches!(s.class, ClassId::Inject { .. });
                let phi = self
                    .rank
                    .phi(self.probe.fab().topo(), &pkt, s.router, inject);
                self.hop_bound = self.hop_bound.max(phi);
            }
            self.queue.push_back(s);
        }
        if self.decl.uses_escape && !s.patient && s.class != ClassId::Escape {
            let twin = AbsState { patient: true, ..s };
            if self.visited.insert(twin) {
                self.queue.push_back(twin);
            }
        }
    }

    /// Concretize an abstract state as the packet a policy will see.
    fn materialize(&self, s: &AbsState) -> Packet {
        let topo = self.probe.fab().topo();
        Packet {
            id: 0,
            injected_at: 0,
            src: self.canonical_src,
            dst: topo.first_node_of(s.dst),
            intermediate: s.intermediate,
            flags: s.flags,
            ring_exits_left: match s.exits {
                Exits::Pos => self.cfg.max_ring_exits.max(1),
                Exits::Zero => 0,
            },
            local_hops: s.local_hops,
            global_hops: 0,
            ring_hops: 0,
            wait: if s.patient { u8::MAX - 1 } else { 0 },
            cur_group: topo.group_of(s.router),
        }
    }

    /// The input-queue context a state's class corresponds to. Classes
    /// are port-symmetric, so input 0 of the right kind stands for all;
    /// escape states use ring 0's landing buffer (rings are symmetric).
    fn input_ctx(&self, s: &AbsState) -> InputCtx {
        let fab = self.probe.fab();
        match s.class {
            ClassId::Inject { vc } => InputCtx {
                port: fab.inj_in(0),
                vc: vc as usize,
                kind: PortKind::Node,
                is_escape_vc: false,
            },
            ClassId::Local { vc } => InputCtx {
                port: fab.local_in(0),
                vc: vc as usize,
                kind: PortKind::Local,
                is_escape_vc: false,
            },
            ClassId::Global { vc } => InputCtx {
                port: fab.global_in(0),
                vc: vc as usize,
                kind: PortKind::Global,
                is_escape_vc: false,
            },
            ClassId::Escape => {
                for port in 0..fab.n_in() {
                    let vcs = fab.in_desc(s.router, port).vcs as usize;
                    for vc in 0..vcs {
                        if fab.ring_of_input(s.router, port, vc) == Some(0) {
                            return InputCtx {
                                port,
                                vc,
                                kind: fab.in_kind(port),
                                is_escape_vc: true,
                            };
                        }
                    }
                }
                unreachable!("escape-class state on a ringless fabric")
            }
        }
    }

    /// The output port of the packet's current minimal hop (scenario
    /// targeting).
    fn min_out_port(&self, pkt: &Packet) -> usize {
        let view = self.probe.view();
        let hop = current_minimal_hop(&view, pkt);
        let fab = self.probe.fab();
        match hop {
            MinimalHop::Eject { node } => fab.eject_out(node),
            MinimalHop::Local { port } => fab.local_out(port),
            MinimalHop::Global { port } => fab.global_out(port),
        }
    }

    /// Apply one lattice point to the probed router.
    fn apply_scenario(&mut self, name: &'static str, min_port: usize) {
        let (a, h) = {
            let p = self.probe.fab().cfg().params;
            (p.a, p.h)
        };
        match name {
            "empty" => self.probe.set_all(PortLoad::Empty),
            "congested" => self.probe.set_all(PortLoad::Congested),
            "locals-congested" => {
                self.probe.set_all(PortLoad::Empty);
                for j in 0..a - 1 {
                    let port = self.probe.fab().local_out(j);
                    self.probe.set_load(port, PortLoad::Congested);
                }
            }
            "globals-congested" => {
                self.probe.set_all(PortLoad::Empty);
                for k in 0..h {
                    let port = self.probe.fab().global_out(k);
                    self.probe.set_load(port, PortLoad::Congested);
                }
            }
            "bubble-blocked" => self.probe.set_all(PortLoad::BubbleBlocked),
            "busy" => self.probe.set_all(PortLoad::Busy),
            "min-congested" => {
                self.probe.set_all(PortLoad::Empty);
                self.probe.set_load(min_port, PortLoad::Congested);
            }
            "min-bubble" => {
                self.probe.set_all(PortLoad::BubbleBlocked);
                self.probe.set_load(min_port, PortLoad::Congested);
            }
            other => unreachable!("unknown scenario {other}"),
        }
    }

    /// Valid Valiant intermediates for a destination (neither the source
    /// group 0 nor the destination group), capped at six evenly-spread
    /// representatives.
    fn pin_intermediates(&self, dst: RouterId) -> Vec<GroupId> {
        let topo = self.probe.fab().topo();
        let dst_group = topo.group_of(dst);
        let mut v: Vec<GroupId> = (0..topo.num_groups())
            .map(GroupId::from)
            .filter(|&g| g != GroupId::new(0) && g != dst_group)
            .collect();
        if v.len() > 8 {
            let n = v.len();
            let mut picked: Vec<GroupId> = (0..6).map(|i| v[i * (n - 1) / 5]).collect();
            picked.dedup();
            v = picked;
        }
        v
    }
}

/// Destination routers explored: three whole groups (source-local, the
/// nearest two remote) plus one router of the farthest group. Combined
/// with group symmetry this covers every host/non-host, intra/inter and
/// near/far relation a policy can observe.
fn dst_set(topo: &ofar_topology::Dragonfly) -> Vec<RouterId> {
    let a = topo.params().a;
    let mut v = Vec::new();
    for g in 0..topo.num_groups().min(3) {
        for i in 0..a {
            v.push(topo.router_at(GroupId::from(g), i));
        }
    }
    let far = topo.router_at(GroupId::from(topo.num_groups() - 1), 0);
    if !v.contains(&far) {
        v.push(far);
    }
    v
}

fn kind_to_why(kind: RequestKind) -> EdgeWhy {
    match kind {
        RequestKind::Eject | RequestKind::Minimal => EdgeWhy::Minimal,
        RequestKind::MisrouteLocal => EdgeWhy::MisrouteLocal,
        RequestKind::MisrouteGlobal => EdgeWhy::MisrouteGlobal,
        RequestKind::RingEnter => EdgeWhy::RingEnter,
        RequestKind::RingAdvance => EdgeWhy::RingAdvance,
        RequestKind::RingExit => EdgeWhy::RingExit,
    }
}

#[cfg(test)]
mod tests {
    use ofar_engine::SimConfig;
    use ofar_routing::MechanismKind;

    #[test]
    fn minimal_conforms_at_h2() {
        let cfg = MechanismKind::Min.adapt_config(SimConfig::paper(2));
        let rep = crate::conformance(&cfg, MechanismKind::Min).expect("MIN conforms");
        assert_eq!(rep.hop_bound, 3);
        assert_eq!(rep.paper_bound, 3);
        assert!(rep.ring_bound.is_none());
        assert!(rep.dead.is_empty(), "dead: {:?}", rep.dead);
    }
}
