//! Well-founded ranking functions for the livelock-freedom proof.
//!
//! For each mechanism the conformance explorer needs a potential
//! `Φ(state)` over the abstract packet states such that **every** routing
//! decision the real code can emit strictly decreases it — then no
//! infinite canonical path exists and `max Φ` over the reachable states
//! is a static worst-case hop bound. The potentials here are derived
//! from the paper's path-length arguments:
//!
//! * **MIN** — remaining minimal router distance (`≤ 3`: `l g l`).
//! * **VAL/PB** — distance to the pending Valiant intermediate group
//!   plus the worst 3-hop tail from there (`≤ 5`: `l g l g l`).
//! * **PAR** — a provisional (`FLAG_AUX`) packet first walks to the
//!   router hosting its minimal global channel, where the worst case is
//!   a fresh Valiant diversion (`≤ 6`: `l l' g l g l`).
//! * **OFAR / OFAR-L** — the §IV-A misroute-flag recursion: at most one
//!   global misroute per packet and one local misroute per group, with
//!   the source-group starvation rule ("local, then committed to a
//!   global exit"). The worst chain is `l, l_mis, g_mis, l, l_mis, g,
//!   l, l_mis` — 6 local + 2 global = 8 for OFAR, 5 for OFAR-L.
//!
//! Escape-ring travel is ranked separately (see
//! [`RankingKind::ring_bound`]): `Φ_total = C·ring_exits_left + N +
//! Φ_can` off-ring and `C·ring_exits_left + ring_dist` on-ring, with
//! `C = N + 9 > N + max Φ_can`, makes every `RingEnter`, `RingAdvance`
//! and (budgeted) `RingExit` strictly decreasing too. The explorer
//! checks the component inequalities per observed transition instead of
//! materializing `Φ_total`, so the proof holds for any exit budget.

use ofar_engine::{Packet, FLAG_AUX, FLAG_GLOBAL_MISROUTED, FLAG_LOCAL_MISROUTED};
use ofar_routing::MechanismKind;
use ofar_topology::{Dragonfly, HamiltonianRing, RouterId};

/// Which ranking recursion a mechanism is proved against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RankingKind {
    /// Remaining minimal distance (MIN).
    Minimal,
    /// Valiant two-phase distance (VAL, PB — committed at injection).
    Valiant,
    /// PAR's provisional-decision walk plus the Valiant phases.
    Par,
    /// OFAR misroute-flag recursion.
    Ofar {
        /// Whether local misrouting is enabled (OFAR vs OFAR-L).
        local_misroute: bool,
    },
}

impl RankingKind {
    /// The ranking for a mechanism.
    pub fn for_mechanism(kind: MechanismKind) -> Self {
        match kind {
            MechanismKind::Min => RankingKind::Minimal,
            MechanismKind::Valiant | MechanismKind::Pb => RankingKind::Valiant,
            MechanismKind::Par => RankingKind::Par,
            MechanismKind::Ofar => RankingKind::Ofar {
                local_misroute: true,
            },
            MechanismKind::OfarL => RankingKind::Ofar {
                local_misroute: false,
            },
        }
    }

    /// The canonical potential of `pkt` waiting at `router`: an upper
    /// bound on the canonical (non-ring) hops the mechanism can still
    /// take, decreasing by at least one on every decision. `inject` is
    /// true while the packet still waits in an injection queue (the
    /// §IV-A starvation rule gives injection queues a different misroute
    /// class than local queues).
    pub fn phi(&self, topo: &Dragonfly, pkt: &Packet, router: RouterId, inject: bool) -> u64 {
        match *self {
            RankingKind::Minimal => dist(topo, pkt, router),
            RankingKind::Valiant => valiant_phi(topo, pkt, router),
            RankingKind::Par => par_phi(topo, pkt, router),
            RankingKind::Ofar { local_misroute } => {
                ofar_phi(topo, pkt, router, local_misroute, inject)
            }
        }
    }

    /// The paper's worst-case canonical path length for this ranking —
    /// what `max Φ` over the reachable states must come out to.
    pub fn paper_bound(&self) -> u64 {
        match *self {
            RankingKind::Minimal => 3,
            RankingKind::Valiant => 5,
            RankingKind::Par => 6,
            RankingKind::Ofar {
                local_misroute: true,
            } => 8,
            RankingKind::Ofar {
                local_misroute: false,
            } => 5,
        }
    }

    /// Total worst-case hops *including* escape-ring travel for a ring of
    /// `ring_len` routers and an exit budget of `max_exits`:
    /// `Φ_total = (N + 9)·exits + N + Φ_can` evaluated at the worst
    /// off-ring state. `None` for ladder mechanisms (no ring).
    pub fn ring_bound(&self, ring_len: usize, max_exits: u8, canonical: u64) -> Option<u64> {
        match *self {
            RankingKind::Ofar { .. } => {
                let n = ring_len as u64;
                Some((n + 9) * u64::from(max_exits) + n + canonical)
            }
            _ => None,
        }
    }
}

/// Remaining minimal router distance.
fn dist(topo: &Dragonfly, pkt: &Packet, router: RouterId) -> u64 {
    topo.min_router_hops(router, topo.router_of_node(pkt.dst)) as u64
}

/// Router distance to some router of `group`: 0 inside it, 1 when
/// `router` hosts the global link into it, else 2 (local hop to the
/// hosting router first — groups are cliques).
fn dist_to_group(topo: &Dragonfly, router: RouterId, group: ofar_topology::GroupId) -> u64 {
    let here = topo.group_of(router);
    if here == group {
        0
    } else if topo.global_link_from(here, group).0 == router {
        1
    } else {
        2
    }
}

/// VAL/PB: with a pending intermediate, distance to the intermediate
/// group plus the worst `l g l` tail; else the plain minimal distance.
fn valiant_phi(topo: &Dragonfly, pkt: &Packet, router: RouterId) -> u64 {
    match pkt.intermediate {
        Some(inter) if topo.group_of(router) != inter => dist_to_group(topo, router, inter) + 3,
        _ => dist(topo, pkt, router),
    }
}

/// PAR: a provisional (`FLAG_AUX`) packet first walks minimally to the
/// router hosting the minimal global channel, where the worst outcome is
/// a fresh Valiant diversion (`Φ = 5` from the host).
fn par_phi(topo: &Dragonfly, pkt: &Packet, router: RouterId) -> u64 {
    let src_group = topo.group_of_node(pkt.src);
    let dst_group = topo.group_of_node(pkt.dst);
    if pkt.has(FLAG_AUX) && src_group != dst_group {
        let (host, _) = topo.global_link_from(src_group, dst_group);
        topo.min_router_hops(router, host) as u64 + 5
    } else {
        valiant_phi(topo, pkt, router)
    }
}

/// Worst destination-group cost after *entering* the group (landing
/// clears the local-misroute flag): one minimal hop plus one optional
/// local misroute.
fn dst_after_land(lm: bool) -> u64 {
    1 + u64::from(lm)
}

/// Intermediate-group cost: `at_host` means this router hosts the global
/// link towards the destination group; `la` whether a local misroute is
/// still available here.
fn w_int(at_host: bool, la: bool, lm: bool) -> u64 {
    if at_host {
        1 + dst_after_land(lm)
    } else if la {
        // local misroute, then the la-exhausted non-host case
        1 + (2 + dst_after_land(lm))
    } else {
        2 + dst_after_land(lm)
    }
}

/// Worst landing after a global misroute: an intermediate group at a
/// non-hosting router, with the local-misroute flag freshly cleared.
fn int_after_misroute(lm: bool) -> u64 {
    w_int(false, lm, lm)
}

/// Destination-group cost for the packet as it stands.
fn w_dst(d: u64, la: bool) -> u64 {
    d + u64::from(la && d >= 1)
}

/// Source-group recursion over the §IV-A option sets. `min_local` is
/// whether the minimal hop from here is a local one (the router does not
/// host the minimal global channel).
fn src_phi(min_local: bool, lmf: bool, gmf: bool, inject: bool, lm: bool) -> u64 {
    if lmf && !gmf && min_local {
        // Starvation rule: after its source-group local misroute the
        // packet is committed to a global exit of the current router.
        return 1 + int_after_misroute(lm);
    }
    let try_local = lm && !lmf && !inject;
    let try_global = !gmf && !try_local;
    let min_opt = if min_local {
        1 + src_phi(false, lmf, gmf, false, lm)
    } else {
        1 + dst_after_land(lm)
    };
    let mut best = min_opt;
    if try_local {
        // The landing router may or may not host the minimal channel.
        let near = src_phi(false, true, gmf, false, lm);
        let far = src_phi(true, true, gmf, false, lm);
        best = best.max(1 + near.max(far));
    }
    if try_global {
        best = best.max(1 + int_after_misroute(lm));
    }
    best
}

/// OFAR canonical potential by group position.
fn ofar_phi(topo: &Dragonfly, pkt: &Packet, router: RouterId, lm: bool, inject: bool) -> u64 {
    let here = topo.group_of(router);
    let src_group = topo.group_of_node(pkt.src);
    let dst_group = topo.group_of_node(pkt.dst);
    let lmf = pkt.has(FLAG_LOCAL_MISROUTED);
    let gmf = pkt.has(FLAG_GLOBAL_MISROUTED);
    let la = lm && !lmf;
    if here == dst_group {
        return w_dst(dist(topo, pkt, router), la);
    }
    if here != src_group {
        let at_host = topo.global_link_from(here, dst_group).0 == router;
        return w_int(at_host, la, lm);
    }
    let min_local = topo.global_link_from(src_group, dst_group).0 != router;
    src_phi(min_local, lmf, gmf, inject, lm)
}

/// Position of `router` along `ring`, measured as hops *remaining* until
/// the ring reaches `dst` — the on-ring component of `Φ_total`.
pub(crate) fn ring_dist(ring: &HamiltonianRing, router: RouterId, dst: RouterId) -> u64 {
    let n = ring.len();
    ((ring.position_of(dst) + n - ring.position_of(router)) % n) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofar_engine::SimConfig;
    use ofar_topology::GroupId;

    fn topo() -> Dragonfly {
        Dragonfly::new(SimConfig::paper(2).params)
    }

    fn pkt(topo: &Dragonfly, src_r: usize, dst_r: usize) -> Packet {
        Packet {
            id: 0,
            injected_at: 0,
            src: topo.first_node_of(RouterId::from(src_r)),
            dst: topo.first_node_of(RouterId::from(dst_r)),
            intermediate: None,
            flags: 0,
            ring_exits_left: 4,
            local_hops: 0,
            global_hops: 0,
            ring_hops: 0,
            wait: 0,
            cur_group: topo.group_of(RouterId::from(src_r)),
        }
    }

    #[test]
    fn paper_bounds_match_the_path_length_table() {
        assert_eq!(RankingKind::Minimal.paper_bound(), 3);
        assert_eq!(RankingKind::Valiant.paper_bound(), 5);
        assert_eq!(RankingKind::Par.paper_bound(), 6);
        assert_eq!(
            RankingKind::Ofar {
                local_misroute: true
            }
            .paper_bound(),
            8
        );
        assert_eq!(
            RankingKind::Ofar {
                local_misroute: false
            }
            .paper_bound(),
            5
        );
    }

    #[test]
    fn worst_initial_states_reach_exactly_the_bounds() {
        let t = topo();
        // src router 1 of group 0 and a far destination: minimal path is
        // the full l g l, and router 1 does not host the minimal link for
        // every destination group — pick one where it does not.
        let far = (0..t.num_routers())
            .map(RouterId::from)
            .find(|&r| {
                let g = t.group_of(r);
                g != GroupId::new(0) && t.min_router_hops(RouterId::new(0), r) == 3
            })
            .expect("a distance-3 destination exists");
        let p = pkt(&t, 0, far.idx());
        assert_eq!(RankingKind::Minimal.phi(&t, &p, RouterId::new(0), true), 3);
        assert_eq!(
            RankingKind::Ofar {
                local_misroute: true
            }
            .phi(&t, &p, RouterId::new(0), true),
            8
        );
        assert_eq!(
            RankingKind::Ofar {
                local_misroute: false
            }
            .phi(&t, &p, RouterId::new(0), true),
            5
        );
        // a pending Valiant intermediate two hops away: 2 + 3
        let mut v = p;
        let inter = (0..t.num_groups())
            .map(GroupId::from)
            .find(|&g| {
                g != t.group_of_node(v.src)
                    && g != t.group_of_node(v.dst)
                    && t.global_link_from(GroupId::new(0), g).0 != RouterId::new(0)
            })
            .expect("a non-hosted intermediate exists");
        v.intermediate = Some(inter);
        assert_eq!(RankingKind::Valiant.phi(&t, &v, RouterId::new(0), true), 5);
        // PAR provisional packet one local hop from the hosting router
        let mut a = p;
        a.set(FLAG_AUX);
        let host = t
            .global_link_from(GroupId::new(0), t.group_of_node(a.dst))
            .0;
        let not_host = (0..4)
            .map(|i| t.router_at(GroupId::new(0), i))
            .find(|&r| r != host)
            .expect("group has non-hosting routers");
        assert_eq!(RankingKind::Par.phi(&t, &a, not_host, true), 6);
    }

    #[test]
    fn ofar_flags_monotonically_lower_the_potential() {
        // Spending a misroute flag can never raise the remaining budget.
        let t = topo();
        let far = RouterId::from(t.num_routers() - 1);
        let base = pkt(&t, 0, far.idx());
        let rank = RankingKind::Ofar {
            local_misroute: true,
        };
        for r in 0..t.num_routers() {
            let r = RouterId::from(r);
            let open = rank.phi(&t, &base, r, false);
            for flags in [
                FLAG_LOCAL_MISROUTED,
                FLAG_GLOBAL_MISROUTED,
                FLAG_LOCAL_MISROUTED | FLAG_GLOBAL_MISROUTED,
            ] {
                let mut p = base;
                p.flags = flags;
                assert!(
                    rank.phi(&t, &p, r, false) <= open,
                    "flags {flags:#x} raised phi at {r}"
                );
            }
        }
    }

    #[test]
    fn ring_distance_wraps_and_bounds() {
        let t = topo();
        let ring = HamiltonianRing::embedded(&t, 0);
        let order = ring.order().to_vec();
        assert_eq!(ring_dist(&ring, order[0], order[0]), 0);
        assert_eq!(ring_dist(&ring, order[0], order[1]), 1);
        assert_eq!(
            ring_dist(&ring, order[1], order[0]),
            (ring.len() - 1) as u64
        );
        let bound = RankingKind::Ofar {
            local_misroute: true,
        }
        .ring_bound(ring.len(), 4, 8)
        .expect("OFAR has a ring bound");
        assert_eq!(bound, (ring.len() as u64 + 9) * 4 + ring.len() as u64 + 8);
        assert_eq!(RankingKind::Minimal.ring_bound(36, 4, 3), None);
    }
}
