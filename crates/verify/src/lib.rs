//! # ofar-verify
//!
//! Static channel-dependency-graph (CDG) deadlock verifier for the OFAR
//! simulator: proves — **before cycle 0** — that a `(mechanism,
//! SimConfig)` pair cannot deadlock, or rejects it with a typed report
//! naming the offending cycle, ring defect or buffer inequality.
//!
//! The proof obligation splits by mechanism family (Dally/Duato theory):
//!
//! * **Ladder mechanisms** (MIN, VAL, PB, PAR) claim deadlock freedom by
//!   VC-order acyclicity. Each mechanism exports its legal (port-class,
//!   VC) transitions ([`ofar_routing::DependencyDecl`]); the verifier
//!   instantiates them as a concrete CDG over the actual palmtree
//!   topology and requires it to be acyclic
//!   ([`VerifyError::DependencyCycle`] otherwise).
//! * **Escape mechanisms** (OFAR, OFAR-L) are deliberately cyclic in the
//!   canonical VCs; safety is delegated to the escape subnetwork
//!   (§IV-C). Three obligations replace acyclicity:
//!   1. every escape ring is a single Hamiltonian cycle over real links
//!      (so ring packets pass every destination and the escape subgraph
//!      has no cycle other than the ring itself) —
//!      [`VerifyError::MalformedRing`];
//!   2. the bubble condition `buf_ring ≥ 2·packet_size` holds, so the
//!      ring can always advance — [`VerifyError::Bubble`];
//!   3. Duato's drain condition: every canonical channel class that
//!      participates in a dependency cycle declares an entry into the
//!      escape layer — [`VerifyError::NoEscapeDrain`].
//!
//! `ofar_core::run` refuses to start a configuration that this crate
//! does not certify; the `verify` bench bin prints the certification
//! table over the shipped configuration space.

#![warn(missing_docs)]

mod cdg;
mod explore;
pub mod oracle;
mod ranking;
mod report;
mod ring_spec;

pub use oracle::{certify_decl, run_static_stack, OracleKind, OracleVerdict, StaticVerdicts};
pub use ranking::RankingKind;
pub use report::{
    Certificate, ChannelRef, ConformanceError, ConformanceReport, TransitionWitness, VerifyError,
};
pub use ring_spec::RingSpec;

use cdg::Cdg;
use ofar_engine::{ConfigError, RingMode, SimConfig};
use ofar_routing::{DependencyDecl, EnumerablePolicy, MechanismDeps, MechanismKind};
use ofar_topology::{Dragonfly, HamiltonianRing};
use std::sync::Mutex;

/// Certify one `(configuration, mechanism)` pair: validate the
/// configuration, build the topology and its escape rings, and discharge
/// the proof obligations described at the crate root.
///
/// Pass the configuration the network will actually run —
/// [`MechanismKind::adapt_config`] is *not* applied here, so callers that
/// adapt must certify the adapted configuration.
pub fn certify(cfg: &SimConfig, kind: MechanismKind) -> Result<Certificate, VerifyError> {
    cfg.validate().map_err(|e| match e {
        // Surface as the verifier's own inequality so the report names
        // the required depth.
        ConfigError::RingBufferNoBubble { cap } => VerifyError::Bubble {
            cap,
            required: 2 * cfg.packet_size,
        },
        other => VerifyError::Config(other),
    })?;
    let topo = Dragonfly::new(cfg.params);
    let rings: Vec<RingSpec> = if cfg.ring == RingMode::None {
        Vec::new()
    } else {
        HamiltonianRing::embed_disjoint(&topo, cfg.escape_rings)
            .iter()
            .map(|r| RingSpec::from_ring(&topo, r))
            .collect()
    };
    let decl = kind.dependency_decl(cfg);
    verify_decl(&topo, cfg, &decl, &rings)
}

/// [`certify`] with a process-wide memo table keyed on the configuration
/// (seed excluded — the proof does not depend on it). Sweeps certify
/// each distinct configuration once instead of once per point.
pub fn certify_cached(cfg: &SimConfig, kind: MechanismKind) -> Result<Certificate, VerifyError> {
    type Key = (MechanismKind, SimConfig);
    static CACHE: Mutex<Vec<(Key, Result<Certificate, VerifyError>)>> = Mutex::new(Vec::new());
    let mut key_cfg = *cfg;
    key_cfg.seed = 0;
    let key = (kind, key_cfg);
    {
        let cache = CACHE.lock().expect("verify cache poisoned");
        if let Some((_, r)) = cache.iter().find(|(k, _)| *k == key) {
            return r.clone();
        }
    }
    let result = certify(cfg, kind);
    let mut cache = CACHE.lock().expect("verify cache poisoned");
    if !cache.iter().any(|(k, _)| *k == key) {
        cache.push((key, result.clone()));
    }
    result
}

/// Run the routing-conformance model checker for one `(configuration,
/// mechanism)` pair: first [`certify`] the *declared* dependency graph,
/// then exhaustively drive the mechanism's real `on_inject`/`route` code
/// over the reachable abstract decision space and prove that
///
/// 1. every observed class transition is declared
///    ([`ConformanceError::UndeclaredTransition`] otherwise);
/// 2. every decision strictly decreases the mechanism's well-founded
///    ranking — livelock freedom with a static hop bound
///    ([`ConformanceError::RankingViolation`] otherwise);
/// 3. the observed (tighter) graph re-certifies under the same CDG
///    obligations ([`ConformanceError::ObservedGraphRejected`]).
///
/// The seed is irrelevant: all randomized choices are enumerated through
/// the [`EnumerablePolicy`] probe hooks rather than sampled.
pub fn conformance(
    cfg: &SimConfig,
    kind: MechanismKind,
) -> Result<ConformanceReport, ConformanceError> {
    certify(cfg, kind)?;
    let policy = kind.build(cfg, 0);
    let decl = kind.dependency_decl(cfg);
    explore::conformance_with(cfg, policy, decl, RankingKind::for_mechanism(kind))
}

/// [`conformance`] with a process-wide memo table keyed on the
/// configuration (seed excluded — the exploration enumerates random
/// choices instead of sampling them).
pub fn conformance_cached(
    cfg: &SimConfig,
    kind: MechanismKind,
) -> Result<ConformanceReport, ConformanceError> {
    type Key = (MechanismKind, SimConfig);
    static CACHE: Mutex<Vec<(Key, Result<ConformanceReport, ConformanceError>)>> =
        Mutex::new(Vec::new());
    let mut key_cfg = *cfg;
    key_cfg.seed = 0;
    let key = (kind, key_cfg);
    {
        let cache = CACHE.lock().expect("conformance cache poisoned");
        if let Some((_, r)) = cache.iter().find(|(k, _)| *k == key) {
            return r.clone();
        }
    }
    let result = conformance(cfg, kind);
    let mut cache = CACHE.lock().expect("conformance cache poisoned");
    if !cache.iter().any(|(k, _)| *k == key) {
        cache.push((key, result.clone()));
    }
    result
}

/// The low-level conformance checker: explore an arbitrary
/// [`EnumerablePolicy`] against an explicit declaration and ranking. This
/// is the entry point for feeding deliberately buggy policies (mutants)
/// that [`conformance`] can never build — the checker must reject them
/// with a named witness.
pub fn conformance_with<P: EnumerablePolicy>(
    cfg: &SimConfig,
    policy: P,
    decl: MechanismDeps,
    rank: RankingKind,
) -> Result<ConformanceReport, ConformanceError> {
    explore::conformance_with(cfg, policy, decl, rank)
}

/// The low-level verifier: discharge the proof obligations for an
/// explicit declaration and explicit ring specs over `topo`. This is the
/// entry point for feeding deliberately broken inputs (reversed ring
/// edges, drain-free declarations) that the safe constructors above can
/// never produce.
pub fn verify_decl(
    topo: &Dragonfly,
    cfg: &SimConfig,
    decl: &MechanismDeps,
    rings: &[RingSpec],
) -> Result<Certificate, VerifyError> {
    // Escape layer: each ring is a spanning cycle over real links…
    for ring in rings {
        ring.check(topo)?;
    }
    // …advancing under a bubble deep enough for two packets (§IV-C).
    if !rings.is_empty() && cfg.buf_ring < 2 * cfg.packet_size {
        return Err(VerifyError::Bubble {
            cap: cfg.buf_ring,
            required: 2 * cfg.packet_size,
        });
    }
    if decl.uses_escape && rings.is_empty() {
        return Err(VerifyError::MissingEscape {
            mechanism: decl.mechanism,
        });
    }

    // Canonical subgraph: find every cyclic SCC.
    let (vl, vg) = (cfg.vcs_local, cfg.vcs_global);
    let graph = Cdg::build(topo, vl, vg, decl);
    let sccs = graph.cyclic_sccs();
    if !decl.uses_escape {
        if let Some(scc) = sccs.first() {
            return Err(VerifyError::DependencyCycle {
                mechanism: decl.mechanism,
                cycle: scc.cycle.clone(),
            });
        }
    } else {
        // Duato drain: every class inside a cycle must be able to leave
        // the cyclic dependency in one transition into the (acyclic +
        // bubble-protected) escape layer.
        for scc in &sccs {
            for &class in &scc.classes {
                if !decl.drains_to_escape(class) {
                    return Err(VerifyError::NoEscapeDrain {
                        mechanism: decl.mechanism,
                        class,
                        cycle: graph.cycle_through(scc, class),
                    });
                }
            }
        }
    }

    let nr = topo.num_routers();
    let (a, h) = (topo.params().a, topo.params().h);
    let lanes = match cfg.ring {
        RingMode::Physical => cfg.vcs_ring,
        RingMode::Embedded => 1,
        RingMode::None => 0,
    };
    let _ = graph.vertex_count();
    Ok(Certificate {
        mechanism: decl.mechanism,
        routers: nr,
        channels: nr * (a - 1) * vl + nr * h * vg,
        dependencies: graph.concrete_dependencies(topo),
        escape_channels: rings.len() * nr * lanes.max(usize::from(!rings.is_empty())),
        rings: rings.len(),
        cycles_drained: sccs.len(),
        bubble_slack: (!rings.is_empty()).then(|| cfg.buf_ring - 2 * cfg.packet_size),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofar_routing::{ClassEdge, ClassId, EdgeWhy};
    use ofar_topology::RouterId;

    #[test]
    fn paper_set_certifies_at_paper_scale() {
        let base = SimConfig::paper(2);
        for kind in MechanismKind::paper_set() {
            let cfg = kind.adapt_config(base);
            let cert = certify(&cfg, kind).unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            assert_eq!(cert.routers, 36);
            if kind.needs_ring() {
                assert!(cert.rings >= 1);
                assert!(cert.cycles_drained >= 1, "OFAR canonical graph is cyclic");
            } else {
                assert_eq!(cert.cycles_drained, 0, "{} must be acyclic", kind.name());
            }
        }
    }

    #[test]
    fn par_certifies_with_its_fourth_vc() {
        let cfg = MechanismKind::Par.adapt_config(SimConfig::paper(2));
        let cert = certify(&cfg, MechanismKind::Par).expect("PAR certifies");
        assert_eq!(cert.cycles_drained, 0);
    }

    #[test]
    fn reduced_vcs_certifies_ofar_but_rejects_valiant() {
        // Fig. 9's 2-local/1-global configuration folds the ladder into a
        // cycle: only the escape-ring mechanisms survive it.
        let cfg = SimConfig::reduced_vcs(2);
        certify(&cfg, MechanismKind::Ofar).expect("OFAR certifies under reduced VCs");
        let mut no_ring = cfg;
        no_ring.ring = RingMode::None;
        let err = certify(&no_ring, MechanismKind::Valiant).unwrap_err();
        match err {
            VerifyError::DependencyCycle { mechanism, cycle } => {
                assert_eq!(mechanism, "VAL");
                assert!(cycle.len() >= 2);
                // the report names concrete routers and VCs
                let text = format!("{}", certify(&no_ring, MechanismKind::Valiant).unwrap_err());
                assert!(text.contains("cycle"), "{text}");
            }
            other => panic!("expected DependencyCycle, got {other:?}"),
        }
    }

    #[test]
    fn reversed_ring_edge_is_rejected_with_named_routers() {
        let cfg = MechanismKind::Ofar.adapt_config(SimConfig::paper(2));
        let topo = Dragonfly::new(cfg.params);
        let ring = HamiltonianRing::embedded(&topo, 0);
        let mut spec = RingSpec::from_ring(&topo, &ring);
        let (from, to) = spec.edges[3];
        spec.edges[3] = (to, from);
        let decl = MechanismKind::Ofar.dependency_decl(&cfg);
        let err = verify_decl(&topo, &cfg, &decl, &[spec]).unwrap_err();
        match err {
            VerifyError::MalformedRing {
                ring: 0,
                ref witness,
                ..
            } => {
                assert!(!witness.is_empty(), "witness routers named");
            }
            ref other => panic!("expected MalformedRing, got {other:?}"),
        }
    }

    #[test]
    fn zero_bubble_buffers_are_rejected() {
        let mut cfg = MechanismKind::Ofar.adapt_config(SimConfig::paper(2));
        cfg.buf_ring = cfg.packet_size; // one packet: no bubble
        let err = certify(&cfg, MechanismKind::Ofar).unwrap_err();
        assert_eq!(
            err,
            VerifyError::Bubble {
                cap: cfg.packet_size,
                required: 2 * cfg.packet_size
            }
        );
    }

    #[test]
    fn drain_free_adaptive_declaration_is_rejected() {
        // A hand-built "OFAR without ring entry on global VC 0": the
        // global channels stay cyclic with no declared escape entry.
        let cfg = MechanismKind::Ofar.adapt_config(SimConfig::paper(2));
        let topo = Dragonfly::new(cfg.params);
        let ring = HamiltonianRing::embedded(&topo, 0);
        let spec = RingSpec::from_ring(&topo, &ring);
        let mut decl = MechanismKind::Ofar.dependency_decl(&cfg);
        decl.edges.retain(|e: &ClassEdge| {
            !(e.to == ClassId::Escape && e.from == ClassId::Global { vc: 0 })
        });
        let err = verify_decl(&topo, &cfg, &decl, &[spec]).unwrap_err();
        match err {
            VerifyError::NoEscapeDrain {
                class, ref cycle, ..
            } => {
                assert_eq!(class, ClassId::Global { vc: 0 });
                assert!(cycle.iter().any(|c| c.class() == class));
            }
            ref other => panic!("expected NoEscapeDrain, got {other:?}"),
        }
    }

    #[test]
    fn short_circuited_ring_is_rejected() {
        // Splice the ring so it closes early: take a valid ring and remap
        // one edge to jump back to the start of the walk.
        let cfg = MechanismKind::Ofar.adapt_config(SimConfig::paper(2));
        let topo = Dragonfly::new(cfg.params);
        let ring = HamiltonianRing::embedded(&topo, 0);
        let order = ring.order().to_vec();
        let mut spec = RingSpec::from_ring(&topo, &ring);
        // order[1] is a local neighbor of order[0] only if they share a
        // group; find some i ≥ 2 whose router links directly back to
        // order[0] and splice there.
        let back = (2..order.len())
            .find(|&i| topo.link_between(order[i], order[0]).is_some())
            .expect("a clique group always offers a back edge");
        let from = order[back];
        for e in &mut spec.edges {
            if e.0 == from {
                *e = (from, order[0]);
            }
        }
        let err = verify_decl(
            &topo,
            &cfg,
            &MechanismKind::Ofar.dependency_decl(&cfg),
            &[spec],
        )
        .unwrap_err();
        match err {
            VerifyError::MalformedRing { detail, .. } => {
                assert!(
                    detail.contains("predecessors") || detail.contains("spanning"),
                    "{detail}"
                );
            }
            other => panic!("expected MalformedRing, got {other:?}"),
        }
    }

    #[test]
    fn certificates_are_cached() {
        let cfg = MechanismKind::Ofar.adapt_config(SimConfig::paper(2));
        let a = certify_cached(&cfg, MechanismKind::Ofar).expect("certifies");
        let mut reseeded = cfg;
        reseeded.seed = 999;
        let b = certify_cached(&reseeded, MechanismKind::Ofar).expect("cached");
        assert_eq!(a.dependencies, b.dependencies);
    }

    #[test]
    fn unknown_router_in_ring_spec_is_rejected() {
        let cfg = MechanismKind::Ofar.adapt_config(SimConfig::paper(2));
        let topo = Dragonfly::new(cfg.params);
        let ring = HamiltonianRing::embedded(&topo, 0);
        let mut spec = RingSpec::from_ring(&topo, &ring);
        spec.edges[0].1 = RouterId::from(topo.num_routers() + 5);
        let decl = MechanismKind::Ofar.dependency_decl(&cfg);
        assert!(matches!(
            verify_decl(&topo, &cfg, &decl, &[spec]),
            Err(VerifyError::MalformedRing { .. })
        ));
    }

    #[test]
    fn multi_ring_configurations_certify() {
        let mut cfg = MechanismKind::Ofar.adapt_config(SimConfig::paper(2));
        for k in 1..=2 {
            cfg.escape_rings = k;
            let cert = certify(&cfg, MechanismKind::Ofar).expect("k rings certify");
            assert_eq!(cert.rings, k);
        }
    }

    #[test]
    fn min_without_ring_certifies_and_reports_no_escape() {
        let cfg = MechanismKind::Min.adapt_config(SimConfig::paper(2));
        let cert = certify(&cfg, MechanismKind::Min).expect("MIN certifies");
        assert_eq!(cert.rings, 0);
        assert_eq!(cert.escape_channels, 0);
        assert!(cert.bubble_slack.is_none());
        let _ = EdgeWhy::Minimal; // silence unused-import lint in cfg(test)
    }
}
